//! Offline stand-in for the `crossbeam` crate.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so external dependencies are replaced by minimal local
//! crates exposing exactly the API surface the workspace uses: the
//! [`channel`] module's unbounded MPSC channel, backed by
//! `std::sync::mpsc`.

#![forbid(unsafe_code)]

/// Multi-producer channels with crossbeam's error types.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the timeout elapsed.
        Timeout,
        /// All senders have disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}
    impl std::error::Error for TryRecvError {}
    impl std::error::Error for RecvTimeoutError {}
    impl std::error::Error for RecvError {}

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message; fails only when every receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn roundtrip_and_empty() {
        let (tx, rx) = unbounded();
        tx.send(5u32).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        let err = tx.send(9i32).unwrap_err();
        assert_eq!(err.0, 9);
        assert!(!err.to_string().is_empty());
    }
}
