//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so external dependencies are replaced by minimal local
//! crates exposing exactly the API surface the workspace uses:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] with [`BenchmarkId`],
//! [`Throughput::Bytes`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: per benchmark it calibrates an
//! iteration count to a fixed wall-clock budget, takes `sample_size`
//! samples, and reports the median with min/max spread — no HTML
//! reports, no statistical regression machinery. Good enough to rank
//! variants and catch large regressions, which is all the workspace's
//! benches are used for offline.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample time budget used when calibrating iteration counts.
const SAMPLE_BUDGET: Duration = Duration::from_millis(20);

/// Benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name,
            throughput: None,
            sample_size,
        }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Abstract elements handled per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id like `"name/parameter"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Conversion of the various accepted id types into a display string.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing throughput and sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark; `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        self.report(&id, b.result);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b, input);
        self.report(&id, b.result);
        self
    }

    /// Finish the group (prints nothing extra; kept for API parity).
    pub fn finish(self) {}

    fn report(&self, id: &str, result: Option<Sample>) {
        let Some(s) = result else {
            println!("{}/{id}: no measurement (iter not called)", self.name);
            return;
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let mib_s = n as f64 / s.median_ns / 1e-9 / (1024.0 * 1024.0);
                format!("  {mib_s:10.1} MiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let elem_s = n as f64 / (s.median_ns * 1e-9);
                format!("  {elem_s:10.0} elem/s")
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: {} [{} .. {}]{rate}",
            self.name,
            fmt_ns(s.median_ns),
            fmt_ns(s.min_ns),
            fmt_ns(s.max_ns),
        );
    }
}

/// One benchmark's aggregated timing (nanoseconds per iteration).
struct Sample {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Times a closure over a calibrated number of iterations.
pub struct Bencher {
    sample_size: usize,
    result: Option<Sample>,
}

impl Bencher {
    /// Measure `f`: calibrate an iteration count against the sample
    /// budget, then record `sample_size` samples of mean ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: double iterations until one batch fills the
        // budget, starting from a single (possibly slow) call.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_BUDGET || iters >= 1 << 30 {
                break;
            }
            // Aim directly at the budget once we have a usable signal.
            if elapsed > Duration::from_micros(50) {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                iters = ((SAMPLE_BUDGET.as_secs_f64() / per_iter) as u64).clamp(iters + 1, 1 << 30);
            } else {
                iters *= 8;
            }
        }
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples_ns.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(Sample {
            median_ns: samples_ns[samples_ns.len() / 2],
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().unwrap(),
        });
    }
}

impl fmt::Debug for Bencher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Bencher")
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Bytes(64));
        g.sample_size(3);
        g.bench_function("xor-fold", |b| {
            let data = [0xA5u8; 64];
            b.iter(|| data.iter().fold(0u8, |a, &x| a ^ x))
        });
        g.bench_with_input(BenchmarkId::new("sum", 64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }
}
