//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so external dependencies are replaced by minimal local
//! crates exposing exactly the API surface the workspace uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`arbitrary::any`] for integers, `bool` and byte arrays,
//! * integer `Range` / `RangeInclusive` strategies, tuple strategies,
//!   [`collection::vec`], and [`strategy::Strategy::prop_map`].
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! panics with the values' `Debug` formatting (strategies here generate
//! directly rather than via shrink trees). Case generation is
//! deterministic — the RNG seed is derived from the test name — so
//! failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy for any value of `T` (see [`crate::arbitrary::any`]).
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
        (A, B, C, D, E, F, G),
        (A, B, C, D, E, F, G, H)
    );
}

pub mod arbitrary {
    //! Default strategies for common types.

    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case runner, RNG, and error plumbing behind [`crate::proptest!`].

    /// Deterministic generator (SplitMix64) driving case generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub(crate) fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, span)`; `span > 0`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case did not satisfy a [`crate::prop_assume!`]
        /// precondition; it is retried without counting.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// Build a rejection.
        pub fn reject(msg: String) -> Self {
            TestCaseError::Reject(msg)
        }
    }

    /// Configuration for one `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    impl ProptestConfig {
        /// Config requiring `cases` passing cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Runs generated cases until the configured count passes.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// Create a runner whose RNG seed derives from `name`, so each
        /// test explores a distinct but reproducible stream.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            // FNV-1a over the test name.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                config,
                rng: TestRng::new(seed),
            }
        }

        /// Run `case` until `config.cases` cases pass. Panics on the
        /// first failing case, or when rejections exceed a generous
        /// multiple of the case budget.
        pub fn run<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let mut passed = 0u32;
            let mut rejected = 0u64;
            let max_rejects = (self.config.cases as u64).saturating_mul(16).max(1024);
            while passed < self.config.cases {
                match case(&mut self.rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > max_rejects {
                            panic!(
                                "proptest: too many rejected cases ({rejected}) \
                                 for {} required passes",
                                self.config.cases
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed (after {passed} passing cases): {msg}");
                    }
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `fn` becomes a `#[test]` that generates
/// inputs from the given strategies and runs the body for the
/// configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $(#[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                runner.run(|prop_rng| {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), prop_rng);)+
                    let case = || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} at {}:{}",
                    stringify!($cond),
                    file!(),
                    line!()
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} ({}) at {}:{}",
                    stringify!($cond),
                    format!($($fmt)+),
                    file!(),
                    line!()
                ),
            ));
        }
    };
}

/// Assert two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n at {}:{}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r,
                    file!(),
                    line!()
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}\n at {}:{}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    l,
                    r,
                    file!(),
                    line!()
                ),
            ));
        }
    }};
}

/// Assert two values differ inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}\n at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Reject the current case unless the precondition holds; rejected
/// cases are retried without counting toward the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::{TestRng, TestRunner};

    proptest! {
        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 10u64..=20) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=20).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(
            v in crate::collection::vec(any::<u8>(), 2..5),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_filters(n in 0u8..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_applies(_x in any::<bool>()) {
            prop_assert!(true);
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (0u8..4, 1usize..=3).prop_map(|(a, n)| vec![a; n]);
        let mut rng = TestRng::new(99);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_case_panics() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10), "failing");
        runner.run(|rng| {
            let v = rng.below(100);
            crate::prop_assert!(v < 1000);
            crate::prop_assert!(v > 1000, "v was {}", v);
            Ok(())
        });
    }
}
