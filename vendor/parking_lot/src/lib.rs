//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so external dependencies are replaced by minimal local
//! crates exposing exactly the API surface the workspace uses. Here
//! that is [`Mutex`] with parking_lot's panic-free `lock()` (no
//! `Result`, no poisoning): a thin wrapper over `std::sync::Mutex`
//! that recovers the inner data if a holder panicked.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutual-exclusion primitive with parking_lot's `lock()` signature.
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized>(StdGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike
    /// `std::sync::Mutex`, a panic in a previous holder does not poison
    /// the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire the lock if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn panic_does_not_poison() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
