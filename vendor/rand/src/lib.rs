//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so external dependencies are replaced by minimal local
//! crates exposing exactly the API surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_bool` / `gen_range` over integer and float ranges.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — not
//! cryptographic (neither is the upstream `StdRng` contractually), but
//! statistically solid for the simulation workloads here: link
//! impairments ([loss, jitter, corruption] in `fbs-net::segment`) and
//! synthetic trace generation (`fbs-trace::model`). Streams are stable
//! for a given seed, which those modules rely on for reproducibility.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for any [`RngCore`].
pub trait Rng: RngCore {
    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample a uniform value from itself.
pub trait SampleRange<T> {
    /// Draw one uniform sample using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, span)`; `span > 0`.
/// Uses the widening-multiply trick (Lemire) to avoid modulo bias being
/// concentrated at small values.
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width inclusive range: every value is fair.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is absorbing; splitmix64 of any
            // seed cannot produce it, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=u64::MAX), b.gen_range(0u64..=u64::MAX));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-4i32..4);
            assert!((-4..4).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn all_values_of_small_range_appear() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..=u64::MAX) == b.gen_range(0u64..=u64::MAX))
            .count();
        assert_eq!(same, 0);
    }
}
