//! Quickstart: two FBS-secured hosts on a simulated 10 Mb/s Ethernet
//! segment exchange protected UDP datagrams.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Demonstrates the whole §7 pipeline end to end: certificate publication,
//! zero-message keying (no handshake packets appear on the wire!), flow
//! association over the 5-tuple, header insertion between the IP header
//! and payload, and soft-state key caching.

use fbs::crypto::dh::DhGroup;
use fbs::ip::hooks::IpMappingConfig;
use fbs::ip::host::SecureNet;
use fbs::net::segment::Impairments;

const ALICE: [u8; 4] = [192, 168, 69, 1];
const BOB: [u8; 4] = [192, 168, 69, 2];

fn main() {
    // A clean 10 Mb/s segment, like the paper's testbed. DH group 1 keeps
    // the master-key computation realistic (768-bit modexp).
    let mut net = SecureNet::new(
        42,
        Impairments::default(),
        IpMappingConfig::default(),
        DhGroup::oakley1(),
    );
    let alice_hooks = net.add_host(ALICE);
    let bob_hooks = net.add_host(BOB);

    net.host_mut(BOB).udp.bind(4242).expect("bind port");

    println!("sending 5 protected datagrams from alice to bob...");
    for i in 0..5 {
        let now = net.now_us();
        net.host_mut(ALICE)
            .udp_send(
                5000,
                BOB,
                4242,
                format!("secured datagram #{i}").as_bytes(),
                now,
            )
            .expect("send");
        net.run(20_000, 1_000); // 20 ms of virtual time
    }

    println!("\nbob received:");
    while let Some(d) = net.host_mut(BOB).udp.recv(4242) {
        println!(
            "  from {}.{}.{}.{}:{}  {:?}",
            d.src[0],
            d.src[1],
            d.src[2],
            d.src[3],
            d.src_port,
            String::from_utf8_lossy(&d.data)
        );
    }

    // The zero-message-keying story, in numbers:
    let a = alice_hooks.stats();
    let mkd = alice_hooks.mkd_stats();
    let combined = alice_hooks.combined_stats().expect("combined path");
    println!("\nalice's FBS statistics:");
    println!("  datagrams protected:        {}", a.protected);
    println!(
        "  flows started:              {} (one conversation = one flow)",
        combined.new_flows
    );
    println!(
        "  flow-key cache hits:        {} (key derived once, then cached)",
        combined.hits
    );
    println!(
        "  Diffie-Hellman exchanges:   {} message(s) on the wire for keying",
        0
    );
    println!(
        "  master key computations:    {} (amortised over every flow to bob)",
        mkd.upcalls
    );
    println!(
        "  certificate fetches:        {} ({} µs simulated RTT)",
        net.directory().stats().fetches,
        net.directory().stats().simulated_rtt_us,
    );
    println!("\nbob verified {} datagrams.", bob_hooks.stats().verified);
}
