//! Application-layer flows: the §4 claim that flows are meaningful at any
//! layer, demonstrated above the transport.
//!
//! Run with: `cargo run --example app_flows`
//!
//! A conferencing app multiplexes three media "conversations" — video,
//! audio, whiteboard — over ONE socket pair. At the IP layer all of it is
//! a single 5-tuple, so the Fig. 7 policy would make it one flow. At the
//! application layer, the app knows its own conversation structure and
//! plugs a custom policy into the FAM: each medium becomes its own flow
//! with its own key, and the whiteboard (which carries document edits) can
//! be rekeyed aggressively with a wear-out policy while video is not.

use fbs::core::policy::{IdleTimeoutPolicy, WearOutPolicy};
use fbs::core::{
    Datagram, Fam, FbsConfig, FbsEndpoint, ManualClock, MasterKeyDaemon, PinnedDirectory,
    Principal, SflAllocator,
};
use fbs::crypto::dh::{DhGroup, PrivateValue};
use std::sync::Arc;

fn endpoints(clock: &ManualClock) -> (FbsEndpoint, FbsEndpoint) {
    let group = DhGroup::oakley1();
    let a_priv = PrivateValue::from_entropy(group.clone(), b"conf-sender-entropy!");
    let b_priv = PrivateValue::from_entropy(group, b"conf-receiver-entropy");
    let sender = Principal::named("conference-sender");
    let receiver = Principal::named("conference-receiver");
    let mut da = PinnedDirectory::new();
    da.pin(receiver.clone(), b_priv.public_value());
    let mut db = PinnedDirectory::new();
    db.pin(sender.clone(), a_priv.public_value());
    (
        FbsEndpoint::new(
            sender,
            FbsConfig::default(),
            Arc::new(clock.clone()),
            0xA99,
            MasterKeyDaemon::new(a_priv, Box::new(da)),
        ),
        FbsEndpoint::new(
            receiver,
            FbsConfig::default(),
            Arc::new(clock.clone()),
            0xB99,
            MasterKeyDaemon::new(b_priv, Box::new(db)),
        ),
    )
}

fn main() {
    let clock = ManualClock::starting_at(50_000);
    let (mut tx, mut rx) = endpoints(&clock);

    // The application-layer policy: media conversations expire after 60 s
    // idle, and ANY flow is rekeyed after 64 KB or 10 minutes — a policy
    // no network-layer mapper could express, because only the app knows
    // which bytes belong to which medium.
    let policy = WearOutPolicy::new(IdleTimeoutPolicy::new(60), 64 * 1024, 600);
    let mut fam = Fam::new(32, policy, SflAllocator::new(0x515));

    let schedule: [(&str, usize, usize); 3] = [
        ("video", 40, 1200),      // 40 frames of 1200 B
        ("audio", 100, 160),      // 100 packets of 160 B
        ("whiteboard", 30, 3000), // 30 edits of 3000 B — crosses 64 KB
    ];

    let mut per_medium_sfls: Vec<(&str, Vec<u64>)> = Vec::new();
    for (medium, count, size) in schedule {
        let mut sfls = Vec::new();
        for i in 0..count {
            let body = vec![i as u8; size];
            let d = Datagram::new(
                Principal::named("conference-sender"),
                Principal::named("conference-receiver"),
                body,
            );
            let pd = tx
                .send_classified(&mut fam, medium.to_string(), d, true)
                .expect("protect");
            if !sfls.contains(&pd.header.sfl) {
                sfls.push(pd.header.sfl);
            }
            let got = rx.receive(pd).expect("verify");
            assert_eq!(got.body.len(), size);
            clock.advance(1); // one second between packets
        }
        per_medium_sfls.push((medium, sfls));
    }

    println!("one socket pair, three application conversations:\n");
    for (medium, sfls) in &per_medium_sfls {
        println!(
            "  {medium:<11} -> {} flow(s): {:?}",
            sfls.len(),
            sfls.iter().map(|s| format!("0x{s:x}")).collect::<Vec<_>>()
        );
    }
    let wb = &per_medium_sfls[2].1;
    println!(
        "\nthe whiteboard crossed the 64 KB wear-out limit and was rekeyed\n\
         {} time(s) — zero messages exchanged, the receiver just derived\n\
         each new key from the sfl in the header (§5.2's rekeying story).",
        wb.len() - 1
    );
    println!(
        "\nsender stats: {} datagrams, {} master key computation(s)",
        tx.stats().sends,
        tx.mkd_stats().upcalls
    );
}
