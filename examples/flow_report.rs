//! Flow-characteristics report: generate the campus-LAN trace, run the
//! Fig. 7 policy over it, and print the §7.3 flow statistics.
//!
//! Run with: `cargo run --release --example flow_report [-- <minutes> [threshold_secs]]`

use fbs::trace::flowsim::{elephant_share, flow_durations, flow_sizes};
use fbs::trace::stats::{mean, percentile, render_table};
use fbs::trace::{generate_campus_trace, simulate_flows, CampusConfig, FlowSimConfig};

fn main() {
    let minutes: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let threshold: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);

    println!("generating {minutes} min campus-LAN trace (seed 1997)...");
    let trace = generate_campus_trace(&CampusConfig {
        duration_secs: minutes * 60,
        ..CampusConfig::default()
    });
    let bytes: u64 = trace.iter().map(|r| r.len as u64).sum();
    println!(
        "  {} packets, {:.1} MB across {} minutes\n",
        trace.len(),
        bytes as f64 / 1e6,
        minutes
    );

    println!("running the Fig. 7 flow policy (THRESHOLD = {threshold} s)...\n");
    let result = simulate_flows(
        &trace,
        &FlowSimConfig {
            threshold_secs: threshold,
            ..FlowSimConfig::default()
        },
    );

    let (pkts, flow_bytes) = flow_sizes(&result);
    let durations = flow_durations(&result);

    let rows = vec![
        vec!["flows".into(), result.flows_started.to_string()],
        vec![
            "datagrams classified".into(),
            result.classifications.to_string(),
        ],
        vec![
            "repeated flows (same 5-tuple)".into(),
            result.repeated_flows.to_string(),
        ],
        vec![
            "median flow size (packets)".into(),
            percentile(&pkts, 50.0).to_string(),
        ],
        vec![
            "90th pct flow size (packets)".into(),
            percentile(&pkts, 90.0).to_string(),
        ],
        vec![
            "max flow size (packets)".into(),
            pkts.last().copied().unwrap_or(0).to_string(),
        ],
        vec![
            "median flow bytes".into(),
            percentile(&flow_bytes, 50.0).to_string(),
        ],
        vec![
            "mean flow duration (s)".into(),
            format!("{:.1}", mean(&durations)),
        ],
        vec![
            "median flow duration (s)".into(),
            percentile(&durations, 50.0).to_string(),
        ],
        vec![
            "byte share of top 10% flows".into(),
            format!("{:.1}%", 100.0 * elephant_share(&result, 0.10)),
        ],
        vec![
            "peak active flows (one host)".into(),
            result.per_host_max_active.to_string(),
        ],
        vec![
            "peak active flows (whole LAN)".into(),
            result
                .active_series
                .iter()
                .map(|(_, c)| *c)
                .max()
                .unwrap_or(0)
                .to_string(),
        ],
    ];
    println!("{}", render_table(&["metric", "value"], &rows));

    println!(
        "interpretation (paper §7.3): the majority of flows are short and\n\
         small — datagram semantics pay off — while a few long-lived flows\n\
         (NFS, FTP) carry the bulk of the bytes and are still captured as\n\
         single flows with one key derivation each."
    );
}
