//! Secure chat over REAL UDP sockets, demonstrating that FBS is
//! layer-independent: the same abstract protocol that runs inside the
//! simulated IP stack here runs over `std::net::UdpSocket`.
//!
//! Run a demo conversation on loopback:
//!     cargo run --example secure_chat
//!
//! Or run two interactive endpoints in separate terminals:
//!     cargo run --example secure_chat -- listen 127.0.0.1:7001
//!     cargo run --example secure_chat -- connect 127.0.0.1:7002 127.0.0.1:7001
//!
//! (The demo principals use compiled-in deterministic key material — this
//! is a protocol demonstration, not a secure messenger.)

use fbs::core::policy::IdleTimeoutPolicy;
use fbs::core::{
    Datagram, Fam, FbsConfig, FbsEndpoint, MasterKeyDaemon, PinnedDirectory, Principal,
    ProtectedDatagram, SflAllocator, SystemClock,
};
use fbs::crypto::dh::{DhGroup, PrivateValue};
use fbs::net::transport::{DatagramTransport, UdpTransport};
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

/// Both demo endpoints derive their private values from fixed entropy, so
/// two independently-started processes agree without any key exchange —
/// the zero-message-keying property, live.
fn endpoint_for(role: &str, peer_role: &str) -> FbsEndpoint {
    let group = DhGroup::oakley1();
    let my_priv = PrivateValue::from_entropy(
        group.clone(),
        format!("chat-demo-{role}-entropy-material").as_bytes(),
    );
    let peer_priv = PrivateValue::from_entropy(
        group,
        format!("chat-demo-{peer_role}-entropy-material").as_bytes(),
    );
    let mut dir = PinnedDirectory::new();
    dir.pin(Principal::named(peer_role), peer_priv.public_value());
    FbsEndpoint::new(
        Principal::named(role),
        FbsConfig::default(),
        Arc::new(SystemClock),
        std::process::id() as u64 ^ 0xC0FFEE,
        MasterKeyDaemon::new(my_priv, Box::new(dir)),
    )
}

fn send_line(
    endpoint: &mut FbsEndpoint,
    fam: &mut Fam<String, IdleTimeoutPolicy>,
    transport: &UdpTransport,
    peer_addr: &str,
    peer_role: &str,
    line: &str,
) {
    let dgram = Datagram::new(
        endpoint.local().clone(),
        Principal::named(peer_role),
        line.as_bytes().to_vec(),
    );
    let pd = endpoint
        .send_classified(fam, format!("chat:{peer_role}"), dgram, true)
        .expect("protect");
    transport
        .send_to(peer_addr, &pd.encode_payload())
        .expect("udp send");
}

fn recv_line(
    endpoint: &mut FbsEndpoint,
    transport: &UdpTransport,
    peer_role: &str,
    timeout: Duration,
) -> Option<String> {
    let (_, wire) = transport.recv_timeout(timeout).ok()??;
    let pd = ProtectedDatagram::decode_payload(
        Principal::named(peer_role),
        endpoint.local().clone(),
        &wire,
    )
    .ok()?;
    match endpoint.receive(pd) {
        Ok(d) => Some(String::from_utf8_lossy(&d.body).into_owned()),
        Err(e) => {
            eprintln!("[dropped datagram: {e}]");
            None
        }
    }
}

fn demo() {
    println!("loopback demo: alice and bob chat over real UDP\n");
    let ta = UdpTransport::bind("127.0.0.1:0").expect("bind a");
    let tb = UdpTransport::bind("127.0.0.1:0").expect("bind b");
    let (addr_a, addr_b) = (ta.local_name().to_string(), tb.local_name().to_string());

    let mut alice = endpoint_for("alice", "bob");
    let mut bob = endpoint_for("bob", "alice");
    let mut fam_a = Fam::new(32, IdleTimeoutPolicy::new(600), SflAllocator::new(1));
    let mut fam_b = Fam::new(32, IdleTimeoutPolicy::new(600), SflAllocator::new(2));

    let script = [
        (
            "alice",
            "hi bob — this datagram was DES-encrypted under a flow key",
        ),
        (
            "bob",
            "hi alice — and no key-exchange packet ever crossed the wire",
        ),
        (
            "alice",
            "the sfl in the header let you derive the key yourself",
        ),
        ("bob", "zero-message keying. neat trick for 1997."),
    ];
    for (who, line) in script {
        if who == "alice" {
            send_line(&mut alice, &mut fam_a, &ta, &addr_b, "bob", line);
            if let Some(got) = recv_line(&mut bob, &tb, "alice", Duration::from_secs(2)) {
                println!("alice -> bob: {got}");
            }
        } else {
            send_line(&mut bob, &mut fam_b, &tb, &addr_a, "alice", line);
            if let Some(got) = recv_line(&mut alice, &ta, "bob", Duration::from_secs(2)) {
                println!("bob -> alice: {got}");
            }
        }
    }
    println!(
        "\nalice sent {} datagrams, {} flow(s), {} DH computation(s)",
        alice.stats().sends,
        alice.tfkc_stats().misses(),
        alice.mkd_stats().upcalls
    );
}

fn interactive(role: &str, local: &str, peer: Option<&str>) {
    let peer_role = if role == "listen" {
        "connect"
    } else {
        "listen"
    };
    let transport = UdpTransport::bind(local).expect("bind");
    let mut endpoint = endpoint_for(role, peer_role);
    let mut fam = Fam::new(32, IdleTimeoutPolicy::new(600), SflAllocator::new(7));
    println!("bound {}; type lines to send", transport.local_name());
    let mut peer_addr = peer.map(str::to_string);

    let stdin = std::io::stdin();
    loop {
        // Drain incoming.
        while let Ok(Some((from, wire))) = transport.try_recv() {
            if let Ok(pd) = ProtectedDatagram::decode_payload(
                Principal::named(peer_role),
                endpoint.local().clone(),
                &wire,
            ) {
                match endpoint.receive(pd) {
                    Ok(d) => {
                        println!("<{peer_role}> {}", String::from_utf8_lossy(&d.body));
                        peer_addr.get_or_insert(from);
                    }
                    Err(e) => eprintln!("[rejected: {e}]"),
                }
            }
        }
        print!("> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        match &peer_addr {
            Some(addr) => send_line(&mut endpoint, &mut fam, &transport, addr, peer_role, line),
            None => println!("[no peer yet — wait for an incoming message]"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        None => demo(),
        Some("listen") => interactive(
            "listen",
            args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7001"),
            None,
        ),
        Some("connect") => {
            let local = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7002");
            let peer = args.get(3).map(String::as_str).unwrap_or("127.0.0.1:7001");
            interactive("connect", local, Some(peer))
        }
        Some(other) => eprintln!("unknown mode {other}; use: listen | connect"),
    }
}
