//! ttcp-style throughput measurement (the tool behind the paper's Fig. 8).
//!
//! Transfers a bulk payload over the mini reliable transport across the
//! simulated 10 Mb/s segment under the three protocol variants the paper
//! times:
//!
//! * `GENERIC`      — plain stack, no FBS;
//! * `FBS NOP`      — full FBS path with nullified MAC/encryption;
//! * `FBS DES+MD5`  — data confidentiality and MAC computation.
//!
//! Reports both virtual-network throughput (which the 10 Mb/s medium caps,
//! as in the paper) and host CPU time per variant.
//!
//! Run with: `cargo run --release --example ttcp [-- <megabytes>]`

use fbs::crypto::dh::DhGroup;
use fbs::ip::hooks::IpMappingConfig;
use fbs::ip::host::SecureNet;
use fbs::net::segment::Impairments;
use std::time::Instant;

const SRC: [u8; 4] = [192, 168, 69, 1];
const DST: [u8; 4] = [192, 168, 69, 2];

struct Outcome {
    virtual_kbps: f64,
    cpu_secs: f64,
    retransmissions: u64,
}

fn run_variant(cfg: Option<IpMappingConfig>, megabytes: usize) -> Outcome {
    let mut net = match cfg {
        Some(cfg) => {
            let mut n = SecureNet::new(1, Impairments::default(), cfg, DhGroup::oakley1());
            n.add_host(SRC);
            n.add_host(DST);
            n
        }
        None => {
            let mut n = SecureNet::new(
                1,
                Impairments::default(),
                IpMappingConfig::default(),
                DhGroup::oakley1(),
            );
            n.add_plain_host(SRC);
            n.add_plain_host(DST);
            n
        }
    };

    net.host_mut(DST).mrt.listen(5001);
    let key = net.host_mut(SRC).mrt.connect(2000, DST, 5001);
    net.run(300_000, 1_000);

    let data = vec![0xA5u8; megabytes * 1024 * 1024];
    net.host_mut(SRC).mrt.send(&key, &data).expect("queue data");

    let started = Instant::now();
    let t0 = net.now_us();
    let mut received = 0usize;
    while received < data.len() {
        net.run(50_000, 1_000);
        received += net
            .host_mut(DST)
            .mrt
            .recv(&(5001, SRC, 2000), usize::MAX)
            .len();
        if net.now_us() - t0 > 600_000_000 {
            eprintln!("  (transfer stalled at {received}/{} bytes)", data.len());
            break;
        }
    }
    let virtual_secs = (net.now_us() - t0) as f64 / 1e6;
    let retransmissions = net
        .host_mut(SRC)
        .mrt
        .conn(&key)
        .map(|c| c.retransmissions)
        .unwrap_or(0);
    Outcome {
        virtual_kbps: received as f64 * 8.0 / 1000.0 / virtual_secs,
        cpu_secs: started.elapsed().as_secs_f64(),
        retransmissions,
    }
}

fn main() {
    let megabytes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    println!("ttcp: {megabytes} MiB bulk transfer over a simulated 10 Mb/s segment\n");
    println!(
        "{:<14} {:>16} {:>12} {:>8}",
        "variant", "virtual kb/s", "host cpu s", "retrans"
    );

    let variants: [(&str, Option<IpMappingConfig>); 3] = [
        ("GENERIC", None),
        (
            "FBS NOP",
            Some(IpMappingConfig {
                fbs: fbs::core::FbsConfig {
                    nop_crypto: true,
                    ..fbs::core::FbsConfig::default()
                },
                encrypt: false,
                ..IpMappingConfig::default()
            }),
        ),
        (
            "FBS DES+MD5",
            Some(IpMappingConfig {
                encrypt: true,
                ..IpMappingConfig::default()
            }),
        ),
    ];
    for (name, cfg) in variants {
        let o = run_variant(cfg, megabytes);
        println!(
            "{:<14} {:>16.0} {:>12.3} {:>8}",
            name, o.virtual_kbps, o.cpu_secs, o.retransmissions
        );
    }
    println!(
        "\nThe virtual medium caps goodput near 10 Mb/s minus header overhead;\n\
         the host-CPU column shows the crypto cost separating the variants\n\
         (the paper's Pentium-133 saw 7700 → 3400 kb/s with DES+MD5).\n\
         See fbs-bench fig08_throughput for the calibrated reproduction."
    );
}
