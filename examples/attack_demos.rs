//! Attack demonstrations from the paper's analysis sections.
//!
//! Run with: `cargo run --example attack_demos`
//!
//! 1. §2.2  cut-and-paste against host-pair keying (succeeds) vs FBS
//!    (rejected);
//! 2. §6.2  replay inside vs outside the freshness window;
//! 3. §6.1  key-compromise containment: a leaked flow key exposes one
//!    flow, not the pair's other traffic;
//! 4. §7.1  the port-reuse attack and the THRESHOLD-quarantine fix.

use fbs::baselines::{HostPairService, SecureDatagramService};
use fbs::core::policy::IdleTimeoutPolicy;
use fbs::core::{
    derive_flow_key, Datagram, Fam, FbsConfig, FbsEndpoint, FbsError, KeyDerivation, ManualClock,
    MasterKeyDaemon, PinnedDirectory, Principal, SflAllocator,
};
use fbs::crypto::dh::{DhGroup, PrivateValue};
use fbs::net::ports::PortAllocator;
use std::sync::Arc;

fn endpoints() -> (FbsEndpoint, FbsEndpoint, ManualClock) {
    let group = DhGroup::oakley1();
    let a_priv = PrivateValue::from_entropy(group.clone(), b"demo-alice-entropy!!");
    let b_priv = PrivateValue::from_entropy(group, b"demo-bob-entropy!!!!");
    let alice = Principal::named("alice");
    let bob = Principal::named("bob");
    let mut dir_a = PinnedDirectory::new();
    dir_a.pin(bob.clone(), b_priv.public_value());
    let mut dir_b = PinnedDirectory::new();
    dir_b.pin(alice.clone(), a_priv.public_value());
    let clock = ManualClock::starting_at(10_000);
    let a = FbsEndpoint::new(
        alice,
        FbsConfig::default(),
        Arc::new(clock.clone()),
        1,
        MasterKeyDaemon::new(a_priv, Box::new(dir_a)),
    );
    let b = FbsEndpoint::new(
        bob,
        FbsConfig::default(),
        Arc::new(clock.clone()),
        2,
        MasterKeyDaemon::new(b_priv, Box::new(dir_b)),
    );
    (a, b, clock)
}

fn dgram(body: &[u8]) -> Datagram {
    Datagram::new(Principal::named("alice"), Principal::named("bob"), body)
}

fn demo_cut_and_paste() {
    println!("== 1. cut-and-paste (§2.2) ==");
    // Host-pair keying: one key for everything between the pair.
    let (mut hp_a, mut hp_b, a_name, b_name) =
        HostPairService::pair(&DhGroup::oakley1(), ("alice", "bob"));
    let recorded = hp_a
        .protect(&b_name, /*conversation*/ 1, b"payroll record")
        .unwrap();
    let spliced = hp_b.unprotect(&a_name, /*conversation*/ 2, &recorded);
    println!(
        "  host-pair keying: datagram recorded in conversation 1, replayed in\n\
         conversation 2 -> {}",
        match spliced {
            Ok(p) => format!(
                "ACCEPTED ({:?}) — attack succeeds",
                String::from_utf8_lossy(&p)
            ),
            Err(e) => format!("rejected ({e}) — unexpected!"),
        }
    );

    // FBS: splice flow-1 ciphertext into a flow-2 datagram.
    let (mut a, mut b, _) = endpoints();
    let pd1 = a.send(1, dgram(b"payroll record"), true).unwrap();
    let mut pd2 = a.send(2, dgram(b"weather report"), true).unwrap();
    pd2.body = pd1.body.clone();
    println!(
        "  FBS: flow-1 ciphertext spliced into a flow-2 datagram -> {}",
        match b.receive(pd2) {
            Ok(_) => "ACCEPTED — unexpected!".to_string(),
            Err(e) => format!("rejected ({e}) — per-flow keys stop the splice"),
        }
    );
}

fn demo_replay() {
    println!("\n== 2. replay (§6.2) ==");
    let (mut a, mut b, clock) = endpoints();
    let pd = a.send(1, dgram(b"transfer $100"), true).unwrap();
    let replay_now = b.receive(pd.clone());
    println!(
        "  immediate replay (inside ±2 min window): {}",
        match replay_now {
            Ok(_) =>
                "accepted — as the paper admits, in-window replay succeeds;\n\
                      higher layers must sequence",
            Err(_) => "rejected",
        }
    );
    clock.advance(10 * 60); // 10 minutes later
    println!(
        "  replay 10 minutes later: {}",
        match b.receive(pd) {
            Ok(_) => "ACCEPTED — unexpected!".to_string(),
            Err(e) => format!("rejected ({e})"),
        }
    );
}

fn demo_key_compromise_containment() {
    println!("\n== 3. key-compromise containment (§6.1) ==");
    let group = DhGroup::oakley1();
    let a_priv = PrivateValue::from_entropy(group.clone(), b"demo-alice-entropy!!");
    let b_priv = PrivateValue::from_entropy(group, b"demo-bob-entropy!!!!");
    let master = a_priv.master_key(&b_priv.public_value());
    let alice = Principal::named("alice");
    let bob = Principal::named("bob");
    let k1 = derive_flow_key(KeyDerivation::Md5, 1, &master, &alice, &bob);
    let k2 = derive_flow_key(KeyDerivation::Md5, 2, &master, &alice, &bob);
    println!(
        "  flow 1 key: {:02x?}...,  flow 2 key: {:02x?}...",
        &k1.as_bytes()[..4],
        &k2.as_bytes()[..4]
    );
    println!(
        "  K_f = H(sfl | K_SD | S | D): possessing flow 1's key gives an\n\
         attacker neither the master key (H is one-way) nor flow 2's key —\n\
         unlike host-pair keying, where the compromised key IS the master key."
    );
}

fn demo_port_reuse() {
    println!("\n== 4. port-reuse attack and fix (§7.1) ==");
    // The FAM's view: same 5-tuple within THRESHOLD = same flow.
    let mut fam = Fam::new(64, IdleTimeoutPolicy::new(600), SflAllocator::new(9));
    let victim_flow = fam.classify("tcp:10.0.0.5:3022->10.0.0.9:79".to_string(), 1_000, 64);
    // Victim exits; attacker rebinds port 3022 ten seconds later.
    let attacker_flow = fam.classify("tcp:10.0.0.5:3022->10.0.0.9:79".to_string(), 1_010, 64);
    println!(
        "  vulnerable allocator: victim flow sfl={}, attacker inherits sfl={} -> {}",
        victim_flow.sfl,
        attacker_flow.sfl,
        if victim_flow.sfl == attacker_flow.sfl {
            "SAME FLOW; recorded datagrams replayed to the attacker's socket\n\
             would be decrypted for it"
        } else {
            "different flows (unexpected)"
        }
    );
    // The fix: quarantine released ports for THRESHOLD.
    let mut fixed = PortAllocator::new(600);
    fixed.bind(3022, 1_000).unwrap();
    fixed.release(3022, 1_005);
    println!(
        "  fixed allocator (THRESHOLD quarantine): rebind at t+10s -> {:?},\n\
         rebind at t+601s -> {:?}",
        fixed.bind(3022, 1_010).err().map(|e| e.to_string()),
        fixed.bind(3022, 1_606).map(|_| "allowed"),
    );
}

fn demo_tamper() {
    println!("\n== 5. bonus: header/body tampering ==");
    let (mut a, mut b, _) = endpoints();
    let mut pd = a.send(1, dgram(b"integrity matters"), true).unwrap();
    pd.header.timestamp += 1;
    println!(
        "  timestamp nudged +1 minute: {}",
        match b.receive(pd) {
            Err(FbsError::BadMac) => "rejected (BadMac) — the MAC covers the timestamp",
            other => panic!("unexpected: {other:?}"),
        }
    );
}

fn main() {
    demo_cut_and_paste();
    demo_replay();
    demo_key_compromise_containment();
    demo_port_reuse();
    demo_tamper();
    println!("\nall demonstrations complete.");
}
