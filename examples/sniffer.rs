//! A tcpdump-style sniffer on the simulated segment — and a demonstration
//! of what FBS hides from it.
//!
//! Run with: `cargo run --example sniffer`
//!
//! The same application traffic is generated twice: once on a plain LAN
//! and once on an FBS-protected LAN. The sniffer (promiscuous capture on
//! the shared medium, like the paper's §7.3 measurement hosts) prints what
//! it can see in each case: on the plain LAN it reads ports and payloads;
//! on the FBS LAN the transport header and payload are encrypted — only
//! host-level information and the security flow label remain visible.

use fbs::core::SecurityFlowHeader;
use fbs::crypto::dh::DhGroup;
use fbs::ip::hooks::IpMappingConfig;
use fbs::ip::host::SecureNet;
use fbs::net::ip::{Packet, Proto};
use fbs::net::segment::Impairments;
use fbs::trace::capture::records_from_frames;

const ALICE: [u8; 4] = [192, 168, 69, 1];
const BOB: [u8; 4] = [192, 168, 69, 2];

fn generate_traffic(net: &mut SecureNet) {
    net.host_mut(BOB).udp.bind(4242).unwrap();
    for (i, msg) in ["wire transfer #1", "PIN is 0000", "meet at noon"]
        .iter()
        .enumerate()
    {
        let now = net.now_us();
        net.host_mut(ALICE)
            .udp_send(5000 + i as u16, BOB, 4242, msg.as_bytes(), now)
            .unwrap();
        net.run(20_000, 1_000);
    }
}

fn dump(frames: &[(u64, Vec<u8>)], fbs_protected: bool) {
    for (t, frame) in frames {
        let Ok(packet) = Packet::decode(frame) else {
            continue;
        };
        let h = &packet.header;
        print!(
            "{:>9.3}ms  {}.{}.{}.{} > {}.{}.{}.{}  proto {:>3}  len {:>4}  ",
            *t as f64 / 1000.0,
            h.src[0],
            h.src[1],
            h.src[2],
            h.src[3],
            h.dst[0],
            h.dst[1],
            h.dst[2],
            h.dst[3],
            h.proto,
            h.total_len,
        );
        if fbs_protected && Proto::from_number(h.proto) == Proto::Udp {
            match SecurityFlowHeader::decode(&packet.payload) {
                Ok((fbs_h, used)) => {
                    let body = &packet.payload[used..];
                    println!(
                        "FBS sfl=0x{:x} ts={} body={}",
                        fbs_h.sfl,
                        fbs_h.timestamp,
                        printable(body)
                    );
                }
                Err(_) => println!("(unparseable)"),
            }
        } else {
            // Plain capture: ports + payload are right there.
            if packet.payload.len() >= 8 {
                let sport = u16::from_be_bytes([packet.payload[0], packet.payload[1]]);
                let dport = u16::from_be_bytes([packet.payload[2], packet.payload[3]]);
                println!(
                    "ports {sport}->{dport} payload={}",
                    printable(&packet.payload[8..])
                );
            } else {
                println!();
            }
        }
    }
}

fn printable(data: &[u8]) -> String {
    let text: String = data
        .iter()
        .take(24)
        .map(|&b| {
            if b.is_ascii_graphic() || b == b' ' {
                b as char
            } else {
                '.'
            }
        })
        .collect();
    format!("\"{text}\"")
}

fn main() {
    println!("=== capture 1: plain LAN (no FBS) ===");
    let mut plain = SecureNet::new(
        7,
        Impairments::default(),
        IpMappingConfig::default(),
        DhGroup::oakley1(),
    );
    plain.add_plain_host(ALICE);
    plain.add_plain_host(BOB);
    plain.net.enable_capture();
    generate_traffic(&mut plain);
    let frames = plain.net.take_capture();
    dump(&frames, false);
    let records = records_from_frames(&frames);
    println!(
        "  -> the sniffer recovered {} full 5-tuple records; every payload readable\n",
        records.len()
    );

    println!("=== capture 2: FBS-protected LAN, same traffic ===");
    let mut secure = SecureNet::new(
        7,
        Impairments::default(),
        IpMappingConfig::default(),
        DhGroup::oakley1(),
    );
    secure.add_host(ALICE);
    secure.add_host(BOB);
    secure.net.enable_capture();
    generate_traffic(&mut secure);
    let frames = secure.net.take_capture();
    dump(&frames, true);
    let records = records_from_frames(&frames);
    println!(
        "  -> {} readable transport records: ports and payloads are gone;\n\
         \u{20}    only addresses and opaque flow labels remain (host-level flow\n\
         \u{20}    analysis is all an eavesdropper gets)",
        records.iter().filter(|r| r.tuple.dport == 4242).count()
    );
}
