//! `fbstrace` — command-line front end for the §7.3 trace pipeline.
//!
//! ```text
//! fbstrace gen-campus [minutes] [seed] > campus.trace
//! fbstrace gen-www    [minutes] [seed] > www.trace
//! fbstrace analyze    <file> [threshold_secs] [--metrics <path.json>]
//! fbstrace cache      <file> [slots] [--metrics <path.json>]
//! ```
//!
//! Traces are plain text, one packet per line (`t_ms proto saddr sport
//! daddr dport len`), so they pipe through standard Unix tooling.

use fbs::trace::flowsim::{
    elephant_share, flow_durations, flow_sizes, simulate_cache, CacheHash, CacheSimConfig,
};
use fbs::trace::record::{read_trace, write_trace};
use fbs::trace::stats::{mean, percentile, render_table};
use fbs::trace::{
    generate_campus_trace, generate_www_trace, simulate_flows, CampusConfig, FlowSimConfig,
    WwwConfig,
};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  fbstrace gen-campus [minutes] [seed] [--metrics <path.json>]\n  \
         fbstrace gen-www [minutes] [seed] [--metrics <path.json>]\n  \
         fbstrace analyze <file> [threshold_secs] [--metrics <path.json>]\n  \
         fbstrace cache <file> [slots] [--metrics <path.json>]"
    );
    exit(2)
}

/// The path following a `--metrics` flag, if one was given.
fn metrics_path(args: &[String]) -> Option<&String> {
    args.iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
}

/// Write a metrics snapshot as JSON to `path`.
fn write_metrics(path: &str, snap: &fbs_obs::MetricsSnapshot) {
    if let Err(e) = std::fs::write(path, snap.to_json()) {
        eprintln!("cannot write metrics to {path}: {e}");
        exit(1);
    }
    eprintln!("metrics written to {path}");
}

/// Metrics for a generated trace: packet/byte totals plus a payload
/// size histogram, exported through the same `--metrics` pipeline as
/// the analysis subcommands.
fn gen_metrics(path: &str, trace: &[fbs::trace::record::PacketRecord]) {
    let mut snap = fbs_obs::MetricsSnapshot::new();
    snap.add("trace.packets", trace.len() as u64);
    snap.add(
        "trace.bytes",
        trace.iter().map(|p| p.len as u64).sum::<u64>(),
    );
    let mut hist = fbs::trace::stats::LogHistogram::new();
    for p in trace {
        hist.add(p.len as u64);
    }
    snap.histograms
        .insert("packet_bytes".into(), hist.to_snapshot());
    write_metrics(path, &snap);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("gen-campus") => {
            let minutes: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(60);
            let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1997);
            let trace = generate_campus_trace(&CampusConfig {
                duration_secs: minutes * 60,
                seed,
                ..CampusConfig::default()
            });
            println!("# campus LAN trace: {} min, seed {}", minutes, seed);
            print!("{}", write_trace(&trace));
            if let Some(path) = metrics_path(&args) {
                gen_metrics(path, &trace);
            }
        }
        Some("gen-www") => {
            let minutes: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(60);
            let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1997);
            let trace = generate_www_trace(&WwwConfig {
                duration_secs: minutes * 60,
                seed,
                ..WwwConfig::default()
            });
            println!("# WWW server trace: {} min, seed {}", minutes, seed);
            print!("{}", write_trace(&trace));
            if let Some(path) = metrics_path(&args) {
                gen_metrics(path, &trace);
            }
        }
        Some("analyze") => {
            let Some(path) = args.get(2) else { usage() };
            let threshold: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(600);
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                exit(1)
            });
            let trace = read_trace(&text);
            if trace.is_empty() {
                eprintln!("no packet records in {path}");
                exit(1);
            }
            let result = simulate_flows(
                &trace,
                &FlowSimConfig {
                    threshold_secs: threshold,
                    ..FlowSimConfig::default()
                },
            );
            let (pkts, bytes) = flow_sizes(&result);
            let durations = flow_durations(&result);
            let rows = vec![
                vec!["packets".into(), trace.len().to_string()],
                vec!["flows".into(), result.flows_started.to_string()],
                vec!["repeated flows".into(), result.repeated_flows.to_string()],
                vec![
                    "median flow pkts".into(),
                    percentile(&pkts, 50.0).to_string(),
                ],
                vec![
                    "median flow bytes".into(),
                    percentile(&bytes, 50.0).to_string(),
                ],
                vec!["mean duration s".into(), format!("{:.1}", mean(&durations))],
                vec![
                    "top-10% byte share".into(),
                    format!("{:.1}%", 100.0 * elephant_share(&result, 0.10)),
                ],
                vec![
                    "peak active (host)".into(),
                    result.per_host_max_active.to_string(),
                ],
            ];
            println!("{}", render_table(&["metric", "value"], &rows));
            if let Some(path) = metrics_path(&args) {
                let mut snap = fbs_obs::MetricsSnapshot::new();
                result.contribute(&mut snap);
                let mut hist = fbs::trace::stats::LogHistogram::new();
                for &d in &durations {
                    hist.add(d);
                }
                snap.histograms
                    .insert("flow_duration_s".into(), hist.to_snapshot());
                write_metrics(path, &snap);
            }
        }
        Some("cache") => {
            let Some(path) = args.get(2) else { usage() };
            let slots: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(64);
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                exit(1)
            });
            let trace = read_trace(&text);
            let stats = simulate_cache(
                &trace,
                &CacheSimConfig {
                    threshold_secs: 600,
                    cache_slots: slots,
                    assoc: 1,
                    hash: CacheHash::Crc32,
                },
            );
            println!("{stats}");
            if let Some(path) = metrics_path(&args) {
                let mut snap = fbs_obs::MetricsSnapshot::new();
                stats.contribute(fbs_obs::CacheKind::Tfkc, &mut snap);
                write_metrics(path, &snap);
            }
        }
        _ => usage(),
    }
}
