//! # fbs — A Flow-Based Approach to Datagram Security
//!
//! A from-scratch Rust reproduction of **Mittra & Woo, SIGCOMM 1997**: the
//! Flow-Based Security protocol (FBS), every substrate it depends on, the
//! baseline keying paradigms it is compared against, and the full §7.3
//! evaluation pipeline.
//!
//! ## Quick start
//!
//! Protect datagrams between two principals with zero-message keying:
//!
//! ```
//! use fbs::core::{
//!     Datagram, Fam, FbsConfig, FbsEndpoint, ManualClock, MasterKeyDaemon,
//!     PinnedDirectory, Principal, SflAllocator,
//! };
//! use fbs::core::policy::IdleTimeoutPolicy;
//! use fbs::crypto::dh::{DhGroup, PrivateValue};
//! use std::sync::Arc;
//!
//! // Each principal holds a Diffie-Hellman private value; public values
//! // are distributed out of band (certificates / secure DNS — see
//! // fbs::cert for the full machinery).
//! let group = DhGroup::test_group(); // use DhGroup::oakley1() for real sizes
//! let alice_priv = PrivateValue::from_entropy(group.clone(), b"alice-entropy-123456");
//! let bob_priv = PrivateValue::from_entropy(group.clone(), b"bob-entropy-654321!!");
//! let alice = Principal::named("alice");
//! let bob = Principal::named("bob");
//!
//! let mut alice_dir = PinnedDirectory::new();
//! alice_dir.pin(bob.clone(), bob_priv.public_value());
//! let mut bob_dir = PinnedDirectory::new();
//! bob_dir.pin(alice.clone(), alice_priv.public_value());
//!
//! let clock = ManualClock::starting_at(1_000);
//! let mut tx = FbsEndpoint::new(
//!     alice.clone(), FbsConfig::default(), Arc::new(clock.clone()), 7,
//!     MasterKeyDaemon::new(alice_priv, Box::new(alice_dir)),
//! );
//! let mut rx = FbsEndpoint::new(
//!     bob.clone(), FbsConfig::default(), Arc::new(clock.clone()), 8,
//!     MasterKeyDaemon::new(bob_priv, Box::new(bob_dir)),
//! );
//!
//! // The flow association mechanism assigns security flow labels.
//! let mut fam = Fam::new(64, IdleTimeoutPolicy::new(600), SflAllocator::new(1));
//!
//! let datagram = Datagram::new(alice, bob, b"hello, flow".to_vec());
//! let protected = tx
//!     .send_classified(&mut fam, "conversation-1".to_string(), datagram, true)
//!     .unwrap();
//! let received = rx.receive(protected).unwrap();
//! assert_eq!(received.body, b"hello, flow");
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the FBS protocol: FAM, zero-message keying, soft-state caches, send/receive |
//! | [`crypto`] | DES, MD5, SHA-1, keyed MACs, Diffie-Hellman, LCG/BBS, CRC-32 |
//! | [`cert`] | certificate authority, directory service, public value cache |
//! | [`net`] | IPv4-like stack, simulated segment, UDP, mini reliable transport |
//! | [`ip`] | the §7 IP mapping: 5-tuple policy, combined FST/TFKC, stack hooks |
//! | [`baselines`] | §2 comparators: host-pair, per-datagram, KDC, negotiated sessions |
//! | [`trace`] | §7.3 workload models and flow-simulation programs |
//! | [`obs`] | metrics registry, flight-recorder event tracing, exporters |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.

#![forbid(unsafe_code)]

pub use fbs_baselines as baselines;
pub use fbs_cert as cert;
pub use fbs_core as core;
pub use fbs_crypto as crypto;
pub use fbs_ip as ip;
pub use fbs_net as net;
pub use fbs_obs as obs;
pub use fbs_trace as trace;
