//! The common interface all keying paradigms implement.

use fbs_core::{FbsError, Principal};

/// Accounting of what a keying scheme *costs*, in the §2/§7.4 vocabulary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KeyingCost {
    /// Modular exponentiations (pair master key computations / DH halves).
    pub master_key_computations: u64,
    /// Hash-based key derivations (flow keys, ticket session keys...).
    pub key_derivations: u64,
    /// Bytes drawn from a *cryptographically strong* generator (the §2.2
    /// per-datagram-key requirement; statistically-random confounder bytes
    /// are not counted — they are nearly free).
    pub strong_random_bytes: u64,
    /// Extra protocol messages exchanged purely for key setup (zero for
    /// any scheme that preserves datagram semantics).
    pub setup_messages: u64,
    /// Hard state entries currently held (security associations, tickets
    /// issued and pinned...). Soft cache entries do not count.
    pub hard_state_entries: u64,
}

/// A secure datagram service: protect on send, unprotect on receive.
///
/// `conversation` identifies the higher-level exchange a datagram belongs
/// to (what the FAM would infer from the 5-tuple); schemes that key at
/// coarser granularity ignore it, which is precisely their weakness.
pub trait SecureDatagramService {
    /// Human-readable scheme name for reports.
    fn name(&self) -> &'static str;

    /// Protect `payload` for `dst` within `conversation`; returns wire
    /// bytes.
    fn protect(
        &mut self,
        dst: &Principal,
        conversation: u64,
        payload: &[u8],
    ) -> Result<Vec<u8>, FbsError>;

    /// Verify and strip protection from `wire` received from `src` within
    /// `conversation`.
    fn unprotect(
        &mut self,
        src: &Principal,
        conversation: u64,
        wire: &[u8],
    ) -> Result<Vec<u8>, FbsError>;

    /// Accumulated keying-cost counters.
    fn cost(&self) -> KeyingCost;

    /// Does the scheme preserve datagram semantics (no setup messages, no
    /// synchronised hard state)?
    fn preserves_datagram_semantics(&self) -> bool;
}
