//! Host-pair keying with per-datagram keys (§2.2's hardened variant).
//!
//! "Instead of using the master key to directly encrypt data, the master
//! key is used to encrypt a per-datagram key, which is used to actually
//! encrypt the data." The subtlety: per-datagram keys must be
//! *cryptographically* random, or compromising one reveals its siblings —
//! and cryptographically secure generators "such as the quadratic residue
//! generator can be a performance bottleneck." Both generators are
//! provided so the bottleneck claim is measurable.

use crate::service::{KeyingCost, SecureDatagramService};
use fbs_core::{FbsError, Principal};
use fbs_crypto::dh::{DhGroup, PrivateValue, PublicValue};
use fbs_crypto::{des, keyed_digest, mac_eq, Bbs, Des, DesMode, Lcg64};
use std::collections::HashMap;

/// Where per-datagram keys come from.
pub enum KeySource {
    /// Linear congruential generator: fast but NOT cryptographically
    /// random — one captured key predicts the entire future stream (see
    /// the `lcg_keys_are_predictable` test).
    Lcg(Lcg64),
    /// Blum-Blum-Shub quadratic-residue generator: secure under factoring,
    /// and the §2.2 performance bottleneck (8 modular squarings per byte).
    Bbs(Box<Bbs>),
}

impl KeySource {
    fn next_key(&mut self, cost: &mut KeyingCost) -> [u8; 8] {
        let mut key = [0u8; 8];
        match self {
            KeySource::Lcg(g) => g.fill(&mut key),
            KeySource::Bbs(g) => {
                g.fill(&mut key);
                cost.strong_random_bytes += 8;
            }
        }
        key
    }
}

/// Host-pair keying with per-datagram keys.
pub struct PerDatagramService {
    private: PrivateValue,
    peers: HashMap<Principal, PublicValue>,
    master_keys: HashMap<Principal, Vec<u8>>,
    keys: KeySource,
    confounder: Lcg64,
    cost: KeyingCost,
}

impl PerDatagramService {
    /// Create a service drawing datagram keys from `keys`.
    pub fn new(private: PrivateValue, keys: KeySource, confounder_seed: u64) -> Self {
        PerDatagramService {
            private,
            peers: HashMap::new(),
            master_keys: HashMap::new(),
            keys,
            confounder: Lcg64::new(confounder_seed),
            cost: KeyingCost::default(),
        }
    }

    /// Make `peer`'s public value known.
    pub fn add_peer(&mut self, peer: Principal, public: PublicValue) {
        self.peers.insert(peer, public);
    }

    /// An interoperating pair using the given key sources.
    pub fn pair(
        group: &DhGroup,
        keys_a: KeySource,
        keys_b: KeySource,
    ) -> (Self, Self, Principal, Principal) {
        let a_priv = PrivateValue::from_entropy(group.clone(), b"per-dgram-alice-entropy");
        let b_priv = PrivateValue::from_entropy(group.clone(), b"per-dgram-bob-entropy!!");
        let a_name = Principal::named("alice");
        let b_name = Principal::named("bob");
        let mut a = PerDatagramService::new(a_priv.clone(), keys_a, 0xAA);
        let mut b = PerDatagramService::new(b_priv.clone(), keys_b, 0xBB);
        a.add_peer(b_name.clone(), b_priv.public_value());
        b.add_peer(a_name.clone(), a_priv.public_value());
        (a, b, a_name, b_name)
    }

    fn master_key(&mut self, peer: &Principal) -> Result<Vec<u8>, FbsError> {
        if let Some(k) = self.master_keys.get(peer) {
            return Ok(k.clone());
        }
        let public = self
            .peers
            .get(peer)
            .ok_or_else(|| FbsError::PrincipalUnknown(peer.to_string()))?;
        self.cost.master_key_computations += 1;
        let k = self.private.master_key(public);
        self.master_keys.insert(peer.clone(), k.clone());
        Ok(k)
    }
}

/// Wire: enc_dgram_key(8) | confounder(4) | plaintext_len(4) | mac(16) | ct.
const HEADER: usize = 8 + 4 + 4 + 16;

impl SecureDatagramService for PerDatagramService {
    fn name(&self) -> &'static str {
        match self.keys {
            KeySource::Lcg(_) => "per-datagram(lcg)",
            KeySource::Bbs(_) => "per-datagram(bbs)",
        }
    }

    fn protect(
        &mut self,
        dst: &Principal,
        _conversation: u64,
        payload: &[u8],
    ) -> Result<Vec<u8>, FbsError> {
        let master = self.master_key(dst)?;
        // Fresh per-datagram key, encrypted under the master key.
        let dgram_key = self.keys.next_key(&mut self.cost);
        self.cost.key_derivations += 1;
        let master_des = Des::new(&master[..8].try_into().unwrap());
        let mut enc_key = dgram_key;
        master_des.encrypt_block(&mut enc_key);

        let confounder = self.confounder.next_u32();
        let iv = ((confounder as u64) << 32) | confounder as u64;
        let mac = keyed_digest(&dgram_key, &[&confounder.to_be_bytes(), payload]);
        let des = Des::new(&dgram_key);
        let ct = des::encrypt(&des, iv, DesMode::Cbc, payload);

        let mut wire = Vec::with_capacity(HEADER + ct.len());
        wire.extend_from_slice(&enc_key);
        wire.extend_from_slice(&confounder.to_be_bytes());
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(&mac);
        wire.extend_from_slice(&ct);
        Ok(wire)
    }

    fn unprotect(
        &mut self,
        src: &Principal,
        _conversation: u64,
        wire: &[u8],
    ) -> Result<Vec<u8>, FbsError> {
        if wire.len() < HEADER {
            return Err(FbsError::MalformedHeader("short per-datagram header"));
        }
        let master = self.master_key(src)?;
        let master_des = Des::new(&master[..8].try_into().unwrap());
        let mut dgram_key: [u8; 8] = wire[0..8].try_into().unwrap();
        master_des.decrypt_block(&mut dgram_key);

        let confounder = u32::from_be_bytes(wire[8..12].try_into().unwrap());
        let len = u32::from_be_bytes(wire[12..16].try_into().unwrap()) as usize;
        let mac = &wire[16..32];
        let ct = &wire[32..];
        if !ct.len().is_multiple_of(des::BLOCK_SIZE) || len > ct.len() {
            return Err(FbsError::MalformedCiphertext);
        }
        let iv = ((confounder as u64) << 32) | confounder as u64;
        let des = Des::new(&dgram_key);
        let pt = des::decrypt(&des, iv, DesMode::Cbc, ct, len);
        let expected = keyed_digest(&dgram_key, &[&confounder.to_be_bytes(), &pt]);
        if !mac_eq(&expected, mac) {
            return Err(FbsError::BadMac);
        }
        Ok(pt)
    }

    fn cost(&self) -> KeyingCost {
        self.cost
    }

    fn preserves_datagram_semantics(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_world() -> (PerDatagramService, PerDatagramService, Principal, Principal) {
        PerDatagramService::pair(
            &DhGroup::test_group(),
            KeySource::Lcg(Lcg64::new(1)),
            KeySource::Lcg(Lcg64::new(2)),
        )
    }

    #[test]
    fn roundtrip_lcg() {
        let (mut a, mut b, a_name, b_name) = lcg_world();
        let wire = a.protect(&b_name, 1, b"per-datagram keyed").unwrap();
        assert_eq!(
            b.unprotect(&a_name, 1, &wire).unwrap(),
            b"per-datagram keyed"
        );
    }

    #[test]
    fn roundtrip_bbs() {
        let (mut a, mut b, a_name, b_name) = PerDatagramService::pair(
            &DhGroup::test_group(),
            KeySource::Bbs(Box::new(Bbs::with_default_modulus(b"seed-a"))),
            KeySource::Bbs(Box::new(Bbs::with_default_modulus(b"seed-b"))),
        );
        let wire = a.protect(&b_name, 1, b"expensive but strong").unwrap();
        assert_eq!(
            b.unprotect(&a_name, 1, &wire).unwrap(),
            b"expensive but strong"
        );
        assert_eq!(a.cost().strong_random_bytes, 8);
    }

    #[test]
    fn every_datagram_gets_a_fresh_key() {
        let (mut a, _, _, b_name) = lcg_world();
        let w1 = a.protect(&b_name, 1, b"same payload").unwrap();
        let w2 = a.protect(&b_name, 1, b"same payload").unwrap();
        assert_ne!(w1[0..8], w2[0..8], "encrypted datagram keys differ");
        assert_eq!(a.cost().key_derivations, 2);
    }

    #[test]
    fn lcg_keys_are_predictable() {
        // The §2.2 subtlety: with an LCG, one compromised datagram key
        // reveals all future keys — the attacker just runs the recurrence.
        let mut victim = Lcg64::new(0xFEED);
        let mut k1 = [0u8; 8];
        victim.fill(&mut k1); // "compromised" key
        let mut attacker = Lcg64::new(u64::from_be_bytes(k1)); // state = output
        let mut k2_victim = [0u8; 8];
        victim.fill(&mut k2_victim);
        let mut k2_attacker = [0u8; 8];
        attacker.fill(&mut k2_attacker);
        assert_eq!(k2_victim, k2_attacker, "LCG future keys predicted");
    }

    #[test]
    fn tampered_key_field_detected() {
        let (mut a, mut b, a_name, b_name) = lcg_world();
        let mut wire = a.protect(&b_name, 1, b"payload").unwrap();
        wire[0] ^= 1; // corrupt the encrypted datagram key
        assert_eq!(b.unprotect(&a_name, 1, &wire), Err(FbsError::BadMac));
    }

    #[test]
    fn cut_and_paste_still_succeeds_across_conversations() {
        // Per-datagram keys fix key wear-out, NOT conversation binding:
        // the scheme still ignores `conversation`.
        let (mut a, mut b, a_name, b_name) = lcg_world();
        let wire = a.protect(&b_name, 1, b"secret").unwrap();
        assert!(b.unprotect(&a_name, 99, &wire).is_ok());
    }
}
