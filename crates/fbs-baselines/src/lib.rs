//! # fbs-baselines — the keying paradigms FBS is compared against
//!
//! §2 of the paper classifies existing datagram-security approaches into
//! **session-based keying** (KDC-mediated like Kerberos/Sun RPC/DCE, or
//! negotiated like Photuris/Oakley) and **host-pair keying** (implicit
//! pair master keys, like SKIP), optionally hardened with per-datagram
//! keys. §7.4 compares FBS with SKIP on keying granularity and cost.
//!
//! Every baseline implements the common [`SecureDatagramService`] trait so
//! experiments can sweep paradigms over identical workloads, and exposes
//! [`KeyingCost`] counters (master-key computations, key derivations,
//! setup messages, hard state, cryptographically-strong random bytes) that
//! quantify the §2/§7.4 trade-offs:
//!
//! | scheme | datagram semantics | unit of protection | known weakness |
//! |---|---|---|---|
//! | [`host_pair`] | yes | host pair | cut-and-paste across flows; master key exposed by traffic analysis of its direct use |
//! | [`per_datagram`] | yes | datagram | needs cryptographically random per-datagram keys (BBS bottleneck) |
//! | [`session_kdc`] | no (KDC round trip) | session | hard state, third party |
//! | [`session_exchange`] | no (setup RTTs) | session | hard state, setup latency |
//! | FBS ([`fbs_service`]) | yes | **flow** | replay inside freshness window |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fbs_service;
pub mod host_pair;
pub mod per_datagram;
pub mod service;
pub mod session_exchange;
pub mod session_kdc;

pub use fbs_service::FbsService;
pub use host_pair::HostPairService;
pub use per_datagram::{KeySource, PerDatagramService};
pub use service::{KeyingCost, SecureDatagramService};
pub use session_exchange::SessionExchangeService;
pub use session_kdc::{Kdc, SessionKdcService};
