//! KDC-mediated session keying (§2.1) — the Kerberos/Sun-RPC/DCE paradigm.
//!
//! Before sending, the source contacts the key distribution centre for a
//! session key and a *ticket* (the session key sealed under the
//! destination's KDC secret). Each datagram then carries the ticket; the
//! destination unseals it to recover the session key. The KDC round trip
//! breaks datagram semantics, and both the KDC relationship and the cached
//! tickets are hard state.

use crate::service::{KeyingCost, SecureDatagramService};
use fbs_core::{FbsError, Principal};
use fbs_crypto::{des, keyed_digest, mac_eq, md5, Des, DesMode, Lcg64};
use parking_lot_free_cell::SharedKdc;
use std::collections::HashMap;

/// A trivially small "RefCell over Rc" alias so one KDC can serve many
/// services in tests without threading machinery.
mod parking_lot_free_cell {
    use super::Kdc;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Shared handle to a KDC.
    pub type SharedKdc = Rc<RefCell<Kdc>>;
}

/// The key distribution centre: shares a secret with every principal.
pub struct Kdc {
    secrets: HashMap<Principal, [u8; 16]>,
    session_rng: Lcg64,
    /// Ticket lifetime in abstract time units.
    pub ticket_lifetime: u64,
    /// Tickets issued.
    pub tickets_issued: u64,
}

/// A ticket: the session key + metadata sealed under the destination's
/// KDC secret.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ticket {
    /// Sealed bytes (DES-CBC under the destination's KDC secret).
    pub sealed: Vec<u8>,
}

impl Kdc {
    /// A KDC with the given ticket lifetime.
    pub fn new(seed: u64, ticket_lifetime: u64) -> SharedKdc {
        std::rc::Rc::new(std::cell::RefCell::new(Kdc {
            secrets: HashMap::new(),
            session_rng: Lcg64::new(seed),
            ticket_lifetime,
            tickets_issued: 0,
        }))
    }

    /// Register a principal (out-of-band enrolment).
    pub fn enroll(&mut self, principal: Principal, secret: [u8; 16]) {
        self.secrets.insert(principal, secret);
    }

    /// Issue `(session_key, ticket)` for `src` to talk to `dst` at `now`.
    pub fn request(
        &mut self,
        src: &Principal,
        dst: &Principal,
        now: u64,
    ) -> Result<([u8; 16], Ticket), FbsError> {
        if !self.secrets.contains_key(src) {
            return Err(FbsError::PrincipalUnknown(src.to_string()));
        }
        let dst_secret = self
            .secrets
            .get(dst)
            .ok_or_else(|| FbsError::PrincipalUnknown(dst.to_string()))?;
        self.tickets_issued += 1;
        let mut key_material = [0u8; 16];
        self.session_rng.fill(&mut key_material);
        // Strengthen the LCG output through a hash (a real KDC would use a
        // strong RNG; the simulation keeps determinism).
        let session_key = md5(&key_material);

        // Plaintext ticket body: src_len | src | session_key | expiry.
        let mut body = Vec::new();
        body.extend_from_slice(&(src.len() as u32).to_be_bytes());
        body.extend_from_slice(src.as_bytes());
        body.extend_from_slice(&session_key);
        body.extend_from_slice(&(now + self.ticket_lifetime).to_be_bytes());
        // Integrity tag inside the sealed body.
        let tag = keyed_digest(dst_secret, &[&body]);
        body.extend_from_slice(&tag);

        let des = Des::new(&dst_secret[..8].try_into().unwrap());
        let mut sealed = (body.len() as u32).to_be_bytes().to_vec();
        sealed.extend_from_slice(&des::encrypt(&des, 0, DesMode::Cbc, &body));
        Ok((session_key, Ticket { sealed }))
    }

    /// Destination-side: unseal a ticket with own secret, verifying
    /// integrity and expiry.
    pub fn unseal(
        secret: &[u8; 16],
        ticket: &Ticket,
        now: u64,
    ) -> Result<(Principal, [u8; 16]), FbsError> {
        if ticket.sealed.len() < 4 {
            return Err(FbsError::MalformedHeader("short ticket"));
        }
        let body_len = u32::from_be_bytes(ticket.sealed[0..4].try_into().unwrap()) as usize;
        let ct = &ticket.sealed[4..];
        if !ct.len().is_multiple_of(des::BLOCK_SIZE) || body_len > ct.len() {
            return Err(FbsError::MalformedCiphertext);
        }
        let des = Des::new(&secret[..8].try_into().unwrap());
        let body = des::decrypt(&des, 0, DesMode::Cbc, ct, body_len);
        if body.len() < 4 + 16 + 8 + 16 {
            return Err(FbsError::MalformedHeader("short ticket body"));
        }
        let (content, tag) = body.split_at(body.len() - 16);
        if !mac_eq(&keyed_digest(secret, &[content]), tag) {
            return Err(FbsError::CertificateInvalid("ticket forged".into()));
        }
        let src_len = u32::from_be_bytes(content[0..4].try_into().unwrap()) as usize;
        if content.len() != 4 + src_len + 16 + 8 {
            return Err(FbsError::MalformedHeader("ticket body layout"));
        }
        let src = Principal::from_bytes(content[4..4 + src_len].to_vec());
        let session_key: [u8; 16] = content[4 + src_len..4 + src_len + 16].try_into().unwrap();
        let expiry = u64::from_be_bytes(content[4 + src_len + 16..].try_into().unwrap());
        if now > expiry {
            return Err(FbsError::StaleTimestamp {
                datagram_minutes: expiry as u32,
                now_minutes: now as u32,
                window_minutes: 0,
            });
        }
        Ok((src, session_key))
    }
}

/// The KDC-based service for one principal.
pub struct SessionKdcService {
    local: Principal,
    secret: [u8; 16],
    kdc: SharedKdc,
    /// Cached (session key, ticket) per destination: HARD state.
    sessions: HashMap<Principal, ([u8; 16], Ticket)>,
    confounder: Lcg64,
    /// Simple local clock the tests can advance.
    pub now: u64,
    cost: KeyingCost,
}

impl SessionKdcService {
    /// Enrol `local` with the KDC and create its service.
    pub fn new(local: Principal, secret: [u8; 16], kdc: SharedKdc, seed: u64) -> Self {
        kdc.borrow_mut().enroll(local.clone(), secret);
        SessionKdcService {
            local,
            secret,
            kdc,
            sessions: HashMap::new(),
            confounder: Lcg64::new(seed),
            now: 0,
            cost: KeyingCost::default(),
        }
    }
}

/// Wire: ticket_len(4) | ticket | confounder(4) | plaintext_len(4) |
/// mac(16) | ciphertext.
impl SecureDatagramService for SessionKdcService {
    fn name(&self) -> &'static str {
        "session-kdc"
    }

    fn protect(
        &mut self,
        dst: &Principal,
        _conversation: u64,
        payload: &[u8],
    ) -> Result<Vec<u8>, FbsError> {
        let now = self.now;
        if !self.sessions.contains_key(dst) {
            // The KDC round trip: 2 messages that break datagram semantics.
            self.cost.setup_messages += 2;
            let (key, ticket) = self.kdc.borrow_mut().request(&self.local, dst, now)?;
            self.sessions.insert(dst.clone(), (key, ticket));
            self.cost.hard_state_entries += 1;
        }
        let (key, ticket) = self.sessions.get(dst).unwrap().clone();
        let confounder = self.confounder.next_u32();
        let iv = ((confounder as u64) << 32) | confounder as u64;
        let mac = keyed_digest(&key, &[&confounder.to_be_bytes(), payload]);
        let des = Des::new(&key[..8].try_into().unwrap());
        let ct = des::encrypt(&des, iv, DesMode::Cbc, payload);

        let mut wire = Vec::new();
        wire.extend_from_slice(&(ticket.sealed.len() as u32).to_be_bytes());
        wire.extend_from_slice(&ticket.sealed);
        wire.extend_from_slice(&confounder.to_be_bytes());
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(&mac);
        wire.extend_from_slice(&ct);
        Ok(wire)
    }

    fn unprotect(
        &mut self,
        src: &Principal,
        _conversation: u64,
        wire: &[u8],
    ) -> Result<Vec<u8>, FbsError> {
        if wire.len() < 4 {
            return Err(FbsError::MalformedHeader("short KDC wire"));
        }
        let tlen = u32::from_be_bytes(wire[0..4].try_into().unwrap()) as usize;
        if wire.len() < 4 + tlen + 24 {
            return Err(FbsError::MalformedHeader("truncated KDC wire"));
        }
        let ticket = Ticket {
            sealed: wire[4..4 + tlen].to_vec(),
        };
        let (claimed_src, key) = Kdc::unseal(&self.secret, &ticket, self.now)?;
        if &claimed_src != src {
            return Err(FbsError::BadMac); // ticket for a different source
        }
        let rest = &wire[4 + tlen..];
        let confounder = u32::from_be_bytes(rest[0..4].try_into().unwrap());
        let len = u32::from_be_bytes(rest[4..8].try_into().unwrap()) as usize;
        let mac = &rest[8..24];
        let ct = &rest[24..];
        if !ct.len().is_multiple_of(des::BLOCK_SIZE) || len > ct.len() {
            return Err(FbsError::MalformedCiphertext);
        }
        let iv = ((confounder as u64) << 32) | confounder as u64;
        let des = Des::new(&key[..8].try_into().unwrap());
        let pt = des::decrypt(&des, iv, DesMode::Cbc, ct, len);
        let expected = keyed_digest(&key, &[&confounder.to_be_bytes(), &pt]);
        if !mac_eq(&expected, mac) {
            return Err(FbsError::BadMac);
        }
        Ok(pt)
    }

    fn cost(&self) -> KeyingCost {
        self.cost
    }

    fn preserves_datagram_semantics(&self) -> bool {
        false // KDC round trip before first datagram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (SessionKdcService, SessionKdcService, Principal, Principal) {
        let kdc = Kdc::new(77, 1_000);
        let a_name = Principal::named("alice");
        let b_name = Principal::named("bob");
        let a = SessionKdcService::new(a_name.clone(), [0xAA; 16], kdc.clone(), 1);
        let b = SessionKdcService::new(b_name.clone(), [0xBB; 16], kdc, 2);
        (a, b, a_name, b_name)
    }

    #[test]
    fn roundtrip_with_ticket() {
        let (mut a, mut b, a_name, b_name) = world();
        let wire = a.protect(&b_name, 1, b"kerberised payload").unwrap();
        assert_eq!(
            b.unprotect(&a_name, 1, &wire).unwrap(),
            b"kerberised payload"
        );
    }

    #[test]
    fn kdc_contacted_once_per_destination() {
        let (mut a, _, _, b_name) = world();
        for _ in 0..5 {
            a.protect(&b_name, 1, b"x").unwrap();
        }
        assert_eq!(a.cost().setup_messages, 2, "one KDC round trip");
        assert_eq!(a.cost().hard_state_entries, 1);
        assert!(!a.preserves_datagram_semantics());
    }

    #[test]
    fn expired_ticket_rejected() {
        let (mut a, mut b, a_name, b_name) = world();
        let wire = a.protect(&b_name, 1, b"old").unwrap();
        b.now = 5_000; // past the 1_000-unit lifetime
        assert!(matches!(
            b.unprotect(&a_name, 1, &wire),
            Err(FbsError::StaleTimestamp { .. })
        ));
    }

    #[test]
    fn forged_ticket_rejected() {
        let (mut a, mut b, a_name, b_name) = world();
        let mut wire = a.protect(&b_name, 1, b"payload").unwrap();
        wire[10] ^= 1; // inside the sealed ticket
        assert!(b.unprotect(&a_name, 1, &wire).is_err());
    }

    #[test]
    fn ticket_bound_to_source() {
        // Bob cannot replay Alice's ticket claiming it came from Carol.
        let kdc = Kdc::new(77, 1_000);
        let a_name = Principal::named("alice");
        let b_name = Principal::named("bob");
        let c_name = Principal::named("carol");
        let mut a = SessionKdcService::new(a_name.clone(), [0xAA; 16], kdc.clone(), 1);
        let mut b = SessionKdcService::new(b_name.clone(), [0xBB; 16], kdc.clone(), 2);
        let _c = SessionKdcService::new(c_name.clone(), [0xCC; 16], kdc, 3);
        let wire = a.protect(&b_name, 1, b"from alice").unwrap();
        assert_eq!(b.unprotect(&c_name, 1, &wire), Err(FbsError::BadMac));
    }

    #[test]
    fn unknown_destination_fails_at_kdc() {
        let (mut a, _, _, _) = world();
        assert!(matches!(
            a.protect(&Principal::named("stranger"), 1, b"x"),
            Err(FbsError::PrincipalUnknown(_))
        ));
    }
}
