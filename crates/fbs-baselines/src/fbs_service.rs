//! FBS itself behind the common baseline interface, so paradigm sweeps
//! can include the paper's protocol on identical terms.

use crate::service::{KeyingCost, SecureDatagramService};
use fbs_core::policy::IdleTimeoutPolicy;
use fbs_core::{
    Clock, Datagram, Fam, FbsConfig, FbsEndpoint, FbsError, ManualClock, MasterKeyDaemon,
    PinnedDirectory, Principal, ProtectedDatagram, SflAllocator,
};
use fbs_crypto::dh::{DhGroup, PrivateValue};
use std::sync::Arc;

/// FBS as a [`SecureDatagramService`]: the FAM keys on
/// `(destination, conversation)` with an idle-timeout policy, so each
/// conversation gets its own flow — the granularity neither host-pair nor
/// per-datagram keying can offer.
pub struct FbsService {
    local: Principal,
    endpoint: FbsEndpoint,
    fam: Fam<Vec<u8>, IdleTimeoutPolicy>,
    clock: ManualClock,
}

impl FbsService {
    /// Create a service. `directory` must hold peers' public values.
    pub fn new(
        local: Principal,
        private: PrivateValue,
        directory: PinnedDirectory,
        clock: ManualClock,
        seed: u64,
    ) -> Self {
        let endpoint = FbsEndpoint::new(
            local.clone(),
            FbsConfig::default(),
            Arc::new(clock.clone()),
            seed,
            MasterKeyDaemon::new(private, Box::new(directory)),
        );
        FbsService {
            local,
            endpoint,
            fam: Fam::new(256, IdleTimeoutPolicy::new(600), SflAllocator::new(seed)),
            clock,
        }
    }

    /// An interoperating pair sharing a manual clock.
    pub fn pair(group: &DhGroup) -> (Self, Self, Principal, Principal, ManualClock) {
        let clock = ManualClock::starting_at(0);
        let a_priv = PrivateValue::from_entropy(group.clone(), b"fbs-svc-alice-entropy");
        let b_priv = PrivateValue::from_entropy(group.clone(), b"fbs-svc-bob-entropy!!");
        let a_name = Principal::named("alice");
        let b_name = Principal::named("bob");
        let mut dir_a = PinnedDirectory::new();
        dir_a.pin(b_name.clone(), b_priv.public_value());
        let mut dir_b = PinnedDirectory::new();
        dir_b.pin(a_name.clone(), a_priv.public_value());
        let a = FbsService::new(a_name.clone(), a_priv, dir_a, clock.clone(), 0x1234);
        let b = FbsService::new(b_name.clone(), b_priv, dir_b, clock.clone(), 0x5678);
        (a, b, a_name, b_name, clock)
    }

    fn attrs(dst: &Principal, conversation: u64) -> Vec<u8> {
        let mut a = dst.as_bytes().to_vec();
        a.extend_from_slice(&conversation.to_be_bytes());
        a
    }
}

impl SecureDatagramService for FbsService {
    fn name(&self) -> &'static str {
        "fbs"
    }

    fn protect(
        &mut self,
        dst: &Principal,
        conversation: u64,
        payload: &[u8],
    ) -> Result<Vec<u8>, FbsError> {
        let class = self.fam.classify(
            Self::attrs(dst, conversation),
            self.clock.now_secs(),
            payload.len() as u64,
        );
        let pd = self.endpoint.send(
            class.sfl,
            Datagram::new(self.local.clone(), dst.clone(), payload.to_vec()),
            true,
        )?;
        Ok(pd.encode_payload())
    }

    fn unprotect(
        &mut self,
        src: &Principal,
        _conversation: u64,
        wire: &[u8],
    ) -> Result<Vec<u8>, FbsError> {
        let pd = ProtectedDatagram::decode_payload(src.clone(), self.local.clone(), wire)?;
        Ok(self.endpoint.receive(pd)?.body)
    }

    fn cost(&self) -> KeyingCost {
        KeyingCost {
            master_key_computations: self.endpoint.mkd_stats().upcalls,
            key_derivations: self.endpoint.tfkc_stats().misses()
                + self.endpoint.rfkc_stats().misses(),
            strong_random_bytes: 0,
            setup_messages: 0,
            hard_state_entries: 0,
        }
    }

    fn preserves_datagram_semantics(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (FbsService, FbsService, Principal, Principal, ManualClock) {
        FbsService::pair(&DhGroup::test_group())
    }

    #[test]
    fn roundtrip() {
        let (mut a, mut b, a_name, b_name, _) = world();
        let wire = a.protect(&b_name, 1, b"flow-keyed payload").unwrap();
        assert_eq!(
            b.unprotect(&a_name, 1, &wire).unwrap(),
            b"flow-keyed payload"
        );
    }

    #[test]
    fn zero_setup_messages_and_no_hard_state() {
        let (mut a, mut b, a_name, b_name, _) = world();
        for conv in 0..5 {
            for _ in 0..3 {
                let w = a.protect(&b_name, conv, b"data").unwrap();
                b.unprotect(&a_name, conv, &w).unwrap();
            }
        }
        let c = a.cost();
        assert_eq!(c.setup_messages, 0);
        assert_eq!(c.hard_state_entries, 0);
        assert_eq!(c.master_key_computations, 1, "one DH per pair");
        assert_eq!(c.key_derivations, 5, "one per flow, not per datagram");
        assert!(a.preserves_datagram_semantics());
    }

    #[test]
    fn cut_and_paste_across_conversations_rejected() {
        // What distinguishes FBS from the host-pair baselines: each
        // conversation has its own flow key, so splicing fails.
        let (mut a, mut b, a_name, b_name, _) = world();
        // Establish conversation 2's flow so the receiver has its key.
        let w2 = a.protect(&b_name, 2, b"conv-2 traffic").unwrap();
        b.unprotect(&a_name, 2, &w2).unwrap();
        // Record conversation 1 traffic, replay into conversation 2.
        let w1 = a.protect(&b_name, 1, b"conv-1 secret").unwrap();
        // The sfl travels in the header, so the receiver derives conv-1's
        // key and the datagram decrypts — but it is still bound to ITS OWN
        // flow, not conv 2: the attack in §2.2 is about splicing payloads
        // into *other* protected datagrams, which the per-flow MAC stops.
        let mut spliced = w2.clone();
        // Graft conv-1's ciphertext body into conv-2's datagram.
        spliced.truncate(40); // keep conv-2's header
        spliced.extend_from_slice(&w1[40..]);
        assert_eq!(
            b.unprotect(&a_name, 2, &spliced),
            Err(FbsError::BadMac),
            "cross-flow splice must fail MAC verification"
        );
    }

    #[test]
    fn conversations_map_to_distinct_flows() {
        let (mut a, _, _, b_name, _) = world();
        a.protect(&b_name, 1, b"x").unwrap();
        a.protect(&b_name, 2, b"x").unwrap();
        assert_eq!(a.cost().key_derivations, 2);
        a.protect(&b_name, 1, b"x").unwrap();
        assert_eq!(a.cost().key_derivations, 2, "flow key reused");
    }
}
