//! Negotiated session keying (§2.1) — the Photuris/Oakley paradigm.
//!
//! Before data flows, the two principals run a key-exchange handshake
//! (modelled on Photuris: a cookie round trip followed by a Diffie-Hellman
//! value exchange — two round trips, four messages) and install a hard
//! security association at both ends. In return they get strict sequencing
//! and therefore *perfect* replay protection — the efficiency/semantics
//! trade the paper declines.

use crate::service::{KeyingCost, SecureDatagramService};
use fbs_core::{FbsError, Principal};
use fbs_crypto::dh::{DhGroup, PrivateValue, PublicValue};
use fbs_crypto::md5::Md5;
use fbs_crypto::{des, keyed_digest, mac_eq, Des, DesMode, Lcg64};
use std::collections::HashMap;

struct Association {
    session_key: [u8; 16],
    /// Next sequence number to send.
    send_seq: u64,
    /// Highest sequence accepted (strict monotone replay check).
    recv_seq: u64,
}

/// Negotiated-session service for one principal.
pub struct SessionExchangeService {
    private: PrivateValue,
    peers: HashMap<Principal, PublicValue>,
    associations: HashMap<Principal, Association>,
    confounder: Lcg64,
    cost: KeyingCost,
}

impl SessionExchangeService {
    /// Create the service.
    pub fn new(private: PrivateValue, seed: u64) -> Self {
        SessionExchangeService {
            private,
            peers: HashMap::new(),
            associations: HashMap::new(),
            confounder: Lcg64::new(seed),
            cost: KeyingCost::default(),
        }
    }

    /// Make `peer`'s public value known (stands in for the in-handshake
    /// value exchange; the handshake cost is charged when the association
    /// is established).
    pub fn add_peer(&mut self, peer: Principal, public: PublicValue) {
        self.peers.insert(peer, public);
    }

    /// An interoperating pair.
    pub fn pair(group: &DhGroup) -> (Self, Self, Principal, Principal) {
        let a_priv = PrivateValue::from_entropy(group.clone(), b"photuris-alice-entropy");
        let b_priv = PrivateValue::from_entropy(group.clone(), b"photuris-bob-entropy!!");
        let a_name = Principal::named("alice");
        let b_name = Principal::named("bob");
        let mut a = SessionExchangeService::new(a_priv.clone(), 11);
        let mut b = SessionExchangeService::new(b_priv.clone(), 22);
        a.add_peer(b_name.clone(), b_priv.public_value());
        b.add_peer(a_name.clone(), a_priv.public_value());
        (a, b, a_name, b_name)
    }

    /// Establish (or fetch) the security association with `peer`.
    fn association(&mut self, peer: &Principal) -> Result<&mut Association, FbsError> {
        if !self.associations.contains_key(peer) {
            let public = self
                .peers
                .get(peer)
                .ok_or_else(|| FbsError::PrincipalUnknown(peer.to_string()))?;
            // The handshake: cookie exchange + value exchange = 4 messages,
            // one modular exponentiation locally.
            self.cost.setup_messages += 4;
            self.cost.master_key_computations += 1;
            self.cost.key_derivations += 1;
            self.cost.hard_state_entries += 1;
            let shared = self.private.master_key(public);
            let mut h = Md5::new();
            h.update(&shared);
            h.update(b"photuris-session-key");
            self.associations.insert(
                peer.clone(),
                Association {
                    session_key: h.finalize(),
                    send_seq: 1,
                    recv_seq: 0,
                },
            );
        }
        Ok(self.associations.get_mut(peer).unwrap())
    }
}

/// Wire: seq(8) | confounder(4) | plaintext_len(4) | mac(16) | ciphertext.
const HEADER: usize = 8 + 4 + 4 + 16;

impl SecureDatagramService for SessionExchangeService {
    fn name(&self) -> &'static str {
        "session-exchange"
    }

    fn protect(
        &mut self,
        dst: &Principal,
        _conversation: u64,
        payload: &[u8],
    ) -> Result<Vec<u8>, FbsError> {
        let confounder = self.confounder.next_u32();
        let assoc = self.association(dst)?;
        let seq = assoc.send_seq;
        assoc.send_seq += 1;
        let key = assoc.session_key;

        let iv = ((confounder as u64) << 32) | confounder as u64;
        let mac = keyed_digest(
            &key,
            &[&seq.to_be_bytes(), &confounder.to_be_bytes(), payload],
        );
        let des = Des::new(&key[..8].try_into().unwrap());
        let ct = des::encrypt(&des, iv, DesMode::Cbc, payload);

        let mut wire = Vec::with_capacity(HEADER + ct.len());
        wire.extend_from_slice(&seq.to_be_bytes());
        wire.extend_from_slice(&confounder.to_be_bytes());
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(&mac);
        wire.extend_from_slice(&ct);
        Ok(wire)
    }

    fn unprotect(
        &mut self,
        src: &Principal,
        _conversation: u64,
        wire: &[u8],
    ) -> Result<Vec<u8>, FbsError> {
        if wire.len() < HEADER {
            return Err(FbsError::MalformedHeader("short session wire"));
        }
        let assoc = self.association(src)?;
        let key = assoc.session_key;
        let seq = u64::from_be_bytes(wire[0..8].try_into().unwrap());
        let confounder = u32::from_be_bytes(wire[8..12].try_into().unwrap());
        let len = u32::from_be_bytes(wire[12..16].try_into().unwrap()) as usize;
        let mac = &wire[16..32];
        let ct = &wire[32..];
        if !ct.len().is_multiple_of(des::BLOCK_SIZE) || len > ct.len() {
            return Err(FbsError::MalformedCiphertext);
        }
        let iv = ((confounder as u64) << 32) | confounder as u64;
        let des = Des::new(&key[..8].try_into().unwrap());
        let pt = des::decrypt(&des, iv, DesMode::Cbc, ct, len);
        let expected = keyed_digest(&key, &[&seq.to_be_bytes(), &confounder.to_be_bytes(), &pt]);
        if !mac_eq(&expected, mac) {
            return Err(FbsError::BadMac);
        }
        // Hard-state sequencing: strict monotone ⇒ perfect replay
        // rejection (what FBS's stateless window cannot give, §6.2).
        let assoc = self.associations.get_mut(src).unwrap();
        if seq <= assoc.recv_seq {
            return Err(FbsError::StaleTimestamp {
                datagram_minutes: seq as u32,
                now_minutes: assoc.recv_seq as u32,
                window_minutes: 0,
            });
        }
        assoc.recv_seq = seq;
        Ok(pt)
    }

    fn cost(&self) -> KeyingCost {
        self.cost
    }

    fn preserves_datagram_semantics(&self) -> bool {
        false // setup round trips + synchronised hard state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (
        SessionExchangeService,
        SessionExchangeService,
        Principal,
        Principal,
    ) {
        SessionExchangeService::pair(&DhGroup::test_group())
    }

    #[test]
    fn roundtrip() {
        let (mut a, mut b, a_name, b_name) = world();
        let wire = a.protect(&b_name, 1, b"negotiated payload").unwrap();
        assert_eq!(
            b.unprotect(&a_name, 1, &wire).unwrap(),
            b"negotiated payload"
        );
    }

    #[test]
    fn handshake_cost_charged_once() {
        let (mut a, _, _, b_name) = world();
        for _ in 0..10 {
            a.protect(&b_name, 1, b"x").unwrap();
        }
        let c = a.cost();
        assert_eq!(c.setup_messages, 4, "2-RTT handshake");
        assert_eq!(c.master_key_computations, 1);
        assert_eq!(c.hard_state_entries, 1);
        assert!(!a.preserves_datagram_semantics());
    }

    #[test]
    fn replay_rejected_perfectly() {
        // The hard-state payoff: exact duplicate detection, unlike FBS's
        // freshness window (where in-window replays succeed).
        let (mut a, mut b, a_name, b_name) = world();
        let wire = a.protect(&b_name, 1, b"once only").unwrap();
        assert!(b.unprotect(&a_name, 1, &wire).is_ok());
        assert!(matches!(
            b.unprotect(&a_name, 1, &wire),
            Err(FbsError::StaleTimestamp { .. })
        ));
    }

    #[test]
    fn reordering_is_rejected_by_strict_sequencing() {
        // The flip side of perfect replay protection over datagrams:
        // legitimate reordering is also dropped — session semantics leak
        // into the datagram service.
        let (mut a, mut b, a_name, b_name) = world();
        let w1 = a.protect(&b_name, 1, b"first").unwrap();
        let w2 = a.protect(&b_name, 1, b"second").unwrap();
        assert!(b.unprotect(&a_name, 1, &w2).is_ok());
        assert!(b.unprotect(&a_name, 1, &w1).is_err());
    }

    #[test]
    fn tampering_detected() {
        let (mut a, mut b, a_name, b_name) = world();
        let mut wire = a.protect(&b_name, 1, b"payload").unwrap();
        let n = wire.len();
        wire[n - 1] ^= 0x40;
        assert_eq!(b.unprotect(&a_name, 1, &wire), Err(FbsError::BadMac));
    }
}
