//! Host-pair keying (§2.2) — the SKIP-style baseline.
//!
//! Each pair of hosts shares an implicit Diffie-Hellman master key that
//! exists a priori, so datagram semantics are preserved: no setup, no hard
//! state. The cost is granularity: *the master key itself* keys every
//! datagram between the pair, for every user and connection. Compromise of
//! the master key exposes all past and future pair traffic, and because
//! nothing binds a datagram to a conversation, protected datagrams can be
//! cut-and-pasted between conversations undetected (see the tests).

use crate::service::{KeyingCost, SecureDatagramService};
use fbs_core::{FbsError, Principal};
use fbs_crypto::dh::{DhGroup, PrivateValue, PublicValue};
use fbs_crypto::{des, keyed_digest, mac_eq, Des, DesMode, Lcg64};
use std::collections::HashMap;

/// Host-pair keying service for one local principal.
///
/// ```
/// use fbs_baselines::{HostPairService, SecureDatagramService};
/// use fbs_crypto::dh::DhGroup;
/// let (mut alice, mut bob, alice_name, bob_name) =
///     HostPairService::pair(&DhGroup::test_group(), ("alice", "bob"));
/// let wire = alice.protect(&bob_name, /*conversation:*/ 1, b"hello").unwrap();
/// assert_eq!(bob.unprotect(&alice_name, 1, &wire).unwrap(), b"hello");
/// // The §2.2 weakness: the conversation id is invisible to the scheme.
/// assert!(bob.unprotect(&alice_name, /*different conv:*/ 2, &wire).is_ok());
/// ```
pub struct HostPairService {
    private: PrivateValue,
    /// Peer public values ("implicit" keys known a priori).
    peers: HashMap<Principal, PublicValue>,
    /// Cached pair master keys (computing them is the only keying cost).
    master_keys: HashMap<Principal, Vec<u8>>,
    confounder: Lcg64,
    cost: KeyingCost,
}

impl HostPairService {
    /// Create a service with the given private value.
    pub fn new(private: PrivateValue, confounder_seed: u64) -> Self {
        HostPairService {
            private,
            peers: HashMap::new(),
            master_keys: HashMap::new(),
            confounder: Lcg64::new(confounder_seed),
            cost: KeyingCost::default(),
        }
    }

    /// Make `peer`'s public value known (the a-priori distribution).
    pub fn add_peer(&mut self, peer: Principal, public: PublicValue) {
        self.peers.insert(peer, public);
    }

    /// Build a ready-made interoperating pair for tests/benches.
    pub fn pair(group: &DhGroup, names: (&str, &str)) -> (Self, Self, Principal, Principal) {
        let a_priv = PrivateValue::from_entropy(
            group.clone(),
            format!("{}-entropy-pad", names.0).as_bytes(),
        );
        let b_priv = PrivateValue::from_entropy(
            group.clone(),
            format!("{}-entropy-pad", names.1).as_bytes(),
        );
        let a_name = Principal::named(names.0);
        let b_name = Principal::named(names.1);
        let mut a = HostPairService::new(a_priv.clone(), 0xA);
        let mut b = HostPairService::new(b_priv.clone(), 0xB);
        a.add_peer(b_name.clone(), b_priv.public_value());
        b.add_peer(a_name.clone(), a_priv.public_value());
        (a, b, a_name, b_name)
    }

    fn master_key(&mut self, peer: &Principal) -> Result<Vec<u8>, FbsError> {
        if let Some(k) = self.master_keys.get(peer) {
            return Ok(k.clone());
        }
        let public = self
            .peers
            .get(peer)
            .ok_or_else(|| FbsError::PrincipalUnknown(peer.to_string()))?;
        self.cost.master_key_computations += 1;
        let k = self.private.master_key(public);
        self.master_keys.insert(peer.clone(), k.clone());
        Ok(k)
    }
}

/// Wire layout: confounder(4) | plaintext_len(4) | mac(16) | ciphertext.
const HEADER: usize = 4 + 4 + 16;

impl SecureDatagramService for HostPairService {
    fn name(&self) -> &'static str {
        "host-pair"
    }

    fn protect(
        &mut self,
        dst: &Principal,
        _conversation: u64, // the whole point: the scheme cannot see this
        payload: &[u8],
    ) -> Result<Vec<u8>, FbsError> {
        let master = self.master_key(dst)?;
        let confounder = self.confounder.next_u32();
        let iv = ((confounder as u64) << 32) | confounder as u64;
        // The master key directly keys MAC and cipher — the §2.2 hazard.
        let mac = keyed_digest(&master, &[&confounder.to_be_bytes(), payload]);
        let des = Des::new(&master[..8].try_into().unwrap());
        let ct = des::encrypt(&des, iv, DesMode::Cbc, payload);
        let mut wire = Vec::with_capacity(HEADER + ct.len());
        wire.extend_from_slice(&confounder.to_be_bytes());
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(&mac);
        wire.extend_from_slice(&ct);
        Ok(wire)
    }

    fn unprotect(
        &mut self,
        src: &Principal,
        _conversation: u64,
        wire: &[u8],
    ) -> Result<Vec<u8>, FbsError> {
        if wire.len() < HEADER {
            return Err(FbsError::MalformedHeader("short host-pair header"));
        }
        let master = self.master_key(src)?;
        let confounder = u32::from_be_bytes(wire[0..4].try_into().unwrap());
        let len = u32::from_be_bytes(wire[4..8].try_into().unwrap()) as usize;
        let mac = &wire[8..24];
        let ct = &wire[24..];
        if !ct.len().is_multiple_of(des::BLOCK_SIZE) || len > ct.len() {
            return Err(FbsError::MalformedCiphertext);
        }
        let iv = ((confounder as u64) << 32) | confounder as u64;
        let des = Des::new(&master[..8].try_into().unwrap());
        let pt = des::decrypt(&des, iv, DesMode::Cbc, ct, len);
        let expected = keyed_digest(&master, &[&confounder.to_be_bytes(), &pt]);
        if !mac_eq(&expected, mac) {
            return Err(FbsError::BadMac);
        }
        Ok(pt)
    }

    fn cost(&self) -> KeyingCost {
        KeyingCost {
            hard_state_entries: 0, // master keys are recomputable soft state
            ..self.cost
        }
    }

    fn preserves_datagram_semantics(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (HostPairService, HostPairService, Principal, Principal) {
        HostPairService::pair(&DhGroup::test_group(), ("alice", "bob"))
    }

    #[test]
    fn roundtrip() {
        let (mut a, mut b, a_name, b_name) = world();
        let wire = a.protect(&b_name, 1, b"pair-keyed payload").unwrap();
        let pt = b.unprotect(&a_name, 1, &wire).unwrap();
        assert_eq!(pt, b"pair-keyed payload");
    }

    #[test]
    fn master_key_computed_once_per_peer() {
        let (mut a, _, _, b_name) = world();
        for i in 0..10 {
            a.protect(&b_name, i, b"x").unwrap();
        }
        assert_eq!(a.cost().master_key_computations, 1);
        assert_eq!(a.cost().setup_messages, 0);
    }

    #[test]
    fn tampering_detected() {
        let (mut a, mut b, a_name, b_name) = world();
        let mut wire = a.protect(&b_name, 1, b"payload!").unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 1;
        assert_eq!(b.unprotect(&a_name, 1, &wire), Err(FbsError::BadMac));
    }

    #[test]
    fn cut_and_paste_across_conversations_succeeds() {
        // THE weakness (§2.2): nothing binds a protected datagram to its
        // conversation. A datagram recorded in conversation 1 verifies
        // perfectly when replayed into conversation 2 — FBS's per-flow
        // keys exist precisely to stop this (compare
        // `cut_and_paste_across_flows_rejected` in fbs-core).
        let (mut a, mut b, a_name, b_name) = world();
        let wire = a.protect(&b_name, 1, b"conversation-1 secret").unwrap();
        let spliced = b.unprotect(&a_name, 2, &wire).unwrap();
        assert_eq!(spliced, b"conversation-1 secret");
    }

    #[test]
    fn unknown_peer_rejected() {
        let (mut a, _, _, _) = world();
        assert!(matches!(
            a.protect(&Principal::named("eve"), 1, b"x"),
            Err(FbsError::PrincipalUnknown(_))
        ));
    }

    #[test]
    fn datagram_semantics_preserved() {
        let (a, _, _, _) = world();
        assert!(a.preserves_datagram_semantics());
    }
}
