//! MRT: a mini reliable transport standing in for TCP.
//!
//! The paper's only change outside IP was in `tcp_output.c` (§7.2): BSD's
//! TCP computes exactly how much data fits in a packet without triggering
//! fragmentation, fills the packet to that size, and sets DF — which
//! breaks the moment FBS inserts its header. The fix is to include the FBS
//! header size in the segment-size calculation. MRT reproduces that exact
//! behaviour: data segments are filled to a computed MSS and sent with DF;
//! the MSS calculation takes a *security overhead allowance* that must
//! match what the output hook inserts, or DF-protected segments blow the
//! MTU (observable as [`crate::NetError::WouldFragment`] drops).
//!
//! The protocol itself is a deliberately small TCP subset: three-way
//! handshake, byte-stream sequence numbers, cumulative ACKs, a fixed
//! segment window with go-back-N retransmission and exponential backoff,
//! FIN teardown. No congestion control, SACK, or window scaling — none of
//! which the paper's experiments depend on.

use crate::error::{NetError, Result};
use crate::ip::{Ipv4Addr, IPV4_HEADER_LEN};
use fbs_obs::{Event, MetricsRegistry};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// MRT header length.
pub const MRT_HEADER_LEN: usize = 16;

/// Default retransmission timeout (virtual microseconds).
pub const DEFAULT_RTO_US: u64 = 200_000;

/// Give-up threshold: consecutive unanswered retransmissions.
pub const MAX_RETRIES: u32 = 8;

/// Segment flags (a tiny hand-rolled bitset, keeping dependencies to the
/// approved list).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flags(pub u8);

impl Flags {
    /// No flags set.
    pub const EMPTY: Flags = Flags(0);
    /// Connection request.
    pub const SYN: Flags = Flags(1);
    /// Acknowledgement field is valid.
    pub const ACK: Flags = Flags(2);
    /// Sender has finished sending.
    pub const FIN: Flags = Flags(4);

    /// Does `self` contain all bits of `other`?
    pub fn contains(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union.
    pub fn or(self, other: Flags) -> Flags {
        Flags(self.0 | other.0)
    }
}

/// An MRT segment header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MrtHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of SYN/FIN).
    pub seq: u32,
    /// Cumulative acknowledgement: next byte expected.
    pub ack: u32,
    /// Segment flags.
    pub flags: Flags,
    /// Payload length.
    pub len: u16,
}

impl MrtHeader {
    /// Serialise header followed by `data`.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        debug_assert_eq!(self.len as usize, data.len());
        let mut out = Vec::with_capacity(MRT_HEADER_LEN + data.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(self.flags.0);
        out.push(0); // reserved
        out.extend_from_slice(&self.len.to_be_bytes());
        out.extend_from_slice(data);
        out
    }

    /// Parse a segment into header + payload.
    pub fn decode(segment: &[u8]) -> Result<(Self, &[u8])> {
        if segment.len() < MRT_HEADER_LEN {
            return Err(NetError::Malformed("short MRT header"));
        }
        let h = MrtHeader {
            src_port: u16::from_be_bytes([segment[0], segment[1]]),
            dst_port: u16::from_be_bytes([segment[2], segment[3]]),
            seq: u32::from_be_bytes([segment[4], segment[5], segment[6], segment[7]]),
            ack: u32::from_be_bytes([segment[8], segment[9], segment[10], segment[11]]),
            flags: Flags(segment[12]),
            len: u16::from_be_bytes([segment[14], segment[15]]),
        };
        if MRT_HEADER_LEN + h.len as usize != segment.len() {
            return Err(NetError::Malformed("MRT length mismatch"));
        }
        Ok((h, &segment[MRT_HEADER_LEN..]))
    }
}

/// Connection identity: (local port, remote address, remote port).
pub type ConnKey = (u16, Ipv4Addr, u16);

/// Connection state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// SYN sent, awaiting SYN|ACK.
    SynSent,
    /// SYN received (passive open), awaiting ACK.
    SynReceived,
    /// Data may flow.
    Established,
    /// FIN sent, awaiting its ACK.
    FinWait,
    /// Fully closed by the normal handshake.
    Closed,
    /// Terminal failure: retransmission gave up after `MAX_RETRIES`
    /// (see [`Conn::error`] for the cause). Distinguishable from an
    /// orderly [`ConnState::Closed`] so callers can tell "peer finished"
    /// from "peer unreachable" and react (re-dial, report, degrade).
    Failed,
}

/// One connection's state block.
pub struct Conn {
    /// Current state.
    pub state: ConnState,
    /// Remote endpoint.
    pub remote: (Ipv4Addr, u16),
    // Send side.
    send_buf: VecDeque<u8>,
    /// Sequence of the first byte in `send_buf` (oldest unacked).
    snd_una: u32,
    /// Next sequence to transmit new data at.
    snd_nxt: u32,
    /// Receive side: next expected sequence.
    rcv_nxt: u32,
    /// In-order received bytes awaiting the application.
    recv_buf: VecDeque<u8>,
    /// Remote sent FIN and we've consumed everything before it.
    pub remote_closed: bool,
    /// Local application asked to close.
    closing: bool,
    fin_sent: bool,
    // Timers.
    rto_us: u64,
    retransmit_at: Option<u64>,
    retries: u32,
    /// Terminal error, if the connection was aborted.
    pub error: Option<NetError>,
    // Stats.
    /// Segments retransmitted.
    pub retransmissions: u64,
    /// Payload bytes the application sent.
    pub bytes_sent: u64,
    /// Payload bytes delivered to the application.
    pub bytes_received: u64,
}

impl Conn {
    fn new(remote: (Ipv4Addr, u16), iss: u32, state: ConnState) -> Self {
        Conn {
            state,
            remote,
            send_buf: VecDeque::new(),
            snd_una: iss,
            snd_nxt: iss,
            rcv_nxt: 0,
            recv_buf: VecDeque::new(),
            remote_closed: false,
            closing: false,
            fin_sent: false,
            rto_us: DEFAULT_RTO_US,
            retransmit_at: None,
            retries: 0,
            error: None,
            retransmissions: 0,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    /// Unacknowledged bytes in flight (including SYN/FIN units).
    fn in_flight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }
}

/// A segment MRT wants transmitted, plus the DF requirement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outgoing {
    /// Destination host.
    pub dst: Ipv4Addr,
    /// Wire bytes (MRT header + payload).
    pub bytes: Vec<u8>,
    /// Data segments are sized to fit exactly and must not be fragmented
    /// (the BSD tcp_output behaviour the paper interacts with).
    pub dont_fragment: bool,
}

/// Host-level MRT: listeners + connections. Segments carry no addresses —
/// the IP layer provides them — so the layer itself is address-free.
pub struct MrtLayer {
    listeners: std::collections::HashSet<u16>,
    conns: HashMap<ConnKey, Conn>,
    /// Link MTU, for the MSS computation.
    mtu: usize,
    /// Bytes reserved for security headers inserted below us. Setting this
    /// correctly IS the paper's tcp_output fix; setting it to zero while a
    /// hook inserts headers reproduces the bug.
    overhead_allowance: usize,
    /// Maximum segments in flight.
    window_segments: u32,
    /// Initial send sequence counter (deterministic for the simulator).
    next_iss: u32,
    /// Segments dropped because no listener/connection matched.
    pub resets: u64,
    obs: Option<Arc<MetricsRegistry>>,
}

impl MrtLayer {
    /// Create the layer for a host with the given link MTU.
    pub fn new(mtu: usize) -> Self {
        MrtLayer {
            listeners: Default::default(),
            conns: HashMap::new(),
            mtu,
            overhead_allowance: 0,
            window_segments: 8,
            next_iss: 1000,
            resets: 0,
            obs: None,
        }
    }

    /// Attach a metrics registry: every go-back-N or handshake
    /// retransmission emits [`Event::MrtRetransmit`].
    pub fn set_obs(&mut self, registry: Arc<MetricsRegistry>) {
        self.obs = Some(registry);
    }

    /// Reserve `bytes` of each packet for security headers (the fix).
    pub fn set_overhead_allowance(&mut self, bytes: usize) {
        self.overhead_allowance = bytes;
    }

    /// Maximum payload per data segment: fill the MTU exactly, minus IP,
    /// MRT and security headers (BSD tcp_output's calculation + the fix).
    pub fn mss(&self) -> usize {
        self.mtu
            .saturating_sub(IPV4_HEADER_LEN + MRT_HEADER_LEN + self.overhead_allowance)
            .max(1)
    }

    /// Start listening on `port`.
    pub fn listen(&mut self, port: u16) {
        self.listeners.insert(port);
    }

    /// Active-open a connection; returns its key. Emits the SYN via the
    /// next [`poll`](Self::poll).
    pub fn connect(&mut self, local_port: u16, remote: Ipv4Addr, remote_port: u16) -> ConnKey {
        let key = (local_port, remote, remote_port);
        let iss = self.next_iss;
        self.next_iss = self.next_iss.wrapping_add(64_000);
        let mut conn = Conn::new((remote, remote_port), iss, ConnState::SynSent);
        conn.retransmit_at = Some(0); // fire immediately
        self.conns.insert(key, conn);
        key
    }

    /// Queue application data for sending.
    pub fn send(&mut self, key: &ConnKey, data: &[u8]) -> Result<()> {
        let conn = self
            .conns
            .get_mut(key)
            .ok_or(NetError::Connection("no such connection"))?;
        if conn.closing || matches!(conn.state, ConnState::Closed | ConnState::Failed) {
            return Err(NetError::Connection("connection closing"));
        }
        conn.send_buf.extend(data);
        conn.bytes_sent += data.len() as u64;
        Ok(())
    }

    /// Read available in-order data.
    pub fn recv(&mut self, key: &ConnKey, max: usize) -> Vec<u8> {
        match self.conns.get_mut(key) {
            Some(conn) => {
                let n = conn.recv_buf.len().min(max);
                conn.recv_buf.drain(..n).collect()
            }
            None => Vec::new(),
        }
    }

    /// Application close: FIN once the send buffer drains.
    pub fn close(&mut self, key: &ConnKey) {
        if let Some(conn) = self.conns.get_mut(key) {
            conn.closing = true;
        }
    }

    /// Connection state, if it exists.
    pub fn state(&self, key: &ConnKey) -> Option<ConnState> {
        self.conns.get(key).map(|c| c.state)
    }

    /// Direct access to a connection (stats, flags).
    pub fn conn(&self, key: &ConnKey) -> Option<&Conn> {
        self.conns.get(key)
    }

    /// Keys of connections accepted by listeners (passive opens) that have
    /// reached `Established`.
    pub fn established_keys(&self) -> Vec<ConnKey> {
        self.conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Established)
            .map(|(k, _)| *k)
            .collect()
    }

    /// Process an incoming MRT segment from `src`.
    pub fn deliver(&mut self, src: Ipv4Addr, segment: &[u8], now_us: u64) -> Vec<Outgoing> {
        let Ok((h, payload)) = MrtHeader::decode(segment) else {
            return Vec::new();
        };
        let key: ConnKey = (h.dst_port, src, h.src_port);
        let mut out = Vec::new();

        // Passive open.
        if !self.conns.contains_key(&key) {
            if h.flags.contains(Flags::SYN) && self.listeners.contains(&h.dst_port) {
                let iss = self.next_iss;
                self.next_iss = self.next_iss.wrapping_add(64_000);
                let mut conn = Conn::new((src, h.src_port), iss, ConnState::SynReceived);
                conn.rcv_nxt = h.seq.wrapping_add(1);
                conn.retransmit_at = Some(now_us + conn.rto_us);
                // SYN|ACK consumes one sequence unit.
                let synack = MrtHeader {
                    src_port: h.dst_port,
                    dst_port: h.src_port,
                    seq: iss,
                    ack: conn.rcv_nxt,
                    flags: Flags::SYN.or(Flags::ACK),
                    len: 0,
                };
                conn.snd_nxt = iss.wrapping_add(1);
                self.conns.insert(key, conn);
                out.push(Outgoing {
                    dst: src,
                    bytes: synack.encode(&[]),
                    dont_fragment: false,
                });
            } else {
                self.resets += 1;
            }
            return out;
        }

        let conn = self.conns.get_mut(&key).unwrap();

        // ACK processing.
        if h.flags.contains(Flags::ACK) {
            let acked = h.ack.wrapping_sub(conn.snd_una);
            if acked > 0 && acked <= conn.in_flight() {
                // Progress: drop acked bytes from the buffer. SYN/FIN
                // sequence units have no buffer bytes.
                let buffered = conn.send_buf.len() as u32;
                let from_buf = acked.min(buffered);
                conn.send_buf.drain(..from_buf as usize);
                conn.snd_una = h.ack;
                conn.retries = 0;
                conn.rto_us = DEFAULT_RTO_US;
                conn.retransmit_at = if conn.in_flight() > 0 {
                    Some(now_us + conn.rto_us)
                } else {
                    None
                };
            }
            match conn.state {
                ConnState::SynSent if h.flags.contains(Flags::SYN) => {
                    conn.state = ConnState::Established;
                    conn.rcv_nxt = h.seq.wrapping_add(1);
                    // Bare ACK completes the handshake.
                    let ack = MrtHeader {
                        src_port: key.0,
                        dst_port: key.2,
                        seq: conn.snd_nxt,
                        ack: conn.rcv_nxt,
                        flags: Flags::ACK,
                        len: 0,
                    };
                    out.push(Outgoing {
                        dst: src,
                        bytes: ack.encode(&[]),
                        dont_fragment: false,
                    });
                }
                ConnState::SynReceived => {
                    conn.state = ConnState::Established;
                }
                ConnState::FinWait if conn.in_flight() == 0 => {
                    conn.state = ConnState::Closed;
                }
                _ => {}
            }
        }

        // Data / FIN processing (only sensible once synchronised).
        if matches!(
            conn.state,
            ConnState::Established | ConnState::FinWait | ConnState::Closed
        ) {
            if h.len > 0 && h.seq == conn.rcv_nxt {
                conn.recv_buf.extend(payload);
                conn.rcv_nxt = conn.rcv_nxt.wrapping_add(h.len as u32);
                conn.bytes_received += h.len as u64;
            }
            // Out-of-order or duplicate data falls through to a re-ACK
            // (go-back-N receiver). A FIN is accepted once every byte
            // before it has been consumed; it occupies one sequence unit.
            if h.flags.contains(Flags::FIN)
                && !conn.remote_closed
                && h.seq.wrapping_add(h.len as u32) == conn.rcv_nxt
            {
                conn.rcv_nxt = conn.rcv_nxt.wrapping_add(1);
                conn.remote_closed = true;
            }
            if h.len > 0 || h.flags.contains(Flags::FIN) {
                let ack = MrtHeader {
                    src_port: key.0,
                    dst_port: key.2,
                    seq: conn.snd_nxt,
                    ack: conn.rcv_nxt,
                    flags: Flags::ACK,
                    len: 0,
                };
                out.push(Outgoing {
                    dst: src,
                    bytes: ack.encode(&[]),
                    dont_fragment: false,
                });
            }
        }
        out
    }

    /// Drive timers and the send window; returns segments to transmit.
    pub fn poll(&mut self, now_us: u64) -> Vec<Outgoing> {
        let mss = self.mss() as u32;
        let window_bytes = self.window_segments * mss;
        let mut out = Vec::new();
        for (key, conn) in self.conns.iter_mut() {
            // Retransmission timer.
            let timed_out = conn.retransmit_at.is_some_and(|t| now_us >= t)
                && (conn.in_flight() > 0 || conn.state == ConnState::SynSent);
            if timed_out {
                conn.retries += 1;
                if conn.retries > MAX_RETRIES {
                    conn.state = ConnState::Failed;
                    conn.error = Some(NetError::Connection("max retries exceeded"));
                    conn.retransmit_at = None;
                    continue;
                }
                conn.rto_us = (conn.rto_us * 2).min(8_000_000);
                conn.retransmit_at = Some(now_us + conn.rto_us);
                match conn.state {
                    ConnState::SynSent => {
                        if conn.retries > 1 {
                            conn.retransmissions += 1;
                            if let Some(reg) = &self.obs {
                                reg.record(Event::MrtRetransmit);
                            }
                        }
                        let syn = MrtHeader {
                            src_port: key.0,
                            dst_port: key.2,
                            seq: conn.snd_una,
                            ack: 0,
                            flags: Flags::SYN,
                            len: 0,
                        };
                        // SYN consumes one unit.
                        conn.snd_nxt = conn.snd_una.wrapping_add(1);
                        out.push(Outgoing {
                            dst: conn.remote.0,
                            bytes: syn.encode(&[]),
                            dont_fragment: false,
                        });
                        continue;
                    }
                    ConnState::SynReceived => {
                        conn.retransmissions += 1;
                        if let Some(reg) = &self.obs {
                            reg.record(Event::MrtRetransmit);
                        }
                        let synack = MrtHeader {
                            src_port: key.0,
                            dst_port: key.2,
                            seq: conn.snd_una,
                            ack: conn.rcv_nxt,
                            flags: Flags::SYN.or(Flags::ACK),
                            len: 0,
                        };
                        out.push(Outgoing {
                            dst: conn.remote.0,
                            bytes: synack.encode(&[]),
                            dont_fragment: false,
                        });
                        continue;
                    }
                    _ => {
                        // Go-back-N: rewind transmission to snd_una.
                        conn.retransmissions += 1;
                        if let Some(reg) = &self.obs {
                            reg.record(Event::MrtRetransmit);
                        }
                        let rewound = conn.snd_nxt.wrapping_sub(conn.snd_una);
                        conn.snd_nxt = conn.snd_una;
                        if conn.fin_sent && rewound > 0 {
                            conn.fin_sent = false; // FIN will be resent too
                        }
                    }
                }
            }

            if conn.state != ConnState::Established && conn.state != ConnState::FinWait {
                continue;
            }

            // Transmit new data within the window.
            while conn.in_flight() < window_bytes {
                let offset = conn.snd_nxt.wrapping_sub(conn.snd_una) as usize;
                let available = conn.send_buf.len().saturating_sub(offset);
                if available == 0 {
                    break;
                }
                let take = available.min(mss as usize);
                let chunk: Vec<u8> = conn
                    .send_buf
                    .iter()
                    .skip(offset)
                    .take(take)
                    .copied()
                    .collect();
                let seg = MrtHeader {
                    src_port: key.0,
                    dst_port: key.2,
                    seq: conn.snd_nxt,
                    ack: conn.rcv_nxt,
                    flags: Flags::ACK,
                    len: chunk.len() as u16,
                };
                conn.snd_nxt = conn.snd_nxt.wrapping_add(chunk.len() as u32);
                out.push(Outgoing {
                    dst: conn.remote.0,
                    bytes: seg.encode(&chunk),
                    // Filled-to-MSS data: exactly the BSD DF behaviour.
                    dont_fragment: true,
                });
                if conn.retransmit_at.is_none() {
                    conn.retransmit_at = Some(now_us + conn.rto_us);
                }
            }

            // FIN once everything is sent and acked.
            if conn.closing
                && !conn.fin_sent
                && conn.send_buf.is_empty()
                && conn.in_flight() == 0
                && conn.state == ConnState::Established
            {
                let fin = MrtHeader {
                    src_port: key.0,
                    dst_port: key.2,
                    seq: conn.snd_nxt,
                    ack: conn.rcv_nxt,
                    flags: Flags::FIN.or(Flags::ACK),
                    len: 0,
                };
                conn.snd_nxt = conn.snd_nxt.wrapping_add(1);
                conn.fin_sent = true;
                conn.state = ConnState::FinWait;
                conn.retransmit_at = Some(now_us + conn.rto_us);
                out.push(Outgoing {
                    dst: conn.remote.0,
                    bytes: fin.encode(&[]),
                    dont_fragment: false,
                });
            }
        }
        out
    }

    /// Earliest retransmission deadline across connections.
    pub fn next_timer_us(&self) -> Option<u64> {
        self.conns.values().filter_map(|c| c.retransmit_at).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = [10, 0, 0, 1];
    const B: Ipv4Addr = [10, 0, 0, 2];

    #[test]
    fn header_roundtrip() {
        let h = MrtHeader {
            src_port: 1,
            dst_port: 2,
            seq: 0xDEAD,
            ack: 0xBEEF,
            flags: Flags::SYN.or(Flags::ACK),
            len: 3,
        };
        let bytes = h.encode(b"abc");
        let (parsed, data) = MrtHeader::decode(&bytes).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(data, b"abc");
    }

    #[test]
    fn length_mismatch_rejected() {
        let h = MrtHeader {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: Flags::EMPTY,
            len: 3,
        };
        let mut bytes = h.encode(b"abc");
        bytes.push(0);
        assert!(MrtHeader::decode(&bytes).is_err());
    }

    /// Shuttle segments between two MrtLayers directly (no IP/loss).
    fn pump(a: &mut MrtLayer, b: &mut MrtLayer, now: &mut u64) {
        for _ in 0..50 {
            *now += 1_000;
            let from_a = a.poll(*now);
            let from_b = b.poll(*now);
            let mut quiet = from_a.is_empty() && from_b.is_empty();
            let mut replies = Vec::new();
            for seg in from_a {
                replies.extend(b.deliver(A, &seg.bytes, *now));
                quiet = false;
            }
            for seg in from_b {
                replies.extend(a.deliver(B, &seg.bytes, *now));
                quiet = false;
            }
            for seg in replies {
                // ACKs generated inside deliver(); route to the right side.
                if seg.dst == A {
                    a.deliver(B, &seg.bytes, *now);
                } else {
                    b.deliver(A, &seg.bytes, *now);
                }
            }
            if quiet {
                break;
            }
        }
    }

    #[test]
    fn handshake_and_data_transfer() {
        let mut a = MrtLayer::new(1500);
        let mut b = MrtLayer::new(1500);
        b.listen(80);
        let key = a.connect(2000, B, 80);
        let mut now = 0u64;
        pump(&mut a, &mut b, &mut now);
        assert_eq!(a.state(&key), Some(ConnState::Established));

        a.send(&key, b"hello over mrt").unwrap();
        pump(&mut a, &mut b, &mut now);
        let bkey = (80, A, 2000);
        assert_eq!(b.recv(&bkey, 1024), b"hello over mrt");
    }

    #[test]
    fn bulk_transfer_spans_many_segments() {
        let mut a = MrtLayer::new(1500);
        let mut b = MrtLayer::new(1500);
        b.listen(80);
        let key = a.connect(2000, B, 80);
        let mut now = 0u64;
        pump(&mut a, &mut b, &mut now);
        let data: Vec<u8> = (0..20_000u32).map(|i| i as u8).collect();
        a.send(&key, &data).unwrap();
        let bkey = (80, A, 2000);
        let mut got = Vec::new();
        for _ in 0..100 {
            pump(&mut a, &mut b, &mut now);
            got.extend(b.recv(&bkey, usize::MAX));
            if got.len() == data.len() {
                break;
            }
        }
        assert_eq!(got, data);
    }

    #[test]
    fn mss_accounts_for_security_overhead() {
        let mut m = MrtLayer::new(1500);
        assert_eq!(m.mss(), 1500 - 20 - 16);
        m.set_overhead_allowance(40); // FBS header
        assert_eq!(m.mss(), 1500 - 20 - 16 - 40);
    }

    #[test]
    fn data_segments_fill_mss_with_df() {
        let mut a = MrtLayer::new(1500);
        let mut b = MrtLayer::new(1500);
        b.listen(80);
        let key = a.connect(2000, B, 80);
        let mut now = 0u64;
        pump(&mut a, &mut b, &mut now);
        a.send(&key, &vec![0u8; 5000]).unwrap();
        now += 1000;
        let segs = a.poll(now);
        let data_segs: Vec<_> = segs
            .iter()
            .filter(|s| s.bytes.len() > MRT_HEADER_LEN)
            .collect();
        assert!(!data_segs.is_empty());
        // First segments are filled exactly to the MSS and marked DF.
        assert_eq!(data_segs[0].bytes.len() - MRT_HEADER_LEN, a.mss());
        assert!(data_segs[0].dont_fragment);
    }

    #[test]
    fn retransmission_on_loss() {
        let mut a = MrtLayer::new(1500);
        let mut b = MrtLayer::new(1500);
        b.listen(80);
        let key = a.connect(2000, B, 80);
        let mut now = 0u64;
        pump(&mut a, &mut b, &mut now);
        a.send(&key, b"lost data").unwrap();
        // Generate but drop the data segment.
        now += 1000;
        let segs = a.poll(now);
        assert!(!segs.is_empty());
        // Wait past the RTO; the retransmission should appear.
        now += DEFAULT_RTO_US * 3;
        let retrans = a.poll(now);
        assert!(
            retrans.iter().any(|s| s.bytes.len() > MRT_HEADER_LEN),
            "expected a retransmitted data segment"
        );
        assert!(a.conn(&key).unwrap().retransmissions >= 1);
        // Deliver it; transfer completes.
        for seg in retrans {
            for reply in b.deliver(A, &seg.bytes, now) {
                a.deliver(B, &reply.bytes, now);
            }
        }
        assert_eq!(b.recv(&(80, A, 2000), 64), b"lost data");
    }

    #[test]
    fn connection_gives_up_after_max_retries() {
        let mut a = MrtLayer::new(1500);
        let key = a.connect(2000, B, 80); // nobody there
        let mut now = 0u64;
        for _ in 0..MAX_RETRIES + 2 {
            now += 20_000_000;
            a.poll(now);
        }
        assert_eq!(
            a.state(&key),
            Some(ConnState::Failed),
            "give-up is a terminal failure, not an orderly close"
        );
        assert!(a.conn(&key).unwrap().error.is_some());
        // A failed connection refuses further sends.
        assert!(a.send(&key, b"more").is_err());
    }

    #[test]
    fn close_handshake() {
        let mut a = MrtLayer::new(1500);
        let mut b = MrtLayer::new(1500);
        b.listen(80);
        let key = a.connect(2000, B, 80);
        let mut now = 0u64;
        pump(&mut a, &mut b, &mut now);
        a.send(&key, b"bye").unwrap();
        a.close(&key);
        pump(&mut a, &mut b, &mut now);
        let bkey = (80, A, 2000);
        assert_eq!(b.recv(&bkey, 16), b"bye");
        assert!(b.conn(&bkey).unwrap().remote_closed);
        assert_eq!(a.state(&key), Some(ConnState::Closed));
    }

    #[test]
    fn stray_segment_counts_reset() {
        let mut b = MrtLayer::new(1500);
        let seg = MrtHeader {
            src_port: 9,
            dst_port: 99,
            seq: 5,
            ack: 0,
            flags: Flags::ACK,
            len: 0,
        };
        b.deliver(A, &seg.encode(&[]), 0);
        assert_eq!(b.resets, 1);
    }
}
