//! A simulated shared network segment (the testbed's "dedicated 10M
//! Ethernet segment", §7.3) driven by virtual time.
//!
//! The segment is a single shared medium: frames serialise one at a time
//! at the configured bandwidth, then propagate with latency and jitter.
//! Adverse conditions — loss, duplication, corruption, reordering — are
//! injected from a seeded RNG, so every run is reproducible (the same
//! fault-injection philosophy as smoltcp's examples).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Impairment and medium configuration.
#[derive(Clone, Copy, Debug)]
pub struct Impairments {
    /// Propagation latency in microseconds.
    pub latency_us: u64,
    /// Uniform random extra delay in `[0, jitter_us]` — also the source of
    /// reordering when it exceeds inter-frame gaps.
    pub jitter_us: u64,
    /// Probability a frame is silently dropped.
    pub loss: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability one random byte of the frame is flipped.
    pub corrupt: f64,
    /// Medium bandwidth in bits/second (`None` = infinite).
    pub bandwidth_bps: Option<u64>,
}

impl Default for Impairments {
    /// A clean 10 Mb/s segment with 50 µs propagation delay — the paper's
    /// testbed medium.
    fn default() -> Self {
        Impairments {
            latency_us: 50,
            jitter_us: 0,
            loss: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            bandwidth_bps: Some(10_000_000),
        }
    }
}

impl Impairments {
    /// An ideal medium: no delay, no faults, infinite bandwidth.
    pub fn ideal() -> Self {
        Impairments {
            latency_us: 0,
            jitter_us: 0,
            loss: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            bandwidth_bps: None,
        }
    }

    /// A lossy WAN-ish medium for robustness tests, with every fault rate
    /// explicit (duplication and corruption used to be derived from the
    /// loss rate, which hid two knobs chaos schedules need).
    pub fn lossy(loss: f64, duplicate: f64, corrupt: f64, jitter_us: u64) -> Self {
        Impairments {
            latency_us: 2_000,
            jitter_us,
            loss,
            duplicate,
            corrupt,
            bandwidth_bps: Some(10_000_000),
        }
        .validated()
    }

    /// Normalise the fault probabilities once, at construction time:
    /// NaN or negative rates are configuration bugs and panic; rates
    /// above 1.0 clamp to certainty. [`Segment::new`] runs every
    /// configuration through this, so the per-frame hot path can trust
    /// the values as-is.
    ///
    /// # Panics
    /// Panics if `loss`, `duplicate`, or `corrupt` is NaN or negative.
    pub fn validated(mut self) -> Self {
        for (name, p) in [
            ("loss", &mut self.loss),
            ("duplicate", &mut self.duplicate),
            ("corrupt", &mut self.corrupt),
        ] {
            assert!(
                !p.is_nan() && *p >= 0.0,
                "impairment probability `{name}` must be a non-negative number, got {p}"
            );
            if *p > 1.0 {
                *p = 1.0;
            }
        }
        self
    }
}

/// Segment delivery/fault counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Frames offered to the medium.
    pub transmitted: u64,
    /// Frames delivered (duplicates counted).
    pub delivered: u64,
    /// Frames dropped by injected loss.
    pub lost: u64,
    /// Extra deliveries from injected duplication.
    pub duplicated: u64,
    /// Frames with an injected byte flip.
    pub corrupted: u64,
    /// Bytes offered to the medium.
    pub bytes: u64,
}

/// The shared segment: an event queue of in-flight frames over virtual
/// time.
///
/// ```
/// use fbs_net::segment::{Segment, Impairments};
/// let mut seg = Segment::new(/*seed:*/ 1, Impairments::ideal());
/// seg.transmit(vec![0xAB; 64]);
/// let arrivals = seg.advance(/*dt_us:*/ 10);
/// assert_eq!(arrivals.len(), 1);
/// assert_eq!(arrivals[0].1.len(), 64);
/// ```
pub struct Segment {
    now_us: u64,
    /// Time the medium finishes serialising the current frame.
    medium_free_us: u64,
    /// (arrival time, tie-break sequence, frame bytes).
    in_flight: BinaryHeap<Reverse<(u64, u64, Vec<u8>)>>,
    seq: u64,
    imp: Impairments,
    rng: StdRng,
    stats: SegmentStats,
}

impl Segment {
    /// Create a segment with the given impairments and RNG seed.
    ///
    /// # Panics
    /// Panics if any impairment probability is NaN or negative (see
    /// [`Impairments::validated`]).
    pub fn new(seed: u64, imp: Impairments) -> Self {
        let imp = imp.validated();
        Segment {
            now_us: 0,
            medium_free_us: 0,
            in_flight: BinaryHeap::new(),
            seq: 0,
            imp,
            rng: StdRng::seed_from_u64(seed),
            stats: SegmentStats::default(),
        }
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Statistics so far.
    pub fn stats(&self) -> SegmentStats {
        self.stats
    }

    /// Offer a frame to the medium at the current virtual time.
    pub fn transmit(&mut self, frame: Vec<u8>) {
        self.stats.transmitted += 1;
        self.stats.bytes += frame.len() as u64;

        // Serialisation: the shared medium sends one frame at a time.
        let start = self.now_us.max(self.medium_free_us);
        let ser_us = match self.imp.bandwidth_bps {
            Some(bps) => (frame.len() as u64 * 8 * 1_000_000) / bps,
            None => 0,
        };
        self.medium_free_us = start + ser_us;

        // Probabilities were validated at Segment::new; no per-frame
        // clamping needed here.
        if self.rng.gen_bool(self.imp.loss) {
            self.stats.lost += 1;
            return;
        }
        let mut frame = frame;
        if self.imp.corrupt > 0.0 && self.rng.gen_bool(self.imp.corrupt) {
            let i = self.rng.gen_range(0..frame.len());
            frame[i] ^= 1u8 << self.rng.gen_range(0..8);
            self.stats.corrupted += 1;
        }
        let jitter = if self.imp.jitter_us > 0 {
            self.rng.gen_range(0..=self.imp.jitter_us)
        } else {
            0
        };
        let arrival = self.medium_free_us + self.imp.latency_us + jitter;
        self.seq += 1;
        self.in_flight
            .push(Reverse((arrival, self.seq, frame.clone())));
        if self.imp.duplicate > 0.0 && self.rng.gen_bool(self.imp.duplicate) {
            let jitter2 = self.rng.gen_range(0..=self.imp.jitter_us.max(100));
            self.seq += 1;
            self.in_flight
                .push(Reverse((arrival + jitter2, self.seq, frame)));
            self.stats.duplicated += 1;
        }
    }

    /// Advance virtual time by `dt_us`, returning the frames that arrive,
    /// in arrival order.
    pub fn advance(&mut self, dt_us: u64) -> Vec<(u64, Vec<u8>)> {
        self.now_us += dt_us;
        let mut out = Vec::new();
        while let Some(Reverse((t, _, _))) = self.in_flight.peek() {
            if *t > self.now_us {
                break;
            }
            let Reverse((t, _, frame)) = self.in_flight.pop().unwrap();
            self.stats.delivered += 1;
            out.push((t, frame));
        }
        out
    }

    /// Earliest pending arrival time, if any (lets drivers skip idle time).
    pub fn next_arrival_us(&self) -> Option<u64> {
        self.in_flight.peek().map(|Reverse((t, _, _))| *t)
    }

    /// True when no frames are in flight.
    pub fn idle(&self) -> bool {
        self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_on_clean_medium() {
        let mut s = Segment::new(1, Impairments::ideal());
        s.transmit(vec![1]);
        s.transmit(vec![2]);
        s.transmit(vec![3]);
        let got: Vec<u8> = s.advance(1).into_iter().map(|(_, f)| f[0]).collect();
        assert_eq!(got, vec![1, 2, 3]);
        assert!(s.idle());
    }

    #[test]
    fn latency_delays_delivery() {
        let imp = Impairments {
            latency_us: 1_000,
            bandwidth_bps: None,
            ..Impairments::ideal()
        };
        let mut s = Segment::new(1, imp);
        s.transmit(vec![1]);
        assert!(s.advance(999).is_empty());
        assert_eq!(s.advance(1).len(), 1);
    }

    #[test]
    fn bandwidth_serialisation_spacing() {
        // 10 Mb/s: a 1250-byte frame takes 1000 µs on the wire; two frames
        // back-to-back arrive 1000 µs apart.
        let imp = Impairments {
            latency_us: 0,
            bandwidth_bps: Some(10_000_000),
            ..Impairments::ideal()
        };
        let mut s = Segment::new(1, imp);
        s.transmit(vec![0u8; 1250]);
        s.transmit(vec![0u8; 1250]);
        let arrivals = s.advance(10_000);
        assert_eq!(arrivals.len(), 2);
        assert_eq!(arrivals[0].0, 1_000);
        assert_eq!(arrivals[1].0, 2_000);
    }

    #[test]
    fn total_loss_drops_everything() {
        let imp = Impairments {
            loss: 1.0,
            ..Impairments::ideal()
        };
        let mut s = Segment::new(1, imp);
        for _ in 0..10 {
            s.transmit(vec![0]);
        }
        assert!(s.advance(1_000_000).is_empty());
        assert_eq!(s.stats().lost, 10);
    }

    #[test]
    fn loss_rate_roughly_honoured() {
        let imp = Impairments {
            loss: 0.3,
            ..Impairments::ideal()
        };
        let mut s = Segment::new(42, imp);
        for _ in 0..1000 {
            s.transmit(vec![0]);
        }
        let delivered = s.advance(1_000_000).len();
        assert!((600..800).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn duplication_duplicates() {
        let imp = Impairments {
            duplicate: 1.0,
            ..Impairments::ideal()
        };
        let mut s = Segment::new(7, imp);
        s.transmit(vec![9]);
        let got = s.advance(1_000_000);
        assert_eq!(got.len(), 2);
        assert_eq!(s.stats().duplicated, 1);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let imp = Impairments {
            corrupt: 1.0,
            ..Impairments::ideal()
        };
        let mut s = Segment::new(7, imp);
        let original = vec![0u8; 100];
        s.transmit(original.clone());
        let (_, got) = s.advance(1).pop().unwrap();
        let flipped: u32 = got
            .iter()
            .zip(&original)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn jitter_can_reorder() {
        let imp = Impairments {
            jitter_us: 10_000,
            ..Impairments::ideal()
        };
        let mut s = Segment::new(3, imp);
        for i in 0..20u8 {
            s.transmit(vec![i]);
        }
        let got: Vec<u8> = s
            .advance(1_000_000)
            .into_iter()
            .map(|(_, f)| f[0])
            .collect();
        assert_eq!(got.len(), 20);
        let mut sorted = got.clone();
        sorted.sort();
        assert_ne!(got, sorted, "jitter should reorder at least one pair");
    }

    #[test]
    fn validation_clamps_overrange_and_rejects_nan() {
        let imp = Impairments {
            loss: 1.5,
            duplicate: 2.0,
            corrupt: 7.0,
            ..Impairments::ideal()
        }
        .validated();
        assert_eq!(imp.loss, 1.0);
        assert_eq!(imp.duplicate, 1.0);
        assert_eq!(imp.corrupt, 1.0);

        let nan = std::panic::catch_unwind(|| {
            Impairments {
                loss: f64::NAN,
                ..Impairments::ideal()
            }
            .validated()
        });
        assert!(nan.is_err(), "NaN loss must be rejected");
        let negative = std::panic::catch_unwind(|| {
            Impairments {
                corrupt: -0.1,
                ..Impairments::ideal()
            }
            .validated()
        });
        assert!(negative.is_err(), "negative corrupt must be rejected");
    }

    #[test]
    fn segment_new_validates_configuration() {
        // Over-range rates survive as certainty: every frame is lost.
        let mut s = Segment::new(
            1,
            Impairments {
                loss: 3.0,
                ..Impairments::ideal()
            },
        );
        for _ in 0..5 {
            s.transmit(vec![0]);
        }
        assert!(s.advance(1_000_000).is_empty());
        assert_eq!(s.stats().lost, 5);
    }

    #[test]
    fn same_seed_same_behaviour() {
        let imp = Impairments::lossy(0.2, 0.05, 0.05, 1_000);
        let run = |seed| {
            let mut s = Segment::new(seed, imp);
            for i in 0..50u8 {
                s.transmit(vec![i]);
            }
            s.advance(10_000_000)
                .into_iter()
                .map(|(t, f)| (t, f[0]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
