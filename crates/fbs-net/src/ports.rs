//! Port allocation with the §7.1 quarantine fix.
//!
//! The paper identifies a port-reuse attack: if a process grabs a port
//! "within a time of THRESHOLD" after another process released it, the FAM
//! keeps classifying datagrams into the old flow, so an attacker who
//! reallocates a victim's port can replay the victim's recorded (still
//! fresh) datagrams to itself and have FBS decrypt them. "One way to
//! counter this problem is to impose a wait of THRESHOLD on port
//! reallocation" — a change to `in_pcballoc`, outside FBS proper. This
//! allocator implements both behaviours so the attack and its fix are
//! testable.

use crate::error::{NetError, Result};
use std::collections::HashMap;

/// First ephemeral port (BSD's traditional 1024).
pub const EPHEMERAL_LO: u16 = 1024;
/// Last ephemeral port.
pub const EPHEMERAL_HI: u16 = 5000;

/// Allocates and quarantines ports.
#[derive(Debug)]
pub struct PortAllocator {
    /// Seconds a released port stays unallocatable; 0 reproduces the
    /// vulnerable historical behaviour.
    quarantine_secs: u64,
    next: u16,
    in_use: HashMap<u16, ()>,
    /// port → release time.
    quarantined: HashMap<u16, u64>,
}

impl PortAllocator {
    /// Create an allocator. `quarantine_secs` should equal the flow
    /// policy's THRESHOLD to close the §7.1 hole.
    pub fn new(quarantine_secs: u64) -> Self {
        PortAllocator {
            quarantine_secs,
            next: EPHEMERAL_LO,
            in_use: HashMap::new(),
            quarantined: HashMap::new(),
        }
    }

    /// Allocate a specific port (servers). Fails if taken or quarantined.
    pub fn bind(&mut self, port: u16, now_secs: u64) -> Result<u16> {
        self.release_expired(now_secs);
        if self.in_use.contains_key(&port) || self.quarantined.contains_key(&port) {
            return Err(NetError::PortsExhausted);
        }
        self.in_use.insert(port, ());
        Ok(port)
    }

    /// Allocate the next free ephemeral port.
    pub fn ephemeral(&mut self, now_secs: u64) -> Result<u16> {
        self.release_expired(now_secs);
        let span = (EPHEMERAL_HI - EPHEMERAL_LO) as u32 + 1;
        for _ in 0..span {
            let candidate = self.next;
            self.next = if self.next >= EPHEMERAL_HI {
                EPHEMERAL_LO
            } else {
                self.next + 1
            };
            if !self.in_use.contains_key(&candidate) && !self.quarantined.contains_key(&candidate) {
                self.in_use.insert(candidate, ());
                return Ok(candidate);
            }
        }
        Err(NetError::PortsExhausted)
    }

    /// Release a port; it enters quarantine until `now + quarantine_secs`.
    pub fn release(&mut self, port: u16, now_secs: u64) {
        if self.in_use.remove(&port).is_some() && self.quarantine_secs > 0 {
            self.quarantined.insert(port, now_secs);
        }
    }

    fn release_expired(&mut self, now_secs: u64) {
        let q = self.quarantine_secs;
        self.quarantined
            .retain(|_, released| now_secs.saturating_sub(*released) < q);
    }

    /// Is the port currently allocated?
    pub fn is_bound(&self, port: u16) -> bool {
        self.in_use.contains_key(&port)
    }

    /// Is the port quarantined at `now_secs`?
    pub fn is_quarantined(&self, port: u16, now_secs: u64) -> bool {
        self.quarantined
            .get(&port)
            .is_some_and(|rel| now_secs.saturating_sub(*rel) < self.quarantine_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_conflict() {
        let mut a = PortAllocator::new(0);
        assert_eq!(a.bind(80, 0).unwrap(), 80);
        assert!(a.bind(80, 0).is_err());
        a.release(80, 10);
        assert!(a.bind(80, 10).is_ok(), "no quarantine with 0 secs");
    }

    #[test]
    fn ephemeral_allocation_cycles() {
        let mut a = PortAllocator::new(0);
        let p1 = a.ephemeral(0).unwrap();
        let p2 = a.ephemeral(0).unwrap();
        assert_ne!(p1, p2);
        assert!((EPHEMERAL_LO..=EPHEMERAL_HI).contains(&p1));
    }

    #[test]
    fn quarantine_blocks_reuse_within_threshold() {
        // The §7.1 fix: a released port cannot be rebound for THRESHOLD.
        let mut a = PortAllocator::new(600);
        a.bind(2000, 0).unwrap();
        a.release(2000, 100);
        assert!(a.is_quarantined(2000, 100));
        assert!(a.bind(2000, 100).is_err());
        assert!(a.bind(2000, 699).is_err()); // 599 s elapsed < 600
        assert!(a.bind(2000, 700).is_ok()); // quarantine over
    }

    #[test]
    fn vulnerable_mode_allows_instant_reuse() {
        // Historical in_pcballoc behaviour (quarantine 0): instant reuse —
        // the precondition of the §7.1 attack.
        let mut a = PortAllocator::new(0);
        a.bind(2000, 0).unwrap();
        a.release(2000, 1);
        assert!(a.bind(2000, 1).is_ok());
    }

    #[test]
    fn ephemeral_skips_quarantined() {
        let mut a = PortAllocator::new(600);
        let p = a.ephemeral(0).unwrap();
        a.release(p, 0);
        let p2 = a.ephemeral(1).unwrap();
        assert_ne!(p, p2);
    }

    #[test]
    fn exhaustion_reported() {
        let mut a = PortAllocator::new(600);
        let mut got = 0;
        while a.ephemeral(0).is_ok() {
            got += 1;
        }
        assert_eq!(got, (EPHEMERAL_HI - EPHEMERAL_LO + 1) as usize);
        assert_eq!(a.ephemeral(0), Err(NetError::PortsExhausted));
    }
}
