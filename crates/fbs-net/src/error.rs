//! Error type for the network substrate.

use std::fmt;

/// Errors raised by the simulated stack and transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A packet could not be parsed.
    Malformed(&'static str),
    /// Header checksum mismatch.
    BadChecksum,
    /// Packet larger than the MTU with DF (don't fragment) set — the
    /// condition the paper's `tcp_output.c` patch exists to avoid.
    WouldFragment {
        /// Total packet length that was attempted.
        len: usize,
        /// The link MTU.
        mtu: usize,
    },
    /// No route/host for the destination address.
    HostUnreachable([u8; 4]),
    /// No listener on the destination port.
    PortUnreachable(u16),
    /// All ephemeral ports are in use (or quarantined).
    PortsExhausted,
    /// The security hook rejected the packet.
    SecurityReject(String),
    /// Reassembly gave up (timeout or resource limits).
    ReassemblyTimeout,
    /// Connection-level failure in the mini reliable transport.
    Connection(&'static str),
    /// An OS-level transport failure (real UDP sockets).
    Io(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Malformed(what) => write!(f, "malformed packet: {what}"),
            NetError::BadChecksum => write!(f, "header checksum mismatch"),
            NetError::WouldFragment { len, mtu } => {
                write!(f, "packet of {len} bytes exceeds MTU {mtu} with DF set")
            }
            NetError::HostUnreachable(a) => {
                write!(f, "host {}.{}.{}.{} unreachable", a[0], a[1], a[2], a[3])
            }
            NetError::PortUnreachable(p) => write!(f, "port {p} unreachable"),
            NetError::PortsExhausted => write!(f, "ephemeral ports exhausted"),
            NetError::SecurityReject(why) => write!(f, "security hook rejected packet: {why}"),
            NetError::ReassemblyTimeout => write!(f, "reassembly timed out"),
            NetError::Connection(why) => write!(f, "connection error: {why}"),
            NetError::Io(why) => write!(f, "io error: {why}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, NetError>;
