//! # fbs-net — userspace datagram substrate for the FBS reproduction
//!
//! The paper implements FBS inside the 4.4BSD kernel's IP layer (§7.2).
//! This crate rebuilds the pieces of that environment FBS interacts with,
//! as a deterministic userspace simulation:
//!
//! * [`ip`] — an IPv4-like packet header with internet checksum, TTL,
//!   DF/MF flags and identification, faithful to RFC 791 field layout;
//! * [`frag`] — fragmentation and reassembly with timers (the paper's FBS
//!   hooks sit exactly around these);
//! * [`stack`] — a host network stack whose output path has the 4.4BSD
//!   three-part structure (process → fragment → transmit) and whose input
//!   path has (process → reassemble → dispatch), with [`stack::SecurityHooks`]
//!   plugging in between the parts exactly where `ip_fbs.c` hooked
//!   `ip_output.c`/`ip_input.c`;
//! * [`segment`] — a simulated shared Ethernet segment with configurable
//!   latency, jitter, loss, duplication, corruption and reordering, driven
//!   by virtual time (seeded, fully reproducible);
//! * [`udp`] — a minimal UDP layer (ports, checksum, socket demux);
//! * [`mrt`] — a mini reliable transport (sliding window, retransmission)
//!   whose segment-size computation reproduces the `tcp_output.c`
//!   DF/MSS interaction the paper had to patch;
//! * [`ports`] — a port allocator with the §7.1 THRESHOLD quarantine fix
//!   against the port-reuse replay attack;
//! * [`router`] — a pure-IP forwarding router joining two segments (TTL,
//!   checksum rewrite, next-hop fragmentation), which validates the §7.2
//!   claim that routers see nothing strange in FBS packets;
//! * [`transport`] — a layer-independent `DatagramTransport` trait with
//!   in-memory and real-UDP (`std::net`) implementations, used by the
//!   abstract-protocol examples.
//!
//! The crate knows nothing about FBS itself — the dependency points the
//! other way (`fbs-ip` implements the hooks) — mirroring the paper's claim
//! that FBS assumes only "an underlying (insecure) datagram transport".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod frag;
pub mod ip;
pub mod mrt;
pub mod ports;
pub mod router;
pub mod segment;
pub mod stack;
pub mod transport;
pub mod udp;

pub use error::NetError;
pub use ip::{Ipv4Addr, Ipv4Header, Proto};
pub use segment::{Impairments, Segment};
pub use stack::{Datagram, HookOutcome, Host, SecurityHooks};
