//! Minimal UDP layer: header codec with pseudo-header checksum and
//! per-socket receive queues.

use crate::error::{NetError, Result};
use crate::ip::{internet_checksum, Ipv4Addr};
use std::collections::{HashMap, VecDeque};

/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP datagram header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header + data.
    pub len: u16,
    /// Checksum over pseudo-header, header and data.
    pub checksum: u16,
}

/// Compute the UDP checksum (RFC 768 pseudo-header form).
pub fn udp_checksum(src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) -> u16 {
    let mut pseudo = Vec::with_capacity(12 + segment.len());
    pseudo.extend_from_slice(&src);
    pseudo.extend_from_slice(&dst);
    pseudo.push(0);
    pseudo.push(17); // protocol UDP
    pseudo.extend_from_slice(&(segment.len() as u16).to_be_bytes());
    pseudo.extend_from_slice(segment);
    let ck = internet_checksum(&pseudo);
    // RFC 768: transmitted 0 means "no checksum"; an all-zero result is
    // sent as all-ones.
    if ck == 0 {
        0xFFFF
    } else {
        ck
    }
}

/// Encode a UDP segment (header + data) with a valid checksum.
pub fn encode(src: Ipv4Addr, dst: Ipv4Addr, src_port: u16, dst_port: u16, data: &[u8]) -> Vec<u8> {
    let len = (UDP_HEADER_LEN + data.len()) as u16;
    let mut seg = Vec::with_capacity(len as usize);
    seg.extend_from_slice(&src_port.to_be_bytes());
    seg.extend_from_slice(&dst_port.to_be_bytes());
    seg.extend_from_slice(&len.to_be_bytes());
    seg.extend_from_slice(&[0, 0]); // checksum placeholder
    seg.extend_from_slice(data);
    let ck = udp_checksum(src, dst, &seg);
    seg[6..8].copy_from_slice(&ck.to_be_bytes());
    seg
}

/// Decode and checksum-verify a UDP segment, returning header and data.
pub fn decode(src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) -> Result<(UdpHeader, &[u8])> {
    if segment.len() < UDP_HEADER_LEN {
        return Err(NetError::Malformed("short UDP header"));
    }
    let header = UdpHeader {
        src_port: u16::from_be_bytes([segment[0], segment[1]]),
        dst_port: u16::from_be_bytes([segment[2], segment[3]]),
        len: u16::from_be_bytes([segment[4], segment[5]]),
        checksum: u16::from_be_bytes([segment[6], segment[7]]),
    };
    if header.len as usize != segment.len() {
        return Err(NetError::Malformed("UDP length mismatch"));
    }
    // Checksum over the segment as transmitted verifies to zero (or the
    // sender sent 0 = "no checksum", which we accept per RFC 768).
    if header.checksum != 0 {
        let mut pseudo = Vec::with_capacity(12 + segment.len());
        pseudo.extend_from_slice(&src);
        pseudo.extend_from_slice(&dst);
        pseudo.push(0);
        pseudo.push(17);
        pseudo.extend_from_slice(&(segment.len() as u16).to_be_bytes());
        pseudo.extend_from_slice(segment);
        if internet_checksum(&pseudo) != 0 {
            return Err(NetError::BadChecksum);
        }
    }
    Ok((header, &segment[UDP_HEADER_LEN..]))
}

/// A received datagram queued on a socket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Sender address.
    pub src: Ipv4Addr,
    /// Sender port.
    pub src_port: u16,
    /// Payload.
    pub data: Vec<u8>,
}

/// Host-level UDP demultiplexer: port → receive queue.
#[derive(Default)]
pub struct UdpLayer {
    sockets: HashMap<u16, VecDeque<UdpDatagram>>,
    /// Datagrams that arrived for unbound ports.
    pub unreachable: u64,
    /// Datagrams dropped for checksum/framing errors.
    pub drops: u64,
}

impl UdpLayer {
    /// Open a receive queue on `port`.
    pub fn bind(&mut self, port: u16) -> Result<()> {
        if self.sockets.contains_key(&port) {
            return Err(NetError::PortsExhausted);
        }
        self.sockets.insert(port, VecDeque::new());
        Ok(())
    }

    /// Close a port's queue.
    pub fn unbind(&mut self, port: u16) {
        self.sockets.remove(&port);
    }

    /// Is `port` bound?
    pub fn is_bound(&self, port: u16) -> bool {
        self.sockets.contains_key(&port)
    }

    /// Deliver an incoming UDP segment (called by the stack's dispatch).
    pub fn deliver(&mut self, src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) {
        match decode(src, dst, segment) {
            Ok((header, data)) => match self.sockets.get_mut(&header.dst_port) {
                Some(q) => q.push_back(UdpDatagram {
                    src,
                    src_port: header.src_port,
                    data: data.to_vec(),
                }),
                None => self.unreachable += 1,
            },
            Err(_) => self.drops += 1,
        }
    }

    /// Dequeue the next datagram on `port`.
    pub fn recv(&mut self, port: u16) -> Option<UdpDatagram> {
        self.sockets.get_mut(&port)?.pop_front()
    }

    /// Number of datagrams queued on `port`.
    pub fn pending(&self, port: u16) -> usize {
        self.sockets.get(&port).map_or(0, |q| q.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = [10, 0, 0, 1];
    const B: Ipv4Addr = [10, 0, 0, 2];

    #[test]
    fn encode_decode_roundtrip() {
        let seg = encode(A, B, 1234, 80, b"hello udp");
        let (h, data) = decode(A, B, &seg).unwrap();
        assert_eq!(h.src_port, 1234);
        assert_eq!(h.dst_port, 80);
        assert_eq!(data, b"hello udp");
    }

    #[test]
    fn checksum_catches_payload_corruption() {
        let mut seg = encode(A, B, 1, 2, b"data");
        *seg.last_mut().unwrap() ^= 0xFF;
        assert_eq!(decode(A, B, &seg), Err(NetError::BadChecksum));
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        // Same segment delivered to the wrong address must fail: the
        // pseudo-header binds the UDP payload to its IP endpoints.
        let seg = encode(A, B, 1, 2, b"data");
        assert!(decode(A, [9, 9, 9, 9], &seg).is_err());
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut seg = encode(A, B, 1, 2, b"data");
        seg[6] = 0;
        seg[7] = 0; // sender opted out
        assert!(decode(A, B, &seg).is_ok());
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut seg = encode(A, B, 1, 2, b"data");
        seg.push(0);
        assert!(matches!(decode(A, B, &seg), Err(NetError::Malformed(_))));
    }

    #[test]
    fn layer_demux_and_queues() {
        let mut udp = UdpLayer::default();
        udp.bind(53).unwrap();
        assert!(udp.bind(53).is_err());
        udp.deliver(A, B, &encode(A, B, 9999, 53, b"query1"));
        udp.deliver(A, B, &encode(A, B, 9999, 53, b"query2"));
        udp.deliver(A, B, &encode(A, B, 9999, 54, b"nobody home"));
        assert_eq!(udp.pending(53), 2);
        assert_eq!(udp.unreachable, 1);
        let d = udp.recv(53).unwrap();
        assert_eq!(d.data, b"query1");
        assert_eq!(d.src_port, 9999);
        assert_eq!(udp.recv(53).unwrap().data, b"query2");
        assert!(udp.recv(53).is_none());
    }

    #[test]
    fn corrupt_delivery_counted_as_drop() {
        let mut udp = UdpLayer::default();
        udp.bind(53).unwrap();
        let mut seg = encode(A, B, 1, 53, b"x");
        seg[8] ^= 1;
        udp.deliver(A, B, &seg);
        assert_eq!(udp.drops, 1);
        assert_eq!(udp.pending(53), 0);
    }
}
