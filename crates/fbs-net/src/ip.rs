//! IPv4-like packet header (RFC 791 field layout) with internet checksum.
//!
//! The FBS IP mapping inserts its security flow header "in between the
//! normal IPv4 header and the IP payload ... a short-cut form of IP
//! encapsulation" (§7.2), then fixes the IP header's length and checksum.
//! This module provides the header codec those fixups operate on. Options
//! are not supported (the paper notes the 40-byte option limit made the
//! IP-option alternative unattractive; our stack, like smoltcp, silently
//! ignores the possibility).

use crate::error::{NetError, Result};
use fbs_core::BufferPool;

/// An IPv4 address (network byte order).
pub type Ipv4Addr = [u8; 4];

/// Well-known protocol numbers used by the substrate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Proto {
    /// Mini reliable transport (stands in for TCP; protocol 6).
    Mrt,
    /// UDP (protocol 17).
    Udp,
    /// Insecure directory/bootstrap traffic (protocol 200). FBS policy
    /// does not cover it, which realises the "secure flow bypass" of
    /// Fig. 5: certificate fetches ride this protocol and skip FBS.
    Bypass,
    /// Anything else.
    Other(u8),
}

impl Proto {
    /// Numeric protocol value.
    pub fn number(self) -> u8 {
        match self {
            Proto::Mrt => 6,
            Proto::Udp => 17,
            Proto::Bypass => 200,
            Proto::Other(n) => n,
        }
    }

    /// From a numeric protocol value.
    pub fn from_number(n: u8) -> Self {
        match n {
            6 => Proto::Mrt,
            17 => Proto::Udp,
            200 => Proto::Bypass,
            other => Proto::Other(other),
        }
    }
}

/// Header length in bytes (no options).
pub const IPV4_HEADER_LEN: usize = 20;

/// Flag bit: don't fragment.
pub const FLAG_DF: u8 = 0b010;
/// Flag bit: more fragments follow.
pub const FLAG_MF: u8 = 0b001;

/// An IPv4 header (no options).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Type of service (kept for fidelity; unused by the substrate).
    pub tos: u8,
    /// Total length: header + payload, in bytes.
    pub total_len: u16,
    /// Identification (shared by all fragments of a datagram).
    pub id: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units.
    pub frag_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Protocol number of the payload.
    pub proto: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Build a header for a payload of `payload_len` bytes.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, proto: Proto, payload_len: usize) -> Self {
        Ipv4Header {
            tos: 0,
            total_len: (IPV4_HEADER_LEN + payload_len) as u16,
            id: 0,
            dont_fragment: false,
            more_fragments: false,
            frag_offset: 0,
            ttl: 64,
            proto: proto.number(),
            src,
            dst,
        }
    }

    /// Payload length implied by `total_len`.
    pub fn payload_len(&self) -> usize {
        self.total_len as usize - IPV4_HEADER_LEN
    }

    /// Adjust `total_len` after inserting/removing `delta` payload bytes
    /// (the §7.2 "fixes the IP header to account for the increase in the
    /// packet size").
    pub fn grow_payload(&mut self, delta: isize) {
        self.total_len = (self.total_len as isize + delta) as u16;
    }

    /// Serialise, computing the header checksum.
    pub fn encode(&self) -> [u8; IPV4_HEADER_LEN] {
        let mut b = [0u8; IPV4_HEADER_LEN];
        b[0] = 0x45; // version 4, IHL 5
        b[1] = self.tos;
        b[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        b[4..6].copy_from_slice(&self.id.to_be_bytes());
        let flags = ((self.dont_fragment as u16) << 14)
            | ((self.more_fragments as u16) << 13)
            | (self.frag_offset & 0x1FFF);
        b[6..8].copy_from_slice(&flags.to_be_bytes());
        b[8] = self.ttl;
        b[9] = self.proto;
        // checksum at [10..12] computed over the header with zero cksum
        b[12..16].copy_from_slice(&self.src);
        b[16..20].copy_from_slice(&self.dst);
        let ck = internet_checksum(&b);
        b[10..12].copy_from_slice(&ck.to_be_bytes());
        b
    }

    /// Parse and checksum-verify a header from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(NetError::Malformed("short IPv4 header"));
        }
        if buf[0] != 0x45 {
            return Err(NetError::Malformed("bad version/IHL"));
        }
        if internet_checksum(&buf[..IPV4_HEADER_LEN]) != 0 {
            return Err(NetError::BadChecksum);
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]);
        if (total_len as usize) < IPV4_HEADER_LEN {
            return Err(NetError::Malformed("total_len below header size"));
        }
        let flags = u16::from_be_bytes([buf[6], buf[7]]);
        Ok(Ipv4Header {
            tos: buf[1],
            total_len,
            id: u16::from_be_bytes([buf[4], buf[5]]),
            dont_fragment: flags & 0x4000 != 0,
            more_fragments: flags & 0x2000 != 0,
            frag_offset: flags & 0x1FFF,
            ttl: buf[8],
            proto: buf[9],
            src: [buf[12], buf[13], buf[14], buf[15]],
            dst: [buf[16], buf[17], buf[18], buf[19]],
        })
    }
}

/// RFC 1071 internet checksum: one's-complement sum of 16-bit words.
/// Computing it over a header whose checksum field holds the transmitted
/// checksum yields zero for an intact header.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [odd] = chunks.remainder() {
        sum += (*odd as u32) << 8;
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// A full packet: header + payload bytes, the unit the segment carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// The IP header.
    pub header: Ipv4Header,
    /// Payload (transport header + data, possibly including an FBS header).
    pub payload: Vec<u8>,
}

impl Packet {
    /// Build a packet, setting `total_len` from the payload.
    pub fn new(mut header: Ipv4Header, payload: Vec<u8>) -> Self {
        header.total_len = (IPV4_HEADER_LEN + payload.len()) as u16;
        Packet { header, payload }
    }

    /// Serialise header + payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(IPV4_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.header.encode());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse a packet, verifying the checksum and length.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let header = Ipv4Header::decode(buf)?;
        if header.total_len as usize > buf.len() {
            return Err(NetError::Malformed("frame shorter than total_len"));
        }
        let payload = buf[IPV4_HEADER_LEN..header.total_len as usize].to_vec();
        Ok(Packet { header, payload })
    }

    /// Parse a packet like [`Self::decode`], but draw the payload buffer
    /// from `pool` instead of allocating a fresh one.
    pub fn decode_pooled(buf: &[u8], pool: &mut BufferPool) -> Result<Self> {
        let header = Ipv4Header::decode(buf)?;
        if header.total_len as usize > buf.len() {
            return Err(NetError::Malformed("frame shorter than total_len"));
        }
        let mut payload = pool.take();
        payload.extend_from_slice(&buf[IPV4_HEADER_LEN..header.total_len as usize]);
        Ok(Packet { header, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        let mut h = Ipv4Header::new([10, 0, 0, 1], [10, 0, 0, 2], Proto::Udp, 100);
        h.id = 0x1234;
        h.ttl = 64;
        h
    }

    #[test]
    fn header_roundtrip() {
        let h = sample();
        let bytes = h.encode();
        let parsed = Ipv4Header::decode(&bytes).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut bytes = sample().encode().to_vec();
        bytes[15] ^= 1; // flip a src-address bit
        assert_eq!(Ipv4Header::decode(&bytes), Err(NetError::BadChecksum));
    }

    #[test]
    fn rfc1071_known_example() {
        // Worked example from RFC 1071 §3: the one's-complement sum of
        // these words is 0xddf2, so the checksum is its complement 0x220d.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn checksum_of_self_is_zero() {
        let bytes = sample().encode();
        assert_eq!(internet_checksum(&bytes), 0);
    }

    #[test]
    fn odd_length_checksum() {
        // Pads the trailing byte as the high octet.
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00u16);
    }

    #[test]
    fn flags_roundtrip() {
        let mut h = sample();
        h.dont_fragment = true;
        h.frag_offset = 185;
        h.more_fragments = true;
        let parsed = Ipv4Header::decode(&h.encode()).unwrap();
        assert!(parsed.dont_fragment);
        assert!(parsed.more_fragments);
        assert_eq!(parsed.frag_offset, 185);
    }

    #[test]
    fn grow_payload_fixup() {
        let mut h = sample();
        let before = h.total_len;
        h.grow_payload(40); // FBS header insertion
        assert_eq!(h.total_len, before + 40);
        h.grow_payload(-40); // removal on receive
        assert_eq!(h.total_len, before);
    }

    #[test]
    fn packet_roundtrip_with_trailing_garbage() {
        // Links may pad frames; decode must honour total_len.
        let p = Packet::new(sample(), vec![9u8; 50]);
        let mut wire = p.encode();
        wire.extend_from_slice(&[0u8; 14]); // ethernet-ish padding
        let parsed = Packet::decode(&wire).unwrap();
        assert_eq!(parsed.payload.len(), 50);
        assert_eq!(parsed, p);
    }

    #[test]
    fn short_and_corrupt_packets_rejected() {
        assert!(Packet::decode(&[0u8; 5]).is_err());
        let p = Packet::new(sample(), vec![1, 2, 3]);
        let mut wire = p.encode();
        wire.truncate(21); // total_len says more
        assert!(Packet::decode(&wire).is_err());
    }

    #[test]
    fn proto_numbers() {
        assert_eq!(Proto::Mrt.number(), 6);
        assert_eq!(Proto::Udp.number(), 17);
        assert_eq!(Proto::from_number(6), Proto::Mrt);
        assert_eq!(Proto::from_number(99), Proto::Other(99));
        assert_eq!(Proto::from_number(200), Proto::Bypass);
    }
}
