//! A forwarding router between two segments.
//!
//! §7.2 claims "a forwarding router also will not see anything 'strange'
//! about FBS processed IP packets" — because the security flow header is
//! inserted *behind* the IP header, routers do ordinary IP forwarding
//! (TTL decrement, checksum rewrite, fragmentation when the next hop's
//! MTU demands it) without knowing FBS exists. This module builds exactly
//! such a router so the claim is testable end to end: the router code
//! contains no FBS logic whatsoever.

use crate::error::Result;
use crate::frag::fragment;
use crate::ip::Packet;
use crate::segment::Impairments;
use crate::stack::{Host, Network};

/// Router counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped because TTL reached zero.
    pub ttl_expired: u64,
    /// Packets dropped because they fit no attached segment.
    pub no_route: u64,
    /// Packets fragmented by the router (next-hop MTU smaller).
    pub fragmented: u64,
    /// Packets dropped: oversized with DF set.
    pub df_drops: u64,
}

/// Two LANs joined by an IP router. The router is pure IP: it never looks
/// past the IP header.
pub struct TwoLanWorld {
    /// First LAN.
    pub lan_a: Network,
    /// Second LAN.
    pub lan_b: Network,
    mtu_a: usize,
    mtu_b: usize,
    stats: RouterStats,
}

impl TwoLanWorld {
    /// Build two LANs with their own seeds/impairments and per-LAN MTUs.
    pub fn new(
        seed: u64,
        imp_a: Impairments,
        imp_b: Impairments,
        mtu_a: usize,
        mtu_b: usize,
    ) -> Self {
        let mut lan_a = Network::new(seed, imp_a);
        let mut lan_b = Network::new(seed ^ 0xB, imp_b);
        lan_a.enable_gateway_queue();
        lan_b.enable_gateway_queue();
        TwoLanWorld {
            lan_a,
            lan_b,
            mtu_a,
            mtu_b,
            stats: RouterStats::default(),
        }
    }

    /// Attach a host to LAN A.
    pub fn add_host_a(&mut self, host: Host) {
        self.lan_a.add_host(host);
    }

    /// Attach a host to LAN B.
    pub fn add_host_b(&mut self, host: Host) {
        self.lan_b.add_host(host);
    }

    /// Mutable access to a host on either LAN.
    ///
    /// # Panics
    /// Panics if no LAN has the host.
    pub fn host_mut(&mut self, addr: [u8; 4]) -> &mut Host {
        if self.lan_a.has_host(addr) {
            self.lan_a.host_mut(addr)
        } else {
            self.lan_b.host_mut(addr)
        }
    }

    /// Router statistics.
    pub fn router_stats(&self) -> RouterStats {
        self.stats
    }

    /// Current virtual time (the two LANs advance in lockstep).
    pub fn now_us(&self) -> u64 {
        self.lan_a.now_us()
    }

    /// Forward one packet onto `out` (ordinary IP forwarding: TTL,
    /// checksum via re-encode, fragmentation to the next hop MTU).
    fn forward(
        packet: Packet,
        out: &mut Network,
        out_mtu: usize,
        stats: &mut RouterStats,
    ) -> Result<()> {
        let mut header = packet.header;
        if header.ttl <= 1 {
            stats.ttl_expired += 1;
            return Ok(());
        }
        header.ttl -= 1;
        match fragment(Packet::new(header, packet.payload), out_mtu) {
            Ok(frags) => {
                if frags.len() > 1 {
                    stats.fragmented += 1;
                }
                for f in frags {
                    out.segment.transmit(f.encode());
                }
                stats.forwarded += 1;
            }
            Err(_) => {
                // Oversize + DF: a real router sends ICMP "fragmentation
                // needed"; ours counts the drop (PMTU discovery is out of
                // scope for the reproduction).
                stats.df_drops += 1;
            }
        }
        Ok(())
    }

    /// One lockstep simulation step across both LANs plus the router.
    pub fn step(&mut self, dt_us: u64) {
        self.lan_a.step(dt_us);
        self.lan_b.step(dt_us);
        // Pump A→B.
        for (_, frame) in self.lan_a.take_unrouted() {
            let Ok(packet) = Packet::decode(&frame) else {
                continue;
            };
            if self.lan_b.has_host(packet.header.dst) {
                let _ = Self::forward(packet, &mut self.lan_b, self.mtu_b, &mut self.stats);
            } else {
                self.stats.no_route += 1;
            }
        }
        // Pump B→A.
        for (_, frame) in self.lan_b.take_unrouted() {
            let Ok(packet) = Packet::decode(&frame) else {
                continue;
            };
            if self.lan_a.has_host(packet.header.dst) {
                let _ = Self::forward(packet, &mut self.lan_a, self.mtu_a, &mut self.stats);
            } else {
                self.stats.no_route += 1;
            }
        }
    }

    /// Run for `duration_us` in `step_us` increments.
    pub fn run(&mut self, duration_us: u64, step_us: u64) {
        let end = self.now_us() + duration_us;
        while self.now_us() < end {
            self.step(step_us.min(end - self.now_us()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A1: [u8; 4] = [10, 1, 0, 1];
    const B1: [u8; 4] = [10, 2, 0, 1];

    fn world(mtu_b: usize) -> TwoLanWorld {
        let mut w = TwoLanWorld::new(
            3,
            Impairments::default(),
            Impairments::default(),
            1500,
            mtu_b,
        );
        w.add_host_a(Host::new(A1, 1500));
        w.add_host_b(Host::new(B1, mtu_b.max(576)));
        w
    }

    #[test]
    fn udp_crosses_the_router() {
        let mut w = world(1500);
        w.host_mut(B1).udp.bind(53).unwrap();
        w.host_mut(A1)
            .udp_send(4000, B1, 53, b"inter-lan", 0)
            .unwrap();
        w.run(100_000, 1_000);
        let got = w.host_mut(B1).udp.recv(53).unwrap();
        assert_eq!(got.data, b"inter-lan");
        assert_eq!(got.src, A1);
        assert_eq!(w.router_stats().forwarded, 1);
    }

    #[test]
    fn ttl_decrements_across_hop() {
        let mut w = world(1500);
        w.host_mut(B1).udp.bind(53).unwrap();
        w.lan_b.enable_capture();
        w.host_mut(A1)
            .udp_send(4000, B1, 53, b"ttl probe", 0)
            .unwrap();
        w.run(100_000, 1_000);
        let frames = w.lan_b.take_capture();
        let delivered = frames
            .iter()
            .find_map(|(_, f)| Packet::decode(f).ok())
            .expect("forwarded frame on LAN B");
        assert_eq!(delivered.header.ttl, 63, "default 64 minus one hop");
    }

    #[test]
    fn expired_ttl_dropped() {
        let mut w = world(1500);
        w.host_mut(B1).udp.bind(53).unwrap();
        // Hand-craft a TTL-1 packet.
        let seg = crate::udp::encode(A1, B1, 1, 53, b"dying");
        let mut h = crate::ip::Ipv4Header::new(A1, B1, crate::ip::Proto::Udp, seg.len());
        h.ttl = 1;
        w.host_mut(A1).ip_output(h, seg, 0).unwrap();
        w.run(50_000, 1_000);
        assert_eq!(w.router_stats().ttl_expired, 1);
        assert_eq!(w.host_mut(B1).udp.pending(53), 0);
    }

    #[test]
    fn router_fragments_to_smaller_next_hop_mtu() {
        let mut w = world(576);
        w.host_mut(B1).udp.bind(53).unwrap();
        let big = vec![7u8; 1200]; // fits LAN A's 1500, not LAN B's 576
        w.host_mut(A1).udp_send(4000, B1, 53, &big, 0).unwrap();
        w.run(200_000, 1_000);
        assert_eq!(w.router_stats().fragmented, 1);
        let got = w.host_mut(B1).udp.recv(53).expect("reassembled at B");
        assert_eq!(got.data, big);
    }

    #[test]
    fn unroutable_destination_counted() {
        let mut w = world(1500);
        w.host_mut(A1)
            .udp_send(4000, [99, 99, 99, 99], 53, b"lost", 0)
            .unwrap();
        w.run(50_000, 1_000);
        assert_eq!(w.router_stats().no_route, 1);
    }
}
