//! Layer-independent datagram transports.
//!
//! FBS "assumes only the availability of an underlying (insecure) datagram
//! transport" (§1) abstracted as `Send()`/`Receive()` in Fig. 4. This
//! module gives that abstraction a concrete trait plus two
//! implementations: an in-memory hub (deterministic tests, examples) and a
//! real UDP socket transport (live demos between processes/machines) —
//! demonstrating that the protocol is genuinely layer-independent.

use crate::error::{NetError, Result};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::collections::HashMap;
use std::net::UdpSocket;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// An insecure datagram service between named peers.
pub trait DatagramTransport: Send {
    /// Transmit `payload` to `peer` (best effort; datagram semantics).
    fn send_to(&self, peer: &str, payload: &[u8]) -> Result<()>;

    /// Non-blocking receive: `Ok(None)` when nothing is pending.
    fn try_recv(&self) -> Result<Option<(String, Vec<u8>)>>;

    /// Blocking receive with timeout.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(String, Vec<u8>)>>;

    /// This endpoint's own name.
    fn local_name(&self) -> &str;
}

/// A datagram in flight through the hub: (sender name, payload).
type HubDatagram = (String, Vec<u8>);

/// A process-local datagram hub: endpoints exchange datagrams through
/// unbounded channels. Loss-free and ordered — impairment testing belongs
/// to [`crate::segment`]; this is the plumbing for abstract-protocol
/// examples.
#[derive(Default)]
pub struct Hub {
    peers: Mutex<HashMap<String, Sender<HubDatagram>>>,
}

impl Hub {
    /// Create an empty hub.
    pub fn new() -> Arc<Self> {
        Arc::new(Hub::default())
    }

    /// Register an endpoint named `name`.
    pub fn endpoint(self: &Arc<Self>, name: &str) -> HubTransport {
        let (tx, rx) = unbounded();
        self.peers.lock().unwrap().insert(name.to_string(), tx);
        HubTransport {
            hub: Arc::clone(self),
            name: name.to_string(),
            rx,
        }
    }
}

/// An endpoint attached to a [`Hub`].
pub struct HubTransport {
    hub: Arc<Hub>,
    name: String,
    rx: Receiver<HubDatagram>,
}

impl DatagramTransport for HubTransport {
    fn send_to(&self, peer: &str, payload: &[u8]) -> Result<()> {
        let peers = self.hub.peers.lock().unwrap();
        let tx = peers
            .get(peer)
            .ok_or_else(|| NetError::Io(format!("no such peer {peer}")))?;
        tx.send((self.name.clone(), payload.to_vec()))
            .map_err(|e| NetError::Io(e.to_string()))
    }

    fn try_recv(&self) -> Result<Option<(String, Vec<u8>)>> {
        match self.rx.try_recv() {
            Ok(v) => Ok(Some(v)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Io("hub gone".into())),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(String, Vec<u8>)>> {
        match self.rx.recv_timeout(timeout) {
            Ok(v) => Ok(Some(v)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(e) => Err(NetError::Io(e.to_string())),
        }
    }

    fn local_name(&self) -> &str {
        &self.name
    }
}

/// A real UDP transport: peers are `"ip:port"` strings. Used by the live
/// examples to run FBS between actual processes.
pub struct UdpTransport {
    socket: UdpSocket,
    name: String,
}

impl UdpTransport {
    /// Bind to `addr` (e.g. `"127.0.0.1:7001"`).
    pub fn bind(addr: &str) -> Result<Self> {
        let socket = UdpSocket::bind(addr).map_err(|e| NetError::Io(e.to_string()))?;
        let name = socket
            .local_addr()
            .map_err(|e| NetError::Io(e.to_string()))?
            .to_string();
        Ok(UdpTransport { socket, name })
    }
}

impl DatagramTransport for UdpTransport {
    fn send_to(&self, peer: &str, payload: &[u8]) -> Result<()> {
        self.socket
            .send_to(payload, peer)
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok(())
    }

    fn try_recv(&self) -> Result<Option<(String, Vec<u8>)>> {
        self.socket
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(e.to_string()))?;
        let mut buf = vec![0u8; 65_536];
        match self.socket.recv_from(&mut buf) {
            Ok((n, from)) => {
                buf.truncate(n);
                Ok(Some((from.to_string(), buf)))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(NetError::Io(e.to_string())),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(String, Vec<u8>)>> {
        self.socket
            .set_nonblocking(false)
            .map_err(|e| NetError::Io(e.to_string()))?;
        self.socket
            .set_read_timeout(Some(timeout))
            .map_err(|e| NetError::Io(e.to_string()))?;
        let mut buf = vec![0u8; 65_536];
        match self.socket.recv_from(&mut buf) {
            Ok((n, from)) => {
                buf.truncate(n);
                Ok(Some((from.to_string(), buf)))
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(NetError::Io(e.to_string())),
        }
    }

    fn local_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_roundtrip() {
        let hub = Hub::new();
        let a = hub.endpoint("alice");
        let b = hub.endpoint("bob");
        a.send_to("bob", b"hi bob").unwrap();
        let (from, data) = b.try_recv().unwrap().unwrap();
        assert_eq!(from, "alice");
        assert_eq!(data, b"hi bob");
        assert!(b.try_recv().unwrap().is_none());
    }

    #[test]
    fn hub_unknown_peer_errors() {
        let hub = Hub::new();
        let a = hub.endpoint("alice");
        assert!(a.send_to("nobody", b"x").is_err());
    }

    #[test]
    fn hub_recv_timeout_expires() {
        let hub = Hub::new();
        let a = hub.endpoint("alice");
        let got = a.recv_timeout(Duration::from_millis(10)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn udp_loopback_roundtrip() {
        let a = UdpTransport::bind("127.0.0.1:0").unwrap();
        let b = UdpTransport::bind("127.0.0.1:0").unwrap();
        let b_name = b.local_name().to_string();
        a.send_to(&b_name, b"over real udp").unwrap();
        let (from, data) = b
            .recv_timeout(Duration::from_secs(2))
            .unwrap()
            .expect("datagram should arrive on loopback");
        assert_eq!(data, b"over real udp");
        assert_eq!(from, a.local_name());
    }
}
