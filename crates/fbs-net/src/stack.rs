//! The host network stack with 4.4BSD-shaped input/output paths and FBS
//! hook points (§7.2).
//!
//! Output has three logical parts: (1) the bulk of output processing,
//! (2) fragmentation, (3) transmission. Input likewise: (1) the bulk of
//! input processing, (2) reassembly, (3) dispatch to the higher-layer
//! protocol. The security hooks sit *between 1 and 2* on output and
//! *between 2 and 3* on input — exactly where `ip_fbs.c` hooked
//! `ip_output.c` and `ip_input.c` — so FBS sees whole datagrams and is
//! transparent to fragmentation.
//!
//! Both directions are **batch-first**: the scalar entry points
//! ([`Host::ip_output`], [`Host::deliver_frame`]) are one-element wrappers
//! over the batch pipeline ([`Host::ip_output_batch`],
//! [`Host::deliver_frames`]), and the security hooks see one
//! [`SecurityHooks::process_batch`] call per batch per direction. Payload
//! buffers travel as [`Datagram`]s drawn from the host's [`BufferPool`]
//! and are recycled at every point the old path dropped them: after
//! fragment encode, after UDP/MRT dispatch copies out, and inside the
//! hooks themselves.

use crate::error::{NetError, Result};
use crate::frag::{fragment_pooled, Reassembler};
use crate::ip::{Ipv4Addr, Ipv4Header, Packet, Proto};
use crate::mrt::MrtLayer;
use crate::ports::PortAllocator;
use crate::segment::{Impairments, Segment};
use crate::udp::UdpLayer;
use fbs_core::BufferPool;
use fbs_obs::{Counter, Direction, Event, MetricsRegistry, SpanKind, TraceSpan};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// One whole datagram moving through the pipeline: a parsed header plus
/// its payload bytes.
///
/// On the pooled paths the payload Vec is drawn from the owning host's
/// [`BufferPool`] and is expected to return there: whoever consumes the
/// payload (a hook re-encoding it, the dispatcher after an upper layer
/// copies out, the fragmenter after slicing) recycles it with
/// [`BufferPool::put`] instead of dropping it.
#[derive(Debug)]
pub struct Datagram {
    /// Parsed IPv4-like header. Hooks may rewrite it (the FBS mapping
    /// changes `proto` and `total_len` when inserting its header).
    pub header: Ipv4Header,
    /// Payload bytes (everything after the IP header).
    pub payload: Vec<u8>,
}

/// What a security hook decided about one datagram.
///
/// The third verdict, [`HookOutcome::Park`], is how graceful degradation
/// reaches the stack: when keying material is transiently unavailable the
/// hook may hold the datagram instead of dropping it, releasing it later
/// from [`SecurityHooks::release_output`] / [`SecurityHooks::release_input`]
/// once keys derive (or its deadline expires inside the hook).
#[derive(Debug)]
pub enum HookOutcome {
    /// Processed; continue down (or up) the stack with this payload.
    Pass(Vec<u8>),
    /// Rejected; drop the datagram and surface the reason.
    Reject(String),
    /// Held by the hook for later release; the datagram leaves the
    /// synchronous path.
    Park,
}

/// Record a wire-level flow-trace span for a *framed* payload — the
/// first 8 big-endian bytes are the security flow label the sampler
/// keys on. No-op without an attached tracer, for unframed payloads,
/// and for unsampled flows; the no-tracer path costs one atomic load.
fn trace_wire_span(
    obs: &Option<Arc<MetricsRegistry>>,
    host: Ipv4Addr,
    kind: SpanKind,
    t_us: u64,
    payload: &[u8],
) {
    if let Some(tracer) = obs.as_ref().and_then(|r| r.tracer()) {
        if let Some(prefix) = payload.get(..8) {
            let sfl = u64::from_be_bytes(prefix.try_into().expect("8 bytes"));
            if tracer.sampled(sfl) {
                tracer.record(TraceSpan {
                    sfl,
                    host: u32::from_be_bytes(host),
                    kind,
                    t_us,
                    info: payload.len() as u64,
                });
            }
        }
    }
}

/// Security processing plugged into the stack (implemented by `fbs-ip`).
///
/// The trait is batch-first: implementations provide the single
/// [`Self::process_batch`] entry point; the scalar [`Self::output`] /
/// [`Self::input`] methods are thin one-element wrappers over it, so
/// exactly one processing path exists per implementation.
///
/// Errors are strings so this substrate stays ignorant of the security
/// layer's error vocabulary.
pub trait SecurityHooks: Send {
    /// Which protocol numbers this hook protects. Uncovered protocols pass
    /// through untouched — that is how the secure-flow bypass (certificate
    /// fetches, `Proto::Bypass`) escapes FBS processing.
    fn covers(&self, proto: u8) -> bool;

    /// Worst-case bytes the output hook may add to a payload. Transports
    /// that fill packets to the MTU (MRT/TCP) must subtract this — the
    /// paper's `tcp_output.c` fix.
    fn max_overhead(&self) -> usize;

    /// The single processing entry point: protect (`Direction::Output`,
    /// between parts 1 and 2 of `ip_output`) or verify
    /// (`Direction::Input`, between parts 2 and 3 of `ip_input`) a batch
    /// of whole datagrams in one call, returning one `(header, outcome)`
    /// per item in submission order.
    ///
    /// `pool` is the host's buffer pool: replacement payloads should be
    /// drawn from it and consumed input buffers recycled into it, so a
    /// steady-state pipeline allocates nothing per datagram.
    fn process_batch(
        &mut self,
        dir: Direction,
        batch: Vec<Datagram>,
        pool: &mut BufferPool,
        now_us: u64,
    ) -> Vec<(Ipv4Header, HookOutcome)>;

    /// Scalar output processing: a one-element [`Self::process_batch`]
    /// wrapper (with a transient non-pooling pool) kept for callers that
    /// have a single datagram in hand.
    fn output(&mut self, header: &mut Ipv4Header, payload: Vec<u8>, now_us: u64) -> HookOutcome {
        let mut pool = BufferPool::with_limits(0, 0);
        let dg = Datagram {
            header: header.clone(),
            payload,
        };
        let (h, outcome) = self
            .process_batch(Direction::Output, vec![dg], &mut pool, now_us)
            .pop()
            .expect("one outcome per datagram");
        *header = h;
        outcome
    }

    /// Scalar input processing: the input-direction twin of
    /// [`Self::output`].
    fn input(&mut self, header: &mut Ipv4Header, payload: Vec<u8>, now_us: u64) -> HookOutcome {
        let mut pool = BufferPool::with_limits(0, 0);
        let dg = Datagram {
            header: header.clone(),
            payload,
        };
        let (h, outcome) = self
            .process_batch(Direction::Input, vec![dg], &mut pool, now_us)
            .pop()
            .expect("one outcome per datagram");
        *header = h;
        outcome
    }

    /// Parked *output* datagrams whose keys became available: each returned
    /// `(header, protected_payload)` is ready for fragmentation and
    /// transmission — the hook has already applied its processing. Buffers
    /// the release pass consumes or expires are recycled into `pool`.
    /// Called from [`Host::poll`]. Default: nothing parked, nothing
    /// released.
    fn release_output(
        &mut self,
        _now_us: u64,
        _pool: &mut BufferPool,
    ) -> Vec<(Ipv4Header, Vec<u8>)> {
        Vec::new()
    }

    /// Parked *input* datagrams that now verify: each returned
    /// `(header, plaintext_payload)` is ready for part-3 dispatch. Buffers
    /// the release pass consumes or expires are recycled into `pool`.
    /// Called from [`Host::poll`]. Default: nothing parked, nothing
    /// released.
    fn release_input(
        &mut self,
        _now_us: u64,
        _pool: &mut BufferPool,
    ) -> Vec<(Ipv4Header, Vec<u8>)> {
        Vec::new()
    }
}

/// Host-level counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Frames handed to the wire.
    pub frames_sent: u64,
    /// Frames seen on the wire addressed to anyone.
    pub frames_seen: u64,
    /// Frames addressed to this host and accepted for processing.
    pub frames_for_us: u64,
    /// Frames dropped with bad IP header checksums (e.g. injected
    /// corruption).
    pub header_drops: u64,
    /// Datagrams the output security hook rejected.
    pub hook_output_rejects: u64,
    /// Datagrams the input security hook rejected.
    pub hook_input_rejects: u64,
    /// Output datagrams the hook parked for later release (key pending).
    pub hook_output_parked: u64,
    /// Input datagrams the hook parked for later release (key pending).
    pub hook_input_parked: u64,
    /// Parked output datagrams released and transmitted.
    pub hook_output_released: u64,
    /// Parked input datagrams released and dispatched.
    pub hook_input_released: u64,
    /// Datagrams that could not be sent because DF + oversize (the
    /// unpatched-tcp_output symptom).
    pub would_fragment_drops: u64,
    /// Datagrams dispatched to an upper layer (UDP, MRT, bypass, raw).
    pub dispatched: u64,
}

/// A simulated host: stack + transport layers + app-visible queues.
pub struct Host {
    addr: Ipv4Addr,
    mtu: usize,
    ip_id: u16,
    hooks: Option<Box<dyn SecurityHooks>>,
    reasm: Reassembler,
    /// Buffer pool backing the whole datagram pipeline: input frames,
    /// reassembly, fragmentation, and the hooks all draw from and recycle
    /// into this one pool.
    pool: BufferPool,
    /// UDP layer (public: apps use it via the host methods below).
    pub udp: UdpLayer,
    /// Mini reliable transport layer.
    pub mrt: MrtLayer,
    /// Port allocator (quarantine configured by the application).
    pub ports: PortAllocator,
    /// Raw bypass-protocol datagrams received (certificate traffic).
    bypass_rx: VecDeque<(Ipv4Addr, Vec<u8>)>,
    /// Raw-IP datagrams received (ICMP-like protocols): (proto, src, data).
    raw_rx: VecDeque<(u8, Ipv4Addr, Vec<u8>)>,
    out: VecDeque<Vec<u8>>,
    stats: HostStats,
    obs: Option<Arc<MetricsRegistry>>,
}

impl Host {
    /// Create a host at `addr` with the given link MTU.
    pub fn new(addr: Ipv4Addr, mtu: usize) -> Self {
        Host {
            addr,
            mtu,
            ip_id: 1,
            hooks: None,
            reasm: Reassembler::new(30_000_000),
            pool: BufferPool::new(),
            udp: UdpLayer::default(),
            mrt: MrtLayer::new(mtu),
            ports: PortAllocator::new(0),
            bypass_rx: VecDeque::new(),
            raw_rx: VecDeque::new(),
            out: VecDeque::new(),
            stats: HostStats::default(),
            obs: None,
        }
    }

    /// Attach a metrics registry: the stack emits fragmentation and
    /// reassembly events, the buffer pool reports hits/misses, and the
    /// registry cascades into the MRT layer for retransmit observation.
    pub fn attach_obs(&mut self, registry: Arc<MetricsRegistry>) {
        self.mrt.set_obs(Arc::clone(&registry));
        self.pool.attach_obs(Arc::clone(&registry));
        self.obs = Some(registry);
    }

    /// This host's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// Link MTU.
    pub fn mtu(&self) -> usize {
        self.mtu
    }

    /// Counters.
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// Buffer-pool counters (hits, misses, returns, discards).
    pub fn pool_stats(&self) -> fbs_core::PoolStats {
        self.pool.stats()
    }

    /// Install security hooks. Also teaches MRT to reserve the hook's
    /// overhead in its MSS computation (the tcp_output fix). Call
    /// [`Self::install_hooks_without_mss_fix`] to reproduce the bug.
    pub fn install_hooks(&mut self, hooks: Box<dyn SecurityHooks>) {
        self.mrt.set_overhead_allowance(hooks.max_overhead());
        self.hooks = Some(hooks);
    }

    /// Install hooks WITHOUT adjusting the MRT segment-size calculation —
    /// the broken pre-patch behaviour of §7.2, kept for the ablation test:
    /// filled-to-MSS DF segments will exceed the MTU once the FBS header
    /// is inserted, and get dropped with `WouldFragment`.
    pub fn install_hooks_without_mss_fix(&mut self, hooks: Box<dyn SecurityHooks>) {
        self.hooks = Some(hooks);
    }

    /// Mutable access to the installed hooks (for rekeying etc.).
    pub fn hooks_mut(&mut self) -> Option<&mut Box<dyn SecurityHooks>> {
        self.hooks.as_mut()
    }

    /// IP output: a one-element [`Self::ip_output_batch`].
    pub fn ip_output(&mut self, header: Ipv4Header, payload: Vec<u8>, now_us: u64) -> Result<()> {
        self.ip_output_batch(vec![(header, payload)], now_us)
            .pop()
            .expect("one result per datagram")
    }

    /// Batch IP output: part 1 (identification) for every datagram, then
    /// ONE [`SecurityHooks::process_batch`] call covering all protected
    /// datagrams, then per-datagram fragmentation and transmission. Frames
    /// hit the wire in submission order; the returned results line up with
    /// `items`.
    pub fn ip_output_batch(
        &mut self,
        items: Vec<(Ipv4Header, Vec<u8>)>,
        now_us: u64,
    ) -> Vec<Result<()>> {
        // Part 1: assign datagram identifications in submission order.
        let mut items = items;
        for (header, _) in &mut items {
            header.id = self.ip_id;
            self.ip_id = self.ip_id.wrapping_add(1);
        }

        // Security hook between parts 1 and 2 — one call for the whole
        // covered subset, so hooks amortise locking and dispatch.
        type Staged = (Ipv4Header, HookOutcome);
        let mut slots: Vec<Option<Staged>> = items.iter().map(|_| None).collect();
        match &mut self.hooks {
            Some(h) => {
                let mut batch = Vec::new();
                let mut batch_idx = Vec::new();
                for (i, (header, payload)) in items.into_iter().enumerate() {
                    if h.covers(header.proto) {
                        batch_idx.push(i);
                        batch.push(Datagram { header, payload });
                    } else {
                        slots[i] = Some((header, HookOutcome::Pass(payload)));
                    }
                }
                if !batch.is_empty() {
                    if let Some(reg) = &self.obs {
                        reg.incr(Counter::PipelineOutputBatches);
                        reg.add(Counter::PipelineBatchDatagrams, batch.len() as u64);
                    }
                    let staged = h.process_batch(Direction::Output, batch, &mut self.pool, now_us);
                    for (i, s) in batch_idx.into_iter().zip(staged) {
                        if let HookOutcome::Pass(payload) = &s.1 {
                            // A protected payload leads with its sfl:
                            // the wire span marks the flow leaving this
                            // host for the medium.
                            trace_wire_span(&self.obs, self.addr, SpanKind::Wire, now_us, payload);
                        }
                        slots[i] = Some(s);
                    }
                }
            }
            None => {
                for (i, (header, payload)) in items.into_iter().enumerate() {
                    slots[i] = Some((header, HookOutcome::Pass(payload)));
                }
            }
        }

        // Parts 2-3 per datagram, preserving submission order.
        slots
            .into_iter()
            .map(|slot| {
                let (header, res) = slot.expect("every datagram staged exactly once");
                match res {
                    HookOutcome::Pass(payload) => self.fragment_and_send(header, payload),
                    HookOutcome::Reject(why) => {
                        self.stats.hook_output_rejects += 1;
                        Err(NetError::SecurityReject(why))
                    }
                    HookOutcome::Park => {
                        self.stats.hook_output_parked += 1;
                        Ok(())
                    }
                }
            })
            .collect()
    }

    /// Parts 2 (fragmentation) and 3 (transmission) of IP output.
    /// Fragment payloads come from the pool and return there once encoded
    /// onto the wire.
    fn fragment_and_send(&mut self, header: Ipv4Header, payload: Vec<u8>) -> Result<()> {
        let frags = fragment_pooled(Packet::new(header, payload), self.mtu, &mut self.pool)?;
        if frags.len() > 1 {
            if let Some(reg) = &self.obs {
                reg.record(Event::Fragmented {
                    fragments: frags.len() as u32,
                });
            }
        }
        for f in frags {
            let wire = f.encode();
            self.out.push_back(wire);
            self.stats.frames_sent += 1;
            self.pool.put(f.payload);
        }
        Ok(())
    }

    /// IP input for one frame: a one-element [`Self::deliver_frames`].
    pub fn deliver_frame(&mut self, frame: &[u8], now_us: u64) {
        if let Some(dg) = self.ingest(frame, now_us) {
            self.process_input_batch(vec![dg], now_us);
        }
    }

    /// IP input for a batch of frames arriving together (same link tick):
    /// parts 1-2 per frame, then ONE [`SecurityHooks::process_batch`] call
    /// for every whole datagram that emerged, then part-3 dispatch in
    /// arrival order.
    pub fn deliver_frames(&mut self, frames: &[Vec<u8>], now_us: u64) {
        let mut ready = Vec::new();
        for f in frames {
            if let Some(dg) = self.ingest(f, now_us) {
                ready.push(dg);
            }
        }
        self.process_input_batch(ready, now_us);
    }

    /// Parts 1 (checks) and 2 (reassembly) of IP input for one frame.
    /// Returns a whole datagram when one completes; its payload buffer is
    /// drawn from the host pool (frames not for us and consumed fragment
    /// buffers are recycled immediately).
    fn ingest(&mut self, frame: &[u8], now_us: u64) -> Option<Datagram> {
        self.stats.frames_seen += 1;
        // Part 1: parse and verify.
        let Ok(packet) = Packet::decode_pooled(frame, &mut self.pool) else {
            self.stats.header_drops += 1;
            return None;
        };
        if packet.header.dst != self.addr {
            self.pool.put(packet.payload);
            return None; // not ours (shared medium)
        }
        self.stats.frames_for_us += 1;

        // Part 2: reassembly.
        let was_fragment = packet.header.more_fragments || packet.header.frag_offset > 0;
        let packet = self.reasm.push_pooled(packet, now_us, &mut self.pool)?;
        if was_fragment {
            // A true fragment completing reassembly (whole datagrams pass
            // straight through and are not counted).
            if let Some(reg) = &self.obs {
                reg.record(Event::Reassembled);
            }
            trace_wire_span(
                &self.obs,
                self.addr,
                SpanKind::Reassembled,
                now_us,
                &packet.payload,
            );
        }
        Some(Datagram {
            header: packet.header,
            payload: packet.payload,
        })
    }

    /// The input half of the hook pipeline: one
    /// [`SecurityHooks::process_batch`] call for the covered subset of
    /// `ready`, then part-3 dispatch in arrival order.
    fn process_input_batch(&mut self, ready: Vec<Datagram>, now_us: u64) {
        if ready.is_empty() {
            return;
        }
        type Staged = (Ipv4Header, HookOutcome);
        let mut slots: Vec<Option<Staged>> = ready.iter().map(|_| None).collect();
        match &mut self.hooks {
            Some(h) => {
                let mut batch = Vec::new();
                let mut batch_idx = Vec::new();
                for (i, dg) in ready.into_iter().enumerate() {
                    if h.covers(dg.header.proto) {
                        batch_idx.push(i);
                        batch.push(dg);
                    } else {
                        slots[i] = Some((dg.header, HookOutcome::Pass(dg.payload)));
                    }
                }
                if !batch.is_empty() {
                    if let Some(reg) = &self.obs {
                        reg.incr(Counter::PipelineInputBatches);
                        reg.add(Counter::PipelineBatchDatagrams, batch.len() as u64);
                    }
                    // Pre-capture each covered datagram's wire sfl: the
                    // opened plaintext no longer carries it, and the
                    // deliver span must join the flow keyed by the wire
                    // label. Only paid when a tracer is attached.
                    let batch_sfls: Option<Vec<u64>> =
                        self.obs.as_ref().and_then(|r| r.tracer()).map(|_| {
                            batch
                                .iter()
                                .map(|dg| {
                                    dg.payload.get(..8).map_or(0, |b| {
                                        u64::from_be_bytes(b.try_into().expect("8 bytes"))
                                    })
                                })
                                .collect()
                        });
                    let staged = h.process_batch(Direction::Input, batch, &mut self.pool, now_us);
                    for (bi, (i, s)) in batch_idx.into_iter().zip(staged).enumerate() {
                        if let (Some(sfls), HookOutcome::Pass(payload)) = (&batch_sfls, &s.1) {
                            if let Some(tracer) = self.obs.as_ref().and_then(|r| r.tracer()) {
                                let sfl = sfls[bi];
                                if sfl != 0 && tracer.sampled(sfl) {
                                    tracer.record(TraceSpan {
                                        sfl,
                                        host: u32::from_be_bytes(self.addr),
                                        kind: SpanKind::Deliver,
                                        t_us: now_us,
                                        info: payload.len() as u64,
                                    });
                                }
                            }
                        }
                        slots[i] = Some(s);
                    }
                }
            }
            None => {
                for (i, dg) in ready.into_iter().enumerate() {
                    slots[i] = Some((dg.header, HookOutcome::Pass(dg.payload)));
                }
            }
        }
        for slot in slots {
            let (header, res) = slot.expect("every datagram staged exactly once");
            match res {
                HookOutcome::Pass(payload) => self.dispatch(header, payload, now_us),
                HookOutcome::Reject(_) => {
                    self.stats.hook_input_rejects += 1;
                }
                HookOutcome::Park => {
                    // Held until a key derives; [`Self::poll`] dispatches it
                    // once the hook releases it.
                    self.stats.hook_input_parked += 1;
                }
            }
        }
    }

    /// Part 3 of IP input: hand a fully-processed datagram to its upper
    /// layer. Also the landing point for parked input datagrams released
    /// from the security hook. Layers that copy the payload out (UDP, MRT)
    /// let us recycle the buffer; queue-backed layers keep it.
    fn dispatch(&mut self, header: Ipv4Header, payload: Vec<u8>, now_us: u64) {
        self.stats.dispatched += 1;
        match Proto::from_number(header.proto) {
            Proto::Udp => {
                self.udp.deliver(header.src, header.dst, &payload);
                self.pool.put(payload);
            }
            Proto::Mrt => {
                let responses = self.mrt.deliver(header.src, &payload, now_us);
                self.pool.put(payload);
                for o in responses {
                    self.send_mrt_segment(o, now_us);
                }
            }
            Proto::Bypass => self.bypass_rx.push_back((header.src, payload)),
            Proto::Other(p) => self.raw_rx.push_back((p, header.src, payload)),
        }
    }

    fn send_mrt_segment(&mut self, o: crate::mrt::Outgoing, now_us: u64) {
        let mut header = Ipv4Header::new(self.addr, o.dst, Proto::Mrt, o.bytes.len());
        header.dont_fragment = o.dont_fragment;
        match self.ip_output(header, o.bytes, now_us) {
            Ok(()) => {}
            Err(NetError::WouldFragment { .. }) => {
                self.stats.would_fragment_drops += 1;
            }
            Err(_) => {} // hook rejects already counted
        }
    }

    /// Drive timers (MRT retransmission, reassembly expiry) and flush
    /// transport output. Call regularly with the current virtual time.
    pub fn poll(&mut self, now_us: u64) {
        let expired = self.reasm.expire(now_us, &mut self.pool);
        if expired > 0 {
            if let Some(reg) = &self.obs {
                for _ in 0..expired {
                    reg.record(Event::ReassemblyTimeout);
                }
            }
        }
        for o in self.mrt.poll(now_us) {
            self.send_mrt_segment(o, now_us);
        }
        // Drain parked datagrams whose keys arrived. The hooks box is
        // taken for the release calls so the released items can re-enter
        // the (self-borrowing) send/dispatch paths.
        if let Some(mut h) = self.hooks.take() {
            let released_out = h.release_output(now_us, &mut self.pool);
            let released_in = h.release_input(now_us, &mut self.pool);
            self.hooks = Some(h);
            for (header, payload) in released_out {
                self.stats.hook_output_released += 1;
                // Already protected: go straight to fragmentation.
                let _ = self.fragment_and_send(header, payload);
            }
            for (header, payload) in released_in {
                self.stats.hook_input_released += 1;
                self.dispatch(header, payload, now_us);
            }
        }
    }

    /// Take the frames queued for the wire.
    pub fn take_frames(&mut self) -> Vec<Vec<u8>> {
        self.out.drain(..).collect()
    }

    // ----- application-level conveniences -------------------------------

    /// Send a UDP datagram.
    pub fn udp_send(
        &mut self,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        data: &[u8],
        now_us: u64,
    ) -> Result<()> {
        let seg = crate::udp::encode(self.addr, dst, src_port, dst_port, data);
        let header = Ipv4Header::new(self.addr, dst, Proto::Udp, seg.len());
        self.ip_output(header, seg, now_us)
    }

    /// Send a raw bypass-protocol datagram (certificate traffic; never
    /// touched by the security hooks).
    pub fn bypass_send(&mut self, dst: Ipv4Addr, data: &[u8], now_us: u64) -> Result<()> {
        let header = Ipv4Header::new(self.addr, dst, Proto::Bypass, data.len());
        self.ip_output(header, data.to_vec(), now_us)
    }

    /// Receive the next bypass-protocol datagram, if any.
    pub fn bypass_recv(&mut self) -> Option<(Ipv4Addr, Vec<u8>)> {
        self.bypass_rx.pop_front()
    }

    /// Bind a UDP port *through the host's port allocator*, honouring the
    /// §7.1 quarantine when one is configured (direct `host.udp.bind`
    /// bypasses the allocator, reproducing historical behaviour).
    pub fn udp_bind(&mut self, port: u16, now_secs: u64) -> Result<u16> {
        self.ports.bind(port, now_secs)?;
        self.udp.bind(port)?;
        Ok(port)
    }

    /// Bind an ephemeral UDP port through the allocator.
    pub fn udp_bind_ephemeral(&mut self, now_secs: u64) -> Result<u16> {
        let port = self.ports.ephemeral(now_secs)?;
        self.udp.bind(port)?;
        Ok(port)
    }

    /// Close a UDP port, releasing it into quarantine.
    pub fn udp_close(&mut self, port: u16, now_secs: u64) {
        self.udp.unbind(port);
        self.ports.release(port, now_secs);
    }

    /// Send a raw-IP datagram (ICMP-like protocols outside UDP/MRT).
    pub fn raw_send(&mut self, proto: u8, dst: Ipv4Addr, data: &[u8], now_us: u64) -> Result<()> {
        let header = Ipv4Header::new(self.addr, dst, Proto::from_number(proto), data.len());
        self.ip_output(header, data.to_vec(), now_us)
    }

    /// Receive the next raw-IP datagram, if any: (proto, src, data).
    pub fn raw_recv(&mut self) -> Option<(u8, Ipv4Addr, Vec<u8>)> {
        self.raw_rx.pop_front()
    }
}

/// A collection of hosts on one shared segment, driven in virtual time.
pub struct Network {
    /// The shared medium.
    pub segment: Segment,
    hosts: HashMap<Ipv4Addr, Host>,
    /// Promiscuous capture of every delivered frame (a tcpdump sniffer on
    /// the shared segment, as in the paper's §7.3 measurement setup).
    capture: Option<Vec<(u64, Vec<u8>)>>,
    /// Frames addressed to no host on this segment, held for a gateway
    /// (see [`Network::take_unrouted`]); dropped when `None`.
    unrouted: Option<Vec<(u64, Vec<u8>)>>,
}

impl Network {
    /// Create a network over a segment with the given seed and impairments.
    pub fn new(seed: u64, imp: Impairments) -> Self {
        Network {
            segment: Segment::new(seed, imp),
            hosts: HashMap::new(),
            capture: None,
            unrouted: None,
        }
    }

    /// Start collecting frames addressed to off-segment hosts instead of
    /// dropping them — the input queue of an attached gateway/router.
    pub fn enable_gateway_queue(&mut self) {
        self.unrouted = Some(Vec::new());
    }

    /// Take frames waiting for the gateway.
    pub fn take_unrouted(&mut self) -> Vec<(u64, Vec<u8>)> {
        self.unrouted.replace(Vec::new()).unwrap_or_default()
    }

    /// Is `addr` a host on this segment?
    pub fn has_host(&self, addr: Ipv4Addr) -> bool {
        self.hosts.contains_key(&addr)
    }

    /// Start capturing every frame the segment delivers (promiscuous
    /// sniffer). Frames are recorded with their virtual arrival time.
    pub fn enable_capture(&mut self) {
        self.capture = Some(Vec::new());
    }

    /// Take the captured frames recorded so far.
    pub fn take_capture(&mut self) -> Vec<(u64, Vec<u8>)> {
        self.capture.replace(Vec::new()).unwrap_or_default()
    }

    /// Attach a host.
    pub fn add_host(&mut self, host: Host) {
        self.hosts.insert(host.addr(), host);
    }

    /// Mutable access to a host.
    ///
    /// # Panics
    /// Panics if no host has that address.
    pub fn host_mut(&mut self, addr: Ipv4Addr) -> &mut Host {
        self.hosts.get_mut(&addr).expect("unknown host address")
    }

    /// Current virtual time.
    pub fn now_us(&self) -> u64 {
        self.segment.now_us()
    }

    /// One simulation step of `dt_us`: drive hosts, move frames, deliver.
    ///
    /// Consecutive frames arriving at the same host in the same link tick
    /// are coalesced into one [`Host::deliver_frames`] batch, so a burst
    /// (an MRT window, a fragment train) crosses the input hook in a
    /// single `process_batch` call.
    pub fn step(&mut self, dt_us: u64) {
        let now = self.segment.now_us();
        for h in self.hosts.values_mut() {
            h.poll(now);
        }
        let frames: Vec<Vec<u8>> = self
            .hosts
            .values_mut()
            .flat_map(|h| h.take_frames())
            .collect();
        for f in frames {
            self.segment.transmit(f);
        }
        let mut batch: Vec<Vec<u8>> = Vec::new();
        let mut batch_dst: Option<Ipv4Addr> = None;
        let mut batch_t = 0u64;
        for (t, frame) in self.segment.advance(dt_us) {
            if let Some(cap) = &mut self.capture {
                cap.push((t, frame.clone()));
            }
            // Shared medium: route by destination address. A corrupted
            // header checksum still reaches the host (the NIC filter only
            // looks at addresses) and is dropped there; if the *address
            // bytes themselves* were corrupted, the frame goes nowhere —
            // equivalent to an Ethernet CRC drop.
            match Ipv4Header::decode(&frame) {
                Ok(hdr) if self.hosts.contains_key(&hdr.dst) => {
                    if batch_dst != Some(hdr.dst) {
                        if let Some(dst) = batch_dst.take() {
                            self.hosts
                                .get_mut(&dst)
                                .expect("batched host exists")
                                .deliver_frames(&batch, batch_t);
                            batch.clear();
                        }
                        batch_dst = Some(hdr.dst);
                    }
                    // Arrival times within one step differ by at most the
                    // step granularity; the batch lands at the time of its
                    // last frame (when all of it has really arrived).
                    batch_t = t;
                    batch.push(frame);
                }
                Ok(_) => {
                    if let Some(q) = &mut self.unrouted {
                        q.push((t, frame));
                    }
                }
                Err(_) => {}
            }
        }
        if let Some(dst) = batch_dst {
            self.hosts
                .get_mut(&dst)
                .expect("batched host exists")
                .deliver_frames(&batch, batch_t);
        }
    }

    /// Run for `duration_us` in steps of `step_us`.
    pub fn run(&mut self, duration_us: u64, step_us: u64) {
        let end = self.segment.now_us() + duration_us;
        while self.segment.now_us() < end {
            self.step(step_us.min(end - self.segment.now_us()));
        }
    }

    /// Run until no frames are in flight and no host has output pending,
    /// or `max_us` of virtual time elapses.
    pub fn run_until_quiet(&mut self, max_us: u64) {
        let end = self.segment.now_us() + max_us;
        loop {
            self.step(1_000);
            let quiet = self.segment.idle();
            if quiet || self.segment.now_us() >= end {
                // One extra step lets responses flush.
                self.step(1_000);
                if self.segment.idle() || self.segment.now_us() >= end {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = [10, 0, 0, 1];
    const B: Ipv4Addr = [10, 0, 0, 2];

    fn two_hosts(imp: Impairments) -> Network {
        let mut net = Network::new(99, imp);
        net.add_host(Host::new(A, 1500));
        net.add_host(Host::new(B, 1500));
        net
    }

    #[test]
    fn udp_end_to_end() {
        let mut net = two_hosts(Impairments::default());
        net.host_mut(B).udp.bind(53).unwrap();
        net.host_mut(A).udp_send(1234, B, 53, b"ping", 0).unwrap();
        net.run(10_000, 1_000);
        let got = net.host_mut(B).udp.recv(53).unwrap();
        assert_eq!(got.data, b"ping");
        assert_eq!(got.src, A);
        assert_eq!(got.src_port, 1234);
    }

    #[test]
    fn udp_large_datagram_fragments_and_reassembles() {
        let mut net = two_hosts(Impairments::default());
        net.host_mut(B).udp.bind(53).unwrap();
        let big = vec![7u8; 6000];
        net.host_mut(A).udp_send(1234, B, 53, &big, 0).unwrap();
        // 6008-byte UDP segment over MTU 1500 ⇒ 5 fragments.
        net.run(50_000, 1_000);
        let got = net.host_mut(B).udp.recv(53).unwrap();
        assert_eq!(got.data, big);
        assert!(net.host_mut(A).stats().frames_sent >= 5);
    }

    #[test]
    fn bypass_datagrams_flow() {
        let mut net = two_hosts(Impairments::default());
        net.host_mut(A).bypass_send(B, b"cert request", 0).unwrap();
        net.run(10_000, 1_000);
        let (src, data) = net.host_mut(B).bypass_recv().unwrap();
        assert_eq!(src, A);
        assert_eq!(data, b"cert request");
    }

    #[test]
    fn mrt_end_to_end_over_network() {
        let mut net = two_hosts(Impairments::default());
        net.host_mut(B).mrt.listen(80);
        let key = net.host_mut(A).mrt.connect(2000, B, 80);
        net.run(100_000, 1_000);
        assert_eq!(
            net.host_mut(A).mrt.state(&key),
            Some(crate::mrt::ConnState::Established)
        );
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        net.host_mut(A).mrt.send(&key, &data).unwrap();
        net.run(2_000_000, 1_000);
        let got = net.host_mut(B).mrt.recv(&(80, A, 2000), usize::MAX);
        assert_eq!(got, data);
    }

    #[test]
    fn mrt_survives_lossy_network() {
        let mut net = two_hosts(Impairments::lossy(0.15, 0.0375, 0.0375, 500));
        net.host_mut(B).mrt.listen(80);
        let key = net.host_mut(A).mrt.connect(2000, B, 80);
        net.run(3_000_000, 1_000);
        let data: Vec<u8> = (0..5_000u32).map(|i| (i % 241) as u8).collect();
        net.host_mut(A).mrt.send(&key, &data).unwrap();
        let mut got = Vec::new();
        for _ in 0..400 {
            net.run(100_000, 1_000);
            got.extend(net.host_mut(B).mrt.recv(&(80, A, 2000), usize::MAX));
            if got.len() >= data.len() {
                break;
            }
        }
        assert_eq!(got, data, "reliable transfer despite 15% loss");
        assert!(net.host_mut(A).mrt.conn(&key).unwrap().retransmissions > 0);
    }

    #[test]
    fn corrupted_frames_dropped_by_checksum() {
        let imp = Impairments {
            corrupt: 1.0,
            ..Impairments::default()
        };
        let mut net = two_hosts(imp);
        net.host_mut(B).udp.bind(53).unwrap();
        for _ in 0..5 {
            net.host_mut(A).udp_send(1, B, 53, b"data", 0).unwrap();
        }
        net.run(100_000, 1_000);
        // Every frame had a bit flipped: it either fails the IP header
        // checksum at B, vanishes (address corruption), or fails the UDP
        // checksum — none may be delivered intact... unless the flip hit
        // the UDP checksum field itself making it 0 ("no checksum"), which
        // is vanishingly unlikely to also pass; we accept <=1 delivery.
        assert!(net.host_mut(B).udp.pending(53) <= 1);
    }

    #[test]
    fn allocator_backed_udp_bind_enforces_quarantine() {
        let mut h = Host::new(A, 1500);
        h.ports = crate::ports::PortAllocator::new(600); // the §7.1 fix
        assert_eq!(h.udp_bind(4000, 0).unwrap(), 4000);
        h.udp_close(4000, 100);
        // Within THRESHOLD: refused (attack window closed)...
        assert!(h.udp_bind(4000, 110).is_err());
        assert!(!h.udp.is_bound(4000));
        // ...after THRESHOLD: fine.
        assert_eq!(h.udp_bind(4000, 701).unwrap(), 4000);
        // Ephemeral path also honours the allocator.
        let e = h.udp_bind_ephemeral(701).unwrap();
        assert!(h.udp.is_bound(e));
    }

    #[test]
    fn raw_ip_datagrams_flow() {
        let mut net = two_hosts(Impairments::default());
        net.host_mut(A).raw_send(1, B, b"echo request", 0).unwrap(); // ICMP-ish
        net.run(10_000, 1_000);
        let (proto, src, data) = net.host_mut(B).raw_recv().unwrap();
        assert_eq!(proto, 1);
        assert_eq!(src, A);
        assert_eq!(data, b"echo request");
    }

    #[test]
    fn run_until_quiet_terminates() {
        let mut net = two_hosts(Impairments::default());
        net.host_mut(B).udp.bind(9).unwrap();
        net.host_mut(A).udp_send(1, B, 9, b"x", 0).unwrap();
        net.run_until_quiet(1_000_000);
        assert_eq!(net.host_mut(B).udp.pending(9), 1);
    }

    #[test]
    fn scalar_and_batch_input_cross_hook_once_per_batch() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc as StdArc;

        /// Hook that counts batches and datagrams through shared atomics.
        struct SharedCounting {
            batches: StdArc<AtomicUsize>,
            datagrams: StdArc<AtomicUsize>,
        }
        impl SecurityHooks for SharedCounting {
            fn covers(&self, proto: u8) -> bool {
                proto == Proto::Udp.number()
            }
            fn max_overhead(&self) -> usize {
                0
            }
            fn process_batch(
                &mut self,
                _dir: Direction,
                batch: Vec<Datagram>,
                _pool: &mut BufferPool,
                _now_us: u64,
            ) -> Vec<(Ipv4Header, HookOutcome)> {
                self.batches.fetch_add(1, Ordering::Relaxed);
                self.datagrams.fetch_add(batch.len(), Ordering::Relaxed);
                batch
                    .into_iter()
                    .map(|dg| (dg.header, HookOutcome::Pass(dg.payload)))
                    .collect()
            }
        }

        let batches = StdArc::new(AtomicUsize::new(0));
        let datagrams = StdArc::new(AtomicUsize::new(0));
        let mut rx = Host::new(B, 1500);
        rx.udp.bind(53).unwrap();
        rx.install_hooks(Box::new(SharedCounting {
            batches: StdArc::clone(&batches),
            datagrams: StdArc::clone(&datagrams),
        }));

        // Build three UDP frames addressed to B.
        let mut tx = Host::new(A, 1500);
        for i in 0..3u8 {
            tx.udp_send(1000, B, 53, &[i; 8], 0).unwrap();
        }
        let frames = tx.take_frames();
        assert_eq!(frames.len(), 3);

        // Batch delivery: ONE hook call carrying all three datagrams.
        rx.deliver_frames(&frames, 0);
        assert_eq!(batches.load(Ordering::Relaxed), 1, "one batch call");
        assert_eq!(datagrams.load(Ordering::Relaxed), 3);
        assert_eq!(rx.udp.pending(53), 3);

        // Scalar delivery still works (one batch of one per frame).
        for i in 0..2u8 {
            tx.udp_send(1000, B, 53, &[i; 8], 0).unwrap();
        }
        for f in tx.take_frames() {
            rx.deliver_frame(&f, 0);
        }
        assert_eq!(batches.load(Ordering::Relaxed), 3);
        assert_eq!(datagrams.load(Ordering::Relaxed), 5);
        assert_eq!(rx.udp.pending(53), 5);
    }

    #[test]
    fn network_step_coalesces_same_tick_frames_into_one_batch() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc as StdArc;

        struct BatchSpy {
            input_batches: StdArc<AtomicUsize>,
            input_datagrams: StdArc<AtomicUsize>,
        }
        impl SecurityHooks for BatchSpy {
            fn covers(&self, proto: u8) -> bool {
                proto == Proto::Udp.number()
            }
            fn max_overhead(&self) -> usize {
                0
            }
            fn process_batch(
                &mut self,
                dir: Direction,
                batch: Vec<Datagram>,
                _pool: &mut BufferPool,
                _now_us: u64,
            ) -> Vec<(Ipv4Header, HookOutcome)> {
                if matches!(dir, Direction::Input) {
                    self.input_batches.fetch_add(1, Ordering::Relaxed);
                    self.input_datagrams
                        .fetch_add(batch.len(), Ordering::Relaxed);
                }
                batch
                    .into_iter()
                    .map(|dg| (dg.header, HookOutcome::Pass(dg.payload)))
                    .collect()
            }
        }

        let batches = StdArc::new(AtomicUsize::new(0));
        let datagrams = StdArc::new(AtomicUsize::new(0));
        let mut net = two_hosts(Impairments::default());
        net.host_mut(B).udp.bind(53).unwrap();
        net.host_mut(B).install_hooks(Box::new(BatchSpy {
            input_batches: StdArc::clone(&batches),
            input_datagrams: StdArc::clone(&datagrams),
        }));
        for i in 0..4u8 {
            net.host_mut(A).udp_send(1000, B, 53, &[i; 16], 0).unwrap();
        }
        net.run(20_000, 1_000);
        assert_eq!(net.host_mut(B).udp.pending(53), 4, "all delivered");
        let nb = batches.load(Ordering::Relaxed);
        let nd = datagrams.load(Ordering::Relaxed);
        assert_eq!(nd, 4);
        assert!(
            nb < nd,
            "same-tick frames must coalesce: {nb} batches for {nd} datagrams"
        );
    }

    #[test]
    fn input_pipeline_reuses_pooled_buffers() {
        let mut net = two_hosts(Impairments::default());
        net.host_mut(B).udp.bind(53).unwrap();
        // Warm-up burst populates B's pool (UDP dispatch recycles). It
        // must match the steady burst size: a coalesced batch holds all
        // its payload buffers concurrently before dispatch recycles them.
        for _ in 0..8 {
            net.host_mut(A).udp_send(1, B, 53, b"warmup", 0).unwrap();
        }
        net.run(20_000, 1_000);
        let warm = net.host_mut(B).pool_stats();
        for _ in 0..8 {
            net.host_mut(A).udp_send(1, B, 53, b"steady", 0).unwrap();
        }
        net.run(20_000, 1_000);
        let steady = net.host_mut(B).pool_stats();
        assert_eq!(
            steady.misses, warm.misses,
            "steady-state input path allocates no new payload buffers"
        );
        assert!(steady.hits > warm.hits, "pool takes served from freelist");
    }
}
