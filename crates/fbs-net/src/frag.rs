//! IP fragmentation and reassembly.
//!
//! The FBS output hook runs *before* fragmentation and the input hook runs
//! *after* reassembly (§7.2), so FBS "receives the benefits of IP
//! fragmentation and reassembly" — one security flow header protects the
//! whole datagram no matter how the network slices it. This module supplies
//! those two halves for the simulated stack.

use crate::error::{NetError, Result};
use crate::ip::{Ipv4Header, Packet, IPV4_HEADER_LEN};
use fbs_core::BufferPool;
use std::collections::HashMap;

/// Split `packet` into MTU-sized fragments.
///
/// Returns a single-element vector when the packet already fits. Fails
/// with [`NetError::WouldFragment`] when the packet is oversized but DF is
/// set — the situation the paper's `tcp_output.c` patch prevents by
/// accounting for the FBS header when computing the segment size.
///
/// Compatibility wrapper over [`fragment_pooled`] with a transient
/// non-pooling pool: each fragment still gets a fresh allocation.
pub fn fragment(packet: Packet, mtu: usize) -> Result<Vec<Packet>> {
    let mut pool = BufferPool::with_limits(0, 0);
    fragment_pooled(packet, mtu, &mut pool)
}

/// [`fragment`] with buffer reuse: every fragment payload is drawn from
/// `pool`, and when the packet is actually split, the parent payload is
/// returned to `pool` — so a steady stream of oversized datagrams recycles
/// its fragment buffers instead of allocating one per fragment.
pub fn fragment_pooled(packet: Packet, mtu: usize, pool: &mut BufferPool) -> Result<Vec<Packet>> {
    assert!(mtu >= IPV4_HEADER_LEN + 8, "MTU too small to carry data");
    let total = IPV4_HEADER_LEN + packet.payload.len();
    if total <= mtu {
        return Ok(vec![packet]);
    }
    if packet.header.dont_fragment {
        return Err(NetError::WouldFragment { len: total, mtu });
    }
    // Fragment payload sizes must be multiples of 8 (offsets are in 8-byte
    // units), except for the final fragment.
    let chunk = ((mtu - IPV4_HEADER_LEN) / 8) * 8;
    let mut out = Vec::with_capacity(packet.payload.len().div_ceil(chunk));
    let mut offset = 0usize;
    while offset < packet.payload.len() {
        let end = (offset + chunk).min(packet.payload.len());
        let last = end == packet.payload.len();
        let mut h = packet.header.clone();
        h.frag_offset = packet.header.frag_offset + (offset / 8) as u16;
        h.more_fragments = !last || packet.header.more_fragments;
        let mut buf = pool.take();
        buf.extend_from_slice(&packet.payload[offset..end]);
        out.push(Packet::new(h, buf));
        offset = end;
    }
    pool.put(packet.payload);
    Ok(out)
}

/// Key identifying one datagram's fragments.
type FragKey = ([u8; 4], [u8; 4], u16, u8);

struct Partial {
    /// (byte offset, payload, more_fragments) per received fragment.
    pieces: Vec<(usize, Vec<u8>, bool)>,
    header: Ipv4Header,
    first_seen_us: u64,
}

impl Partial {
    /// Try to stitch the pieces into a complete payload, drawn from `pool`.
    fn assemble(&self, pool: &mut BufferPool) -> Option<Vec<u8>> {
        // Find the terminal fragment to learn the total size.
        let (final_off, final_payload) = self
            .pieces
            .iter()
            .find(|(_, _, mf)| !mf)
            .map(|(off, p, _)| (*off, p.len()))?;
        let total = final_off + final_payload;
        let mut buf = pool.take();
        buf.resize(total, 0);
        let mut covered = vec![false; total];
        for (off, payload, _) in &self.pieces {
            if off + payload.len() > total {
                pool.put(buf);
                return None; // inconsistent; wait for timeout
            }
            buf[*off..*off + payload.len()].copy_from_slice(payload);
            covered[*off..*off + payload.len()]
                .iter_mut()
                .for_each(|c| *c = true);
        }
        if covered.iter().all(|&c| c) {
            Some(buf)
        } else {
            pool.put(buf);
            None
        }
    }
}

/// Reassembles fragments into whole datagrams, expiring stale buffers.
pub struct Reassembler {
    buffers: HashMap<FragKey, Partial>,
    /// Buffers older than this are dropped (BSD used 30 s; expressed in
    /// microseconds of virtual time).
    timeout_us: u64,
    /// Datagrams whose reassembly timed out.
    pub timeouts: u64,
}

impl Reassembler {
    /// Create with the given reassembly timeout.
    pub fn new(timeout_us: u64) -> Self {
        Reassembler {
            buffers: HashMap::new(),
            timeout_us,
            timeouts: 0,
        }
    }

    /// Accept a packet; returns a complete datagram when reassembly (or a
    /// pass-through of an unfragmented packet) finishes.
    ///
    /// Compatibility wrapper over [`Self::push_pooled`] with a transient
    /// non-pooling pool.
    pub fn push(&mut self, packet: Packet, now_us: u64) -> Option<Packet> {
        let mut pool = BufferPool::with_limits(0, 0);
        self.push_pooled(packet, now_us, &mut pool)
    }

    /// [`Self::push`] with buffer reuse: the assembled payload is drawn
    /// from `pool`, and the consumed fragment payloads are returned to it
    /// once a datagram completes — closing the loop with
    /// [`fragment_pooled`].
    pub fn push_pooled(
        &mut self,
        packet: Packet,
        now_us: u64,
        pool: &mut BufferPool,
    ) -> Option<Packet> {
        if packet.header.frag_offset == 0 && !packet.header.more_fragments {
            return Some(packet); // not fragmented
        }
        let key = (
            packet.header.src,
            packet.header.dst,
            packet.header.id,
            packet.header.proto,
        );
        let entry = self.buffers.entry(key).or_insert_with(|| Partial {
            pieces: Vec::new(),
            header: packet.header.clone(),
            first_seen_us: now_us,
        });
        let off = packet.header.frag_offset as usize * 8;
        // Duplicate fragments (the network may duplicate) are replaced.
        entry.pieces.retain(|(o, _, _)| *o != off);
        entry
            .pieces
            .push((off, packet.payload, packet.header.more_fragments));
        if let Some(payload) = entry.assemble(pool) {
            let mut header = entry.header.clone();
            header.frag_offset = 0;
            header.more_fragments = false;
            let partial = self.buffers.remove(&key).expect("entry just inserted");
            for (_, piece, _) in partial.pieces {
                pool.put(piece);
            }
            return Some(Packet::new(header, payload));
        }
        None
    }

    /// Drop buffers older than the timeout, recycling every held fragment
    /// payload into `pool`; returns how many partials were dropped.
    pub fn expire(&mut self, now_us: u64, pool: &mut BufferPool) -> usize {
        let timeout = self.timeout_us;
        let mut dropped = 0usize;
        let stale: Vec<_> = self
            .buffers
            .iter()
            .filter(|(_, p)| now_us.saturating_sub(p.first_seen_us) > timeout)
            .map(|(k, _)| *k)
            .collect();
        for key in stale {
            let partial = self.buffers.remove(&key).expect("key from iteration");
            for (_, piece, _) in partial.pieces {
                pool.put(piece);
            }
            dropped += 1;
        }
        self.timeouts += dropped as u64;
        dropped
    }

    /// Number of datagrams currently being reassembled.
    pub fn pending(&self) -> usize {
        self.buffers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::Proto;

    fn packet(payload_len: usize) -> Packet {
        let mut h = Ipv4Header::new([1, 1, 1, 1], [2, 2, 2, 2], Proto::Udp, payload_len);
        h.id = 777;
        let payload: Vec<u8> = (0..payload_len).map(|i| i as u8).collect();
        Packet::new(h, payload)
    }

    #[test]
    fn small_packet_passes_through() {
        let p = packet(100);
        let frags = fragment(p.clone(), 1500).unwrap();
        assert_eq!(frags, vec![p]);
    }

    #[test]
    fn oversize_with_df_errors() {
        let mut p = packet(3000);
        p.header.dont_fragment = true;
        assert!(matches!(
            fragment(p, 1500),
            Err(NetError::WouldFragment {
                len: 3020,
                mtu: 1500
            })
        ));
    }

    #[test]
    fn fragment_sizes_and_flags() {
        let p = packet(3000);
        let frags = fragment(p, 1500).unwrap();
        assert_eq!(frags.len(), 3); // 1480 + 1480 + 40
        assert!(frags[0].header.more_fragments);
        assert!(frags[1].header.more_fragments);
        assert!(!frags[2].header.more_fragments);
        assert_eq!(frags[0].header.frag_offset, 0);
        assert_eq!(frags[1].header.frag_offset, 185); // 1480/8
        assert_eq!(frags[2].header.frag_offset, 370);
        assert_eq!(frags[0].payload.len() % 8, 0);
    }

    #[test]
    fn fragment_reassemble_roundtrip() {
        let p = packet(5000);
        let frags = fragment(p.clone(), 1500).unwrap();
        let mut r = Reassembler::new(30_000_000);
        let mut out = None;
        for f in frags {
            out = r.push(f, 0);
        }
        let got = out.expect("complete after last fragment");
        assert_eq!(got.payload, p.payload);
        assert_eq!(got.header.total_len, p.header.total_len);
        assert!(!got.header.more_fragments);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn out_of_order_reassembly() {
        let p = packet(4000);
        let mut frags = fragment(p.clone(), 1000).unwrap();
        frags.reverse();
        let mut r = Reassembler::new(30_000_000);
        let mut out = None;
        for f in frags {
            let res = r.push(f, 0);
            if res.is_some() {
                out = res;
            }
        }
        assert_eq!(out.unwrap().payload, p.payload);
    }

    #[test]
    fn duplicate_fragments_tolerated() {
        let p = packet(3000);
        let frags = fragment(p.clone(), 1500).unwrap();
        let mut r = Reassembler::new(30_000_000);
        r.push(frags[0].clone(), 0);
        r.push(frags[0].clone(), 0); // duplicate
        r.push(frags[1].clone(), 0);
        let got = r.push(frags[2].clone(), 0).unwrap();
        assert_eq!(got.payload, p.payload);
    }

    #[test]
    fn missing_fragment_never_completes_then_expires() {
        let p = packet(3000);
        let frags = fragment(p, 1500).unwrap();
        let mut r = Reassembler::new(30_000_000);
        assert!(r.push(frags[0].clone(), 0).is_none());
        assert!(r.push(frags[2].clone(), 0).is_none());
        assert_eq!(r.pending(), 1);
        let mut pool = BufferPool::new();
        assert_eq!(r.expire(40_000_000, &mut pool), 1);
        assert_eq!(r.timeouts, 1);
        assert_eq!(r.pending(), 0);
        // Both held fragment payloads were recycled, not dropped.
        assert_eq!(pool.stats().returns, 2);
    }

    #[test]
    fn interleaved_datagrams_kept_apart() {
        let mut p1 = packet(2000);
        p1.header.id = 1;
        let mut p2 = packet(2000);
        p2.header.id = 2;
        for p in [&mut p1, &mut p2] {
            p.payload = Packet::new(p.header.clone(), p.payload.clone()).payload;
        }
        let f1 = fragment(p1.clone(), 1000).unwrap();
        let f2 = fragment(p2.clone(), 1000).unwrap();
        let mut r = Reassembler::new(30_000_000);
        r.push(f1[0].clone(), 0);
        r.push(f2[0].clone(), 0);
        r.push(f2[1].clone(), 0);
        let done2 = r.push(f2[2].clone(), 0).unwrap();
        assert_eq!(done2.header.id, 2);
        r.push(f1[1].clone(), 0);
        let done1 = r.push(f1[2].clone(), 0).unwrap();
        assert_eq!(done1.header.id, 1);
    }

    #[test]
    #[should_panic(expected = "MTU too small")]
    fn tiny_mtu_panics() {
        let _ = fragment(packet(100), 20);
    }

    #[test]
    fn pooled_fragmentation_recycles_parent_and_pieces() {
        // fragment_pooled: parent payload returns to the pool; fragments
        // draw from it. push_pooled: completed reassembly returns every
        // piece and draws the assembled buffer. End to end, the second
        // datagram's buffers all come off the freelist.
        let mut pool = BufferPool::with_limits(16, 2048);
        for round in 0..2 {
            let p = packet(3000);
            let frags = fragment_pooled(p, 1500, &mut pool).unwrap();
            assert_eq!(frags.len(), 3);
            let mut r = Reassembler::new(30_000_000);
            let mut out = None;
            for f in frags {
                out = r.push_pooled(f, 0, &mut pool);
            }
            let got = out.expect("complete after last fragment");
            assert_eq!(got.payload, packet(3000).payload);
            pool.put(got.payload);
            if round == 1 {
                // Only round 1's three cold fragment takes missed: the
                // parent payload recycled by fragment_pooled immediately
                // serves round 1's assemble take, and round 2 (3 fragment
                // takes + 1 assemble take) runs entirely off the freelist.
                let s = pool.stats();
                assert_eq!(s.misses, 3, "only the cold fragment takes miss");
                assert_eq!(s.hits, 5);
            }
        }
    }
}
