//! Property-based tests for the network substrate: codec totality,
//! fragmentation/reassembly laws, checksum behaviour.

// Property tests are opt-in: run with `cargo test --features props`.
#![cfg(feature = "props")]
use fbs_net::frag::{fragment, Reassembler};
use fbs_net::ip::{internet_checksum, Ipv4Header, Packet, Proto, IPV4_HEADER_LEN};
use fbs_net::mrt::{Flags, MrtHeader};
use fbs_net::udp;
use proptest::prelude::*;

proptest! {
    #[test]
    fn ip_header_roundtrips(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        proto in any::<u8>(),
        payload_len in 0usize..1000,
        id in any::<u16>(),
        ttl in any::<u8>(),
        df in any::<bool>(),
    ) {
        let mut h = Ipv4Header::new(src, dst, Proto::from_number(proto), payload_len);
        h.id = id;
        h.ttl = ttl;
        h.dont_fragment = df;
        let parsed = Ipv4Header::decode(&h.encode()).unwrap();
        prop_assert_eq!(parsed, h);
    }

    #[test]
    fn ip_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Ipv4Header::decode(&bytes);
        let _ = Packet::decode(&bytes);
    }

    #[test]
    fn checksummed_header_verifies_to_zero(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        len in 0usize..500,
    ) {
        let h = Ipv4Header::new(src, dst, Proto::Udp, len);
        prop_assert_eq!(internet_checksum(&h.encode()), 0);
    }

    #[test]
    fn single_bit_flip_always_detected_by_checksum(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        byte in 0usize..IPV4_HEADER_LEN,
        bit in 0u8..8,
    ) {
        // The internet checksum catches all single-bit errors.
        let h = Ipv4Header::new(src, dst, Proto::Udp, 64);
        let mut bytes = h.encode();
        bytes[byte] ^= 1 << bit;
        prop_assert!(Ipv4Header::decode(&bytes).is_err());
    }

    #[test]
    fn fragmentation_conserves_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..5000),
        mtu in 68usize..1500,
    ) {
        let h = Ipv4Header::new([1, 1, 1, 1], [2, 2, 2, 2], Proto::Udp, payload.len());
        let packet = Packet::new(h, payload.clone());
        let frags = fragment(packet, mtu).unwrap();
        // Every fragment obeys the MTU; offsets are 8-aligned except none;
        // concatenation (by offset) equals the original payload.
        let mut reconstructed = vec![0u8; payload.len()];
        for f in &frags {
            prop_assert!(IPV4_HEADER_LEN + f.payload.len() <= mtu);
            let off = f.header.frag_offset as usize * 8;
            reconstructed[off..off + f.payload.len()].copy_from_slice(&f.payload);
        }
        prop_assert_eq!(reconstructed, payload);
        // Exactly the last fragment clears more_fragments.
        let mf_count = frags.iter().filter(|f| f.header.more_fragments).count();
        prop_assert_eq!(mf_count, frags.len() - 1);
    }

    #[test]
    fn reassembly_order_invariant(
        payload in proptest::collection::vec(any::<u8>(), 100..4000),
        mtu in 68usize..800,
        seed in any::<u64>(),
    ) {
        let h = Ipv4Header::new([1, 1, 1, 1], [2, 2, 2, 2], Proto::Udp, payload.len());
        let packet = Packet::new(h, payload.clone());
        let mut frags = fragment(packet, mtu).unwrap();
        // Deterministic shuffle from the seed.
        let mut s = seed;
        for i in (1..frags.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            frags.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut r = Reassembler::new(u64::MAX);
        let mut done = None;
        for f in frags {
            if let Some(p) = r.push(f, 0) {
                done = Some(p);
            }
        }
        prop_assert_eq!(done.unwrap().payload, payload);
        prop_assert_eq!(r.pending(), 0);
    }

    #[test]
    fn udp_codec_roundtrips(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        data in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let seg = udp::encode(src, dst, sp, dp, &data);
        let (h, got) = udp::decode(src, dst, &seg).unwrap();
        prop_assert_eq!(h.src_port, sp);
        prop_assert_eq!(h.dst_port, dp);
        prop_assert_eq!(got, &data[..]);
    }

    #[test]
    fn udp_decode_never_panics(
        src in any::<[u8; 4]>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let _ = udp::decode(src, [9, 9, 9, 9], &bytes);
    }

    #[test]
    fn mrt_header_roundtrips(
        sp in any::<u16>(),
        dp in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in 0u8..8,
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let h = MrtHeader {
            src_port: sp,
            dst_port: dp,
            seq,
            ack,
            flags: Flags(flags),
            len: data.len() as u16,
        };
        let bytes = h.encode(&data);
        let (parsed, got) = MrtHeader::decode(&bytes).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(got, &data[..]);
    }

    #[test]
    fn mrt_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = MrtHeader::decode(&bytes);
    }

    #[test]
    fn host_survives_arbitrary_frames(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..120),
            0..40,
        ),
    ) {
        // Fuzz the whole input path: random garbage delivered to a host
        // with live UDP and MRT state must never panic, and well-formed
        // traffic afterwards must still work.
        use fbs_net::stack::Host;
        let mut h = Host::new([9, 9, 9, 9], 1500);
        h.udp.bind(53).unwrap();
        h.mrt.listen(80);
        for (i, f) in frames.iter().enumerate() {
            h.deliver_frame(f, i as u64 * 1000);
        }
        // Still functional: a valid self-addressed UDP datagram delivers.
        let seg = fbs_net::udp::encode([1, 1, 1, 1], [9, 9, 9, 9], 1234, 53, b"ok");
        let packet = fbs_net::ip::Packet::new(
            fbs_net::ip::Ipv4Header::new([1, 1, 1, 1], [9, 9, 9, 9], fbs_net::ip::Proto::Udp, seg.len()),
            seg,
        );
        h.deliver_frame(&packet.encode(), 999_999);
        prop_assert_eq!(h.udp.pending(53), 1);
    }
}
