//! Property-based tests for the network substrate: codec totality,
//! fragmentation/reassembly laws, checksum behaviour.

// Property tests are opt-in: run with `cargo test --features props`.
#![cfg(feature = "props")]
use fbs_net::frag::{fragment, Reassembler};
use fbs_net::ip::{internet_checksum, Ipv4Header, Packet, Proto, IPV4_HEADER_LEN};
use fbs_net::mrt::{Flags, MrtHeader};
use fbs_net::udp;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

proptest! {
    #[test]
    fn ip_header_roundtrips(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        proto in any::<u8>(),
        payload_len in 0usize..1000,
        id in any::<u16>(),
        ttl in any::<u8>(),
        df in any::<bool>(),
    ) {
        let mut h = Ipv4Header::new(src, dst, Proto::from_number(proto), payload_len);
        h.id = id;
        h.ttl = ttl;
        h.dont_fragment = df;
        let parsed = Ipv4Header::decode(&h.encode()).unwrap();
        prop_assert_eq!(parsed, h);
    }

    #[test]
    fn ip_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Ipv4Header::decode(&bytes);
        let _ = Packet::decode(&bytes);
    }

    #[test]
    fn checksummed_header_verifies_to_zero(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        len in 0usize..500,
    ) {
        let h = Ipv4Header::new(src, dst, Proto::Udp, len);
        prop_assert_eq!(internet_checksum(&h.encode()), 0);
    }

    #[test]
    fn single_bit_flip_always_detected_by_checksum(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        byte in 0usize..IPV4_HEADER_LEN,
        bit in 0u8..8,
    ) {
        // The internet checksum catches all single-bit errors.
        let h = Ipv4Header::new(src, dst, Proto::Udp, 64);
        let mut bytes = h.encode();
        bytes[byte] ^= 1 << bit;
        prop_assert!(Ipv4Header::decode(&bytes).is_err());
    }

    #[test]
    fn fragmentation_conserves_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..5000),
        mtu in 68usize..1500,
    ) {
        let h = Ipv4Header::new([1, 1, 1, 1], [2, 2, 2, 2], Proto::Udp, payload.len());
        let packet = Packet::new(h, payload.clone());
        let frags = fragment(packet, mtu).unwrap();
        // Every fragment obeys the MTU; offsets are 8-aligned except none;
        // concatenation (by offset) equals the original payload.
        let mut reconstructed = vec![0u8; payload.len()];
        for f in &frags {
            prop_assert!(IPV4_HEADER_LEN + f.payload.len() <= mtu);
            let off = f.header.frag_offset as usize * 8;
            reconstructed[off..off + f.payload.len()].copy_from_slice(&f.payload);
        }
        prop_assert_eq!(reconstructed, payload);
        // Exactly the last fragment clears more_fragments.
        let mf_count = frags.iter().filter(|f| f.header.more_fragments).count();
        prop_assert_eq!(mf_count, frags.len() - 1);
    }

    #[test]
    fn reassembly_order_invariant(
        payload in proptest::collection::vec(any::<u8>(), 100..4000),
        mtu in 68usize..800,
        seed in any::<u64>(),
    ) {
        let h = Ipv4Header::new([1, 1, 1, 1], [2, 2, 2, 2], Proto::Udp, payload.len());
        let packet = Packet::new(h, payload.clone());
        let mut frags = fragment(packet, mtu).unwrap();
        // Deterministic shuffle from the seed.
        let mut s = seed;
        for i in (1..frags.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            frags.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut r = Reassembler::new(u64::MAX);
        let mut done = None;
        for f in frags {
            if let Some(p) = r.push(f, 0) {
                done = Some(p);
            }
        }
        prop_assert_eq!(done.unwrap().payload, payload);
        prop_assert_eq!(r.pending(), 0);
    }

    #[test]
    fn udp_codec_roundtrips(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        data in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let seg = udp::encode(src, dst, sp, dp, &data);
        let (h, got) = udp::decode(src, dst, &seg).unwrap();
        prop_assert_eq!(h.src_port, sp);
        prop_assert_eq!(h.dst_port, dp);
        prop_assert_eq!(got, &data[..]);
    }

    #[test]
    fn udp_decode_never_panics(
        src in any::<[u8; 4]>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let _ = udp::decode(src, [9, 9, 9, 9], &bytes);
    }

    #[test]
    fn mrt_header_roundtrips(
        sp in any::<u16>(),
        dp in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in 0u8..8,
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let h = MrtHeader {
            src_port: sp,
            dst_port: dp,
            seq,
            ack,
            flags: Flags(flags),
            len: data.len() as u16,
        };
        let bytes = h.encode(&data);
        let (parsed, got) = MrtHeader::decode(&bytes).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(got, &data[..]);
    }

    #[test]
    fn mrt_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = MrtHeader::decode(&bytes);
    }

    #[test]
    fn host_survives_arbitrary_frames(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..120),
            0..40,
        ),
    ) {
        // Fuzz the whole input path: random garbage delivered to a host
        // with live UDP and MRT state must never panic, and well-formed
        // traffic afterwards must still work.
        use fbs_net::stack::Host;
        let mut h = Host::new([9, 9, 9, 9], 1500);
        h.udp.bind(53).unwrap();
        h.mrt.listen(80);
        for (i, f) in frames.iter().enumerate() {
            h.deliver_frame(f, i as u64 * 1000);
        }
        // Still functional: a valid self-addressed UDP datagram delivers.
        let seg = fbs_net::udp::encode([1, 1, 1, 1], [9, 9, 9, 9], 1234, 53, b"ok");
        let packet = fbs_net::ip::Packet::new(
            fbs_net::ip::Ipv4Header::new([1, 1, 1, 1], [9, 9, 9, 9], fbs_net::ip::Proto::Udp, seg.len()),
            seg,
        );
        h.deliver_frame(&packet.encode(), 999_999);
        prop_assert_eq!(h.udp.pending(53), 1);
    }
}

/// Body of `stale_partials_expire_under_sustained_loss`, kept as a plain
/// function so the `proptest!` macro expansion stays shallow.
fn check_stale_partials(
    seed: u64,
    n: usize,
    timeout_us: u64,
    step_us: u64,
) -> Result<(), TestCaseError> {
    // Small deterministic LCG so loss is reproducible from the seed.
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let mut r = Reassembler::new(timeout_us);
    let reg = fbs_obs::MetricsRegistry::new();
    let mut incomplete = 0usize;
    let mut held_pieces = 0usize;
    for i in 0..n {
        let payload_len = 1600 + (next() as usize % 4000);
        let mut h = Ipv4Header::new([10, 0, 0, 1], [10, 0, 0, 2], Proto::Udp, payload_len);
        h.id = i as u16;
        let payload: Vec<u8> = (0..payload_len).map(|b| b as u8).collect();
        let frags = fragment(Packet::new(h, payload), 576).unwrap();
        let total = frags.len();
        // ~1/3 of fragments lost, independently.
        let kept: Vec<_> = frags.into_iter().filter(|_| next() % 3 != 0).collect();
        let now = i as u64 * step_us;
        let survivors = kept.len();
        let mut done = false;
        for f in kept {
            if r.push(f, now).is_some() {
                done = true;
            }
        }
        if done {
            prop_assert_eq!(survivors, total, "early completion impossible");
        } else if survivors > 0 {
            prop_assert!(survivors < total, "intact datagram must assemble");
            incomplete += 1;
            held_pieces += survivors;
        }
    }
    // Exactly the loss-struck datagrams are pending; completed ones
    // released their buffers.
    prop_assert_eq!(r.pending(), incomplete);
    let last_push = (n as u64 - 1) * step_us;

    // Nothing is older than the timeout at `timeout_us` after the FIRST
    // push: no premature purge (and nothing recycled).
    let mut pool = fbs_core::BufferPool::new();
    prop_assert_eq!(r.expire(timeout_us, &mut pool), 0);
    prop_assert_eq!(r.pending(), incomplete);
    prop_assert_eq!(pool.stats().returns, 0);

    // One tick past everyone's deadline: all stale partials purged, and
    // every fragment payload they held goes back to the pool — the
    // expiry path must balance, not leak.
    let dropped = r.expire(last_push + timeout_us + 1, &mut pool);
    prop_assert_eq!(dropped, incomplete);
    prop_assert_eq!(r.pending(), 0);
    prop_assert_eq!(r.timeouts, incomplete as u64);
    let recycled = pool.stats().returns + pool.stats().discards;
    prop_assert_eq!(recycled, held_pieces as u64);

    // A second purge pass finds nothing (no double counting)...
    prop_assert_eq!(r.expire(last_push + 2 * timeout_us + 2, &mut pool), 0);
    prop_assert_eq!(r.timeouts, incomplete as u64);
    let recycled = pool.stats().returns + pool.stats().discards;
    prop_assert_eq!(recycled, held_pieces as u64);

    // ...and the fbs-obs counter fed one event per expiry agrees with
    // the reassembler's own ledger, as `Host::poll` wires it.
    for _ in 0..dropped {
        reg.record(fbs_obs::Event::ReassemblyTimeout);
    }
    prop_assert_eq!(
        reg.counter(fbs_obs::Counter::ReassemblyTimeouts),
        r.timeouts
    );
    Ok(())
}

// Sustained fragment loss: every datagram that loses at least one
// fragment leaves exactly one stale partial; the purge timer drops them
// all once (and only once) they exceed the timeout, and the
// reassembler's own counter stays coherent with the fbs-obs registry
// counter fed from the same expiries.
proptest! {
    #[test]
    fn stale_partials_expire_under_sustained_loss(
        seed in any::<u64>(),
        n in 1usize..16,
        timeout_us in 1_000u64..30_000_000,
        step_us in 1u64..100_000,
    ) {
        check_stale_partials(seed, n, timeout_us, step_us)?;
    }
}
