//! The §2/§7.4 paradigm comparison: identical workloads pushed through
//! every keying scheme, with cost counters and wall-clock timing.

use fbs_baselines::{
    FbsService, HostPairService, Kdc, KeySource, PerDatagramService, SecureDatagramService,
    SessionExchangeService, SessionKdcService,
};
use fbs_core::Principal;
use fbs_crypto::dh::DhGroup;
use fbs_crypto::{Bbs, Lcg64};
use std::time::Instant;

/// One row of the paradigm comparison.
pub struct ParadigmRow {
    /// Scheme name.
    pub scheme: String,
    /// Wall time for the whole workload (protect+unprotect), seconds.
    pub secs: f64,
    /// Modular exponentiations performed.
    pub modexp: u64,
    /// Hash key derivations performed.
    pub key_derivations: u64,
    /// Cryptographically-strong random bytes consumed.
    pub strong_random: u64,
    /// Setup messages exchanged.
    pub setup_messages: u64,
    /// Hard state entries held.
    pub hard_state: u64,
    /// Datagram semantics preserved?
    pub datagram_semantics: bool,
}

/// Workload: `conversations` conversations of `datagrams_each` datagrams
/// of `payload` bytes to one peer.
pub struct Workload {
    /// Number of distinct conversations (flows).
    pub conversations: u64,
    /// Datagrams per conversation.
    pub datagrams_each: u64,
    /// Payload size in bytes.
    pub payload: usize,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            conversations: 20,
            datagrams_each: 50,
            payload: 1024,
        }
    }
}

fn drive(
    tx: &mut dyn SecureDatagramService,
    rx: &mut dyn SecureDatagramService,
    tx_name: &Principal,
    rx_name: &Principal,
    w: &Workload,
) -> ParadigmRow {
    let payload = vec![0x42u8; w.payload];
    let start = Instant::now();
    for conv in 0..w.conversations {
        for _ in 0..w.datagrams_each {
            let wire = tx.protect(rx_name, conv, &payload).expect("protect");
            let pt = rx.unprotect(tx_name, conv, &wire).expect("unprotect");
            assert_eq!(pt.len(), w.payload);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let c = tx.cost();
    ParadigmRow {
        scheme: tx.name().to_string(),
        secs,
        modexp: c.master_key_computations,
        key_derivations: c.key_derivations,
        strong_random: c.strong_random_bytes,
        setup_messages: c.setup_messages,
        hard_state: c.hard_state_entries,
        datagram_semantics: tx.preserves_datagram_semantics(),
    }
}

/// Run the workload through every paradigm. `group` sizes the DH work
/// (use [`DhGroup::oakley1`] for real measurements, the test group for CI).
pub fn compare_paradigms(w: &Workload, group: &DhGroup) -> Vec<ParadigmRow> {
    let mut rows = Vec::new();

    // FBS.
    {
        let (mut a, mut b, a_name, b_name, _) = FbsService::pair(group);
        rows.push(drive(&mut a, &mut b, &a_name, &b_name, w));
    }
    // Host-pair.
    {
        let (mut a, mut b, a_name, b_name) = HostPairService::pair(group, ("alice", "bob"));
        rows.push(drive(&mut a, &mut b, &a_name, &b_name, w));
    }
    // Per-datagram, LCG keys (insecure but fast).
    {
        let (mut a, mut b, a_name, b_name) = PerDatagramService::pair(
            group,
            KeySource::Lcg(Lcg64::new(0x111)),
            KeySource::Lcg(Lcg64::new(0x222)),
        );
        rows.push(drive(&mut a, &mut b, &a_name, &b_name, w));
    }
    // Per-datagram, BBS keys (the §2.2 bottleneck).
    {
        let (mut a, mut b, a_name, b_name) = PerDatagramService::pair(
            group,
            KeySource::Bbs(Box::new(Bbs::with_default_modulus(b"bench-seed-a"))),
            KeySource::Bbs(Box::new(Bbs::with_default_modulus(b"bench-seed-b"))),
        );
        rows.push(drive(&mut a, &mut b, &a_name, &b_name, w));
    }
    // KDC sessions.
    {
        let kdc = Kdc::new(0x777, u64::MAX / 2);
        let a_name = Principal::named("alice");
        let b_name = Principal::named("bob");
        let mut a = SessionKdcService::new(a_name.clone(), [0xAA; 16], kdc.clone(), 1);
        let mut b = SessionKdcService::new(b_name.clone(), [0xBB; 16], kdc, 2);
        rows.push(drive(&mut a, &mut b, &a_name, &b_name, w));
    }
    // Negotiated sessions.
    {
        let (mut a, mut b, a_name, b_name) = SessionExchangeService::pair(group);
        rows.push(drive(&mut a, &mut b, &a_name, &b_name, w));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paradigms_complete_the_workload() {
        let w = Workload {
            conversations: 3,
            datagrams_each: 4,
            payload: 256,
        };
        let rows = compare_paradigms(&w, &DhGroup::test_group());
        assert_eq!(rows.len(), 6);
        let names: Vec<&str> = rows.iter().map(|r| r.scheme.as_str()).collect();
        assert!(names.contains(&"fbs"));
        assert!(names.contains(&"host-pair"));
        assert!(names.contains(&"session-kdc"));
    }

    #[test]
    fn fbs_keys_per_flow_skip_keys_per_datagram() {
        // §7.4: "key generation need only be done on a per-flow basis
        // rather than a per-datagram basis."
        let w = Workload {
            conversations: 5,
            datagrams_each: 10,
            payload: 128,
        };
        let rows = compare_paradigms(&w, &DhGroup::test_group());
        let get = |n: &str| rows.iter().find(|r| r.scheme == n).unwrap();
        let fbs = get("fbs");
        let per_dgram = get("per-datagram(lcg)");
        // FBS sender: 5 flow keys (one per conversation); per-datagram
        // sender: one key per datagram = 50.
        assert_eq!(fbs.key_derivations, 5);
        assert_eq!(per_dgram.key_derivations, 50);
        assert_eq!(fbs.setup_messages, 0);
        assert!(fbs.datagram_semantics);
        assert!(!get("session-kdc").datagram_semantics);
        assert_eq!(get("per-datagram(bbs)").strong_random, 50 * 8);
    }
}
