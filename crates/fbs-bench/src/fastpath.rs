//! Fast-path throughput: zero-copy `seal_into` + `BufferPool` vs the
//! legacy allocating `send`/`encode_payload` path, plus the sharded
//! [`ParallelSealer`] at 1/2/4 workers.
//!
//! Emits the `BENCH_fastpath.json` report. Allocation counts come from a
//! counting `#[global_allocator]` that only the `fastpath_bench` binary
//! installs (library crates forbid unsafe code); other callers pass a
//! counter that always returns 0 and the alloc columns read as 0.
//!
//! Single-CPU honesty: the report carries a `cpus` field. On a one-core
//! host the sealer rows measure sharding/channel overhead, not
//! parallel speedup — the headline comparison is the in-thread pooled
//! seal path vs the legacy path.

use crate::endpoints::{endpoint_pair, principals, receiver_fleet, sender_fleet};
use fbs_cert::{CertificateAuthority, Directory};
use fbs_core::{
    BufferPool, Datagram, FbsConfig, ManualClock, OpenJob, ParallelSealer, ProtectedDatagram,
    SealJob,
};
use fbs_crypto::dh::DhGroup;
use fbs_crypto::CipherSuite;
use fbs_ip::hooks::IpMappingConfig;
use fbs_ip::host::build_secure_host;
use fbs_net::ip::{Ipv4Header, Proto};
use fbs_net::{HookOutcome, SecurityHooks};
use fbs_obs::{
    Direction, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, Stage, WorkerOccupancyRow,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// Crypto mode for a bench run, mirroring the Fig. 8 variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// NOP crypto (§7.3): MAC and cipher nullified, so the measurement
    /// isolates protocol processing — framing, flow-key cache, buffer
    /// management — exactly what the zero-copy fast path optimises.
    Nop,
    /// Keyed-MD5 MAC only (the paper's non-secret mode).
    MacOnly,
    /// DES-CBC + keyed-MD5 (the paper's secret mode); software DES
    /// dominates, so fast-path gains shrink to the allocation share.
    DesMd5,
}

impl Mode {
    /// JSON/report name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Nop => "nop",
            Mode::MacOnly => "md5",
            Mode::DesMd5 => "des+md5",
        }
    }

    /// The endpoint configuration this mode implies (algorithm choices
    /// only; geometry stays at defaults for callers to override).
    pub fn config(self) -> FbsConfig {
        match self {
            Mode::Nop => FbsConfig {
                nop_crypto: true,
                ..FbsConfig::default()
            },
            _ => FbsConfig::default(),
        }
    }

    fn secret(self) -> bool {
        self != Mode::MacOnly
    }
}

/// One measured configuration.
#[derive(Clone, Copy, Debug)]
pub struct Rate {
    /// Datagrams sealed per second.
    pub datagrams_per_sec: f64,
    /// Payload bytes sealed per second.
    pub bytes_per_sec: f64,
    /// Heap allocations per datagram (0 when no counting allocator).
    pub allocs_per_datagram: f64,
}

/// Side-by-side profile comparison on the pooled inline rows: one row
/// per [`CipherSuite`] (secret mode, same payload/count as the headline
/// grid), so `BENCH_fastpath.json` shows paper DES+MD5, word-sliced
/// DES-CTR, and the ChaCha20-Poly1305 AEAD in one table.
#[derive(Clone, Copy, Debug)]
pub struct SuiteRate {
    /// The profile this row measured.
    pub suite: CipherSuite,
    /// Pooled inline `seal_into` rate under this suite.
    pub seal_pooled: Rate,
    /// Pooled inline `open_into` rate under this suite.
    pub open_pooled: Rate,
    /// Both rows' pool take/put ledgers balanced across every rep.
    pub pool_balanced: bool,
}

/// A [`ParallelSealer`] measurement at a worker count.
#[derive(Clone, Copy, Debug)]
pub struct SealerRate {
    /// Worker threads.
    pub workers: usize,
    /// Whether wire buffers were recycled back into worker pools.
    pub pooled: bool,
    /// The measured rate.
    pub rate: Rate,
}

/// An [`ParallelSealer::open_batch`] measurement at a worker count.
#[derive(Clone, Copy, Debug)]
pub struct OpenerRate {
    /// Worker threads.
    pub workers: usize,
    /// The measured rate (plaintext buffers recycled back to the pools).
    pub rate: Rate,
}

/// A sharded-IP-mapping measurement: N threads driving output batches
/// through cloned handles of ONE shared `FbsIpHooks`, per-thread pools.
#[derive(Clone, Debug)]
pub struct MappingRate {
    /// Concurrent threads sharing the mapping.
    pub threads: usize,
    /// Shard count the mapping was built with (1 = the pre-shard
    /// single-table shape, the sharding-overhead baseline).
    pub shards: usize,
    /// Shard-owning worker threads the runtime was built with.
    pub workers: usize,
    /// SPSC ring depth between the submitting thread and each worker.
    pub ring_depth: usize,
    /// Every thread's pool take/put ledger balanced: no buffer leaked on
    /// any path the run exercised.
    pub pool_balanced: bool,
    /// The measured rate (wire buffers recycled back to the pools).
    pub rate: Rate,
    /// Per-stage latency histograms (name, snapshot) accumulated over
    /// every rep of this row: partition, ring enqueue/wait, seal, key
    /// derivation, dispatch. Nanosecond log2 buckets.
    pub stages: Vec<(&'static str, HistogramSnapshot)>,
    /// Per-worker occupancy rows (ring stalls and stall-ns on the
    /// producer side, sub-batches and busy-ns on the worker side)
    /// accumulated over every rep of this row.
    pub occupancy: Vec<WorkerOccupancyRow>,
}

/// The full `BENCH_fastpath.json` payload.
#[derive(Clone, Debug)]
pub struct FastpathReport {
    /// Payload size per datagram (bytes).
    pub payload_bytes: usize,
    /// Datagrams per measured configuration.
    pub count: usize,
    /// Host parallelism (1 ⇒ sealer rows measure overhead, not speedup).
    pub cpus: usize,
    /// Crypto mode the grid ran under.
    pub mode: Mode,
    /// Legacy `send` + `encode_payload`.
    pub legacy: Rate,
    /// In-thread `seal_into` with a recycled [`BufferPool`] buffer.
    pub inline_pooled: Rate,
    /// In-thread `seal_into` into a fresh `Vec` every datagram.
    pub inline_unpooled: Rate,
    /// Sealer grid: 1/2/4 workers × pooled/unpooled.
    pub sealer: Vec<SealerRate>,
    /// Legacy scalar input: `decode_payload` + `receive` per datagram.
    pub open_legacy: Rate,
    /// In-thread `open_into` with a recycled [`BufferPool`] buffer.
    pub open_inline_pooled: Rate,
    /// Opener grid: `open_batch` at 1/2/4 workers, buffers recycled.
    pub opener: Vec<OpenerRate>,
    /// Cipher-suite grid: pooled inline seal/open per profile.
    pub suites: Vec<SuiteRate>,
    /// Sharded-mapping grid: (threads, shards, workers) points against
    /// one shared `FbsIpHooks`, including the 1-thread
    /// `shards = workers = 1` baseline row.
    pub mapping: Vec<MappingRate>,
    /// Headline: in-thread pooled seal path over legacy, datagrams/sec.
    pub speedup_pooled_1w_vs_legacy: f64,
    /// Headline: fast_des suite over the paper DES+MD5 suite on the
    /// pooled inline seal row (the word-slicing + CTR/MAC fusion win).
    pub speedup_fast_vs_paper: f64,
    /// Headline: in-thread pooled open path over the legacy scalar input
    /// path — the allocation/copy-elimination win, meaningful on any
    /// core count.
    pub speedup_open_inline_vs_legacy: f64,
    /// 4-worker batched open over the legacy scalar input path. On a
    /// single-CPU host this measures sharding/channel overhead, not
    /// parallel speedup (see `cpus`).
    pub speedup_open_batch_4w_vs_legacy: f64,
    /// Single-thread sharded mapping (8 shards, 1 worker) over the
    /// `shards = workers = 1` baseline: the cost of partitioning +
    /// sharding itself at fixed worker count, which must stay near 1.0.
    pub mapping_sharded_vs_unsharded_1t: f64,
    /// Merged metrics snapshot across every mapping row's registry —
    /// the `--prom` exposition source.
    pub obs: MetricsSnapshot,
}

fn json_rate(r: &Rate) -> String {
    format!(
        "{{\"datagrams_per_sec\": {:.1}, \"bytes_per_sec\": {:.1}, \"allocs_per_datagram\": {:.2}}}",
        r.datagrams_per_sec, r.bytes_per_sec, r.allocs_per_datagram
    )
}

fn json_hist(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .map(|(lo, hi, c)| format!("[{lo}, {hi}, {c}]"))
        .collect();
    format!(
        "{{\"count\": {}, \"sum_ns\": {}, \"buckets\": [{}]}}",
        h.count(),
        h.sum,
        buckets.join(", ")
    )
}

/// Fold `s` into `acc`: counters add, histogram buckets add by lower
/// bound. Used to merge the per-row mapping registries into the one
/// snapshot the `--prom` exposition renders.
fn merge_snapshot(acc: &mut MetricsSnapshot, s: &MetricsSnapshot) {
    for (name, v) in &s.counters {
        if *v > 0 {
            acc.add(name, *v);
        }
    }
    for (name, h) in &s.histograms {
        let e = acc.histograms.entry(name.clone()).or_default();
        for &(lo, hi, count) in &h.buckets {
            match e.buckets.iter_mut().find(|(l, _, _)| *l == lo) {
                Some(b) => b.2 += count,
                None => e.buckets.push((lo, hi, count)),
            }
        }
        e.buckets.sort_unstable_by_key(|b| b.0);
        e.sum = e.sum.saturating_add(h.sum);
    }
}

impl FastpathReport {
    /// Render as the `BENCH_fastpath.json` document.
    pub fn to_json(&self) -> String {
        let sealer_rows: Vec<String> = self
            .sealer
            .iter()
            .map(|s| {
                format!(
                    "    {{\"workers\": {}, \"pooled\": {}, \"datagrams_per_sec\": {:.1}, \
                     \"bytes_per_sec\": {:.1}, \"allocs_per_datagram\": {:.2}}}",
                    s.workers,
                    s.pooled,
                    s.rate.datagrams_per_sec,
                    s.rate.bytes_per_sec,
                    s.rate.allocs_per_datagram
                )
            })
            .collect();
        let opener_rows: Vec<String> = self
            .opener
            .iter()
            .map(|o| {
                format!(
                    "    {{\"workers\": {}, \"datagrams_per_sec\": {:.1}, \
                     \"bytes_per_sec\": {:.1}, \"allocs_per_datagram\": {:.2}}}",
                    o.workers,
                    o.rate.datagrams_per_sec,
                    o.rate.bytes_per_sec,
                    o.rate.allocs_per_datagram
                )
            })
            .collect();
        let suite_rows: Vec<String> = self
            .suites
            .iter()
            .map(|s| {
                format!(
                    "    {{\"suite\": \"{}\", \"seal_pooled\": {}, \"open_pooled\": {}, \
                     \"pool_balanced\": {}}}",
                    s.suite.name(),
                    json_rate(&s.seal_pooled),
                    json_rate(&s.open_pooled),
                    s.pool_balanced
                )
            })
            .collect();
        let mapping_rows: Vec<String> = self
            .mapping
            .iter()
            .map(|m| {
                let stages: Vec<String> = m
                    .stages
                    .iter()
                    .map(|(name, h)| format!("\"{}_ns\": {}", name, json_hist(h)))
                    .collect();
                let occupancy: Vec<String> = m
                    .occupancy
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"worker\": {}, \"stalls\": {}, \"stall_ns\": {}, \
                             \"batches\": {}, \"busy_ns\": {}}}",
                            r.worker, r.stalls, r.stall_ns, r.batches, r.busy_ns
                        )
                    })
                    .collect();
                format!(
                    "    {{\"threads\": {}, \"shards\": {}, \"workers\": {}, \
                     \"ring_depth\": {}, \"pool_balanced\": {}, \
                     \"datagrams_per_sec\": {:.1}, \"bytes_per_sec\": {:.1}, \
                     \"allocs_per_datagram\": {:.2}, \"stages\": {{{}}}, \
                     \"occupancy\": [{}]}}",
                    m.threads,
                    m.shards,
                    m.workers,
                    m.ring_depth,
                    m.pool_balanced,
                    m.rate.datagrams_per_sec,
                    m.rate.bytes_per_sec,
                    m.rate.allocs_per_datagram,
                    stages.join(", "),
                    occupancy.join(", ")
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"fastpath\",\n  \"payload_bytes\": {},\n  \"count\": {},\n  \
             \"cpus\": {},\n  \"mode\": \"{}\",\n  \"legacy\": {},\n  \"inline_pooled\": {},\n  \
             \"inline_unpooled\": {},\n  \"sealer\": [\n{}\n  ],\n  \
             \"open_legacy\": {},\n  \"open_inline_pooled\": {},\n  \"opener\": [\n{}\n  ],\n  \
             \"suites\": [\n{}\n  ],\n  \
             \"mapping\": [\n{}\n  ],\n  \
             \"speedup_pooled_1w_vs_legacy\": {:.3},\n  \
             \"speedup_fast_vs_paper\": {:.3},\n  \
             \"speedup_open_inline_vs_legacy\": {:.3},\n  \
             \"speedup_open_batch_4w_vs_legacy\": {:.3},\n  \
             \"mapping_sharded_vs_unsharded_1t\": {:.3}\n}}\n",
            self.payload_bytes,
            self.count,
            self.cpus,
            self.mode.name(),
            json_rate(&self.legacy),
            json_rate(&self.inline_pooled),
            json_rate(&self.inline_unpooled),
            sealer_rows.join(",\n"),
            json_rate(&self.open_legacy),
            json_rate(&self.open_inline_pooled),
            opener_rows.join(",\n"),
            suite_rows.join(",\n"),
            mapping_rows.join(",\n"),
            self.speedup_pooled_1w_vs_legacy,
            self.speedup_fast_vs_paper,
            self.speedup_open_inline_vs_legacy,
            self.speedup_open_batch_4w_vs_legacy,
            self.mapping_sharded_vs_unsharded_1t
        )
    }
}

fn rate(count: usize, payload: usize, secs: f64, allocs: u64) -> Rate {
    Rate {
        datagrams_per_sec: count as f64 / secs,
        bytes_per_sec: (count * payload) as f64 / secs,
        allocs_per_datagram: allocs as f64 / count as f64,
    }
}

/// Legacy path: `send` (owned `Datagram`, allocated ciphertext + MAC)
/// followed by `encode_payload` (another allocation + copy), the
/// pre-fast-path steady state.
pub fn measure_legacy(payload: usize, count: usize, mode: Mode, alloc: &dyn Fn() -> u64) -> Rate {
    let (mut tx, _, _) = endpoint_pair(mode.config(), DhGroup::test_group());
    let secret = mode.secret();
    let (s, d) = principals();
    let body = vec![0xA5u8; payload];
    // Warm the flow-key cache: steady state is what we compare.
    let pd = tx
        .send(1, Datagram::new(s.clone(), d.clone(), body.clone()), secret)
        .unwrap();
    std::hint::black_box(pd.encode_payload());
    let a0 = alloc();
    let start = Instant::now();
    for _ in 0..count {
        let pd = tx
            .send(1, Datagram::new(s.clone(), d.clone(), body.clone()), secret)
            .unwrap();
        std::hint::black_box(pd.encode_payload());
    }
    rate(count, payload, start.elapsed().as_secs_f64(), alloc() - a0)
}

/// The in-thread fast path: `seal_into` a caller-owned buffer; with
/// `pooled`, the buffer cycles through a [`BufferPool`] so steady state
/// performs no heap allocation at all.
pub fn measure_inline(
    payload: usize,
    count: usize,
    mode: Mode,
    pooled: bool,
    alloc: &dyn Fn() -> u64,
) -> Rate {
    let (mut tx, _, _) = endpoint_pair(mode.config(), DhGroup::test_group());
    let secret = mode.secret();
    let (_, d) = principals();
    let body = vec![0xA5u8; payload];
    let mut pool = BufferPool::new();
    let mut warm = pool.take();
    tx.seal_into(1, &d, &body, secret, &mut warm).unwrap();
    pool.put(warm);
    let a0 = alloc();
    let start = Instant::now();
    for _ in 0..count {
        let mut out = if pooled { pool.take() } else { Vec::new() };
        tx.seal_into(1, &d, &body, secret, &mut out).unwrap();
        std::hint::black_box(&out);
        if pooled {
            pool.put(out);
        }
    }
    rate(count, payload, start.elapsed().as_secs_f64(), alloc() - a0)
}

/// An [`FbsConfig`] running `suite` in secret mode with otherwise
/// default geometry.
fn suite_config(suite: CipherSuite) -> FbsConfig {
    FbsConfig {
        suite,
        ..FbsConfig::default()
    }
}

/// Pooled inline seal row for one cipher suite (secret mode): the same
/// loop as [`measure_inline`] with `pooled = true`, plus the pool's
/// take/put ledger-balance verdict.
pub fn measure_inline_suite(
    payload: usize,
    count: usize,
    suite: CipherSuite,
    alloc: &dyn Fn() -> u64,
) -> (Rate, bool) {
    let (mut tx, _, _) = endpoint_pair(suite_config(suite), DhGroup::test_group());
    let (_, d) = principals();
    let body = vec![0xA5u8; payload];
    let mut pool = BufferPool::new();
    let mut warm = pool.take();
    tx.seal_into(1, &d, &body, true, &mut warm).unwrap();
    pool.put(warm);
    let a0 = alloc();
    let start = Instant::now();
    for _ in 0..count {
        let mut out = pool.take();
        tx.seal_into(1, &d, &body, true, &mut out).unwrap();
        std::hint::black_box(&out);
        pool.put(out);
    }
    let r = rate(count, payload, start.elapsed().as_secs_f64(), alloc() - a0);
    let s = pool.stats();
    (r, s.hits + s.misses == s.returns + s.discards)
}

/// Pooled inline open row for one cipher suite (secret mode), over a
/// pre-sealed stream of distinct wires; ledger-balance verdict included.
pub fn measure_open_inline_suite(
    payload: usize,
    count: usize,
    suite: CipherSuite,
    alloc: &dyn Fn() -> u64,
) -> (Rate, bool) {
    let (mut tx, mut rx, _) = endpoint_pair(suite_config(suite), DhGroup::test_group());
    let (s, d) = principals();
    let body = vec![0xA5u8; payload];
    let wires = sealed_stream(&mut tx, &d, &body, true, count);
    let mut pool = BufferPool::new();
    let mut warm = pool.take();
    rx.open_into(&s, &wires[0], &mut warm).unwrap();
    pool.put(warm);
    let a0 = alloc();
    let start = Instant::now();
    for wire in &wires {
        let mut out = pool.take();
        rx.open_into(&s, wire, &mut out).unwrap();
        std::hint::black_box(&out);
        pool.put(out);
    }
    let r = rate(count, payload, start.elapsed().as_secs_f64(), alloc() - a0);
    let st = pool.stats();
    (r, st.hits + st.misses == st.returns + st.discards)
}

/// Batch size for [`measure_sealer`]: large enough that the per-batch
/// dispatch scratch (chunk table, channel messages) amortises to ~0
/// allocations per datagram, matching [`OPEN_BATCH`] on the input side.
const SEAL_BATCH: usize = 8192;

/// A [`ParallelSealer`] run: `count` datagrams in [`SEAL_BATCH`]-sized
/// batches, flow labels cycling over `0..8` so every worker shard stays
/// busy.
///
/// The `pooled` variant runs a **circular buffer economy**: each batch's
/// job bodies come from the previous batch's returned wires, while the
/// spent bodies are absorbed into the worker pools and come back as the
/// next wires. Every buffer stays in circulation, so the steady-state
/// loop performs zero heap allocations per datagram — the figure CI
/// gates on. The unpooled variant allocates a fresh body per job and
/// drops every wire: the explicit allocating baseline.
pub fn measure_sealer(
    payload: usize,
    count: usize,
    mode: Mode,
    workers: usize,
    pooled: bool,
    alloc: &dyn Fn() -> u64,
) -> Rate {
    let (senders, _, _) = sender_fleet(mode.config(), workers);
    let secret = mode.secret();
    let mut sealer = ParallelSealer::new(senders);
    let (_, d) = principals();
    let batch = SEAL_BATCH.min(count.max(1));
    // The circulating body stock (pooled mode): starts as `batch` fresh
    // buffers, thereafter refilled by returned wires.
    let mut bodies: Vec<Vec<u8>> = (0..batch).map(|_| vec![0xA5u8; payload]).collect();
    let mut jobs: Vec<SealJob> = Vec::with_capacity(batch);
    let mut out: Vec<Result<Vec<u8>, fbs_core::FbsError>> = Vec::with_capacity(batch);
    let fill = |bodies: &mut Vec<Vec<u8>>, jobs: &mut Vec<SealJob>, n: usize| {
        for i in 0..n {
            let mut body = if pooled {
                bodies.pop().expect("stock holds a full batch")
            } else {
                Vec::with_capacity(payload)
            };
            body.clear();
            body.resize(payload, 0xA5);
            jobs.push(SealJob {
                sfl: (i % 8) as u64,
                destination: d.clone(),
                body,
                secret,
            });
        }
    };
    // Warm two full rounds before timing: flow keys derive on every
    // shard, worker pools grow their freelists, and every circulating
    // buffer reaches full wire capacity.
    for _ in 0..2 {
        fill(&mut bodies, &mut jobs, batch);
        sealer.seal_batch_in_place(&mut jobs, &mut out);
        for wire in out.drain(..) {
            let wire = wire.expect("warm seal succeeds");
            if pooled {
                bodies.push(wire);
            } else {
                sealer.recycle(wire);
            }
        }
    }
    let mut done = 0usize;
    let a0 = alloc();
    let start = Instant::now();
    while done < count {
        let n = batch.min(count - done);
        fill(&mut bodies, &mut jobs, n);
        sealer.seal_batch_in_place(&mut jobs, &mut out);
        for wire in out.drain(..) {
            let wire = wire.expect("seal succeeds");
            if pooled {
                bodies.push(wire);
            } else {
                std::hint::black_box(&wire);
            }
        }
        done += n;
    }
    rate(count, payload, start.elapsed().as_secs_f64(), alloc() - a0)
}

/// Pre-seal `count` distinct wires (sfl cycling `0..8`): open-side runs
/// measure a realistic stream of distinct datagrams, not one cache-hot
/// wire replayed.
fn sealed_stream(
    tx: &mut fbs_core::FbsEndpoint,
    d: &fbs_core::Principal,
    body: &[u8],
    secret: bool,
    count: usize,
) -> Vec<Vec<u8>> {
    (0..count as u64)
        .map(|i| {
            let mut wire = Vec::new();
            tx.seal_into(i % 8, d, body, secret, &mut wire).unwrap();
            wire
        })
        .collect()
}

/// The legacy scalar input path, per datagram exactly what the
/// pre-pipeline hook input did: clone the wire as the park/fail-open
/// backup, `decode_payload` (header parse + body copy into a fresh
/// `Vec`), then `receive` (another fresh `Vec` for the plaintext).
pub fn measure_open_legacy(
    payload: usize,
    count: usize,
    mode: Mode,
    alloc: &dyn Fn() -> u64,
) -> Rate {
    let (mut tx, mut rx, _) = endpoint_pair(mode.config(), DhGroup::test_group());
    let secret = mode.secret();
    let (s, d) = principals();
    let body = vec![0xA5u8; payload];
    let wires = sealed_stream(&mut tx, &d, &body, secret, count);
    // Warm the receive-side flow-key cache before timing.
    for wire in wires.iter().take(8) {
        let pd = ProtectedDatagram::decode_payload(s.clone(), d.clone(), wire).unwrap();
        std::hint::black_box(rx.receive(pd).unwrap());
    }
    let a0 = alloc();
    let start = Instant::now();
    for wire in &wires {
        let backup = wire.clone();
        let pd = ProtectedDatagram::decode_payload(s.clone(), d.clone(), wire).unwrap();
        std::hint::black_box(rx.receive(pd).unwrap());
        std::hint::black_box(&backup);
    }
    rate(count, payload, start.elapsed().as_secs_f64(), alloc() - a0)
}

/// The in-thread input fast path over the same distinct-wire stream:
/// `open_into` a caller-owned buffer that cycles through a
/// [`BufferPool`], no backup clone — steady state opens with no heap
/// allocation at all.
pub fn measure_open_inline(
    payload: usize,
    count: usize,
    mode: Mode,
    alloc: &dyn Fn() -> u64,
) -> Rate {
    let (mut tx, mut rx, _) = endpoint_pair(mode.config(), DhGroup::test_group());
    let secret = mode.secret();
    let (s, d) = principals();
    let body = vec![0xA5u8; payload];
    let wires = sealed_stream(&mut tx, &d, &body, secret, count);
    let mut pool = BufferPool::new();
    let mut warm = pool.take();
    rx.open_into(&s, &wires[0], &mut warm).unwrap();
    pool.put(warm);
    let a0 = alloc();
    let start = Instant::now();
    for wire in &wires {
        let mut out = pool.take();
        rx.open_into(&s, wire, &mut out).unwrap();
        std::hint::black_box(&out);
        pool.put(out);
    }
    rate(count, payload, start.elapsed().as_secs_f64(), alloc() - a0)
}

/// Batch size for [`measure_open_batch`]: large enough that the
/// per-batch dispatch vectors amortise to ~0 allocations per datagram.
const OPEN_BATCH: usize = 8192;

/// The batched input path: wires pre-sealed (arrival is not the input
/// path's cost), then opened through [`ParallelSealer::open_batch`] in
/// [`OPEN_BATCH`]-sized batches with every plaintext buffer recycled.
/// Spent wires are absorbed into the worker pools by `open_batch` itself,
/// so the steady-state loop allocates nothing per datagram.
pub fn measure_open_batch(
    payload: usize,
    count: usize,
    mode: Mode,
    workers: usize,
    alloc: &dyn Fn() -> u64,
) -> Rate {
    let (mut tx, receivers, _) = receiver_fleet(mode.config(), workers);
    let secret = mode.secret();
    let (s, d) = principals();
    let body = vec![0xA5u8; payload];
    let batch = OPEN_BATCH.min(count.max(1));
    // Per-worker pools sized so a full batch's wires + plaintexts all fit
    // on the freelists instead of being discarded and re-allocated.
    let mut opener = ParallelSealer::with_pool_limit(receivers, 2 * batch / workers + 2, None);
    // Warm every worker's flow-key cache and pool before timing.
    let warm: Vec<OpenJob> = sealed_stream(&mut tx, &d, &body, secret, 8 * workers)
        .into_iter()
        .map(|wire| OpenJob {
            source: s.clone(),
            wire,
        })
        .collect();
    let warmed: Vec<Vec<u8>> = opener
        .open_batch(warm)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    opener.recycle_batch(warmed);
    // Pre-seal all wires and pre-assemble the job batches: sealing is the
    // output path's cost, already measured above.
    let mut wires = sealed_stream(&mut tx, &d, &body, secret, count).into_iter();
    let mut batches: Vec<Vec<OpenJob>> = Vec::new();
    let mut remaining = count;
    while remaining > 0 {
        let n = batch.min(remaining);
        batches.push(
            wires
                .by_ref()
                .take(n)
                .map(|wire| OpenJob {
                    source: s.clone(),
                    wire,
                })
                .collect(),
        );
        remaining -= n;
    }
    let a0 = alloc();
    let start = Instant::now();
    for jobs in batches {
        let opened: Vec<Vec<u8>> = opener
            .open_batch(jobs)
            .into_iter()
            .map(|r| r.expect("pre-sealed wire opens"))
            .collect();
        std::hint::black_box(&opened);
        opener.recycle_batch(opened);
    }
    rate(count, payload, start.elapsed().as_secs_f64(), alloc() - a0)
}

/// Batch size for [`measure_mapping`]: large enough that the per-batch
/// vectors (the caller's batch and the hook's returned outcomes — the
/// partition scratch itself is reused across calls) amortise to ~0
/// allocations per datagram.
const MAPPING_BATCH: usize = 1024;

/// Flows per mapping thread (disjoint source ports per thread). Many
/// more flows than shards, so each shard's sub-batch still interleaves
/// several flows — consecutive same-flow datagrams would serialise on
/// one table entry and understate per-shard throughput.
const MAPPING_FLOWS: usize = 64;

/// SPSC ring depth for every mapping row (the `IpMappingConfig`
/// default): deep enough that `threads ≤ 4` producers rarely stall.
const MAPPING_RING_DEPTH: usize = 4;

/// The sharded endpoint under concurrent submitters: `threads` cloned
/// handles of ONE `FbsIpHooks` (built with `shards` shards owned by
/// `workers` run-to-completion worker threads) each drive output
/// batches of UDP datagrams over disjoint flows, wire buffers recycled
/// through a per-thread [`BufferPool`]. Returns the aggregate rate and
/// whether every thread's pool take/put ledger balanced (the leak gate).
#[allow(clippy::too_many_arguments)]
pub fn measure_mapping(
    payload: usize,
    count: usize,
    mode: Mode,
    threads: usize,
    shards: usize,
    workers: usize,
    obs: Option<&Arc<MetricsRegistry>>,
    alloc: &dyn Fn() -> u64,
) -> (Rate, bool) {
    // Generous FST so the bench's flows never collide in a slot: this
    // row measures the steady-state hot path (hit + seal), not eviction
    // ping-pong between same-slot flows.
    measure_mapping_with(
        payload,
        count,
        mode,
        threads,
        shards,
        workers,
        mode.config(),
        4096,
        obs,
        alloc,
    )
}

/// [`measure_mapping`] with explicit endpoint geometry: `fbs_cfg`
/// carries the flow-key cache sets/associativity (so the scale bench
/// can prove the 0-alloc pooled path at million-entry table sizes) and
/// `fst_size` the per-shard flow state table.
#[allow(clippy::too_many_arguments)]
pub fn measure_mapping_with(
    payload: usize,
    count: usize,
    mode: Mode,
    threads: usize,
    shards: usize,
    workers: usize,
    fbs_cfg: FbsConfig,
    fst_size: usize,
    obs: Option<&Arc<MetricsRegistry>>,
    alloc: &dyn Fn() -> u64,
) -> (Rate, bool) {
    let clock = ManualClock::starting_at(0);
    let ca = CertificateAuthority::new("fastpath-mapping-ca", [0xFA; 16]);
    let directory = Arc::new(Directory::new(Duration::ZERO));
    let group = DhGroup::test_group();
    let a: [u8; 4] = [10, 11, 0, 1];
    let b: [u8; 4] = [10, 11, 0, 2];
    let cfg = IpMappingConfig {
        encrypt: mode.secret(),
        shards,
        workers,
        ring_depth: MAPPING_RING_DEPTH,
        fst_size,
        fbs: fbs_cfg,
        ..IpMappingConfig::default()
    };
    let (_ha, hooks) = build_secure_host(
        a,
        1500,
        cfg.clone(),
        clock.clone(),
        &group,
        &ca,
        &directory,
        11,
    );
    // Building B publishes its certificate, so A's sends can key.
    let (_hb, _hooks_b) = build_secure_host(b, 1500, cfg, clock, &group, &ca, &directory, 12);
    // Attach the row's registry before any warm batch runs, so stage
    // timers and the worker occupancy table cover the entire measured
    // window.
    if let Some(reg) = obs {
        hooks
            .attach_obs(Arc::clone(reg))
            .expect("worker runtime alive");
    }
    // Each thread drives the full `count`: dividing it N ways would
    // shrink multi-thread reps to a few milliseconds of measurement,
    // which on a shared single-CPU host is pure scheduler noise. The
    // aggregate rate below accounts for `per * threads` datagrams.
    let per = count.max(1);
    let batch = MAPPING_BATCH.min(per);
    let barrier = Arc::new(Barrier::new(threads + 1));
    let balanced = Arc::new(AtomicBool::new(true));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let mut hooks = hooks.clone();
            let barrier = Arc::clone(&barrier);
            let balanced = Arc::clone(&balanced);
            thread::spawn(move || {
                // Pool sized so a full batch's payloads plus their sealed
                // wires all cycle through the freelist.
                let mut pool = BufferPool::with_limits(2 * batch + 4, payload + 128);
                let run_batch = |hooks: &mut fbs_ip::hooks::FbsIpHooks,
                                 pool: &mut BufferPool,
                                 n: usize| {
                    let mut dgs = Vec::with_capacity(n);
                    for i in 0..n {
                        let sport = 6000 + (t * MAPPING_FLOWS + i % MAPPING_FLOWS) as u16;
                        let mut p = pool.take();
                        p.extend_from_slice(&sport.to_be_bytes());
                        p.extend_from_slice(&53u16.to_be_bytes());
                        p.resize(payload.max(4), 0xA5);
                        let header = Ipv4Header::new(a, b, Proto::Udp, p.len());
                        dgs.push(fbs_net::Datagram { header, payload: p });
                    }
                    for (_, outcome) in hooks.process_batch(Direction::Output, dgs, pool, 1_000) {
                        match outcome {
                            HookOutcome::Pass(wire) => pool.put(wire),
                            other => panic!("mapping seal failed: {other:?}"),
                        }
                    }
                };
                // Warm: flow keys derived, pool buffers grown to size.
                run_batch(&mut hooks, &mut pool, batch);
                run_batch(&mut hooks, &mut pool, batch);
                barrier.wait();
                let mut done = 0usize;
                while done < per {
                    let n = batch.min(per - done);
                    run_batch(&mut hooks, &mut pool, n);
                    done += n;
                }
                let s = pool.stats();
                if s.hits + s.misses != s.returns + s.discards {
                    balanced.store(false, Ordering::Relaxed);
                }
            })
        })
        .collect();
    barrier.wait();
    let a0 = alloc();
    let start = Instant::now();
    for h in handles {
        h.join().expect("mapping thread panicked");
    }
    let secs = start.elapsed().as_secs_f64();
    let allocs = alloc() - a0;
    (
        rate(per * threads, payload, secs, allocs),
        balanced.load(Ordering::Relaxed),
    )
}

/// Repetitions per measured row: a lone pass on a shared (often
/// single-CPU) host is noisy, so each row reports its best of three.
const REPS: usize = 3;

/// Repetitions per mapping row (see the mapping grid below).
const MAPPING_REPS: usize = 7;

fn best_of(reps: usize, f: impl Fn() -> Rate) -> Rate {
    (0..reps)
        .map(|_| f())
        .max_by(|a, b| a.datagrams_per_sec.total_cmp(&b.datagrams_per_sec))
        .expect("reps > 0")
}

/// Run the full grid and assemble the report.
pub fn run(payload: usize, count: usize, mode: Mode, alloc: &dyn Fn() -> u64) -> FastpathReport {
    let legacy = best_of(REPS, || measure_legacy(payload, count, mode, alloc));
    let inline_pooled = best_of(REPS, || measure_inline(payload, count, mode, true, alloc));
    let inline_unpooled = best_of(REPS, || measure_inline(payload, count, mode, false, alloc));
    let mut sealer = Vec::new();
    for workers in [1usize, 2, 4] {
        for pooled in [true, false] {
            sealer.push(SealerRate {
                workers,
                pooled,
                rate: best_of(REPS, || {
                    measure_sealer(payload, count, mode, workers, pooled, alloc)
                }),
            });
        }
    }
    let open_legacy = best_of(REPS, || measure_open_legacy(payload, count, mode, alloc));
    let open_inline_pooled = best_of(REPS, || measure_open_inline(payload, count, mode, alloc));
    let opener: Vec<OpenerRate> = [1usize, 2, 4]
        .into_iter()
        .map(|workers| OpenerRate {
            workers,
            rate: best_of(REPS, || {
                measure_open_batch(payload, count, mode, workers, alloc)
            }),
        })
        .collect();
    let open_4w = opener
        .iter()
        .find(|o| o.workers == 4)
        .expect("grid includes 4 workers")
        .rate;
    // Suite grid: pooled inline seal/open per profile, side by side.
    let suites: Vec<SuiteRate> = CipherSuite::ALL
        .iter()
        .map(|&suite| {
            let balanced = std::cell::Cell::new(true);
            let seal_pooled = best_of(REPS, || {
                let (r, ok) = measure_inline_suite(payload, count, suite, alloc);
                balanced.set(balanced.get() && ok);
                r
            });
            let open_pooled = best_of(REPS, || {
                let (r, ok) = measure_open_inline_suite(payload, count, suite, alloc);
                balanced.set(balanced.get() && ok);
                r
            });
            SuiteRate {
                suite,
                seal_pooled,
                open_pooled,
                pool_balanced: balanced.get(),
            }
        })
        .collect();
    let suite_seal = |s: CipherSuite| {
        suites
            .iter()
            .find(|row| row.suite == s)
            .expect("suite grid complete")
            .seal_pooled
            .datagrams_per_sec
    };
    let speedup_fast_vs_paper = suite_seal(CipherSuite::FastDes) / suite_seal(CipherSuite::Paper);
    // Mapping grid: the shards=workers=1 single-thread row is the
    // unsharded baseline; the 1-thread 8-shard 1-worker row isolates
    // partitioning cost at fixed worker count (the sharding-cost
    // headline); the rest scale submitters and workers together.
    let mut obs = MetricsSnapshot::new();
    let mapping: Vec<MappingRate> = [(1usize, 1usize, 1usize), (1, 8, 1), (2, 8, 2), (4, 8, 4)]
        .into_iter()
        .map(|(threads, shards, workers)| {
            // Fastest rep's rate; a leak in ANY rep poisons the flag.
            // Mapping rows get extra reps: the 1-thread sharded-vs-
            // unsharded ratio is the report's sharding-cost headline, and
            // on a shared host each row needs several chances to land in
            // an unthrottled scheduling window.
            //
            // One registry per row, shared across its reps: the stage
            // histograms and occupancy table describe this (threads,
            // shards, workers) point over all its reps — enough samples
            // for the log2 buckets to show a distribution, still
            // attributable to one grid point.
            let reg = Arc::new(MetricsRegistry::new());
            let mut best: Option<Rate> = None;
            let mut pool_balanced = true;
            for _ in 0..MAPPING_REPS {
                let (rate, ok) = measure_mapping(
                    payload,
                    count,
                    mode,
                    threads,
                    shards,
                    workers,
                    Some(&reg),
                    alloc,
                );
                pool_balanced &= ok;
                if best.is_none_or(|b: Rate| rate.datagrams_per_sec > b.datagrams_per_sec) {
                    best = Some(rate);
                }
            }
            let stages: Vec<(&'static str, HistogramSnapshot)> = Stage::ALL
                .iter()
                .map(|s| (s.name(), reg.stage_histogram(*s)))
                .filter(|(_, h)| !h.buckets.is_empty())
                .collect();
            let occupancy = reg.worker_occupancy_table();
            merge_snapshot(&mut obs, &reg.snapshot());
            MappingRate {
                threads,
                shards,
                workers,
                ring_depth: MAPPING_RING_DEPTH,
                pool_balanced,
                rate: best.expect("reps > 0"),
                stages,
                occupancy,
            }
        })
        .collect();
    let mapping_rate = |threads: usize, shards: usize| {
        mapping
            .iter()
            .find(|m| m.threads == threads && m.shards == shards)
            .expect("grid row present")
            .rate
            .datagrams_per_sec
    };
    FastpathReport {
        payload_bytes: payload,
        count,
        cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        mode,
        speedup_pooled_1w_vs_legacy: inline_pooled.datagrams_per_sec / legacy.datagrams_per_sec,
        speedup_fast_vs_paper,
        speedup_open_inline_vs_legacy: open_inline_pooled.datagrams_per_sec
            / open_legacy.datagrams_per_sec,
        speedup_open_batch_4w_vs_legacy: open_4w.datagrams_per_sec / open_legacy.datagrams_per_sec,
        mapping_sharded_vs_unsharded_1t: mapping_rate(1, 8) / mapping_rate(1, 1),
        legacy,
        inline_pooled,
        inline_unpooled,
        sealer,
        open_legacy,
        open_inline_pooled,
        opener,
        suites,
        mapping,
        obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_well_formed() {
        let r = run(256, 40, Mode::DesMd5, &|| 0);
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"fastpath\""));
        assert!(json.contains("\"speedup_pooled_1w_vs_legacy\""));
        assert!(json.contains("\"speedup_open_batch_4w_vs_legacy\""));
        assert!(json.contains("\"open_legacy\""));
        assert!(json.contains("\"open_inline_pooled\""));
        assert_eq!(r.sealer.len(), 6);
        assert_eq!(r.opener.len(), 3);
        assert_eq!(r.mapping.len(), 4);
        assert!(json.contains("\"mapping\""));
        assert!(json.contains("\"mapping_sharded_vs_unsharded_1t\""));
        // Suite grid schema: one row per profile, pooled rows must keep
        // a balanced buffer ledger and (with the binary's counting
        // allocator absent here) a zero alloc column.
        assert_eq!(r.suites.len(), CipherSuite::ALL.len());
        assert!(json.contains("\"suites\""));
        assert!(json.contains("\"speedup_fast_vs_paper\""));
        for (row, want) in r.suites.iter().zip(CipherSuite::ALL) {
            assert_eq!(row.suite, want);
            assert!(json.contains(&format!("\"suite\": \"{}\"", want.name())));
            assert!(row.seal_pooled.datagrams_per_sec > 0.0);
            assert!(row.open_pooled.datagrams_per_sec > 0.0);
            assert!(row.pool_balanced, "suite row leaked buffers: {row:?}");
            assert_eq!(row.seal_pooled.allocs_per_datagram, 0.0);
            assert_eq!(row.open_pooled.allocs_per_datagram, 0.0);
        }
        for m in &r.mapping {
            assert!(m.rate.datagrams_per_sec > 0.0);
            assert!(m.pool_balanced, "mapping row leaked buffers: {m:?}");
            // Every row ran with a registry attached: the hot stages
            // must have recorded spans and every worker that drained a
            // sub-batch must show up in the occupancy table.
            let stage_names: Vec<&str> = m.stages.iter().map(|(n, _)| *n).collect();
            for want in ["partition", "ring_enqueue", "ring_wait", "seal", "dispatch"] {
                assert!(stage_names.contains(&want), "row missing stage {want}");
            }
            assert!(!m.occupancy.is_empty(), "row has no occupancy rows");
            assert!(m.occupancy.iter().all(|o| o.batches > 0));
            assert!(
                m.occupancy.iter().all(|o| o.worker < m.workers),
                "occupancy row outside worker range: {:?}",
                m.occupancy
            );
        }
        assert!(json.contains("\"stages\""));
        assert!(json.contains("\"occupancy\""));
        assert!(json.contains("\"ring_depth\""));
        assert!(json.contains("\"ring_wait_ns\""));
        // The merged snapshot feeds --prom: it must carry the stage
        // histograms and per-worker counters the rows were built from.
        assert!(r.obs.histograms.contains_key("stage.seal_ns"));
        assert!(r.obs.counter("hooks.worker.0.batches") > 0);
        assert_eq!(
            r.mapping
                .iter()
                .map(|m| (m.threads, m.shards, m.workers))
                .collect::<Vec<_>>(),
            vec![(1, 1, 1), (1, 8, 1), (2, 8, 2), (4, 8, 4)]
        );
        assert!(r.open_legacy.datagrams_per_sec > 0.0);
        assert!(r.open_inline_pooled.datagrams_per_sec > 0.0);
        for o in &r.opener {
            assert!(o.rate.datagrams_per_sec > 0.0);
        }
        // Balanced braces/brackets — cheap well-formedness check without
        // a JSON parser in the dependency set.
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
        assert!(r.legacy.datagrams_per_sec > 0.0);
        assert!(r.inline_pooled.datagrams_per_sec > 0.0);
    }

    // Timing assertion only under optimisation: debug builds invert the
    // cost profile (the interleaved DES rounds lean on the optimiser)
    // and unit tests share one CPU, so a debug-mode floor would flake.
    // The artifact records the full ratio; this is the don't-regress
    // floor (the report gates the 2x headline).
    #[cfg(not(debug_assertions))]
    #[test]
    fn fast_suite_outruns_paper_suite() {
        let alloc = || 0u64;
        let (paper, _) = measure_inline_suite(512, 4000, CipherSuite::Paper, &alloc);
        let (fast, _) = measure_inline_suite(512, 4000, CipherSuite::FastDes, &alloc);
        assert!(
            fast.datagrams_per_sec > 1.5 * paper.datagrams_per_sec,
            "fast_des {:.0}/s vs paper {:.0}/s",
            fast.datagrams_per_sec,
            paper.datagrams_per_sec
        );
    }

    // Timing assertion only under optimisation: debug builds invert the
    // cost profile (bounds checks swamp the allocation savings) and unit
    // tests share one CPU, so a debug-mode floor would flake.
    #[cfg(not(debug_assertions))]
    #[test]
    fn inline_fastpath_not_slower_than_legacy() {
        // Loose sanity floor (0.8×) so CI noise can't flake it; the bench
        // binary reports the real speedup with a counting allocator.
        let alloc = || 0u64;
        let legacy = measure_legacy(512, 2000, Mode::Nop, &alloc);
        let fast = measure_inline(512, 2000, Mode::Nop, true, &alloc);
        assert!(
            fast.datagrams_per_sec > 0.8 * legacy.datagrams_per_sec,
            "inline pooled {:.0}/s vs legacy {:.0}/s",
            fast.datagrams_per_sec,
            legacy.datagrams_per_sec
        );
    }
}
