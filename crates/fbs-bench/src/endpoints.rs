//! Shared endpoint construction for measurement code.

use fbs_core::{FbsConfig, FbsEndpoint, ManualClock, MasterKeyDaemon, PinnedDirectory, Principal};
use fbs_crypto::dh::{DhGroup, PrivateValue};
use std::sync::Arc;

/// A connected sender/receiver pair over the given DH group, sharing a
/// manual clock (returned for freshness control).
pub fn endpoint_pair(cfg: FbsConfig, group: DhGroup) -> (FbsEndpoint, FbsEndpoint, ManualClock) {
    let clock = ManualClock::starting_at(100_000);
    let s_priv = PrivateValue::from_entropy(group.clone(), b"bench-sender-entropy!!");
    let d_priv = PrivateValue::from_entropy(group, b"bench-receiver-entropy");
    let s = Principal::named("bench-src");
    let d = Principal::named("bench-dst");
    let mut dir_s = PinnedDirectory::new();
    dir_s.pin(d.clone(), d_priv.public_value());
    let mut dir_d = PinnedDirectory::new();
    dir_d.pin(s.clone(), s_priv.public_value());
    let tx = FbsEndpoint::new(
        s,
        cfg.clone(),
        Arc::new(clock.clone()),
        0xBE9C4,
        MasterKeyDaemon::new(s_priv, Box::new(dir_s)),
    );
    let rx = FbsEndpoint::new(
        d,
        cfg,
        Arc::new(clock.clone()),
        0xBE9C5,
        MasterKeyDaemon::new(d_priv, Box::new(dir_d)),
    );
    (tx, rx, clock)
}

/// `n` sender endpoints sharing the `bench-src` identity — same key
/// material, distinct confounder seeds (§5.3: each initialisation of the
/// sending side must seed its confounder stream differently) — plus one
/// receiver and the shared clock. Worker `i`'s seed depends only on `i`,
/// so two fleets produce bit-identical wire bytes worker-for-worker;
/// this is what [`fbs_core::ParallelSealer`] expects to be built from.
pub fn sender_fleet(cfg: FbsConfig, n: usize) -> (Vec<FbsEndpoint>, FbsEndpoint, ManualClock) {
    let clock = ManualClock::starting_at(100_000);
    let group = DhGroup::test_group();
    let s_priv = PrivateValue::from_entropy(group.clone(), b"bench-sender-entropy!!");
    let d_priv = PrivateValue::from_entropy(group, b"bench-receiver-entropy");
    let (s, d) = principals();
    let senders = (0..n)
        .map(|i| {
            let mut dir_s = PinnedDirectory::new();
            dir_s.pin(d.clone(), d_priv.public_value());
            FbsEndpoint::new(
                s.clone(),
                cfg.clone(),
                Arc::new(clock.clone()),
                0xBE9C4 + (i as u64) * 0x10000,
                MasterKeyDaemon::new(s_priv.clone(), Box::new(dir_s)),
            )
        })
        .collect();
    let mut dir_d = PinnedDirectory::new();
    dir_d.pin(s.clone(), s_priv.public_value());
    let rx = FbsEndpoint::new(
        d,
        cfg,
        Arc::new(clock.clone()),
        0xFACE,
        MasterKeyDaemon::new(d_priv, Box::new(dir_d)),
    );
    (senders, rx, clock)
}

/// One sender plus `n` receiver endpoints sharing the `bench-dst`
/// identity — the open-side mirror of [`sender_fleet`], shaped for
/// [`fbs_core::ParallelSealer::open_batch`]. Receivers derive the same
/// flow keys (key material is symmetric in the DH shared secret), so any
/// worker can open any of the sender's wires.
pub fn receiver_fleet(cfg: FbsConfig, n: usize) -> (FbsEndpoint, Vec<FbsEndpoint>, ManualClock) {
    let clock = ManualClock::starting_at(100_000);
    let group = DhGroup::test_group();
    let s_priv = PrivateValue::from_entropy(group.clone(), b"bench-sender-entropy!!");
    let d_priv = PrivateValue::from_entropy(group, b"bench-receiver-entropy");
    let (s, d) = principals();
    let mut dir_s = PinnedDirectory::new();
    dir_s.pin(d.clone(), d_priv.public_value());
    let tx = FbsEndpoint::new(
        s.clone(),
        cfg.clone(),
        Arc::new(clock.clone()),
        0xBE9C4,
        MasterKeyDaemon::new(s_priv.clone(), Box::new(dir_s)),
    );
    let receivers = (0..n)
        .map(|i| {
            let mut dir_d = PinnedDirectory::new();
            dir_d.pin(s.clone(), s_priv.public_value());
            FbsEndpoint::new(
                d.clone(),
                cfg.clone(),
                Arc::new(clock.clone()),
                0xFACE + (i as u64) * 0x10000,
                MasterKeyDaemon::new(d_priv.clone(), Box::new(dir_d)),
            )
        })
        .collect();
    (tx, receivers, clock)
}

/// Source and destination principals used by [`endpoint_pair`].
pub fn principals() -> (Principal, Principal) {
    (Principal::named("bench-src"), Principal::named("bench-dst"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbs_core::Datagram;

    #[test]
    fn pair_interoperates() {
        let (mut tx, mut rx, _) = endpoint_pair(FbsConfig::default(), DhGroup::test_group());
        let (s, d) = principals();
        let pd = tx
            .send(1, Datagram::new(s, d, b"bench".to_vec()), true)
            .unwrap();
        assert_eq!(rx.receive(pd).unwrap().body, b"bench");
    }
}
