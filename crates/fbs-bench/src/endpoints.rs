//! Shared endpoint construction for measurement code.

use fbs_core::{FbsConfig, FbsEndpoint, ManualClock, MasterKeyDaemon, PinnedDirectory, Principal};
use fbs_crypto::dh::{DhGroup, PrivateValue};
use std::sync::Arc;

/// A connected sender/receiver pair over the given DH group, sharing a
/// manual clock (returned for freshness control).
pub fn endpoint_pair(cfg: FbsConfig, group: DhGroup) -> (FbsEndpoint, FbsEndpoint, ManualClock) {
    let clock = ManualClock::starting_at(100_000);
    let s_priv = PrivateValue::from_entropy(group.clone(), b"bench-sender-entropy!!");
    let d_priv = PrivateValue::from_entropy(group, b"bench-receiver-entropy");
    let s = Principal::named("bench-src");
    let d = Principal::named("bench-dst");
    let mut dir_s = PinnedDirectory::new();
    dir_s.pin(d.clone(), d_priv.public_value());
    let mut dir_d = PinnedDirectory::new();
    dir_d.pin(s.clone(), s_priv.public_value());
    let tx = FbsEndpoint::new(
        s,
        cfg.clone(),
        Arc::new(clock.clone()),
        0xBE9C4,
        MasterKeyDaemon::new(s_priv, Box::new(dir_s)),
    );
    let rx = FbsEndpoint::new(
        d,
        cfg,
        Arc::new(clock.clone()),
        0xBE9C5,
        MasterKeyDaemon::new(d_priv, Box::new(dir_d)),
    );
    (tx, rx, clock)
}

/// Source and destination principals used by [`endpoint_pair`].
pub fn principals() -> (Principal, Principal) {
    (Principal::named("bench-src"), Principal::named("bench-dst"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbs_core::Datagram;

    #[test]
    fn pair_interoperates() {
        let (mut tx, mut rx, _) = endpoint_pair(FbsConfig::default(), DhGroup::test_group());
        let (s, d) = principals();
        let pd = tx
            .send(1, Datagram::new(s, d, b"bench".to_vec()), true)
            .unwrap();
        assert_eq!(rx.receive(pd).unwrap().body, b"bench");
    }
}
