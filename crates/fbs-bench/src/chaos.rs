//! Chaos soak: scripted directory/MKD outages and cache flushes against a
//! two-host FBS LAN, measuring degradation and — the point — recovery.
//!
//! The soak runs four virtual-time phases over one UDP flow A → B:
//!
//! 1. **baseline** — fault-free; establishes the goodput yardstick.
//! 2. **fault** — a [`FaultPlan`] takes the certificate directory and the
//!    MKD upcall path down. The first half flushes only the *receiver's*
//!    soft state (B parks inbound datagrams it can no longer verify); the
//!    second half flushes the *sender's* too (A parks outbound datagrams
//!    it can no longer key). Parking queues are bounded, so sustained
//!    pressure surfaces as counted overflow drops, never memory growth.
//! 3. **settle** — faults lift; breakers half-open and close, parked
//!    datagrams drain, caches re-warm.
//! 4. **recovery** — measured again; convergence means goodput is back to
//!    ≥ 90% of baseline with breakers closed and park queues empty.
//!
//! Everything is a pure function of the seed and virtual time: the same
//! seed yields byte-identical `BENCH_chaos.json` reports.

use fbs_cert::{CertSource, CertificateAuthority, Directory, Pvc};
use fbs_chaos::{
    ChaosDirectory, ChaosDirectoryStats, ChaosPvs, ChaosPvsStats, FaultKind, FaultPlan, FlushScope,
    VirtualClock,
};
use fbs_core::mkd::PublicValueSource;
use fbs_core::{
    BreakerConfig, BreakerState, Clock, KeyUnavailableVerdict, MasterKeyDaemon, ParkStats,
    Principal, Resilience, RetryPolicy,
};
use fbs_crypto::dh::{DhGroup, PrivateValue};
use fbs_ip::hooks::{FbsIpHooks, IpMappingConfig};
use fbs_net::ip::Ipv4Addr;
use fbs_net::segment::Impairments;
use fbs_net::stack::{Host, Network};
use fbs_obs::MetricsRegistry;
use std::sync::Arc;
use std::time::Duration;

const A: Ipv4Addr = [10, 77, 0, 1];
const B: Ipv4Addr = [10, 77, 0, 2];
const PORT: u16 = 9000;

/// Soak shape: phase durations and traffic parameters, all virtual time.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Deterministic seed for the network, keys, and fault plan.
    pub seed: u64,
    /// Fault-free warm-up/measurement phase, µs.
    pub baseline_us: u64,
    /// Fault window, µs (directory + MKD outage).
    pub fault_us: u64,
    /// Post-fault grace before the recovery measurement, µs.
    pub settle_us: u64,
    /// Recovery measurement phase, µs.
    pub recovery_us: u64,
    /// One datagram sent every this many µs, all phases.
    pub send_interval_us: u64,
    /// UDP payload size, bytes.
    pub payload_bytes: usize,
    /// Simulation step, µs.
    pub step_us: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 7,
            baseline_us: 3_000_000,
            fault_us: 2_000_000,
            settle_us: 2_000_000,
            recovery_us: 6_000_000,
            send_interval_us: 2_000,
            payload_bytes: 512,
            step_us: 500,
        }
    }
}

/// Sent/delivered tallies for one phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTally {
    /// Datagrams handed to the sender's stack (accepted OR parked).
    pub sent: u64,
    /// Datagrams the sender's hook rejected outright.
    pub send_rejected: u64,
    /// Datagrams delivered to B's socket by the end of the phase.
    pub delivered: u64,
    /// Delivered per second of phase time.
    pub goodput_per_sec: f64,
}

/// The full `BENCH_chaos.json` payload.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Configuration the soak ran under.
    pub cfg: SoakConfig,
    /// Per-phase traffic tallies, in phase order.
    pub baseline: PhaseTally,
    /// Tally during the fault window.
    pub fault: PhaseTally,
    /// Tally during the settle grace.
    pub settle: PhaseTally,
    /// Tally during the recovery measurement.
    pub recovery: PhaseTally,
    /// recovery goodput / baseline goodput.
    pub recovery_ratio: f64,
    /// Both hosts' peer breakers closed (or never opened) at the end.
    pub breaker_closed: bool,
    /// Output-park counters (sender side).
    pub out_park: ParkStats,
    /// Input-park counters (receiver side).
    pub in_park: ParkStats,
    /// Park queue depths at the end — must be (0, 0) for convergence.
    pub final_depths: (usize, usize),
    /// Sender-side directory impairment counters.
    pub dir_chaos: ChaosDirectoryStats,
    /// Receiver-side MKD impairment counters.
    pub mkd_chaos: ChaosPvsStats,
    /// Cache-flush pulses applied, by scope name.
    pub flush_pulses: u64,
    /// `park.* / degrade.* / retry.* / breaker.*` counters from the
    /// shared fbs-obs registry both hosts report into.
    pub resilience_counters: Vec<(String, u64)>,
    /// The headline verdict: ratio ≥ 0.9, breakers closed, parks empty.
    pub converged: bool,
}

impl ChaosReport {
    /// Render as the `BENCH_chaos.json` document.
    pub fn to_json(&self) -> String {
        let tally = |t: &PhaseTally| {
            format!(
                "{{\"sent\": {}, \"send_rejected\": {}, \"delivered\": {}, \
                 \"goodput_per_sec\": {:.1}}}",
                t.sent, t.send_rejected, t.delivered, t.goodput_per_sec
            )
        };
        let park = |p: &ParkStats| {
            format!(
                "{{\"parked\": {}, \"released\": {}, \"expired\": {}, \"overflow\": {}, \
                 \"peak_depth\": {}}}",
                p.parked, p.released, p.expired, p.overflow, p.peak_depth
            )
        };
        let counters: Vec<String> = self
            .resilience_counters
            .iter()
            .map(|(k, v)| format!("    \"{k}\": {v}"))
            .collect();
        format!(
            "{{\n  \"bench\": \"chaos\",\n  \"seed\": {},\n  \
             \"phases_us\": {{\"baseline\": {}, \"fault\": {}, \"settle\": {}, \"recovery\": {}}},\n  \
             \"send_interval_us\": {},\n  \"payload_bytes\": {},\n  \
             \"baseline\": {},\n  \"fault\": {},\n  \"settle\": {},\n  \"recovery\": {},\n  \
             \"recovery_ratio\": {:.3},\n  \"breaker_closed\": {},\n  \
             \"out_park\": {},\n  \"in_park\": {},\n  \
             \"final_depths\": [{}, {}],\n  \
             \"dir_chaos\": {{\"fetches\": {}, \"outages\": {}, \"stale_served\": {}, \
             \"garbage_served\": {}}},\n  \
             \"mkd_chaos\": {{\"fetches\": {}, \"outages\": {}}},\n  \
             \"flush_pulses\": {},\n  \"resilience_counters\": {{\n{}\n  }},\n  \
             \"converged\": {}\n}}\n",
            self.cfg.seed,
            self.cfg.baseline_us,
            self.cfg.fault_us,
            self.cfg.settle_us,
            self.cfg.recovery_us,
            self.cfg.send_interval_us,
            self.cfg.payload_bytes,
            tally(&self.baseline),
            tally(&self.fault),
            tally(&self.settle),
            tally(&self.recovery),
            self.recovery_ratio,
            self.breaker_closed,
            park(&self.out_park),
            park(&self.in_park),
            self.final_depths.0,
            self.final_depths.1,
            self.dir_chaos.fetches,
            self.dir_chaos.outages,
            self.dir_chaos.stale_served,
            self.dir_chaos.garbage_served,
            self.mkd_chaos.fetches,
            self.mkd_chaos.outages,
            self.flush_pulses,
            counters.join(",\n"),
            self.converged
        )
    }
}

/// One chaos-wired host: keying runs MKD → [`ChaosPvs`] → PVC →
/// [`ChaosDirectory`] → directory, with retry + breaker resilience.
struct ChaosHost {
    hooks: FbsIpHooks,
    dir: Arc<ChaosDirectory>,
    pvs: Arc<ChaosPvs>,
}

#[allow(clippy::too_many_arguments)]
fn chaos_host(
    addr: Ipv4Addr,
    cfg: &IpMappingConfig,
    clock: &VirtualClock,
    group: &DhGroup,
    ca: &CertificateAuthority,
    directory: &Arc<Directory>,
    plan: &FaultPlan,
    seed: u64,
) -> (Host, ChaosHost) {
    let principal = Principal::from_ipv4(addr);
    let mut entropy = seed.to_be_bytes().to_vec();
    entropy.extend_from_slice(&addr);
    entropy.extend_from_slice(b"fbs-chaos-soak-entropy");
    let private = PrivateValue::from_entropy(group.clone(), &entropy);
    directory.publish(ca.issue(principal.clone(), private.public_value(), 0, u64::MAX / 2));

    let clock_arc: Arc<dyn Clock> = Arc::new(clock.clone());
    let dir = Arc::new(ChaosDirectory::new(
        Arc::clone(directory) as Arc<dyn CertSource>,
        plan.clone(),
        Arc::clone(&clock_arc),
    ));
    let pvc = Pvc::new(
        32,
        Arc::clone(&dir) as Arc<dyn CertSource>,
        ca.verifier(),
        Arc::clone(&clock_arc),
    );
    let pvs = Arc::new(ChaosPvs::new(
        Arc::new(pvc) as Arc<dyn PublicValueSource>,
        plan.clone(),
        Arc::clone(&clock_arc),
    ));
    let mkd =
        MasterKeyDaemon::new(private, Box::new(Arc::clone(&pvs))).with_resilience(Resilience::new(
            RetryPolicy {
                max_attempts: 3,
                base_backoff_us: 20_000,
                max_backoff_us: 200_000,
                deadline_us: 400_000,
                jitter_seed: seed,
            },
            BreakerConfig {
                failure_threshold: 3,
                open_duration_us: 500_000,
            },
            Arc::clone(&clock_arc),
        ));
    let addr_hash = u32::from_be_bytes(addr) as u64;
    let endpoint = fbs_core::FbsEndpoint::new(
        principal,
        cfg.fbs.clone(),
        clock_arc,
        seed ^ (addr_hash << 16) ^ 0x5DEECE66D,
        mkd,
    );
    let hooks = FbsIpHooks::new(endpoint, cfg.clone(), seed.rotate_left(17) ^ addr_hash);
    let mut host = Host::new(addr, 1500);
    host.install_hooks(Box::new(hooks.clone()));
    (host, ChaosHost { hooks, dir, pvs })
}

/// The scripted fault plan, phase-relative to `baseline_us`.
fn fault_plan(cfg: &SoakConfig) -> FaultPlan {
    let f0 = cfg.baseline_us;
    let half = cfg.fault_us / 2;
    FaultPlan::new(cfg.seed)
        // Keying infrastructure down for the whole fault window.
        .with_window(f0, f0 + cfg.fault_us, FaultKind::DirectoryOutage)
        .with_window(f0, f0 + cfg.fault_us, FaultKind::MkdOutage)
        // First half: hammer the receiver's soft state so inbound
        // datagrams park at B.
        .with_window(
            f0 + 100_000,
            f0 + half,
            FaultKind::EvictionStorm {
                period_us: 300_000,
                scope: FlushScope::Receiver,
            },
        )
        // Second half: flush the sender too so outbound datagrams park
        // (and overflow) at A.
        .with_window(
            f0 + half,
            f0 + half + 50_000,
            FaultKind::FlushCaches {
                scope: FlushScope::Sender,
            },
        )
        .with_window(
            f0 + half,
            f0 + cfg.fault_us,
            FaultKind::EvictionStorm {
                period_us: 300_000,
                scope: FlushScope::Sender,
            },
        )
}

/// Apply one flush pulse to the matching host(s).
fn apply_pulse(scope: FlushScope, a: &ChaosHost, b: &ChaosHost) -> u64 {
    let flush = |h: &ChaosHost, peer: Ipv4Addr| {
        h.hooks.flush_flow_keys();
        h.hooks.forget_peer(&Principal::from_ipv4(peer));
    };
    match scope {
        FlushScope::Sender => {
            flush(a, B);
            1
        }
        FlushScope::Receiver => {
            flush(b, A);
            1
        }
        FlushScope::All => {
            flush(a, B);
            flush(b, A);
            2
        }
    }
}

/// Run the soak and assemble the report.
pub fn run(cfg: SoakConfig) -> ChaosReport {
    let clock = VirtualClock::starting_at_us(0);
    let plan = fault_plan(&cfg);
    let group = DhGroup::test_group();
    let ca = CertificateAuthority::new("chaos-soak-ca", [0xC7; 16]);
    let directory = Arc::new(Directory::new(Duration::ZERO));
    let ip_cfg = IpMappingConfig {
        key_unavailable: KeyUnavailableVerdict::Park,
        park_capacity: 64,
        park_deadline_us: 1_000_000,
        ..IpMappingConfig::default()
    };

    let mut net = Network::new(cfg.seed, Impairments::ideal());
    let (host_a, a) = chaos_host(A, &ip_cfg, &clock, &group, &ca, &directory, &plan, cfg.seed);
    let (host_b, b) = chaos_host(
        B,
        &ip_cfg,
        &clock,
        &group,
        &ca,
        &directory,
        &plan,
        cfg.seed ^ 0xB0B,
    );
    let registry = Arc::new(MetricsRegistry::new());
    a.hooks.attach_obs(Arc::clone(&registry));
    b.hooks.attach_obs(Arc::clone(&registry));
    net.add_host(host_a);
    net.add_host(host_b);
    net.host_mut(B).udp.bind(PORT).unwrap();

    let phase_ends = [
        cfg.baseline_us,
        cfg.baseline_us + cfg.fault_us,
        cfg.baseline_us + cfg.fault_us + cfg.settle_us,
        cfg.baseline_us + cfg.fault_us + cfg.settle_us + cfg.recovery_us,
    ];
    let phase_lens = [
        cfg.baseline_us,
        cfg.fault_us,
        cfg.settle_us,
        cfg.recovery_us,
    ];
    let mut tallies = [PhaseTally::default(); 4];
    let mut flush_pulses = 0u64;
    let mut next_send = 0u64;
    let mut delivered_before = 0u64;
    let payload = vec![0x5Au8; cfg.payload_bytes];

    for (phase, (&end, &len)) in phase_ends.iter().zip(phase_lens.iter()).enumerate() {
        while net.now_us() < end {
            let prev = net.now_us();
            // Keep the protocol clock in lockstep with the medium, then
            // fire any cache-chaos pulses that edge within this step.
            clock.set_us(prev);
            for scope in plan.cache_pulses(prev.saturating_sub(cfg.step_us), prev) {
                flush_pulses += apply_pulse(scope, &a, &b);
            }
            while next_send <= prev {
                let res = net.host_mut(A).udp_send(4000, B, PORT, &payload, prev);
                tallies[phase].sent += 1;
                if res.is_err() {
                    tallies[phase].send_rejected += 1;
                }
                next_send += cfg.send_interval_us;
            }
            net.step(cfg.step_us.min(end - prev));
        }
        clock.set_us(net.now_us());
        let delivered_total = net.host_mut(B).udp.pending(PORT) as u64;
        tallies[phase].delivered = delivered_total - delivered_before;
        tallies[phase].goodput_per_sec =
            tallies[phase].delivered as f64 / (len as f64 / 1_000_000.0);
        delivered_before = delivered_total;
    }

    let (out_park, _) = a.hooks.park_stats();
    let (_, in_park) = b.hooks.park_stats();
    let a_depths = a.hooks.parked_depths();
    let b_depths = b.hooks.parked_depths();
    let breaker_closed = [
        a.hooks.breaker_state(&Principal::from_ipv4(B)),
        b.hooks.breaker_state(&Principal::from_ipv4(A)),
    ]
    .iter()
    .all(|s| matches!(s, None | Some(BreakerState::Closed)));

    let recovery_ratio = tallies[3].goodput_per_sec / tallies[0].goodput_per_sec.max(1e-9);
    let final_depths = (a_depths.0 + b_depths.0, a_depths.1 + b_depths.1);
    let resilience_counters: Vec<(String, u64)> = registry
        .snapshot()
        .counters
        .into_iter()
        .filter(|(k, _)| {
            ["park.", "degrade.", "retry.", "breaker."]
                .iter()
                .any(|p| k.starts_with(p))
        })
        .collect();
    let converged = recovery_ratio >= 0.9 && breaker_closed && final_depths == (0, 0);

    ChaosReport {
        cfg,
        baseline: tallies[0],
        fault: tallies[1],
        settle: tallies[2],
        recovery: tallies[3],
        recovery_ratio,
        breaker_closed,
        out_park,
        in_park,
        final_depths,
        dir_chaos: a.dir.stats(),
        mkd_chaos: b.pvs.stats(),
        flush_pulses,
        resilience_counters,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_cfg(seed: u64) -> SoakConfig {
        SoakConfig {
            seed,
            baseline_us: 1_500_000,
            fault_us: 1_500_000,
            settle_us: 1_500_000,
            recovery_us: 3_000_000,
            send_interval_us: 4_000,
            payload_bytes: 256,
            step_us: 1_000,
        }
    }

    #[test]
    fn soak_converges_after_fault_window() {
        let r = run(short_cfg(11));
        // The fault really bit: goodput collapsed during the window and
        // parks/drops were recorded somewhere in the stack.
        assert!(
            r.fault.goodput_per_sec < 0.8 * r.baseline.goodput_per_sec,
            "fault had no effect: {r:?}"
        );
        assert!(r.dir_chaos.outages + r.mkd_chaos.outages > 0);
        assert!(r.out_park.parked + r.in_park.parked > 0, "{r:?}");
        // Bounded: the queue never exceeded its capacity.
        assert!(r.out_park.peak_depth <= 64 && r.in_park.peak_depth <= 64);
        // And the system came back.
        assert!(r.converged, "no convergence: {r:?}");
        assert_eq!(r.final_depths, (0, 0));
        assert!(r.breaker_closed);
        assert!(r.recovery_ratio >= 0.9, "ratio {}", r.recovery_ratio);
    }

    #[test]
    fn soak_is_deterministic_for_a_seed() {
        let one = run(short_cfg(23)).to_json();
        let two = run(short_cfg(23)).to_json();
        assert_eq!(one, two, "same seed must reproduce byte-identically");
    }

    #[test]
    fn report_json_is_well_formed() {
        let json = run(short_cfg(5)).to_json();
        assert!(json.contains("\"bench\": \"chaos\""));
        assert!(json.contains("\"recovery_ratio\""));
        assert!(json.contains("\"converged\""));
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }
}
