//! Chaos soak: scripted directory/MKD outages and cache flushes against a
//! two-host FBS LAN, measuring degradation and — the point — recovery.
//!
//! The soak runs four virtual-time phases over one UDP flow A → B:
//!
//! 1. **baseline** — fault-free; establishes the goodput yardstick.
//! 2. **fault** — a [`FaultPlan`] takes the certificate directory and the
//!    MKD upcall path down. The first half flushes only the *receiver's*
//!    soft state (B parks inbound datagrams it can no longer verify); the
//!    second half flushes the *sender's* too (A parks outbound datagrams
//!    it can no longer key). Parking queues are bounded, so sustained
//!    pressure surfaces as counted overflow drops, never memory growth.
//! 3. **settle** — faults lift; breakers half-open and close, parked
//!    datagrams drain, caches re-warm.
//! 4. **recovery** — measured again; convergence means goodput is back to
//!    ≥ 90% of baseline with breakers closed and park queues empty.
//!
//! Everything is a pure function of the seed and virtual time: the same
//! seed yields byte-identical `BENCH_chaos.json` reports.

use fbs_cert::{CertSource, CertificateAuthority, Directory, Pvc};
use fbs_chaos::{
    ChaosDirectory, ChaosDirectoryStats, ChaosPvs, ChaosPvsStats, FaultKind, FaultPlan, FlushScope,
    VirtualClock, WorkerChaos,
};
use fbs_core::mkd::PublicValueSource;
use fbs_core::{
    BreakerConfig, BreakerState, Clock, KeyUnavailableVerdict, MasterKeyDaemon, ParkStats,
    Principal, Resilience, RetryPolicy,
};
use fbs_crypto::dh::{DhGroup, PrivateValue};
use fbs_ip::hooks::{FbsIpHooks, IpMappingConfig};
use fbs_net::ip::Ipv4Addr;
use fbs_net::segment::Impairments;
use fbs_net::stack::{Host, Network};
use fbs_obs::{
    DeltaTracker, FlowTracer, HealthInputs, HealthModel, HealthReport, MetricsRegistry,
    MetricsSnapshot,
};
use std::sync::Arc;
use std::time::Duration;

const A: Ipv4Addr = [10, 77, 0, 1];
const B: Ipv4Addr = [10, 77, 0, 2];
const PORT: u16 = 9000;

/// Soak shape: phase durations and traffic parameters, all virtual time.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Deterministic seed for the network, keys, and fault plan.
    pub seed: u64,
    /// Fault-free warm-up/measurement phase, µs.
    pub baseline_us: u64,
    /// Fault window, µs (directory + MKD outage).
    pub fault_us: u64,
    /// Post-fault grace before the recovery measurement, µs.
    pub settle_us: u64,
    /// Recovery measurement phase, µs.
    pub recovery_us: u64,
    /// One datagram sent every this many µs, all phases.
    pub send_interval_us: u64,
    /// UDP payload size, bytes.
    pub payload_bytes: usize,
    /// Simulation step, µs.
    pub step_us: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 7,
            baseline_us: 3_000_000,
            fault_us: 2_000_000,
            settle_us: 2_000_000,
            recovery_us: 6_000_000,
            send_interval_us: 2_000,
            payload_bytes: 512,
            step_us: 500,
        }
    }
}

/// Sent/delivered tallies for one phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTally {
    /// Datagrams handed to the sender's stack (accepted OR parked).
    pub sent: u64,
    /// Datagrams the sender's hook rejected outright.
    pub send_rejected: u64,
    /// Datagrams delivered to B's socket by the end of the phase.
    pub delivered: u64,
    /// Delivered per second of phase time.
    pub goodput_per_sec: f64,
}

/// Overload-shedding tallies for the worker-fault scenario.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShedTally {
    /// Batches that shed at least one datagram.
    pub batches: u64,
    /// Datagrams rejected by the shed policy (each one returned a
    /// `Reject` verdict to its caller — counted, never silently lost).
    pub rejected: u64,
}

/// The worker-fault scenario: scheduled supervised panics, stalls, and
/// ring saturation against the datagram-plane worker runtime, with the
/// same baseline/fault/settle/recovery phase structure as the keying
/// soak. Appears in `BENCH_chaos.json` under `"worker_fault"`.
#[derive(Clone, Debug)]
pub struct WorkerFaultReport {
    /// Configuration the scenario ran under.
    pub cfg: SoakConfig,
    /// Fault-free yardstick phase.
    pub baseline: PhaseTally,
    /// Tally while workers panic, stall, and shed.
    pub fault: PhaseTally,
    /// Tally during the settle grace.
    pub settle: PhaseTally,
    /// Tally during the recovery measurement.
    pub recovery: PhaseTally,
    /// recovery goodput / baseline goodput.
    pub recovery_ratio: f64,
    /// Supervised worker panics observed by the runtimes (both hosts).
    pub panics: u64,
    /// Worker respawns (shard state rebuilt in-thread).
    pub respawns: u64,
    /// Workers quarantined (fail-closed) at the end — 0 under the
    /// respawn policy unless a worker exhausted its budget.
    pub quarantined: usize,
    /// Total workers across both hosts' runtimes.
    pub workers: usize,
    /// Workers still alive at the end — must equal `workers`.
    pub workers_alive: usize,
    /// Shed-policy tallies during the saturation window.
    pub sheds: ShedTally,
    /// The sender's buffer-pool ledger balances exactly:
    /// returns + discards == takes + rejects. Every reject returned
    /// both its payload and its unused supply; no worker leaked or
    /// double-freed a buffer across a panic.
    pub pool_balanced: bool,
    /// Accepted datagrams that vanished without a verdict: accepted −
    /// delivered − receiver rejects − park expiries − still parked,
    /// after a post-run wire drain. Must be 0.
    pub verdict_loss: u64,
    /// Health timeline, one report per phase (same model and condition
    /// set as the keying soak).
    pub health: Vec<(&'static str, HealthReport)>,
    /// Headline: ratio ≥ 0.9, zero verdict loss, pool balanced, all
    /// workers alive and none quarantined, and the faults actually bit.
    pub converged: bool,
}

impl WorkerFaultReport {
    /// Render as one JSON object (the `"worker_fault"` member of
    /// `BENCH_chaos.json`).
    pub fn to_json(&self) -> String {
        let tally = |t: &PhaseTally| {
            format!(
                "{{\"sent\": {}, \"send_rejected\": {}, \"delivered\": {}, \
                 \"goodput_per_sec\": {:.1}}}",
                t.sent, t.send_rejected, t.delivered, t.goodput_per_sec
            )
        };
        let health: Vec<String> = self
            .health
            .iter()
            .map(|(phase, report)| format!("    \"{}\": {}", phase, report.to_json()))
            .collect();
        format!(
            "{{\n  \"scenario\": \"worker_fault\",\n  \"seed\": {},\n  \
             \"phases_us\": {{\"baseline\": {}, \"fault\": {}, \"settle\": {}, \"recovery\": {}}},\n  \
             \"baseline\": {},\n  \"worker_fault\": {},\n  \"settle\": {},\n  \"recovery\": {},\n  \
             \"recovery_ratio\": {:.3},\n  \
             \"panics\": {},\n  \"respawns\": {},\n  \"quarantined\": {},\n  \
             \"workers\": {},\n  \"workers_alive\": {},\n  \
             \"sheds\": {{\"batches\": {}, \"rejected\": {}}},\n  \
             \"pool_balanced\": {},\n  \"verdict_loss\": {},\n  \
             \"health\": {{\n{}\n  }},\n  \
             \"converged\": {}\n}}",
            self.cfg.seed,
            self.cfg.baseline_us,
            self.cfg.fault_us,
            self.cfg.settle_us,
            self.cfg.recovery_us,
            tally(&self.baseline),
            tally(&self.fault),
            tally(&self.settle),
            tally(&self.recovery),
            self.recovery_ratio,
            self.panics,
            self.respawns,
            self.quarantined,
            self.workers,
            self.workers_alive,
            self.sheds.batches,
            self.sheds.rejected,
            self.pool_balanced,
            self.verdict_loss,
            health.join(",\n"),
            self.converged
        )
    }
}

/// The full `BENCH_chaos.json` payload.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Configuration the soak ran under.
    pub cfg: SoakConfig,
    /// Per-phase traffic tallies, in phase order.
    pub baseline: PhaseTally,
    /// Tally during the fault window.
    pub fault: PhaseTally,
    /// Tally during the settle grace.
    pub settle: PhaseTally,
    /// Tally during the recovery measurement.
    pub recovery: PhaseTally,
    /// recovery goodput / baseline goodput.
    pub recovery_ratio: f64,
    /// Both hosts' peer breakers closed (or never opened) at the end.
    pub breaker_closed: bool,
    /// Output-park counters (sender side).
    pub out_park: ParkStats,
    /// Input-park counters (receiver side).
    pub in_park: ParkStats,
    /// Park queue depths at the end — must be (0, 0) for convergence.
    pub final_depths: (usize, usize),
    /// Sender-side directory impairment counters.
    pub dir_chaos: ChaosDirectoryStats,
    /// Receiver-side MKD impairment counters.
    pub mkd_chaos: ChaosPvsStats,
    /// Cache-flush pulses applied, by scope name.
    pub flush_pulses: u64,
    /// `park.* / degrade.* / retry.* / breaker.*` counters from the
    /// shared fbs-obs registry both hosts report into. Includes the
    /// breaker time-in-state accumulators (`breaker.time_*_us`), which
    /// run on virtual time and are therefore seed-deterministic.
    pub resilience_counters: Vec<(String, u64)>,
    /// Health-condition timeline: the [`HealthModel`] evaluated at the
    /// end of each phase against that phase's *delta* snapshot (what
    /// the phase itself did, not cumulative totals), in phase order.
    /// Pure counter arithmetic on virtual time, so it is part of the
    /// deterministic report.
    pub health: Vec<(&'static str, HealthReport)>,
    /// The worker-fault scenario, when the caller ran it (the
    /// `chaos_soak` binary always does; `run` alone does not).
    pub worker_fault: Option<WorkerFaultReport>,
    /// The headline verdict: ratio ≥ 0.9, breakers closed, parks empty.
    pub converged: bool,
}

impl ChaosReport {
    /// Render as the `BENCH_chaos.json` document.
    pub fn to_json(&self) -> String {
        let tally = |t: &PhaseTally| {
            format!(
                "{{\"sent\": {}, \"send_rejected\": {}, \"delivered\": {}, \
                 \"goodput_per_sec\": {:.1}}}",
                t.sent, t.send_rejected, t.delivered, t.goodput_per_sec
            )
        };
        let park = |p: &ParkStats| {
            format!(
                "{{\"parked\": {}, \"released\": {}, \"expired\": {}, \"overflow\": {}, \
                 \"peak_depth\": {}}}",
                p.parked, p.released, p.expired, p.overflow, p.peak_depth
            )
        };
        let counters: Vec<String> = self
            .resilience_counters
            .iter()
            .map(|(k, v)| format!("    \"{k}\": {v}"))
            .collect();
        let health: Vec<String> = self
            .health
            .iter()
            .map(|(phase, report)| format!("    \"{}\": {}", phase, report.to_json()))
            .collect();
        // Indent the nested scenario object to sit inside this one.
        let worker_fault = match &self.worker_fault {
            Some(wf) => wf.to_json().replace('\n', "\n  "),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"bench\": \"chaos\",\n  \"seed\": {},\n  \
             \"phases_us\": {{\"baseline\": {}, \"fault\": {}, \"settle\": {}, \"recovery\": {}}},\n  \
             \"send_interval_us\": {},\n  \"payload_bytes\": {},\n  \
             \"baseline\": {},\n  \"fault\": {},\n  \"settle\": {},\n  \"recovery\": {},\n  \
             \"recovery_ratio\": {:.3},\n  \"breaker_closed\": {},\n  \
             \"out_park\": {},\n  \"in_park\": {},\n  \
             \"final_depths\": [{}, {}],\n  \
             \"dir_chaos\": {{\"fetches\": {}, \"outages\": {}, \"stale_served\": {}, \
             \"garbage_served\": {}}},\n  \
             \"mkd_chaos\": {{\"fetches\": {}, \"outages\": {}}},\n  \
             \"flush_pulses\": {},\n  \"resilience_counters\": {{\n{}\n  }},\n  \
             \"health\": {{\n{}\n  }},\n  \
             \"worker_fault\": {},\n  \
             \"converged\": {}\n}}\n",
            self.cfg.seed,
            self.cfg.baseline_us,
            self.cfg.fault_us,
            self.cfg.settle_us,
            self.cfg.recovery_us,
            self.cfg.send_interval_us,
            self.cfg.payload_bytes,
            tally(&self.baseline),
            tally(&self.fault),
            tally(&self.settle),
            tally(&self.recovery),
            self.recovery_ratio,
            self.breaker_closed,
            park(&self.out_park),
            park(&self.in_park),
            self.final_depths.0,
            self.final_depths.1,
            self.dir_chaos.fetches,
            self.dir_chaos.outages,
            self.dir_chaos.stale_served,
            self.dir_chaos.garbage_served,
            self.mkd_chaos.fetches,
            self.mkd_chaos.outages,
            self.flush_pulses,
            counters.join(",\n"),
            health.join(",\n"),
            worker_fault,
            self.converged
        )
    }
}

/// One chaos-wired host: keying runs MKD → [`ChaosPvs`] → PVC →
/// [`ChaosDirectory`] → directory, with retry + breaker resilience.
struct ChaosHost {
    hooks: FbsIpHooks,
    dir: Arc<ChaosDirectory>,
    pvs: Arc<ChaosPvs>,
}

#[allow(clippy::too_many_arguments)]
fn chaos_host(
    addr: Ipv4Addr,
    cfg: &IpMappingConfig,
    clock: &VirtualClock,
    group: &DhGroup,
    ca: &CertificateAuthority,
    directory: &Arc<Directory>,
    plan: &FaultPlan,
    seed: u64,
) -> (Host, ChaosHost) {
    let principal = Principal::from_ipv4(addr);
    let mut entropy = seed.to_be_bytes().to_vec();
    entropy.extend_from_slice(&addr);
    entropy.extend_from_slice(b"fbs-chaos-soak-entropy");
    let private = PrivateValue::from_entropy(group.clone(), &entropy);
    directory.publish(ca.issue(principal.clone(), private.public_value(), 0, u64::MAX / 2));

    let clock_arc: Arc<dyn Clock> = Arc::new(clock.clone());
    let dir = Arc::new(ChaosDirectory::new(
        Arc::clone(directory) as Arc<dyn CertSource>,
        plan.clone(),
        Arc::clone(&clock_arc),
    ));
    let pvc = Pvc::new(
        32,
        Arc::clone(&dir) as Arc<dyn CertSource>,
        ca.verifier(),
        Arc::clone(&clock_arc),
    );
    let pvs = Arc::new(ChaosPvs::new(
        Arc::new(pvc) as Arc<dyn PublicValueSource>,
        plan.clone(),
        Arc::clone(&clock_arc),
    ));
    let mkd =
        MasterKeyDaemon::new(private, Box::new(Arc::clone(&pvs))).with_resilience(Resilience::new(
            RetryPolicy {
                max_attempts: 3,
                base_backoff_us: 20_000,
                max_backoff_us: 200_000,
                deadline_us: 400_000,
                jitter_seed: seed,
            },
            BreakerConfig {
                failure_threshold: 3,
                open_duration_us: 500_000,
            },
            Arc::clone(&clock_arc),
        ));
    let addr_hash = u32::from_be_bytes(addr) as u64;
    let endpoint = fbs_core::FbsEndpoint::new(
        principal,
        cfg.fbs.clone(),
        clock_arc,
        seed ^ (addr_hash << 16) ^ 0x5DEECE66D,
        mkd,
    );
    let hooks = FbsIpHooks::new(endpoint, cfg.clone(), seed.rotate_left(17) ^ addr_hash);
    let mut host = Host::new(addr, 1500);
    host.install_hooks(Box::new(hooks.clone()));
    (host, ChaosHost { hooks, dir, pvs })
}

/// The scripted fault plan, phase-relative to `baseline_us`.
fn fault_plan(cfg: &SoakConfig) -> FaultPlan {
    let f0 = cfg.baseline_us;
    let half = cfg.fault_us / 2;
    FaultPlan::new(cfg.seed)
        // Keying infrastructure down for the whole fault window.
        .with_window(f0, f0 + cfg.fault_us, FaultKind::DirectoryOutage)
        .with_window(f0, f0 + cfg.fault_us, FaultKind::MkdOutage)
        // First half: hammer the receiver's soft state so inbound
        // datagrams park at B.
        .with_window(
            f0 + 100_000,
            f0 + half,
            FaultKind::EvictionStorm {
                period_us: 300_000,
                scope: FlushScope::Receiver,
            },
        )
        // Second half: flush the sender too so outbound datagrams park
        // (and overflow) at A.
        .with_window(
            f0 + half,
            f0 + half + 50_000,
            FaultKind::FlushCaches {
                scope: FlushScope::Sender,
            },
        )
        .with_window(
            f0 + half,
            f0 + cfg.fault_us,
            FaultKind::EvictionStorm {
                period_us: 300_000,
                scope: FlushScope::Sender,
            },
        )
}

/// Apply one flush pulse to the matching host(s).
fn apply_pulse(scope: FlushScope, a: &ChaosHost, b: &ChaosHost) -> u64 {
    let flush = |h: &ChaosHost, peer: Ipv4Addr| {
        h.hooks.flush_flow_keys().expect("worker runtime alive");
        h.hooks.forget_peer(&Principal::from_ipv4(peer));
    };
    match scope {
        FlushScope::Sender => {
            flush(a, B);
            1
        }
        FlushScope::Receiver => {
            flush(b, A);
            1
        }
        FlushScope::All => {
            flush(a, B);
            flush(b, A);
            2
        }
    }
}

/// One registry snapshot with both hosts' hook-layer verdict counters
/// folded in. The registry tracks worker-runtime and resilience
/// counters natively, but the final per-datagram verdict tallies live
/// in each hook's own atomics; rate-based health conditions (shed rate
/// reads offered load from `hooks.*_entries`) need both.
fn observed_snapshot(registry: &MetricsRegistry, a: &ChaosHost, b: &ChaosHost) -> MetricsSnapshot {
    let mut snap = registry.snapshot();
    a.hooks.stats().contribute(&mut snap);
    b.hooks.stats().contribute(&mut snap);
    snap
}

/// Everything one soak produces beyond the committed report: the
/// sampled flow trace (when tracing was requested), the final metrics
/// snapshot (the `--prom` exposition source), and per-phase delta
/// snapshots (the periodic scrape-like increments for `--deltas`).
#[derive(Debug)]
pub struct SoakOutput {
    /// The `BENCH_chaos.json` report.
    pub report: ChaosReport,
    /// Flow-trace JSON (`FlowTracer::to_json`), present when a trace
    /// rate was requested. Runs entirely on virtual time, so it is
    /// byte-identical per seed.
    pub trace_json: Option<String>,
    /// Final registry snapshot, for Prometheus exposition.
    pub snapshot: MetricsSnapshot,
    /// Per-phase delta snapshots from a [`DeltaTracker`]: what changed
    /// during each phase, in phase order.
    pub deltas: Vec<(&'static str, MetricsSnapshot)>,
}

/// Phase names, in order, shared by the health timeline and deltas.
const PHASES: [&str; 4] = ["baseline", "fault", "settle", "recovery"];

/// Run the soak and assemble just the report (no tracing).
pub fn run(cfg: SoakConfig) -> ChaosReport {
    run_soak(cfg, None).report
}

/// Run the soak, optionally sampling flows at 1 in 2^`trace_rate_log2`
/// (0 traces the soak's single flow), and return the full output set.
pub fn run_soak(cfg: SoakConfig, trace_rate_log2: Option<u32>) -> SoakOutput {
    let clock = VirtualClock::starting_at_us(0);
    let plan = fault_plan(&cfg);
    let group = DhGroup::test_group();
    let ca = CertificateAuthority::new("chaos-soak-ca", [0xC7; 16]);
    let directory = Arc::new(Directory::new(Duration::ZERO));
    let ip_cfg = IpMappingConfig {
        key_unavailable: KeyUnavailableVerdict::Park,
        park_capacity: 64,
        park_deadline_us: 1_000_000,
        ..IpMappingConfig::default()
    };

    let mut net = Network::new(cfg.seed, Impairments::ideal());
    let (host_a, a) = chaos_host(A, &ip_cfg, &clock, &group, &ca, &directory, &plan, cfg.seed);
    let (host_b, b) = chaos_host(
        B,
        &ip_cfg,
        &clock,
        &group,
        &ca,
        &directory,
        &plan,
        cfg.seed ^ 0xB0B,
    );
    // Events (breaker transitions in particular) are stamped with the
    // virtual clock, so the flight recorder and trace annotations are
    // deterministic per seed. The ring is sized for the whole run (a
    // few events per datagram sent) so the recorder keeps full history
    // and a healthy soak reports zero dropped events.
    let total_us = cfg.baseline_us + cfg.fault_us + cfg.settle_us + cfg.recovery_us;
    let event_capacity =
        ((total_us / cfg.send_interval_us.max(1)) as usize * 16).next_power_of_two();
    let registry = {
        let c = clock.clone();
        Arc::new(
            MetricsRegistry::with_event_capacity(event_capacity)
                .with_time_source(move || c.now_micros()),
        )
    };
    let tracer = trace_rate_log2.map(|rate| {
        let t = Arc::new(FlowTracer::new(rate));
        registry.set_tracer(Arc::clone(&t));
        t
    });
    a.hooks
        .attach_obs(Arc::clone(&registry))
        .expect("worker runtime alive");
    b.hooks
        .attach_obs(Arc::clone(&registry))
        .expect("worker runtime alive");
    net.add_host(host_a);
    net.add_host(host_b);
    // The stacks observe into the same registry as the hooks: wire /
    // reassembly / deliver spans stitch onto the hook-side spans.
    net.host_mut(A).attach_obs(Arc::clone(&registry));
    net.host_mut(B).attach_obs(Arc::clone(&registry));
    net.host_mut(B).udp.bind(PORT).unwrap();

    let phase_ends = [
        cfg.baseline_us,
        cfg.baseline_us + cfg.fault_us,
        cfg.baseline_us + cfg.fault_us + cfg.settle_us,
        cfg.baseline_us + cfg.fault_us + cfg.settle_us + cfg.recovery_us,
    ];
    let phase_lens = [
        cfg.baseline_us,
        cfg.fault_us,
        cfg.settle_us,
        cfg.recovery_us,
    ];
    let mut tallies = [PhaseTally::default(); 4];
    let mut flush_pulses = 0u64;
    let mut next_send = 0u64;
    let mut delivered_before = 0u64;
    let payload = vec![0x5Au8; cfg.payload_bytes];
    let health_model = HealthModel::default();
    let mut health: Vec<(&'static str, HealthReport)> = Vec::with_capacity(4);
    let mut delta_tracker = DeltaTracker::new();
    let mut deltas: Vec<(&'static str, MetricsSnapshot)> = Vec::with_capacity(4);

    for (phase, (&end, &len)) in phase_ends.iter().zip(phase_lens.iter()).enumerate() {
        while net.now_us() < end {
            let prev = net.now_us();
            // Keep the protocol clock in lockstep with the medium, then
            // fire any cache-chaos pulses that edge within this step.
            clock.set_us(prev);
            for scope in plan.cache_pulses(prev.saturating_sub(cfg.step_us), prev) {
                flush_pulses += apply_pulse(scope, &a, &b);
            }
            // Fault-window edges land on the trace timeline, so a
            // parked span can be read against the outage that caused it.
            if let Some(t) = &tracer {
                for (edge, fault, t_us) in plan.window_edges(prev.saturating_sub(cfg.step_us), prev)
                {
                    t.annotate(edge, fault, t_us, 0);
                }
            }
            while next_send <= prev {
                let res = net.host_mut(A).udp_send(4000, B, PORT, &payload, prev);
                tallies[phase].sent += 1;
                if res.is_err() {
                    tallies[phase].send_rejected += 1;
                }
                next_send += cfg.send_interval_us;
            }
            net.step(cfg.step_us.min(end - prev));
        }
        clock.set_us(net.now_us());
        let delivered_total = net.host_mut(B).udp.pending(PORT) as u64;
        tallies[phase].delivered = delivered_total - delivered_before;
        tallies[phase].goodput_per_sec =
            tallies[phase].delivered as f64 / (len as f64 / 1_000_000.0);
        delivered_before = delivered_total;

        // Phase-end observation: one health evaluation and one delta
        // snapshot per phase. Both read only counters (virtual-time
        // arithmetic), so the health timeline stays deterministic.
        // Health is judged on the *delta* — what this phase did — so a
        // park overflow during the fault window marks the fault phase
        // critical without smearing criticality over the recovery
        // phases that follow (counters are cumulative; phase health is
        // not).
        let snap = observed_snapshot(&registry, &a, &b);
        let delta = delta_tracker.delta(&snap);
        let ad = a.hooks.parked_depths();
        let bd = b.hooks.parked_depths();
        let inputs = HealthInputs {
            // The deepest single queue vs the per-queue bound: one full
            // queue is turning work away even while its three siblings
            // sit empty, and a summed-depth-vs-summed-capacity ratio
            // would mask that.
            park_depth: [ad.0, ad.1, bd.0, bd.1].into_iter().max().unwrap_or(0) as u64,
            park_capacity: ip_cfg.park_capacity as u64,
            recovery_ratio_pct: (phase == 3).then(|| {
                (tallies[3].goodput_per_sec * 100.0 / tallies[0].goodput_per_sec.max(1e-9)) as u64
            }),
            workers_quarantined: (a.hooks.quarantined_workers() + b.hooks.quarantined_workers())
                as u64,
            workers_total: (a.hooks.num_workers() + b.hooks.num_workers()) as u64,
            // Worst single shard budget across both hosts, same
            // per-queue logic as park_depth.
            mem_used_bytes: a.hooks.mem_bytes().0.max(b.hooks.mem_bytes().0),
            mem_limit_bytes: a.hooks.mem_bytes().1.max(b.hooks.mem_bytes().1),
        };
        health.push((PHASES[phase], health_model.evaluate(&delta, &inputs)));
        deltas.push((PHASES[phase], delta));
    }

    let (out_park, _) = a.hooks.park_stats().expect("worker runtime alive");
    let (_, in_park) = b.hooks.park_stats().expect("worker runtime alive");
    let a_depths = a.hooks.parked_depths();
    let b_depths = b.hooks.parked_depths();
    let breaker_closed = [
        a.hooks.breaker_state(&Principal::from_ipv4(B)),
        b.hooks.breaker_state(&Principal::from_ipv4(A)),
    ]
    .iter()
    .all(|s| matches!(s, None | Some(BreakerState::Closed)));

    let recovery_ratio = tallies[3].goodput_per_sec / tallies[0].goodput_per_sec.max(1e-9);
    let final_depths = (a_depths.0 + b_depths.0, a_depths.1 + b_depths.1);
    let resilience_counters: Vec<(String, u64)> = registry
        .snapshot()
        .counters
        .into_iter()
        .filter(|(k, _)| {
            ["park.", "degrade.", "retry.", "breaker."]
                .iter()
                .any(|p| k.starts_with(p))
        })
        .collect();
    let converged = recovery_ratio >= 0.9 && breaker_closed && final_depths == (0, 0);

    let report = ChaosReport {
        cfg,
        baseline: tallies[0],
        fault: tallies[1],
        settle: tallies[2],
        recovery: tallies[3],
        recovery_ratio,
        breaker_closed,
        out_park,
        in_park,
        final_depths,
        dir_chaos: a.dir.stats(),
        mkd_chaos: b.pvs.stats(),
        flush_pulses,
        resilience_counters,
        health,
        worker_fault: None,
        converged,
    };
    SoakOutput {
        report,
        trace_json: tracer.map(|t| t.to_json()),
        snapshot: registry.snapshot(),
        deltas,
    }
}

/// Phase names for the worker-fault scenario.
const WF_PHASES: [&str; 4] = ["baseline", "worker_fault", "settle", "recovery"];

/// The worker-fault plan, phase-relative to `baseline_us`. Every fault
/// is armed against *every* worker: a worker only polls its taps when
/// it carries traffic, so arming all of them covers whatever
/// shard-to-worker layout the seed's flows hash into (unfired pulses
/// are inert and cost nothing). All windows sit inside the fault
/// phase, disjoint where it matters — a saturated worker receives no
/// batches, so a panic window overlapping a saturation window could
/// never fire.
fn worker_fault_plan(cfg: &SoakConfig, workers: usize) -> FaultPlan {
    let f0 = cfg.baseline_us;
    let half = cfg.fault_us / 2;
    let mut plan = FaultPlan::new(cfg.seed);
    for w in 0..workers {
        plan = plan
            // One supervised panic early in the window and one after
            // the midpoint: the second proves the respawned worker's
            // rebuilt shard state survives a repeat fault.
            .with_window(
                f0 + 100_000,
                f0 + half,
                FaultKind::WorkerPanic { worker: w },
            )
            .with_window(
                f0 + half,
                f0 + half + 200_000,
                FaultKind::WorkerPanic { worker: w },
            )
            // A bounded stall. Wall-clock only: virtual-time outputs
            // are unaffected, so the report stays byte-identical.
            .with_window(
                f0 + 100_000,
                f0 + cfg.fault_us,
                FaultKind::WorkerStall {
                    worker: w,
                    stall_us: 1_500,
                },
            )
            // Producer-side ring saturation for the closing stretch:
            // datagrams shed per-datagram with counted rejects.
            .with_window(
                f0 + half + 200_000,
                f0 + half + 500_000,
                FaultKind::RingSaturation { worker: w },
            );
    }
    plan
}

/// Run the worker-fault scenario: the same two-host soak shape, but the
/// chaos targets the sender's datagram-plane worker runtime (scheduled
/// supervised panics, stalls, ring saturation) instead of the keying
/// infrastructure. Keying stays healthy throughout, so every
/// degradation in the report is attributable to the worker faults.
pub fn run_worker_fault(cfg: SoakConfig) -> WorkerFaultReport {
    let clock = VirtualClock::starting_at_us(0);
    let group = DhGroup::test_group();
    let ca = CertificateAuthority::new("chaos-soak-ca", [0xC7; 16]);
    let directory = Arc::new(Directory::new(Duration::ZERO));
    let ip_cfg = IpMappingConfig {
        key_unavailable: KeyUnavailableVerdict::Park,
        park_capacity: 64,
        park_deadline_us: 1_000_000,
        ..IpMappingConfig::default()
    };

    let mut net = Network::new(cfg.seed, Impairments::ideal());
    // The plan's worker windows drive WorkerChaos below; its directory
    // and MKD taps see no outage windows, so keying never degrades.
    let (host_a, a) = {
        let plan = FaultPlan::new(cfg.seed);
        chaos_host(A, &ip_cfg, &clock, &group, &ca, &directory, &plan, cfg.seed)
    };
    let (host_b, b) = {
        let plan = FaultPlan::new(cfg.seed);
        chaos_host(
            B,
            &ip_cfg,
            &clock,
            &group,
            &ca,
            &directory,
            &plan,
            cfg.seed ^ 0xB0B,
        )
    };
    let plan = worker_fault_plan(&cfg, a.hooks.num_workers());
    a.hooks
        .set_worker_chaos(Some(Arc::new(WorkerChaos::from_plan(&plan))));

    // Ring sized for the whole run so the flight recorder keeps full
    // history: a healthy scenario reports zero dropped events, and the
    // events_dropped health condition stays meaningful.
    let total_us = cfg.baseline_us + cfg.fault_us + cfg.settle_us + cfg.recovery_us;
    let event_capacity =
        ((total_us / cfg.send_interval_us.max(1)) as usize * 16).next_power_of_two();
    let registry = {
        let c = clock.clone();
        Arc::new(
            MetricsRegistry::with_event_capacity(event_capacity)
                .with_time_source(move || c.now_micros()),
        )
    };
    a.hooks
        .attach_obs(Arc::clone(&registry))
        .expect("worker runtime alive");
    b.hooks
        .attach_obs(Arc::clone(&registry))
        .expect("worker runtime alive");
    net.add_host(host_a);
    net.add_host(host_b);
    net.host_mut(A).attach_obs(Arc::clone(&registry));
    net.host_mut(B).attach_obs(Arc::clone(&registry));
    net.host_mut(B).udp.bind(PORT).unwrap();

    let phase_ends = [
        cfg.baseline_us,
        cfg.baseline_us + cfg.fault_us,
        cfg.baseline_us + cfg.fault_us + cfg.settle_us,
        cfg.baseline_us + cfg.fault_us + cfg.settle_us + cfg.recovery_us,
    ];
    let phase_lens = [
        cfg.baseline_us,
        cfg.fault_us,
        cfg.settle_us,
        cfg.recovery_us,
    ];
    let mut tallies = [PhaseTally::default(); 4];
    let mut next_send = 0u64;
    let mut seq = 0u64;
    let mut delivered_before = 0u64;
    let payload = vec![0xA5u8; cfg.payload_bytes];
    let health_model = HealthModel::default();
    let mut health: Vec<(&'static str, HealthReport)> = Vec::with_capacity(4);
    let mut delta_tracker = DeltaTracker::new();

    for (phase, (&end, &len)) in phase_ends.iter().zip(phase_lens.iter()).enumerate() {
        while net.now_us() < end {
            let prev = net.now_us();
            clock.set_us(prev);
            while next_send <= prev {
                // Eight source ports → eight flows → the traffic hashes
                // across shards on every worker, so the per-worker fault
                // windows all see load.
                let src_port = 4000 + (seq % 8) as u16;
                let res = net.host_mut(A).udp_send(src_port, B, PORT, &payload, prev);
                tallies[phase].sent += 1;
                if res.is_err() {
                    tallies[phase].send_rejected += 1;
                }
                seq += 1;
                next_send += cfg.send_interval_us;
            }
            net.step(cfg.step_us.min(end - prev));
        }
        clock.set_us(net.now_us());
        let delivered_total = net.host_mut(B).udp.pending(PORT) as u64;
        tallies[phase].delivered = delivered_total - delivered_before;
        tallies[phase].goodput_per_sec =
            tallies[phase].delivered as f64 / (len as f64 / 1_000_000.0);
        delivered_before = delivered_total;

        let snap = observed_snapshot(&registry, &a, &b);
        let delta = delta_tracker.delta(&snap);
        let ad = a.hooks.parked_depths();
        let bd = b.hooks.parked_depths();
        let inputs = HealthInputs {
            park_depth: [ad.0, ad.1, bd.0, bd.1].into_iter().max().unwrap_or(0) as u64,
            park_capacity: ip_cfg.park_capacity as u64,
            recovery_ratio_pct: (phase == 3).then(|| {
                (tallies[3].goodput_per_sec * 100.0 / tallies[0].goodput_per_sec.max(1e-9)) as u64
            }),
            workers_quarantined: (a.hooks.quarantined_workers() + b.hooks.quarantined_workers())
                as u64,
            workers_total: (a.hooks.num_workers() + b.hooks.num_workers()) as u64,
            mem_used_bytes: a.hooks.mem_bytes().0.max(b.hooks.mem_bytes().0),
            mem_limit_bytes: a.hooks.mem_bytes().1.max(b.hooks.mem_bytes().1),
        };
        health.push((WF_PHASES[phase], health_model.evaluate(&delta, &inputs)));
    }

    // Post-run wire drain (off the goodput books): flush any datagrams
    // still in flight so the verdict ledger can be balanced exactly.
    for _ in 0..8 {
        clock.set_us(net.now_us());
        net.step(cfg.step_us);
    }
    clock.set_us(net.now_us());

    let recovery_ratio = tallies[3].goodput_per_sec / tallies[0].goodput_per_sec.max(1e-9);
    let delivered_final = net.host_mut(B).udp.pending(PORT) as u64;
    let sent: u64 = tallies.iter().map(|t| t.sent).sum();
    let send_rejected: u64 = tallies.iter().map(|t| t.send_rejected).sum();
    let accepted = sent - send_rejected;
    let (a_out, a_in) = a.hooks.park_stats().expect("worker runtime alive");
    let (b_out, b_in) = b.hooks.park_stats().expect("worker runtime alive");
    let expired = a_out.expired + a_in.expired + b_out.expired + b_in.expired;
    let ad = a.hooks.parked_depths();
    let bd = b.hooks.parked_depths();
    let still_parked = (ad.0 + ad.1 + bd.0 + bd.1) as u64;
    let receiver_rejects = b.hooks.stats().input_errors;
    // Every accepted datagram must surface somewhere: delivered to B's
    // socket, rejected by B's input hook, expired in a park queue, or
    // still parked. Anything else vanished without a verdict.
    let verdict_loss = accepted
        .saturating_sub(delivered_final)
        .saturating_sub(receiver_rejects)
        .saturating_sub(expired)
        .saturating_sub(still_parked);

    // The sender's pool ledger must balance exactly: every datagram
    // nets one surplus return, whatever its verdict. A Pass takes one
    // supply, returns the foreign payload it displaced, and returns
    // the sealed wire once it is copied onto the medium (+1); a reject
    // — panic, shed, quarantine — returns both its payload and its
    // unused supply (+1). So returns + discards == takes + sent, and
    // anything else means a worker leaked or double-freed a buffer
    // across a panic. (The receiver's pool is excluded on purpose: it
    // absorbs one foreign wire buffer per delivered datagram, which is
    // a property of the network path, not of the runtime under test.)
    let ap = net.host_mut(A).pool_stats();
    let pool_balanced = ap.returns + ap.discards == ap.hits + ap.misses + sent;

    let panics = a.hooks.worker_panics() + b.hooks.worker_panics();
    let respawns = a.hooks.worker_respawns() + b.hooks.worker_respawns();
    let quarantined = a.hooks.quarantined_workers() + b.hooks.quarantined_workers();
    let workers = a.hooks.num_workers() + b.hooks.num_workers();
    let workers_alive = a.hooks.workers_alive() + b.hooks.workers_alive();
    let (shed_rejected, shed_batches) = {
        let (ar, ab) = a.hooks.shed_counts();
        let (br, bb) = b.hooks.shed_counts();
        (ar + br, ab + bb)
    };
    let sheds = ShedTally {
        batches: shed_batches,
        rejected: shed_rejected,
    };

    let converged = recovery_ratio >= 0.9
        && verdict_loss == 0
        && pool_balanced
        && workers_alive == workers
        && quarantined == 0
        && panics >= 1;

    WorkerFaultReport {
        cfg,
        baseline: tallies[0],
        fault: tallies[1],
        settle: tallies[2],
        recovery: tallies[3],
        recovery_ratio,
        panics,
        respawns,
        quarantined,
        workers,
        workers_alive,
        sheds,
        pool_balanced,
        verdict_loss,
        health,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_cfg(seed: u64) -> SoakConfig {
        SoakConfig {
            seed,
            baseline_us: 1_500_000,
            fault_us: 1_500_000,
            settle_us: 1_500_000,
            recovery_us: 3_000_000,
            send_interval_us: 4_000,
            payload_bytes: 256,
            step_us: 1_000,
        }
    }

    #[test]
    fn soak_converges_after_fault_window() {
        let r = run(short_cfg(11));
        // The fault really bit: goodput collapsed during the window and
        // parks/drops were recorded somewhere in the stack.
        assert!(
            r.fault.goodput_per_sec < 0.8 * r.baseline.goodput_per_sec,
            "fault had no effect: {r:?}"
        );
        assert!(r.dir_chaos.outages + r.mkd_chaos.outages > 0);
        assert!(r.out_park.parked + r.in_park.parked > 0, "{r:?}");
        // Bounded: the queue never exceeded its capacity.
        assert!(r.out_park.peak_depth <= 64 && r.in_park.peak_depth <= 64);
        // And the system came back.
        assert!(r.converged, "no convergence: {r:?}");
        assert_eq!(r.final_depths, (0, 0));
        assert!(r.breaker_closed);
        assert!(r.recovery_ratio >= 0.9, "ratio {}", r.recovery_ratio);
    }

    #[test]
    fn soak_is_deterministic_for_a_seed() {
        let one = run_soak(short_cfg(23), Some(0));
        let two = run_soak(short_cfg(23), Some(0));
        assert_eq!(
            one.report.to_json(),
            two.report.to_json(),
            "same seed must reproduce byte-identically"
        );
        assert_eq!(
            one.trace_json, two.trace_json,
            "flow trace must be byte-identical per seed"
        );
    }

    #[test]
    fn trace_follows_flow_and_annotates_faults() {
        let out = run_soak(short_cfg(11), Some(0));
        let trace = out.trace_json.expect("tracing was requested");
        // The sampled flow shows its whole life: tx classify/seal/wire,
        // rx open/deliver, plus the fault-window park-and-release arc.
        for kind in [
            "classify", "seal", "wire", "open", "deliver", "parked", "released",
        ] {
            assert!(
                trace.contains(&format!("\"kind\":\"{kind}\"")),
                "trace missing {kind} span"
            );
        }
        // Both hosts contributed legs to the traced flow.
        assert!(trace.contains("\"host\":\"10.77.0.1\""));
        assert!(trace.contains("\"host\":\"10.77.0.2\""));
        // Global conditions are annotated on the same clock.
        assert!(trace.contains("\"kind\":\"fault_start\""));
        assert!(trace.contains("\"kind\":\"fault_end\""));
        assert!(trace.contains("\"detail\":\"directory_outage\""));
        assert!(trace.contains("\"kind\":\"breaker_transition\""));

        // Health timeline: one report per phase, full condition set,
        // breaker degraded at the end of the fault window.
        let r = &out.report;
        assert_eq!(r.health.len(), 4);
        assert!(r.health.iter().all(|(_, h)| h.conditions.len() == 8));
        assert_eq!(r.health[1].0, "fault");
        assert_eq!(
            r.health[1]
                .1
                .condition(fbs_obs::ConditionKind::BreakerOpen)
                .unwrap()
                .status,
            fbs_obs::HealthStatus::Degraded
        );
        // Health reads each phase's own delta, so the fault window's
        // park overflow and breaker churn do not smear into the phases
        // around it: baseline is clean and recovery converges to Ok.
        assert_eq!(r.health[0].1.overall, fbs_obs::HealthStatus::Ok);
        assert_eq!(r.health[3].1.overall, fbs_obs::HealthStatus::Ok);
        // Per-phase deltas: the fault phase is where breakers opened.
        assert_eq!(out.deltas.len(), 4);
        assert!(out.deltas[1].1.counter("breaker.opened") > 0);
        // The final snapshot renders as Prometheus text.
        let prom = fbs_obs::prom::render(&out.snapshot);
        assert!(prom.contains("# TYPE fbs_park_parked counter"), "{prom}");
    }

    #[test]
    fn worker_fault_scenario_recovers() {
        let r = run_worker_fault(short_cfg(11));
        // The faults actually bit: at least one worker panicked (and
        // was respawned), and the saturation window shed datagrams
        // with counted rejects.
        assert!(r.panics >= 1, "no worker panic fired: {r:?}");
        assert_eq!(r.respawns, r.panics, "every panic must respawn");
        assert!(r.sheds.rejected > 0, "saturation shed nothing: {r:?}");
        assert!(r.sheds.batches > 0);
        assert!(
            r.fault.send_rejected >= r.panics + r.sheds.rejected,
            "panic and shed rejects surface as send errors: {r:?}"
        );
        // Fault containment: no quarantine under the respawn policy,
        // every worker alive at the end, nothing leaked or lost.
        assert_eq!(r.quarantined, 0, "{r:?}");
        assert_eq!(r.workers_alive, r.workers, "{r:?}");
        assert_eq!(r.verdict_loss, 0, "datagrams vanished: {r:?}");
        assert!(r.pool_balanced, "pool ledger imbalanced: {r:?}");
        // And the runtime came back: rebuilt shard state re-warmed and
        // goodput recovered.
        assert!(r.recovery_ratio >= 0.9, "ratio {}: {r:?}", r.recovery_ratio);
        assert!(r.converged, "{r:?}");
        // Health narrative: clean baseline, degraded-or-worse fault
        // phase (shedding at minimum), clean recovery.
        assert_eq!(r.health.len(), 4);
        assert_eq!(r.health[0].1.overall, fbs_obs::HealthStatus::Ok);
        assert_ne!(r.health[1].1.overall, fbs_obs::HealthStatus::Ok);
        assert_ne!(
            r.health[1]
                .1
                .condition(fbs_obs::ConditionKind::ShedRateHigh)
                .unwrap()
                .status,
            fbs_obs::HealthStatus::Ok
        );
        assert_eq!(r.health[3].1.overall, fbs_obs::HealthStatus::Ok);
    }

    #[test]
    fn worker_fault_report_is_deterministic() {
        // The full committed document — keying soak with the
        // worker-fault scenario embedded — must be byte-identical
        // across two same-seed runs, panics and all.
        let full = |seed| {
            let mut report = run(short_cfg(seed));
            report.worker_fault = Some(run_worker_fault(short_cfg(seed)));
            report.to_json()
        };
        assert_eq!(full(23), full(23), "same seed must reproduce bytes");
    }

    #[test]
    fn report_json_is_well_formed() {
        let json = run(short_cfg(5)).to_json();
        assert!(json.contains("\"bench\": \"chaos\""));
        assert!(json.contains("\"recovery_ratio\""));
        assert!(json.contains("\"converged\""));
        assert!(json.contains("\"health\""));
        assert!(json.contains("\"breaker_open\""));
        assert!(json.contains("breaker.time_closed_us"));
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }
}
