//! Fig. 14 — repeated flows (same 5-tuple, distinct flow incarnations)
//! vs THRESHOLD.
//!
//! `cargo run --release -p fbs-bench --bin fig14_repeated_flows
//!  [-- <minutes>] [--csv] [--metrics <path.json>]`

use fbs_bench::figs::{flows_at_threshold, trace_for, Environment, THRESHOLDS};
use fbs_bench::{arg_num, emit, maybe_write_metrics};

fn main() {
    let minutes = arg_num().unwrap_or(120);
    let trace = trace_for(Environment::Campus, minutes);

    let mut snap = fbs_obs::MetricsSnapshot::new();
    let mut rows = Vec::new();
    let mut repeats = Vec::new();
    for &threshold in &THRESHOLDS {
        let result = flows_at_threshold(&trace, threshold);
        if threshold == 600 {
            result.contribute(&mut snap);
        }
        repeats.push(result.repeated_flows);
        rows.push(vec![
            threshold.to_string(),
            result.flows_started.to_string(),
            result.repeated_flows.to_string(),
            format!(
                "{:.1}%",
                100.0 * result.repeated_flows as f64 / result.flows_started.max(1) as f64
            ),
        ]);
    }
    emit(
        "Fig. 14 — repeated flows vs THRESHOLD (campus trace)\n\
         paper: repeated flows drop off quickly as THRESHOLD increases;\n\
         300-600 s differentiates flows while keeping dynamics stable",
        &["threshold s", "flows", "repeated", "repeated %"],
        &rows,
    );
    assert!(
        repeats.windows(2).all(|w| w[1] <= w[0]),
        "repeated flows must be non-increasing in THRESHOLD"
    );
    maybe_write_metrics(&snap);
}
