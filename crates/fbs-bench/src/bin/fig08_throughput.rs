//! Fig. 8 — timing results: GENERIC vs FBS NOP vs FBS DES+MD5.
//!
//! `cargo run --release -p fbs-bench --bin fig08_throughput
//!  [-- <count>] [--csv] [--metrics <path.json>] [--fastpath]`
//!
//! `--fastpath` appends the zero-copy seal-path comparison (pooled
//! `seal_into` vs legacy `send`) for each crypto variant; the dedicated
//! `fastpath_bench` binary produces the full `BENCH_fastpath.json` grid
//! with allocation counts.

use fbs_bench::fig08::{
    fig08_rows, instrumented_snapshot, primitive_rate_kbs, suite_rows_kbps, PAPER_DESMD5_KBPS,
    PAPER_DES_KBS, PAPER_GENERIC_KBPS, PAPER_MD5_KBS,
};
use fbs_bench::{arg_num, emit, metrics_path, write_metrics};

fn main() {
    let count = arg_num().unwrap_or(200) as usize;

    // Layer 1: primitive calibration vs CryptoLib on the Pentium 133.
    let rows: Vec<Vec<String>> = [
        ("des-cbc", 8, PAPER_DES_KBS),
        ("md5", 32, PAPER_MD5_KBS),
        ("keyed-md5", 32, PAPER_MD5_KBS),
    ]
    .into_iter()
    .map(|(name, mb, paper)| {
        let (_, rate) = primitive_rate_kbs(name, mb);
        vec![
            name.to_string(),
            format!("{rate:.0}"),
            format!("{paper:.0}"),
            format!("{:.0}x", rate / paper),
        ]
    })
    .collect();
    emit(
        "primitive rates (kB/s) — ours vs CryptoLib on Pentium 133 (§7.2)",
        &["primitive", "ours kB/s", "paper kB/s", "speedup"],
        &rows,
    );
    println!();

    // Layers 2+3: the Fig. 8 emulation.
    let rows: Vec<Vec<String>> = fig08_rows(8192, count)
        .into_iter()
        .map(|r| {
            let paper = match r.variant {
                "GENERIC" | "FBS NOP" => format!("{PAPER_GENERIC_KBPS:.0}"),
                "FBS DES+MD5" => format!("{PAPER_DESMD5_KBPS:.0}"),
                _ => "-".into(),
            };
            vec![
                r.variant.to_string(),
                format!("{:.0}", r.native_kbps),
                format!("{:.0}", r.native_at_line),
                format!("{:.0}", r.scaled_at_line),
                paper,
            ]
        })
        .collect();
    emit(
        "Fig. 8 — throughput (kb/s), 8 KB datagrams\n\
         native = protocol processing on this CPU; @10Mb/s = capped at the\n\
         paper's line rate; scaled = crypto slowed to CryptoLib/P133 rates",
        &[
            "variant",
            "native kb/s",
            "native@10Mb/s",
            "scaled@10Mb/s",
            "paper kb/s",
        ],
        &rows,
    );
    println!(
        "\nshape check: GENERIC ≈ FBS NOP at line rate, FBS DES+MD5 crypto-bound\n\
         well below it — the paper saw 7700 → 3400 kb/s."
    );

    // Cipher-suite column: the secret-mode row re-measured per profile.
    println!();
    let suites = suite_rows_kbps(8192, count);
    let paper_kbps = suites
        .iter()
        .find(|(n, _)| *n == "paper")
        .map(|&(_, r)| r)
        .unwrap_or(f64::NAN);
    let rows: Vec<Vec<String>> = suites
        .iter()
        .map(|(name, kbps)| {
            vec![
                name.to_string(),
                format!("{kbps:.0}"),
                format!("{:.2}x", kbps / paper_kbps),
            ]
        })
        .collect();
    emit(
        "cipher suites — secret-mode one-way rate per profile, 8 KB datagrams\n\
         paper = DES-CBC + keyed-MD5 (bit-identical wire format); fast_des =\n\
         word-sliced DES-CTR + truncated MAC; aead = ChaCha20-Poly1305",
        &["suite", "native kb/s", "vs paper"],
        &rows,
    );

    // The zero-copy fast-path comparison, per crypto variant.
    if std::env::args().any(|a| a == "--fastpath") {
        use fbs_bench::fastpath::{measure_inline, measure_legacy, Mode};
        println!();
        let no_alloc_counter = || 0u64;
        let rows: Vec<Vec<String>> = [Mode::Nop, Mode::MacOnly, Mode::DesMd5]
            .into_iter()
            .map(|mode| {
                let legacy = measure_legacy(512, count * 4, mode, &no_alloc_counter);
                let fast = measure_inline(512, count * 4, mode, true, &no_alloc_counter);
                vec![
                    mode.name().to_string(),
                    format!("{:.0}", legacy.datagrams_per_sec),
                    format!("{:.0}", fast.datagrams_per_sec),
                    format!("{:.2}x", fast.datagrams_per_sec / legacy.datagrams_per_sec),
                ]
            })
            .collect();
        emit(
            "fast path — pooled zero-copy seal_into vs legacy send, 512 B datagrams",
            &["mode", "legacy dgrams/s", "fastpath dgrams/s", "speedup"],
            &rows,
        );
    }

    // An instrumented (non-timed) exchange for the observability export.
    if let Some(path) = metrics_path() {
        write_metrics(&path, &instrumented_snapshot(8192, count.min(64)));
    }
}
