//! Chaos soak harness — emits `BENCH_chaos.json`.
//!
//! `cargo run --release -p fbs-bench --bin chaos_soak
//!  [-- --seed <n>] [--short] [--out <path.json>] [--csv]
//!  [--trace <path.json>] [--prom <path.prom>] [--deltas <path.json>]`
//!
//! Runs a scripted directory/MKD outage with cache-flush storms against a
//! two-host FBS LAN (see `fbs_bench::chaos` for the phase script), then
//! the worker-fault scenario (scheduled worker panics, stalls, and ring
//! saturation against the datagram-plane runtime), and reports
//! degradation and recovery for both. Exits non-zero when either run
//! fails to converge — goodput under 90% of baseline, a breaker stuck
//! open, datagrams still parked, a quarantined or dead worker, a verdict
//! lost, or an imbalanced buffer-pool ledger — so CI can gate directly.
//!
//! `--trace` writes the sampled flow trace (every flow; the soak drives
//! one), byte-identical per seed since it runs on virtual time. `--prom`
//! writes the final registry snapshot in Prometheus text exposition.
//! `--deltas` writes the per-phase delta snapshots — what each phase
//! changed, scrape-style, instead of ever-growing absolutes.

use fbs_bench::chaos::{self, SoakConfig};
use fbs_bench::{emit, flag_value, write_artifact};

fn main() {
    let seed: u64 = flag_value("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let mut cfg = SoakConfig {
        seed,
        ..SoakConfig::default()
    };
    if std::env::args().any(|a| a == "--short") {
        // CI smoke shape: ~4.5 s of virtual time instead of 13 s.
        cfg.baseline_us = 1_000_000;
        cfg.fault_us = 1_000_000;
        cfg.settle_us = 1_000_000;
        cfg.recovery_us = 1_500_000;
        cfg.send_interval_us = 4_000;
        cfg.step_us = 1_000;
    }
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_chaos.json".into());
    let trace_path = flag_value("--trace");

    let mut soak = chaos::run_soak(cfg, trace_path.as_ref().map(|_| 0));
    soak.report.worker_fault = Some(chaos::run_worker_fault(cfg));
    let report = &soak.report;

    let row = |name: &str, t: &chaos::PhaseTally| {
        vec![
            name.to_string(),
            t.sent.to_string(),
            t.send_rejected.to_string(),
            t.delivered.to_string(),
            format!("{:.1}", t.goodput_per_sec),
        ]
    };
    emit(
        &format!(
            "chaos soak — seed={}, fault {} ms, parks out/in peak {}/{}",
            report.cfg.seed,
            report.cfg.fault_us / 1_000,
            report.out_park.peak_depth,
            report.in_park.peak_depth
        ),
        &["phase", "sent", "rejected", "delivered", "goodput/s"],
        &[
            row("baseline", &report.baseline),
            row("fault", &report.fault),
            row("settle", &report.settle),
            row("recovery", &report.recovery),
        ],
    );
    println!(
        "\nrecovery ratio: {:.3} (threshold 0.9), breaker closed: {}, parked left: {:?}",
        report.recovery_ratio, report.breaker_closed, report.final_depths
    );
    for (phase, health) in &report.health {
        println!("health[{phase}]: {}", health.overall.name());
    }
    let wf = report.worker_fault.as_ref().expect("scenario just ran");
    println!(
        "\nworker-fault scenario — panics {}, respawns {}, quarantined {}, \
         workers alive {}/{}, shed {} ({} batches), verdict loss {}, \
         pool balanced {}, recovery ratio {:.3}",
        wf.panics,
        wf.respawns,
        wf.quarantined,
        wf.workers_alive,
        wf.workers,
        wf.sheds.rejected,
        wf.sheds.batches,
        wf.verdict_loss,
        wf.pool_balanced,
        wf.recovery_ratio
    );
    for (phase, health) in &wf.health {
        println!("worker_fault health[{phase}]: {}", health.overall.name());
    }

    write_artifact(&out, "report", &report.to_json());
    if let (Some(path), Some(trace)) = (&trace_path, &soak.trace_json) {
        write_artifact(path, "flow trace", trace);
    }
    if let Some(path) = flag_value("--prom") {
        write_artifact(
            &path,
            "prometheus exposition",
            &fbs_obs::prom::render(&soak.snapshot),
        );
    }
    if let Some(path) = flag_value("--deltas") {
        let phases: Vec<String> = soak
            .deltas
            .iter()
            .map(|(phase, d)| format!("{{\"phase\":\"{}\",\"delta\":{}}}", phase, d.to_json()))
            .collect();
        write_artifact(
            &path,
            "delta snapshots",
            &format!("[{}]\n", phases.join(",")),
        );
    }
    if !report.converged {
        eprintln!("chaos soak FAILED to converge");
        std::process::exit(1);
    }
    if !wf.converged {
        eprintln!("worker-fault scenario FAILED to converge");
        std::process::exit(1);
    }
}
