//! Million-flow scale bench — emits `BENCH_scale.json`.
//!
//! `cargo run --release -p fbs-bench --bin scale_bench
//!  [-- <top_capacity>] [--out <path.json>] [--mapping-count <n>] [--csv]`
//!
//! Sweeps the open-addressed soft-state table from 16 k to
//! `<top_capacity>` entries (default 2^20) under one streamed
//! multi-million-client workload, then appends the eviction-storm,
//! budget-capped, and pooled end-to-end mapping rows. The counting
//! global allocator lives here for the same reason as in
//! `fastpath_bench`: the library crates `forbid(unsafe_code)`.

use fbs_bench::fastpath::{self, Mode};
use fbs_bench::scale::{self, PooledMappingRow, ScaleReport};
use fbs_bench::{arg_num, emit, flag_value, write_artifact};
use fbs_core::FbsConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting every alloc/realloc across all
/// threads.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn main() {
    let top_capacity = arg_num().unwrap_or(1 << 20) as usize;
    let mapping_count: usize = flag_value("--mapping-count")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_scale.json".into());
    let alloc = || ALLOCS.load(Ordering::Relaxed);

    let mut report = ScaleReport::default();
    for cfg in scale::default_rows(top_capacity) {
        eprintln!("scale_bench: {} ...", cfg.label);
        report.rows.push(scale::run_row(&cfg, &alloc));
    }

    // Pooled end-to-end mapping at scaled key-cache geometry: the
    // worker-shard datagram path with TFKC/RFKC configured for
    // `top_capacity` flows must stay allocation-free in steady state.
    let kc_assoc = 4;
    let kc_sets = (top_capacity / kc_assoc).max(64);
    eprintln!("scale_bench: pooled mapping at {kc_sets} sets x {kc_assoc} ...");
    let fbs = FbsConfig {
        tfkc_sets: kc_sets,
        tfkc_assoc: kc_assoc,
        rfkc_sets: kc_sets,
        rfkc_assoc: kc_assoc,
        ..Mode::Nop.config()
    };
    let (rate, pool_balanced) = fastpath::measure_mapping_with(
        512,
        mapping_count,
        Mode::Nop,
        2,
        2,
        2,
        fbs,
        4_096,
        None,
        &alloc,
    );
    report.mapping = Some(PooledMappingRow {
        kc_sets,
        kc_assoc,
        datagrams_per_sec: rate.datagrams_per_sec,
        allocs_per_datagram: rate.allocs_per_datagram,
        pool_balanced,
    });

    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.capacity.to_string(),
                r.flows_resident.to_string(),
                format!("{:.4}", r.miss_ratio),
                format!("{:.0}", r.dgrams_per_sec),
                format!("{:.1}", r.bytes_per_resident_flow),
                r.evictions.to_string(),
                format!("{:.2}", r.steady_allocs_per_dgram),
            ]
        })
        .collect();
    emit(
        "BENCH_scale: soft-state residency curve",
        &[
            "row",
            "capacity",
            "resident",
            "miss_ratio",
            "dgrams/s",
            "B/flow",
            "evictions",
            "allocs/dgram",
        ],
        &rows,
    );
    if let Some(m) = &report.mapping {
        eprintln!(
            "pooled mapping @ {} sets: {:.0} dgrams/s, {:.2} allocs/dgram, pool balanced: {}",
            m.kc_sets, m.datagrams_per_sec, m.allocs_per_datagram, m.pool_balanced
        );
    }
    write_artifact(&out, "report", &report.to_json());
}
