//! Fig. 12 — number of simultaneously active flows over time.
//!
//! `cargo run --release -p fbs-bench --bin fig12_active_flows
//!  [-- <minutes>] [--csv] [--metrics <path.json>]`

use fbs_bench::figs::{flows_at_threshold, trace_for, Environment};
use fbs_bench::{arg_num, emit, maybe_write_metrics, wants_csv};

fn main() {
    let minutes = arg_num().unwrap_or(120);
    let mut snap = fbs_obs::MetricsSnapshot::new();
    for env in [Environment::Campus, Environment::Www] {
        let trace = trace_for(env, minutes);
        let result = flows_at_threshold(&trace, 600);
        result.contribute(&mut snap);

        // Downsample the series to ~24 rows for the table.
        let stride = (result.active_series.len() / 24).max(1);
        let peak = result
            .active_series
            .iter()
            .map(|(_, c)| *c)
            .max()
            .unwrap_or(0);
        let rows: Vec<Vec<String>> = result
            .active_series
            .iter()
            .step_by(stride)
            .map(|(t, c)| {
                let bar = if wants_csv() {
                    String::new()
                } else {
                    "#".repeat(c * 50 / peak.max(1))
                };
                vec![format!("{:>5}", t / 60), c.to_string(), bar]
            })
            .collect();
        emit(
            &format!(
                "Fig. 12 [{}] — active flows over time (THRESHOLD 600 s)\n\
                 peak LAN-wide {}, peak single host {} — counts a kernel\n\
                 holds easily (§7.3)",
                env.name(),
                peak,
                result.per_host_max_active
            ),
            &["min", "active", ""],
            &rows,
        );
        println!();
    }
    maybe_write_metrics(&snap);
}
