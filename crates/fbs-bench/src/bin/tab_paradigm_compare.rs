//! §2 / §7.4 — the keying-paradigm comparison table: identical workload
//! through FBS and every baseline, with cost counters.
//!
//! `cargo run --release -p fbs-bench --bin tab_paradigm_compare [-- <conversations>] [--csv]`

use fbs_bench::paradigms::{compare_paradigms, Workload};
use fbs_bench::{arg_num, emit};
use fbs_crypto::dh::DhGroup;

fn main() {
    let conversations = arg_num().unwrap_or(20);
    let w = Workload {
        conversations,
        datagrams_each: 50,
        payload: 1024,
    };
    println!(
        "workload: {} conversations x {} datagrams x {} B, Oakley group 1\n",
        w.conversations, w.datagrams_each, w.payload
    );
    let rows: Vec<Vec<String>> = compare_paradigms(&w, &DhGroup::oakley1())
        .into_iter()
        .map(|r| {
            let total = w.conversations * w.datagrams_each;
            vec![
                r.scheme,
                format!("{:.1}", total as f64 / r.secs / 1000.0),
                r.modexp.to_string(),
                r.key_derivations.to_string(),
                r.strong_random.to_string(),
                r.setup_messages.to_string(),
                r.hard_state.to_string(),
                if r.datagram_semantics { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    emit(
        "keying paradigms (§2, §7.4)",
        &[
            "scheme",
            "kdgram/s",
            "modexp",
            "keyderiv",
            "strongRNG B",
            "setup msgs",
            "hard state",
            "dgram sem",
        ],
        &rows,
    );
    println!(
        "\n§7.4's claims, quantified: FBS derives keys per FLOW (vs per\n\
         datagram for SKIP-style schemes), needs zero setup messages (vs\n\
         session schemes), and keeps no hard state; the BBS row shows the\n\
         §2.2 cryptographically-random-key bottleneck."
    );
}
