//! Fig. 9(a)-(b) — flow size distributions (packets and bytes).
//!
//! `cargo run --release -p fbs-bench --bin fig09_flow_size
//!  [-- <minutes>] [--csv] [--metrics <path.json>]`

use fbs_bench::figs::{flows_at_threshold, trace_for, Environment};
use fbs_bench::{arg_num, emit, maybe_write_metrics};
use fbs_trace::flowsim::{elephant_share, flow_sizes};
use fbs_trace::stats::LogHistogram;

fn main() {
    let minutes = arg_num().unwrap_or(120);
    let mut snap = fbs_obs::MetricsSnapshot::new();
    for env in [Environment::Campus, Environment::Www] {
        let trace = trace_for(env, minutes);
        let result = flows_at_threshold(&trace, 600);
        let (pkts, bytes) = flow_sizes(&result);

        let mut hist_p = LogHistogram::new();
        for &p in &pkts {
            hist_p.add(p);
        }
        let mut hist_b = LogHistogram::new();
        for &b in &bytes {
            hist_b.add(b);
        }
        result.contribute(&mut snap);
        snap.histograms
            .insert(format!("{}.flow_packets", env.name()), hist_p.to_snapshot());
        snap.histograms
            .insert(format!("{}.flow_bytes", env.name()), hist_b.to_snapshot());

        let rows: Vec<Vec<String>> = hist_p
            .rows()
            .into_iter()
            .map(|(lo, hi, count, cum)| {
                vec![
                    format!("{lo}-{hi}"),
                    count.to_string(),
                    format!("{:.1}%", 100.0 * cum),
                ]
            })
            .collect();
        emit(
            &format!(
                "Fig. 9(a) [{}] — flow sizes in PACKETS ({} flows, {} min trace)",
                env.name(),
                result.flows_started,
                minutes
            ),
            &["packets", "flows", "cum %"],
            &rows,
        );
        println!();

        let rows: Vec<Vec<String>> = hist_b
            .rows()
            .into_iter()
            .map(|(lo, hi, count, cum)| {
                vec![
                    format!("{lo}-{hi}"),
                    count.to_string(),
                    format!("{:.1}%", 100.0 * cum),
                ]
            })
            .collect();
        emit(
            &format!("Fig. 9(b) [{}] — flow sizes in BYTES", env.name()),
            &["bytes", "flows", "cum %"],
            &rows,
        );
        println!(
            "top 10% of flows carry {:.1}% of bytes (paper: few long-lived\n\
             flows carry the bulk of the traffic)\n",
            100.0 * elephant_share(&result, 0.10)
        );
    }
    maybe_write_metrics(&snap);
}
