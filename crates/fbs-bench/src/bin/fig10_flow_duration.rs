//! Fig. 10 — flow duration distribution.
//!
//! `cargo run --release -p fbs-bench --bin fig10_flow_duration
//!  [-- <minutes>] [--csv] [--metrics <path.json>]`

use fbs_bench::figs::{flows_at_threshold, trace_for, Environment};
use fbs_bench::{arg_num, emit, maybe_write_metrics};
use fbs_trace::flowsim::flow_durations;
use fbs_trace::stats::{cdf_points, mean, percentile, LogHistogram};

fn main() {
    let minutes = arg_num().unwrap_or(120);
    let mut snap = fbs_obs::MetricsSnapshot::new();
    for env in [Environment::Campus, Environment::Www] {
        let trace = trace_for(env, minutes);
        let result = flows_at_threshold(&trace, 600);
        let durations = flow_durations(&result);
        result.contribute(&mut snap);
        let mut hist = LogHistogram::new();
        for &d in &durations {
            hist.add(d);
        }
        snap.histograms.insert(
            format!("{}.flow_duration_s", env.name()),
            hist.to_snapshot(),
        );

        let rows: Vec<Vec<String>> = cdf_points(&durations, 10)
            .into_iter()
            .map(|(v, f)| vec![format!("{:.0}%", f * 100.0), format!("{v} s")])
            .collect();
        emit(
            &format!(
                "Fig. 10 [{}] — flow duration CDF ({} flows)",
                env.name(),
                durations.len()
            ),
            &["percentile", "duration"],
            &rows,
        );
        println!(
            "mean {:.1} s, median {} s, p99 {} s, max {} s\n\
             (paper: the majority of flows are short; a few live long)\n",
            mean(&durations),
            percentile(&durations, 50.0),
            percentile(&durations, 99.0),
            durations.last().copied().unwrap_or(0)
        );
    }
    maybe_write_metrics(&snap);
}
