//! Fig. 10 — flow duration distribution.
//!
//! `cargo run --release -p fbs-bench --bin fig10_flow_duration [-- <minutes>] [--csv]`

use fbs_bench::figs::{flows_at_threshold, trace_for, Environment};
use fbs_bench::{arg_num, emit};
use fbs_trace::flowsim::flow_durations;
use fbs_trace::stats::{cdf_points, mean, percentile};

fn main() {
    let minutes = arg_num().unwrap_or(120);
    for env in [Environment::Campus, Environment::Www] {
        let trace = trace_for(env, minutes);
        let result = flows_at_threshold(&trace, 600);
        let durations = flow_durations(&result);

        let rows: Vec<Vec<String>> = cdf_points(&durations, 10)
            .into_iter()
            .map(|(v, f)| vec![format!("{:.0}%", f * 100.0), format!("{v} s")])
            .collect();
        emit(
            &format!(
                "Fig. 10 [{}] — flow duration CDF ({} flows)",
                env.name(),
                durations.len()
            ),
            &["percentile", "duration"],
            &rows,
        );
        println!(
            "mean {:.1} s, median {} s, p99 {} s, max {} s\n\
             (paper: the majority of flows are short; a few live long)\n",
            mean(&durations),
            percentile(&durations, 50.0),
            percentile(&durations, 99.0),
            durations.last().copied().unwrap_or(0)
        );
    }
}
