//! Fast-path throughput bench — emits `BENCH_fastpath.json`.
//!
//! `cargo run --release -p fbs-bench --bin fastpath_bench
//!  [-- <count>] [--payload <bytes>] [--des | --mac-only] [--out <path.json>] [--csv]`
//!
//! Default mode is NOP crypto — the paper's §7.3 device for isolating
//! protocol-processing cost, which is what the fast path optimises; pass
//! `--des` or `--mac-only` for the real-crypto variants.
//!
//! Measures the zero-copy `seal_into`/`BufferPool` path against the legacy
//! allocating `send`/`encode_payload` path, and the `ParallelSealer` at
//! 1/2/4 workers (pooled vs unpooled). A counting global allocator lives
//! here, in the binary: the library crates `forbid(unsafe_code)`, and a
//! `#[global_allocator]` needs `unsafe impl GlobalAlloc`.

use fbs_bench::fastpath;
use fbs_bench::{arg_num, emit, flag_value, write_artifact};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting every alloc/realloc across all
/// threads (sealer workers included).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn main() {
    let count = arg_num().unwrap_or(2000) as usize;
    let payload: usize = flag_value("--payload")
        .and_then(|v| v.parse().ok())
        .unwrap_or(512);
    let mode = if std::env::args().any(|a| a == "--des") {
        fastpath::Mode::DesMd5
    } else if std::env::args().any(|a| a == "--mac-only") {
        fastpath::Mode::MacOnly
    } else {
        fastpath::Mode::Nop
    };
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_fastpath.json".into());

    let report = fastpath::run(payload, count, mode, &|| ALLOCS.load(Ordering::Relaxed));

    let fmt = |r: &fastpath::Rate| {
        vec![
            format!("{:.0}", r.datagrams_per_sec),
            format!("{:.0}", r.bytes_per_sec / 1e6),
            format!("{:.2}", r.allocs_per_datagram),
        ]
    };
    let mut rows: Vec<Vec<String>> = vec![
        [vec!["legacy send".into()], fmt(&report.legacy)].concat(),
        [vec!["inline pooled".into()], fmt(&report.inline_pooled)].concat(),
        [vec!["inline unpooled".into()], fmt(&report.inline_unpooled)].concat(),
    ];
    for s in &report.sealer {
        rows.push(
            [
                vec![format!(
                    "sealer {}w {}",
                    s.workers,
                    if s.pooled { "pooled" } else { "unpooled" }
                )],
                fmt(&s.rate),
            ]
            .concat(),
        );
    }
    rows.push([vec!["open legacy".into()], fmt(&report.open_legacy)].concat());
    rows.push(
        [
            vec!["open inline pooled".into()],
            fmt(&report.open_inline_pooled),
        ]
        .concat(),
    );
    for o in &report.opener {
        rows.push([vec![format!("opener {}w pooled", o.workers)], fmt(&o.rate)].concat());
    }
    for m in &report.mapping {
        rows.push(
            [
                vec![format!(
                    "mapping {}t {}sh {}w{}",
                    m.threads,
                    m.shards,
                    m.workers,
                    if m.pool_balanced { "" } else { " LEAK" }
                )],
                fmt(&m.rate),
            ]
            .concat(),
        );
    }
    for s in &report.suites {
        rows.push(
            [
                vec![format!(
                    "suite {} seal{}",
                    s.suite.name(),
                    if s.pool_balanced { "" } else { " LEAK" }
                )],
                fmt(&s.seal_pooled),
            ]
            .concat(),
        );
        rows.push([vec![format!("suite {} open", s.suite.name())], fmt(&s.open_pooled)].concat());
    }
    emit(
        &format!(
            "fast path vs legacy — {} B payloads × {}, mode={}, cpus={}",
            report.payload_bytes,
            report.count,
            report.mode.name(),
            report.cpus
        ),
        &["path", "dgrams/s", "MB/s", "allocs/dgram"],
        &rows,
    );
    println!(
        "\nspeedup (inline pooled vs legacy): {:.2}x",
        report.speedup_pooled_1w_vs_legacy
    );
    println!(
        "speedup (open inline pooled vs legacy input): {:.2}x",
        report.speedup_open_inline_vs_legacy
    );
    println!(
        "speedup (open batch 4w vs legacy input): {:.2}x",
        report.speedup_open_batch_4w_vs_legacy
    );
    println!(
        "sharding cost (mapping 1t sharded vs unsharded): {:.2}x",
        report.mapping_sharded_vs_unsharded_1t
    );
    println!(
        "speedup (fast_des suite vs paper suite, pooled seal): {:.2}x",
        report.speedup_fast_vs_paper
    );

    // Per-worker occupancy, from the busiest mapping row.
    if let Some(m) = report.mapping.last() {
        println!(
            "\nworker occupancy — mapping {}t {}sh {}w (all reps):",
            m.threads, m.shards, m.workers
        );
        for o in &m.occupancy {
            println!(
                "  worker {:2}: {:6} stalls {:10} stall-ns  {:8} batches {:12} busy-ns",
                o.worker, o.stalls, o.stall_ns, o.batches, o.busy_ns
            );
        }
    }

    write_artifact(&out, "report", &report.to_json());
    if let Some(path) = flag_value("--prom") {
        write_artifact(
            &path,
            "prometheus exposition",
            &fbs_obs::prom::render(&report.obs),
        );
    }
}
