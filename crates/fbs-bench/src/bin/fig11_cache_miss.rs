//! Fig. 11(a)-(b) — key cache miss rates vs cache size, with the §5.3
//! associativity/hash ablation.
//!
//! `cargo run --release -p fbs-bench --bin fig11_cache_miss
//!  [-- <minutes>] [--csv] [--metrics <path.json>]`

use fbs_bench::figs::{cache_sweep, trace_for, Environment};
use fbs_bench::{arg_num, emit, maybe_write_metrics};
use fbs_obs::CacheKind;
use fbs_trace::flowsim::{simulate_cache, CacheHash, CacheSimConfig};

fn main() {
    let minutes = arg_num().unwrap_or(120);
    let mut snap = fbs_obs::MetricsSnapshot::new();

    // (a)/(b): miss rate vs size per environment, CRC-32 direct-mapped.
    for env in [Environment::Campus, Environment::Www] {
        let trace = trace_for(env, minutes);
        // Export the paper's recommended 64-slot configuration under the
        // TFKC's registry namespace (summed across environments).
        let stats = simulate_cache(
            &trace,
            &CacheSimConfig {
                threshold_secs: 600,
                cache_slots: 64,
                assoc: 1,
                hash: CacheHash::Crc32,
            },
        );
        stats.contribute(CacheKind::Tfkc, &mut snap);
        eprintln!("[{}] 64-slot TFKC: {stats}", env.name());
        let rows: Vec<Vec<String>> = cache_sweep(&trace, CacheHash::Crc32, 1)
            .into_iter()
            .map(|p| {
                vec![
                    p.slots.to_string(),
                    format!("{:.2}%", 100.0 * p.miss_rate),
                    format!("{:.2}%", 100.0 * p.avoidable_miss_rate),
                    format!("{:.2}%", 100.0 * p.collision_rate),
                ]
            })
            .collect();
        emit(
            &format!(
                "Fig. 11 [{}] — TFKC miss rate vs size (direct-mapped, CRC-32)",
                env.name()
            ),
            &["slots", "miss", "non-cold miss", "collision"],
            &rows,
        );
        println!();
    }

    // Ablation: hash function and associativity at a fixed small size.
    let trace = trace_for(Environment::Campus, minutes);
    let mut rows = Vec::new();
    for hash in [CacheHash::Crc32, CacheHash::Modulo, CacheHash::Xor] {
        for assoc in [1usize, 2, 4] {
            let points = cache_sweep(&trace, hash, assoc);
            // Report the 16-slot point (small enough for conflicts).
            if let Some(p) = points.iter().find(|p| p.slots == 16) {
                rows.push(vec![
                    format!("{hash:?}"),
                    assoc.to_string(),
                    format!("{:.2}%", 100.0 * p.miss_rate),
                    format!("{:.2}%", 100.0 * p.collision_rate),
                ]);
            }
        }
    }
    emit(
        "Fig. 11 ablation — hash function × associativity at 16 slots\n\
         (§5.3: collision misses are curbed by associativity OR a\n\
         randomising hash; CRC-32 lets a direct-mapped cache suffice)",
        &["hash", "assoc", "miss", "collision"],
        &rows,
    );
    println!();

    // FST mapper-hash ablation: the §5.3 correlated-input claim applied
    // where it bites — the flow state table indexed by (addresses, ports).
    let mut rows = Vec::new();
    for fst_size in [32usize, 64, 128] {
        for hash in [CacheHash::Crc32, CacheHash::Modulo, CacheHash::Xor] {
            let a = fbs_trace::flowsim::simulate_fst_hash(&trace, fst_size, hash, 600);
            rows.push(vec![
                fst_size.to_string(),
                format!("{hash:?}"),
                a.flows_started.to_string(),
                a.collisions.to_string(),
                format!("{:.3}%", 100.0 * a.collision_rate),
            ]);
        }
    }
    emit(
        "FST mapper-hash ablation — premature flow terminations\n\
         (§5.3/footnote 11: the FST's keys are correlated addresses and\n\
         ports; a randomising hash keeps collisions near zero at\n\
         FSTSIZE ≥ 32, naive folds cluster)",
        &["FSTSIZE", "hash", "flows", "collisions", "rate"],
        &rows,
    );
    maybe_write_metrics(&snap);
}
