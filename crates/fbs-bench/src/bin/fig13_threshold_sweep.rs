//! Fig. 13 — active flows for different THRESHOLD values.
//!
//! `cargo run --release -p fbs-bench --bin fig13_threshold_sweep
//!  [-- <minutes>] [--csv] [--metrics <path.json>]`

use fbs_bench::figs::{flows_at_threshold, trace_for, Environment, THRESHOLDS};
use fbs_bench::{arg_num, emit, maybe_write_metrics};

fn main() {
    let minutes = arg_num().unwrap_or(120);
    let trace = trace_for(Environment::Campus, minutes);

    let mut snap = fbs_obs::MetricsSnapshot::new();
    let mut rows = Vec::new();
    let mut means: Vec<f64> = Vec::new();
    for &threshold in &THRESHOLDS {
        let result = flows_at_threshold(&trace, threshold);
        // Export the paper's default-THRESHOLD point.
        if threshold == 600 {
            result.contribute(&mut snap);
        }
        let counts: Vec<usize> = result.active_series.iter().map(|(_, c)| *c).collect();
        let peak = counts.iter().copied().max().unwrap_or(0);
        let mean = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
        means.push(mean);
        rows.push(vec![
            threshold.to_string(),
            result.flows_started.to_string(),
            format!("{mean:.1}"),
            peak.to_string(),
        ]);
    }
    emit(
        "Fig. 13 — active flows vs THRESHOLD (campus trace)\n\
         paper: active flows grow 300→600 s, then the policy becomes\n\
         relatively insensitive above ~900 s",
        &["threshold s", "flows", "mean active", "peak active"],
        &rows,
    );

    // Quantify the paper's insensitivity observation.
    let grow_300_900 = (means[2] - means[0]) / means[0].max(1e-9);
    let grow_900_1800 = (means[4] - means[2]) / means[2].max(1e-9);
    println!(
        "\nmean-active growth 300→900 s: {:+.1}%,  900→1800 s: {:+.1}%",
        100.0 * grow_300_900,
        100.0 * grow_900_1800
    );
    maybe_write_metrics(&snap);
}
