//! Shared machinery for the flow-characteristics figures (Figs. 9-14).

use fbs_trace::flowsim::{CacheHash, CacheSimConfig};
use fbs_trace::{
    generate_campus_trace, generate_www_trace, simulate_cache, simulate_flows, CampusConfig,
    FlowSimConfig, PacketRecord, WwwConfig,
};

/// The two §7.3 environments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Environment {
    /// Workgroup campus LAN (file/compute servers + desktops).
    Campus,
    /// Lightly-hit WWW server (~10,000 hits/day).
    Www,
}

impl Environment {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Environment::Campus => "campus-lan",
            Environment::Www => "www-server",
        }
    }
}

/// Generate the standard trace for an environment. `minutes` scales the
/// capture length (benchmarks use shorter traces than the figures).
pub fn trace_for(env: Environment, minutes: u64) -> Vec<PacketRecord> {
    match env {
        Environment::Campus => generate_campus_trace(&CampusConfig {
            duration_secs: minutes * 60,
            ..CampusConfig::default()
        }),
        Environment::Www => generate_www_trace(&WwwConfig {
            duration_secs: minutes * 60,
            ..WwwConfig::default()
        }),
    }
}

/// Standard flow simulation at the given THRESHOLD.
pub fn flows_at_threshold(trace: &[PacketRecord], threshold_secs: u64) -> fbs_trace::FlowSimResult {
    simulate_flows(
        trace,
        &FlowSimConfig {
            threshold_secs,
            ..FlowSimConfig::default()
        },
    )
}

/// The THRESHOLD values the paper sweeps in Figs. 13-14.
pub const THRESHOLDS: [u64; 5] = [300, 600, 900, 1200, 1800];

/// Cache-size sweep used for Fig. 11 (total entries, direct-mapped).
pub const CACHE_SIZES: [usize; 7] = [2, 4, 8, 16, 32, 64, 128];

/// One cache-sweep measurement point.
pub struct CachePoint {
    /// Total cache entries.
    pub slots: usize,
    /// Overall miss rate.
    pub miss_rate: f64,
    /// Miss rate excluding compulsory (cold) misses.
    pub avoidable_miss_rate: f64,
    /// Collision-miss share of lookups.
    pub collision_rate: f64,
}

/// Sweep cache sizes for one environment/hash/associativity.
pub fn cache_sweep(trace: &[PacketRecord], hash: CacheHash, assoc: usize) -> Vec<CachePoint> {
    CACHE_SIZES
        .iter()
        .filter(|&&slots| slots % assoc == 0)
        .map(|&slots| {
            let s = simulate_cache(
                trace,
                &CacheSimConfig {
                    threshold_secs: 600,
                    cache_slots: slots,
                    assoc,
                    hash,
                },
            );
            let lookups = s.total_lookups().max(1) as f64;
            CachePoint {
                slots,
                miss_rate: s.miss_ratio(),
                avoidable_miss_rate: (s.capacity_misses + s.collision_misses) as f64 / lookups,
                collision_rate: s.collision_misses as f64 / lookups,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_environments_generate() {
        assert!(!trace_for(Environment::Campus, 10).is_empty());
        assert!(!trace_for(Environment::Www, 30).is_empty());
    }

    #[test]
    fn cache_sweep_has_monotone_avoidable_misses() {
        let trace = trace_for(Environment::Campus, 15);
        let points = cache_sweep(&trace, CacheHash::Crc32, 1);
        assert_eq!(points.len(), CACHE_SIZES.len());
        for w in points.windows(2) {
            assert!(w[1].avoidable_miss_rate <= w[0].avoidable_miss_rate + 1e-9);
        }
    }
}
