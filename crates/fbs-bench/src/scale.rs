//! Million-flow soft-state scale curves (`scale_bench` → `BENCH_scale.json`).
//!
//! Streams the [`fbs_trace::ScaleTrace`] server workload through a
//! [`SoftCache`] keyed by the §5.3 CRC-32 of the canonical 5-tuple and
//! measures, as the table grows toward million-flow residency:
//!
//! * resident flows vs miss ratio vs datagrams/s (the scale curve),
//! * bytes per resident flow (table footprint ÷ live entries),
//! * probe-length histograms (open-addressing health as load rises),
//! * eviction-storm goodput (offered flows ≫ capacity),
//! * budget-capped residency (a [`MemoryBudget`] holding a huge table
//!   to a byte ceiling via eviction-before-allocation),
//! * steady-state allocations per datagram once resize has finished.
//!
//! The binary adds one more row via
//! [`fastpath::measure_mapping_with`](crate::fastpath::measure_mapping_with):
//! the pooled end-to-end mapping path run against scaled TFKC/RFKC
//! geometry, proving 0 allocs/datagram survives million-entry tables.

use fbs_core::cache::PROBE_HIST_BUCKETS;
use fbs_core::{BudgetKind, MemoryBudget, SoftCache};
use fbs_crypto::crc32;
use fbs_ip::FiveTuple;
use fbs_trace::{ScaleConfig, ScaleTrace};
use std::time::Instant;

/// Bytes one resident bench entry is charged against a budget: the
/// SoA slot triple (key, value, LRU tick) plus its control byte.
pub const SCALE_ENTRY_BYTES: u64 = (std::mem::size_of::<Option<FiveTuple>>()
    + std::mem::size_of::<Option<u64>>()
    + std::mem::size_of::<u64>()
    + 1) as u64;

/// One measurement point of the scale sweep.
#[derive(Clone, Debug)]
pub struct ScaleRowConfig {
    /// Row label in the report (e.g. `flows-1024k`).
    pub label: String,
    /// Configured sets; capacity is `num_sets * assoc`.
    pub num_sets: usize,
    /// Set associativity.
    pub assoc: usize,
    /// Datagrams streamed before the steady-state window.
    pub dgrams: u64,
    /// Keep streaming (bounded) until this many flows are resident;
    /// 0 disables the fill loop.
    pub fill_target: usize,
    /// Byte ceiling enforced by an attached [`MemoryBudget`];
    /// 0 runs unbudgeted.
    pub budget_bytes: u64,
    /// The streamed workload driving the row.
    pub trace: ScaleConfig,
}

/// Measured results for one row of the sweep.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Row label, copied from the config.
    pub label: String,
    /// Configured sets.
    pub num_sets: usize,
    /// Set associativity.
    pub assoc: usize,
    /// Configured capacity in entries.
    pub capacity: usize,
    /// Datagrams actually streamed (warm + fill + steady window).
    pub dgrams: u64,
    /// Flow births the trace produced.
    pub flows_offered: u64,
    /// Live entries at the end of the run.
    pub flows_resident: usize,
    /// Miss fraction over the whole run.
    pub miss_ratio: f64,
    /// Lookup+insert throughput over the whole run.
    pub dgrams_per_sec: f64,
    /// Backing-array footprint (live + retiring table during resize).
    pub table_bytes: u64,
    /// Budget-ledger bytes for resident entries (0 when unbudgeted).
    pub resident_bytes: u64,
    /// `table_bytes / flows_resident`.
    pub bytes_per_resident_flow: f64,
    /// Entries evicted (LRU + budget-driven).
    pub evictions: u64,
    /// Entries carried across incremental resize steps.
    pub migrated_entries: u64,
    /// True once every configured set is live (resize finished).
    pub resize_complete: bool,
    /// Probe-length histogram: bucket `i` counts lookups that examined
    /// `i+1` slots (last bucket saturates).
    pub probe_hist: [u64; PROBE_HIST_BUCKETS],
    /// Budget-ceiling rejections observed (should stay 0: eviction
    /// precedes allocation).
    pub exceeded_events: u64,
    /// Heap allocations per datagram over the post-warm steady window.
    pub steady_allocs_per_dgram: f64,
}

/// Stream one row's workload through a freshly built cache.
///
/// `alloc` reads a monotonically increasing allocation counter (the
/// binary wires its counting global allocator; tests pass `&|| 0`).
pub fn run_row(cfg: &ScaleRowConfig, alloc: &dyn Fn() -> u64) -> ScaleRow {
    let mut cache: SoftCache<FiveTuple, u64> =
        SoftCache::new(cfg.num_sets, cfg.assoc, |t: &FiveTuple| {
            crc32(&t.canonical_array())
        });
    let budget = MemoryBudget::bounded(cfg.budget_bytes);
    if cfg.budget_bytes > 0 {
        cache.set_budget(budget.clone(), BudgetKind::Tfkc, SCALE_ENTRY_BYTES);
    }

    let mut trace = ScaleTrace::new(cfg.trace.clone());
    let mut flow_id: u64 = 0;
    let start = Instant::now();
    let mut streamed: u64 = 0;

    let mut pull = |cache: &mut SoftCache<FiveTuple, u64>, n: u64| {
        for _ in 0..n {
            let r = trace.next().expect("stream is infinite");
            if cache.get(&r.tuple).is_none() {
                flow_id += 1;
                cache.insert(r.tuple, flow_id);
            }
        }
        streamed += n;
    };

    // Warm phase: the configured datagram volume.
    pull(&mut cache, cfg.dgrams);

    // Fill phase: top rows must demonstrate full residency, but how
    // many datagrams that takes depends on the workload's flow-size
    // mix. Stream bounded extra chunks until the target is reached.
    if cfg.fill_target > 0 {
        let chunk = (cfg.dgrams / 4).max(65_536);
        for _ in 0..32 {
            if cache.len() >= cfg.fill_target {
                break;
            }
            pull(&mut cache, chunk);
        }
    }

    // Steady window: resize and warm-up behind us, count allocations.
    let steady = (cfg.dgrams / 4).max(65_536);
    let allocs_before = alloc();
    pull(&mut cache, steady);
    let steady_allocs = alloc().saturating_sub(allocs_before);

    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let stats = cache.stats();
    let resident = cache.len();
    ScaleRow {
        label: cfg.label.clone(),
        num_sets: cfg.num_sets,
        assoc: cfg.assoc,
        capacity: cfg.num_sets * cfg.assoc,
        dgrams: streamed,
        flows_offered: trace.flows_started(),
        flows_resident: resident,
        miss_ratio: stats.miss_rate(),
        dgrams_per_sec: streamed as f64 / elapsed,
        table_bytes: cache.table_bytes(),
        resident_bytes: cache.resident_bytes(),
        bytes_per_resident_flow: if resident == 0 {
            0.0
        } else {
            cache.table_bytes() as f64 / resident as f64
        },
        evictions: stats.evictions,
        migrated_entries: cache.migrated_entries(),
        resize_complete: cache.live_sets() == cache.num_sets() && !cache.resizing(),
        probe_hist: cache.probe_histogram(),
        exceeded_events: budget.exceeded_events(),
        steady_allocs_per_dgram: steady_allocs as f64 / steady as f64,
    }
}

/// The workload every curve row shares: a multi-million client
/// population with modern port reuse, sized so distinct 5-tuples
/// comfortably exceed the largest table while smaller tables thrash.
fn curve_trace() -> ScaleConfig {
    ScaleConfig {
        seed: 97,
        clients: 4_000_000,
        client_skew: 1.5,
        active_flows: 16_384,
        port_reuse_span: 16,
        ..ScaleConfig::default()
    }
}

/// The sweep: capacities doubling up to `top_capacity` (assoc 4), then
/// the eviction-storm and budget-capped rows. `top_capacity` below the
/// first step yields just the two stress rows plus one small curve row.
pub fn default_rows(top_capacity: usize) -> Vec<ScaleRowConfig> {
    let assoc = 4;
    let mut rows = Vec::new();
    let mut cap = 16_384usize;
    loop {
        let last = cap * 4 > top_capacity;
        rows.push(ScaleRowConfig {
            label: format!("flows-{}k", cap / 1024),
            num_sets: cap / assoc,
            assoc,
            dgrams: (cap as u64 * 8).max(262_144),
            // Only the top row must prove full residency.
            fill_target: if last { cap } else { 0 },
            budget_bytes: 0,
            trace: curve_trace(),
        });
        if last {
            break;
        }
        cap *= 4;
    }
    // Eviction storm: offered active flows ≫ capacity, every miss
    // evicts; the row's dgrams/s is the storm goodput.
    rows.push(ScaleRowConfig {
        label: "eviction-storm".into(),
        num_sets: 1_024,
        assoc,
        dgrams: 1_048_576,
        fill_target: 0,
        budget_bytes: 0,
        trace: curve_trace(),
    });
    // Budget-capped: a table configured far beyond its byte ceiling;
    // residency must plateau at budget/entry-bytes via eviction, with
    // zero ceiling rejections.
    let budget_flows = (top_capacity / 4).max(4_096);
    rows.push(ScaleRowConfig {
        label: "budget-capped".into(),
        num_sets: top_capacity / assoc,
        assoc,
        dgrams: (top_capacity as u64 * 4).max(262_144),
        fill_target: 0,
        budget_bytes: budget_flows as u64 * SCALE_ENTRY_BYTES,
        trace: curve_trace(),
    });
    rows
}

/// The pooled end-to-end mapping measurement at scaled key-cache
/// geometry (row appended by the binary).
#[derive(Clone, Debug)]
pub struct PooledMappingRow {
    /// TFKC/RFKC sets each shard was configured with.
    pub kc_sets: usize,
    /// TFKC/RFKC associativity.
    pub kc_assoc: usize,
    /// End-to-end mapped datagrams per second.
    pub datagrams_per_sec: f64,
    /// Heap allocations per datagram on the pooled path.
    pub allocs_per_datagram: f64,
    /// Buffer-pool ledger balanced after the run.
    pub pool_balanced: bool,
}

/// Everything `BENCH_scale.json` carries.
#[derive(Clone, Debug, Default)]
pub struct ScaleReport {
    /// The sweep rows, smallest capacity first, stress rows last.
    pub rows: Vec<ScaleRow>,
    /// The pooled mapping row (absent in unit tests).
    pub mapping: Option<PooledMappingRow>,
}

impl ScaleReport {
    /// Hand-rolled JSON, same idiom as the other bench artifacts.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let hist: Vec<String> = r.probe_hist.iter().map(|c| c.to_string()).collect();
                format!(
                    "    {{\"label\": \"{}\", \"num_sets\": {}, \"assoc\": {}, \
                     \"capacity\": {}, \"dgrams\": {}, \"flows_offered\": {}, \
                     \"flows_resident\": {}, \"miss_ratio\": {:.4}, \
                     \"dgrams_per_sec\": {:.1}, \"table_bytes\": {}, \
                     \"resident_bytes\": {}, \"bytes_per_resident_flow\": {:.1}, \
                     \"evictions\": {}, \"migrated_entries\": {}, \
                     \"resize_complete\": {}, \"exceeded_events\": {}, \
                     \"steady_allocs_per_dgram\": {:.2}, \"probe_hist\": [{}]}}",
                    r.label,
                    r.num_sets,
                    r.assoc,
                    r.capacity,
                    r.dgrams,
                    r.flows_offered,
                    r.flows_resident,
                    r.miss_ratio,
                    r.dgrams_per_sec,
                    r.table_bytes,
                    r.resident_bytes,
                    r.bytes_per_resident_flow,
                    r.evictions,
                    r.migrated_entries,
                    r.resize_complete,
                    r.exceeded_events,
                    r.steady_allocs_per_dgram,
                    hist.join(", ")
                )
            })
            .collect();
        let mapping = match &self.mapping {
            Some(m) => format!(
                "{{\"kc_sets\": {}, \"kc_assoc\": {}, \
                 \"datagrams_per_sec\": {:.1}, \"allocs_per_datagram\": {:.2}, \
                 \"pool_balanced\": {}}}",
                m.kc_sets, m.kc_assoc, m.datagrams_per_sec, m.allocs_per_datagram, m.pool_balanced
            ),
            None => "null".into(),
        };
        format!(
            "{{\n  \"bench\": \"scale\",\n  \"entry_bytes\": {},\n  \
             \"rows\": [\n{}\n  ],\n  \"pooled_mapping\": {}\n}}\n",
            SCALE_ENTRY_BYTES,
            rows.join(",\n"),
            mapping
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(label: &str) -> ScaleRowConfig {
        ScaleRowConfig {
            label: label.into(),
            num_sets: 256,
            assoc: 4,
            dgrams: 40_000,
            fill_target: 0,
            budget_bytes: 0,
            trace: ScaleConfig {
                clients: 10_000,
                active_flows: 512,
                port_reuse_span: 8,
                ..ScaleConfig::default()
            },
        }
    }

    #[test]
    fn a_row_measures_the_stream() {
        let row = run_row(&tiny("t"), &|| 0);
        assert!(row.dgrams >= 40_000);
        assert!(row.flows_resident > 0 && row.flows_resident <= row.capacity);
        assert!(row.miss_ratio > 0.0 && row.miss_ratio < 1.0);
        assert!(row.dgrams_per_sec > 0.0);
        assert!(row.bytes_per_resident_flow > 0.0);
        assert!(row.probe_hist.iter().sum::<u64>() > 0);
        assert_eq!(row.exceeded_events, 0);
    }

    #[test]
    fn a_budget_caps_residency_without_ceiling_hits() {
        let budget_flows = 300u64;
        let cfg = ScaleRowConfig {
            budget_bytes: budget_flows * SCALE_ENTRY_BYTES,
            ..tiny("budget")
        };
        let row = run_row(&cfg, &|| 0);
        assert!(
            row.flows_resident as u64 <= budget_flows,
            "budget must bound residency: {} > {}",
            row.flows_resident,
            budget_flows
        );
        assert!(row.evictions > 0, "budget pressure must evict");
        assert_eq!(row.exceeded_events, 0, "eviction precedes allocation");
        assert_eq!(
            row.resident_bytes,
            row.flows_resident as u64 * SCALE_ENTRY_BYTES
        );
    }

    #[test]
    fn fill_target_reaches_full_residency() {
        let cfg = ScaleRowConfig {
            fill_target: 1_024,
            dgrams: 4_096,
            trace: ScaleConfig {
                clients: 100_000,
                active_flows: 2_048,
                port_reuse_span: 64,
                ..ScaleConfig::default()
            },
            ..tiny("fill")
        };
        let row = run_row(&cfg, &|| 0);
        assert!(row.flows_resident >= 1_024, "got {}", row.flows_resident);
        assert!(row.dgrams > 4_096, "fill loop must have streamed more");
    }

    #[test]
    fn default_rows_scale_to_the_requested_top() {
        let rows = default_rows(1 << 20);
        let top = rows
            .iter()
            .rev()
            .find(|r| r.budget_bytes == 0 && r.fill_target > 0)
            .expect("a fill-target top row");
        assert_eq!(top.num_sets * top.assoc, 1 << 20);
        assert_eq!(top.fill_target, 1 << 20);
        assert!(rows.iter().any(|r| r.label == "eviction-storm"));
        assert!(rows.iter().any(|r| r.label == "budget-capped"));
        // Every curve row shares one workload so the sweep isolates
        // table size.
        let seeds: Vec<u64> = rows.iter().map(|r| r.trace.seed).collect();
        assert!(seeds.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let mut report = ScaleReport::default();
        report.rows.push(run_row(&tiny("j"), &|| 0));
        report.mapping = Some(PooledMappingRow {
            kc_sets: 65_536,
            kc_assoc: 4,
            datagrams_per_sec: 1.0e6,
            allocs_per_datagram: 0.0,
            pool_balanced: true,
        });
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"scale\""));
        assert!(json.contains("\"flows_resident\""));
        assert!(json.contains("\"probe_hist\""));
        assert!(json.contains("\"pooled_mapping\""));
        assert!(json.contains("\"pool_balanced\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
