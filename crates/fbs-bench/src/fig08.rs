//! Fig. 8 — timing results: GENERIC vs FBS NOP vs FBS DES+MD5.
//!
//! The paper measured ttcp/rcp over a dedicated 10 Mb/s Ethernet between
//! Pentium-133s: GENERIC and FBS NOP ran near line rate (~7,700 kb/s,
//! showing FBS adds little overhead outside crypto), while DES+MD5 dropped
//! to ~3,400 kb/s because DES in software (549 kB/s in CryptoLib) became
//! the bottleneck.
//!
//! A 2020s CPU runs DES orders of magnitude faster, so the crypto
//! bottleneck would vanish at 10 Mb/s. We therefore report three layers:
//!
//! 1. raw primitive rates (the CryptoLib calibration);
//! 2. measured per-datagram protocol-processing rates for each variant;
//! 3. the Fig. 8 emulation: effective throughput at the paper's 10 Mb/s
//!    line rate, both at native CPU speed and with crypto scaled to
//!    CryptoLib's measured Pentium-133 rates — the scaled column
//!    reproduces the paper's shape (GENERIC ≈ NOP ≫ DES+MD5).

use crate::endpoints::{endpoint_pair, principals};
use fbs_core::{Datagram, FbsConfig};
use fbs_crypto::dh::DhGroup;
use fbs_crypto::{des, keyed_digest, md5, Des, DesMode};
use std::time::Instant;

/// Measured rate of one primitive in kB/s.
pub fn primitive_rate_kbs(name: &str, megabytes: usize) -> (String, f64) {
    let buf = vec![0x5Au8; megabytes * 1024 * 1024];
    let start = Instant::now();
    match name {
        "des-cbc" => {
            let key = Des::new(b"benchkey");
            let ct = des::encrypt(&key, 0x1234_5678_9ABC_DEF0, DesMode::Cbc, &buf);
            assert!(!ct.is_empty());
        }
        "md5" => {
            let d = md5::md5(&buf);
            assert_ne!(d, [0u8; 16]);
        }
        "keyed-md5" => {
            let d = keyed_digest(b"flow-key-material", &[&buf]);
            assert_ne!(d, [0u8; 16]);
        }
        other => panic!("unknown primitive {other}"),
    }
    let secs = start.elapsed().as_secs_f64();
    (name.to_string(), buf.len() as f64 / 1024.0 / secs)
}

/// The protocol variants of Fig. 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// No FBS at all: the body is copied through the "stack".
    Generic,
    /// Full FBS path, MAC and encryption nullified.
    FbsNop,
    /// Keyed-MD5 MAC only (the paper's non-secret mode).
    FbsMd5,
    /// DES-CBC + keyed-MD5 (the paper's secret mode).
    FbsDesMd5,
}

impl Variant {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Generic => "GENERIC",
            Variant::FbsNop => "FBS NOP",
            Variant::FbsMd5 => "FBS MD5",
            Variant::FbsDesMd5 => "FBS DES+MD5",
        }
    }

    /// All variants, GENERIC first.
    pub fn all() -> [Variant; 4] {
        [
            Variant::Generic,
            Variant::FbsNop,
            Variant::FbsMd5,
            Variant::FbsDesMd5,
        ]
    }
}

/// Measured protocol-processing rate in kb/s of payload. With
/// `one_way = true`, only sender-side protection is timed — the right
/// analogue of the paper's testbed, where sender and receiver were
/// separate machines working concurrently, so the pipeline rate is set by
/// one side's per-byte cost. With `one_way = false`, the receive path is
/// timed too (the single-CPU end-to-end cost).
pub fn processing_rate_kbps(variant: Variant, payload: usize, count: usize, one_way: bool) -> f64 {
    let body = vec![0xA5u8; payload];
    let (s, d) = principals();
    let start;
    match variant {
        Variant::Generic => {
            // Stack pass-through: a copy stands in for the non-FBS data
            // movement.
            start = Instant::now();
            let mut sink = 0u64;
            for _ in 0..count {
                let tx: Vec<u8> = body.clone();
                sink = sink.wrapping_add(tx[0] as u64);
                if !one_way {
                    let rx: Vec<u8> = tx.clone();
                    sink = sink.wrapping_add(rx[0] as u64);
                }
            }
            assert!(sink > 0 || payload == 0);
        }
        _ => {
            let cfg = match variant {
                Variant::FbsNop => FbsConfig {
                    nop_crypto: true,
                    ..FbsConfig::default()
                },
                _ => FbsConfig::default(),
            };
            let secret = variant == Variant::FbsDesMd5;
            let (mut tx, mut rx, _) = endpoint_pair(cfg, DhGroup::oakley1());
            // Warm the key caches (the steady state Fig. 8 measures).
            let pd = tx
                .send(1, Datagram::new(s.clone(), d.clone(), body.clone()), secret)
                .unwrap();
            rx.receive(pd).unwrap();
            start = Instant::now();
            for _ in 0..count {
                let pd = tx
                    .send(1, Datagram::new(s.clone(), d.clone(), body.clone()), secret)
                    .unwrap();
                if one_way {
                    std::hint::black_box(&pd);
                } else {
                    rx.receive(pd).unwrap();
                }
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (count * payload) as f64 * 8.0 / 1000.0 / secs
}

/// One-way protocol-processing rate per cipher suite (kb/s of payload):
/// the Fig. 8 secret-mode column re-measured under each [`CipherSuite`]
/// profile, so the fast DES-CTR and AEAD planes read side by side with
/// the paper-faithful DES+MD5 one. Returns `(suite name, kb/s)` rows in
/// `CipherSuite::ALL` order.
pub fn suite_rows_kbps(payload: usize, count: usize) -> Vec<(&'static str, f64)> {
    use fbs_crypto::CipherSuite;
    let body = vec![0xA5u8; payload];
    let (s, d) = principals();
    CipherSuite::ALL
        .iter()
        .map(|&suite| {
            let cfg = FbsConfig {
                suite,
                ..FbsConfig::default()
            };
            let (mut tx, mut rx, _) = endpoint_pair(cfg, DhGroup::oakley1());
            // Warm the key caches, as the variant rows do.
            let pd = tx
                .send(1, Datagram::new(s.clone(), d.clone(), body.clone()), true)
                .unwrap();
            rx.receive(pd).unwrap();
            let start = Instant::now();
            for _ in 0..count {
                let pd = tx
                    .send(1, Datagram::new(s.clone(), d.clone(), body.clone()), true)
                    .unwrap();
                std::hint::black_box(&pd);
            }
            let secs = start.elapsed().as_secs_f64();
            (suite.name(), (count * payload) as f64 * 8.0 / 1000.0 / secs)
        })
        .collect()
}

/// One row of the Fig. 8 emulation.
pub struct Fig08Row {
    /// Variant name.
    pub variant: &'static str,
    /// Native protocol-processing rate (kb/s).
    pub native_kbps: f64,
    /// Effective throughput at the paper's 10 Mb/s line rate, native CPU.
    pub native_at_line: f64,
    /// Effective throughput with crypto scaled to CryptoLib/P133 rates —
    /// the column whose SHAPE should match the paper's Fig. 8.
    pub scaled_at_line: f64,
}

/// The paper's measured CryptoLib rates on the Pentium 133 (§7.2).
pub const PAPER_DES_KBS: f64 = 549.0;
/// CryptoLib MD5 rate on the Pentium 133 (§7.2).
pub const PAPER_MD5_KBS: f64 = 7060.0;
/// Paper Fig. 8 headline numbers (kb/s).
pub const PAPER_GENERIC_KBPS: f64 = 7700.0;
/// Paper Fig. 8 FBS DES+MD5 throughput (kb/s).
pub const PAPER_DESMD5_KBPS: f64 = 3400.0;

/// Goodput ceiling at 10 Mb/s after Ethernet+IP+transport+FBS headers.
fn line_goodput_kbps(variant: Variant, payload: usize) -> f64 {
    let fbs_overhead = match variant {
        Variant::Generic => 0,
        _ => 40 + 7, // header + worst padding
    };
    let per_packet = payload + 20 + 16 + fbs_overhead + 18; // IP+MRT+FBS+ethernet
    10_000.0 * payload as f64 / per_packet as f64
}

/// Run the Fig. 8 emulation for `payload`-byte datagrams.
pub fn fig08_rows(payload: usize, count: usize) -> Vec<Fig08Row> {
    // Calibration: how much faster is our DES/MD5 than CryptoLib on P133?
    let (_, des_kbs) = primitive_rate_kbs("des-cbc", 2);
    let (_, md5_kbs) = primitive_rate_kbs("md5", 4);
    let des_speedup = des_kbs / PAPER_DES_KBS;
    let md5_speedup = md5_kbs / PAPER_MD5_KBS;

    Variant::all()
        .into_iter()
        .map(|v| {
            // One-way rate: the testbed pipelines sender and receiver.
            let native = processing_rate_kbps(v, payload, count, true);
            // Scale the crypto share of the per-byte cost back to 1997.
            // Per byte: t_total = t_other + t_crypto. We approximate
            // t_other with the NOP/GENERIC rate and scale only t_crypto.
            let scaled = match v {
                Variant::Generic | Variant::FbsNop => native,
                Variant::FbsMd5 => scale_rate(native, md5_speedup),
                Variant::FbsDesMd5 => {
                    // Crypto share ≈ DES + MD5 passes; scale by the
                    // geometric blend of the two speedups, weighted by
                    // their 1997 per-byte costs (DES dominates).
                    let w_des = 1.0 / PAPER_DES_KBS;
                    let w_md5 = 1.0 / PAPER_MD5_KBS;
                    let blend = (w_des * des_speedup + w_md5 * md5_speedup) / (w_des + w_md5);
                    scale_rate(native, blend)
                }
            };
            Fig08Row {
                variant: v.name(),
                native_kbps: native,
                native_at_line: native.min(line_goodput_kbps(v, payload)),
                scaled_at_line: scaled.min(line_goodput_kbps(v, payload)),
            }
        })
        .collect()
}

/// Slow a measured rate down by `speedup` (how much faster our crypto is
/// than the paper's).
fn scale_rate(rate_kbps: f64, speedup: f64) -> f64 {
    rate_kbps / speedup.max(1e-9)
}

/// Re-run a small DES+MD5 exchange with a live [`fbs_obs::MetricsRegistry`]
/// attached to both endpoints and return its snapshot — the `--metrics`
/// output of the Fig. 8 binary. Run separately from the timed loops so
/// instrumentation cannot skew the reported rates.
pub fn instrumented_snapshot(payload: usize, count: usize) -> fbs_obs::MetricsSnapshot {
    use std::sync::Arc;

    let (s, d) = principals();
    let (mut tx, mut rx, _) = endpoint_pair(FbsConfig::default(), DhGroup::oakley1());
    let reg = Arc::new(fbs_obs::MetricsRegistry::new());
    tx.attach_obs(Arc::clone(&reg));
    rx.attach_obs(Arc::clone(&reg));
    let body = vec![0xA5u8; payload];
    for _ in 0..count {
        let pd = tx
            .send(1, Datagram::new(s.clone(), d.clone(), body.clone()), true)
            .unwrap();
        rx.receive(pd).unwrap();
    }
    reg.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_rates_positive() {
        let (_, des) = primitive_rate_kbs("des-cbc", 1);
        let (_, md5) = primitive_rate_kbs("md5", 1);
        assert!(des > 0.0);
        assert!(md5 > des, "MD5 outruns DES, as in CryptoLib");
    }

    #[test]
    fn processing_rates_ordered() {
        // Crypto must cost something: DES+MD5 < NOP, both ways.
        for one_way in [true, false] {
            let nop = processing_rate_kbps(Variant::FbsNop, 8192, 50, one_way);
            let full = processing_rate_kbps(Variant::FbsDesMd5, 8192, 50, one_way);
            assert!(full < nop, "full {full} < nop {nop} (one_way {one_way})");
        }
    }

    #[test]
    fn suite_rows_cover_all_profiles() {
        let rows = suite_rows_kbps(2048, 40);
        assert_eq!(rows.len(), fbs_crypto::CipherSuite::ALL.len());
        for (i, (name, kbps)) in rows.iter().enumerate() {
            assert_eq!(*name, fbs_crypto::CipherSuite::ALL[i].name());
            assert!(*kbps > 0.0, "{name} rate must be positive");
        }
    }

    #[test]
    fn fig08_shape_holds() {
        let rows = fig08_rows(8192, 30);
        let by_name = |n: &str| rows.iter().find(|r| r.variant == n).unwrap();
        let generic = by_name("GENERIC");
        let nop = by_name("FBS NOP");
        let full = by_name("FBS DES+MD5");
        // Paper shape: GENERIC ≈ NOP at line rate; DES+MD5 well below
        // (once crypto is scaled to 1997 speed).
        assert!(
            (generic.scaled_at_line - nop.scaled_at_line).abs() / generic.scaled_at_line < 0.25
        );
        assert!(full.scaled_at_line < 0.75 * nop.scaled_at_line);
    }
}
