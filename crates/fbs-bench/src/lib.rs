//! # fbs-bench — experiment library behind the figure binaries
//!
//! Each `fig*` binary in `src/bin/` regenerates one figure of the paper's
//! §7.3 evaluation; the shared measurement logic lives here so binaries
//! stay thin and the logic is unit-testable. Every function returns plain
//! data rows; rendering (table or CSV) happens in the binaries.
//!
//! The experiment ↔ module map is in `DESIGN.md`; measured-vs-paper
//! results are recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod endpoints;
pub mod fastpath;
pub mod fig08;
pub mod figs;
pub mod paradigms;
pub mod scale;

/// Standard CLI handling shared by the figure binaries: `--csv` selects
/// CSV output; a leading integer (where meaningful) scales the workload.
pub fn wants_csv() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// First positional integer argument, if any.
pub fn arg_num() -> Option<u64> {
    std::env::args().skip(1).find_map(|a| a.parse().ok())
}

/// Render rows either as an aligned table or CSV per the `--csv` flag.
pub fn emit(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    if wants_csv() {
        print!("{}", fbs_trace::stats::render_csv(headers, rows));
    } else {
        println!("{title}");
        println!("{}", fbs_trace::stats::render_table(headers, rows));
    }
}

/// The value following flag `name`, if the flag was given.
pub fn flag_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// The path following a `--metrics` flag, if one was given.
pub fn metrics_path() -> Option<std::path::PathBuf> {
    flag_value("--metrics").map(Into::into)
}

/// Write `content` to `path`, exiting non-zero on failure; `what` names
/// the artifact in the stderr note.
pub fn write_artifact(path: &str, what: &str, content: &str) {
    match std::fs::write(path, content) {
        Ok(()) => eprintln!("{what} written to {path}"),
        Err(e) => {
            eprintln!("cannot write {what} to {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Write a metrics snapshot as JSON to `path` and note it on stderr
/// (stdout stays reserved for the figure's table/CSV output).
pub fn write_metrics(path: &std::path::Path, snap: &fbs_obs::MetricsSnapshot) {
    match std::fs::write(path, snap.to_json()) {
        Ok(()) => eprintln!("metrics written to {}", path.display()),
        Err(e) => {
            eprintln!("cannot write metrics to {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Honour `--metrics <path>` for a snapshot the binary assembled.
pub fn maybe_write_metrics(snap: &fbs_obs::MetricsSnapshot) {
    if let Some(p) = metrics_path() {
        write_metrics(&p, snap);
    }
}
