//! End-to-end checks of the bench/figure binaries' artifact flags:
//! `--metrics` on the figure binaries, and `--trace`/`--prom` on the
//! chaos soak — exercising the files they write, not just flag parsing.

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fbs-cli-artifacts-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn balanced(text: &str) {
    assert_eq!(
        text.matches('{').count() + text.matches('[').count(),
        text.matches('}').count() + text.matches(']').count(),
        "unbalanced JSON"
    );
}

#[test]
fn fig11_metrics_flag_writes_parseable_snapshot() {
    let path = tmp("fig11_metrics.json");
    let out = Command::new(env!("CARGO_BIN_EXE_fig11_cache_miss"))
        .args(["2", "--metrics", path.to_str().unwrap()])
        .output()
        .expect("fig11 runs");
    assert!(
        out.status.success(),
        "fig11 failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("metrics file written");
    assert!(text.starts_with('{'));
    assert!(text.contains("\"counters\""));
    assert!(text.contains("cache.tfkc.hits"));
    balanced(&text);
}

#[test]
fn chaos_soak_trace_matches_committed_sample() {
    let trace_path = tmp("flow_trace.json");
    let report_path = tmp("chaos_report.json");
    let prom_path = tmp("chaos.prom");
    let out = Command::new(env!("CARGO_BIN_EXE_chaos_soak"))
        .args([
            "--short",
            "--seed",
            "7",
            "--out",
            report_path.to_str().unwrap(),
            "--trace",
            trace_path.to_str().unwrap(),
            "--prom",
            prom_path.to_str().unwrap(),
        ])
        .output()
        .expect("chaos_soak runs");
    assert!(
        out.status.success(),
        "chaos_soak failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The trace runs on virtual time, so the bytes are a pure function
    // of the seed: they must match the committed sample exactly. If
    // this fails after an intentional trace change, regenerate with
    //   cargo run --release -p fbs-bench --bin chaos_soak -- \
    //     --short --seed 7 --out /dev/null --trace samples/flow_trace_seed7.json
    let got = std::fs::read_to_string(&trace_path).expect("trace written");
    let sample_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../samples/flow_trace_seed7.json");
    let want = std::fs::read_to_string(&sample_path).expect("committed sample readable");
    assert_eq!(got, want, "trace drifted from committed sample");
    balanced(&got);
    assert!(got.contains("\"kind\":\"classify\""));
    assert!(got.contains("\"kind\":\"fault_start\""));

    // The prom exposition is well-formed: every non-comment line is
    // `name[{label="v"}] <integer>`.
    let prom = std::fs::read_to_string(&prom_path).expect("prom written");
    for line in prom.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("space-separated sample");
        assert!(value.bytes().all(|b| b.is_ascii_digit()), "{line}");
        let bare = name.split('{').next().unwrap();
        assert!(bare.starts_with("fbs_"), "{line}");
    }
    assert!(prom.contains("# TYPE fbs_park_parked counter"));

    // And the report carries the health timeline.
    let report = std::fs::read_to_string(&report_path).expect("report written");
    assert!(report.contains("\"health\""));
    assert!(report.contains("\"breaker_open\""));
}
