//! Criterion benches for the certificate machinery (§5.3's cost model:
//! PVC misses are "extremely expensive", per-use verification must be
//! cheap enough to run on every key derivation).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fbs_cert::{CertificateAuthority, Directory, Pvc};
use fbs_core::{ManualClock, Principal, PublicValueSource};
use fbs_crypto::dh::{DhGroup, PrivateValue};
use std::sync::Arc;
use std::time::Duration;

fn bench_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("cert-verify");
    let pv =
        PrivateValue::from_entropy(DhGroup::oakley1(), b"bench-subject-entropy").public_value();

    let mac_ca = CertificateAuthority::new("mac-ca", [1u8; 16]);
    let mac_cert = mac_ca.issue(Principal::named("alice"), pv.clone(), 0, u64::MAX);
    let mac_verifier = mac_ca.verifier();
    g.bench_function("mac-keyed-md5", |b| {
        b.iter(|| mac_verifier.verify(black_box(&mac_cert), 100).unwrap())
    });

    let rsa_ca = CertificateAuthority::new_rsa("rsa-ca", 512, 7);
    let rsa_cert = rsa_ca.issue(Principal::named("alice"), pv, 0, u64::MAX);
    let rsa_verifier = rsa_ca.verifier();
    g.bench_function("rsa-512", |b| {
        b.iter(|| rsa_verifier.verify(black_box(&rsa_cert), 100).unwrap())
    });
    g.finish();
}

fn bench_pvc(c: &mut Criterion) {
    let mut g = c.benchmark_group("pvc");
    let ca = CertificateAuthority::new("ca", [2u8; 16]);
    let dir = Arc::new(Directory::new(Duration::ZERO));
    let clock = ManualClock::starting_at(1);
    let pv = PrivateValue::from_entropy(DhGroup::oakley1(), b"bench-peer-entropy!!").public_value();
    dir.publish(ca.issue(Principal::named("peer"), pv, 0, u64::MAX));
    let pvc = Pvc::new(32, dir, ca.verifier(), Arc::new(clock));
    let peer = Principal::named("peer");
    pvc.fetch(&peer).unwrap(); // warm
                               // Steady state: cache hit + per-use verification.
    g.bench_function("hit-plus-verify", |b| {
        b.iter(|| pvc.fetch(black_box(&peer)).unwrap())
    });
    g.finish();
}

fn bench_issuance(c: &mut Criterion) {
    let mut g = c.benchmark_group("cert-issue");
    g.sample_size(20);
    let pv =
        PrivateValue::from_entropy(DhGroup::oakley1(), b"bench-subject-entropy").public_value();
    let mac_ca = CertificateAuthority::new("mac-ca", [1u8; 16]);
    g.bench_function("mac", |b| {
        b.iter(|| mac_ca.issue(Principal::named("x"), black_box(pv.clone()), 0, 1))
    });
    let rsa_ca = CertificateAuthority::new_rsa("rsa-ca", 512, 7);
    g.bench_function("rsa-512", |b| {
        b.iter(|| rsa_ca.issue(Principal::named("x"), black_box(pv.clone()), 0, 1))
    });
    g.finish();
}

criterion_group!(benches, bench_verification, bench_pvc, bench_issuance);
criterion_main!(benches);
