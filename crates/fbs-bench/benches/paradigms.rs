//! Criterion benches comparing FBS against the §2 keying paradigms on a
//! per-datagram basis — the quantitative backing for §7.4's claim that
//! FBS "provides better performance because key generation need only be
//! done on a per-flow basis rather than a per-datagram basis."

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fbs_baselines::{
    FbsService, HostPairService, KeySource, PerDatagramService, SecureDatagramService,
    SessionExchangeService,
};
use fbs_crypto::dh::DhGroup;
use fbs_crypto::{Bbs, Lcg64};

const PAYLOAD: usize = 1024;

/// Steady-state protect+unprotect inside one conversation.
fn bench_steady_state(c: &mut Criterion) {
    let mut g = c.benchmark_group("steady-state-1k");
    let group = DhGroup::oakley1();
    let payload = vec![0x42u8; PAYLOAD];

    {
        let (mut a, mut b, a_name, b_name, _) = FbsService::pair(&group);
        g.bench_function("fbs", |bch| {
            bch.iter(|| {
                let w = a.protect(&b_name, 1, black_box(&payload)).unwrap();
                black_box(b.unprotect(&a_name, 1, &w).unwrap())
            })
        });
    }
    {
        let (mut a, mut b, a_name, b_name) = HostPairService::pair(&group, ("alice", "bob"));
        g.bench_function("host-pair", |bch| {
            bch.iter(|| {
                let w = a.protect(&b_name, 1, black_box(&payload)).unwrap();
                black_box(b.unprotect(&a_name, 1, &w).unwrap())
            })
        });
    }
    {
        let (mut a, mut b, a_name, b_name) = PerDatagramService::pair(
            &group,
            KeySource::Lcg(Lcg64::new(1)),
            KeySource::Lcg(Lcg64::new(2)),
        );
        g.bench_function("per-datagram-lcg", |bch| {
            bch.iter(|| {
                let w = a.protect(&b_name, 1, black_box(&payload)).unwrap();
                black_box(b.unprotect(&a_name, 1, &w).unwrap())
            })
        });
    }
    {
        let (mut a, mut b, a_name, b_name) = PerDatagramService::pair(
            &group,
            KeySource::Bbs(Box::new(Bbs::with_default_modulus(b"bench-a"))),
            KeySource::Bbs(Box::new(Bbs::with_default_modulus(b"bench-b"))),
        );
        g.sample_size(20);
        g.bench_function("per-datagram-bbs", |bch| {
            bch.iter(|| {
                let w = a.protect(&b_name, 1, black_box(&payload)).unwrap();
                black_box(b.unprotect(&a_name, 1, &w).unwrap())
            })
        });
    }
    {
        let (mut a, mut b, a_name, b_name) = SessionExchangeService::pair(&group);
        g.sample_size(100);
        g.bench_function("session-exchange", |bch| {
            bch.iter(|| {
                let w = a.protect(&b_name, 1, black_box(&payload)).unwrap();
                black_box(b.unprotect(&a_name, 1, &w).unwrap())
            })
        });
    }
    g.finish();
}

/// Flow-start cost: first datagram of a NEW conversation (where FBS pays a
/// flow-key derivation and SKIP-style schemes pay nothing extra — but
/// per-datagram schemes pay on EVERY datagram).
fn bench_flow_start(c: &mut Criterion) {
    let mut g = c.benchmark_group("new-conversation-first-datagram");
    let group = DhGroup::oakley1();
    let payload = vec![0x42u8; PAYLOAD];

    let (mut fbs_a, _, _, fbs_b_name, _) = FbsService::pair(&group);
    let mut conv = 1000u64;
    g.bench_function(BenchmarkId::new("fbs", "new-flow"), |bch| {
        bch.iter(|| {
            conv += 1;
            black_box(fbs_a.protect(&fbs_b_name, conv, &payload).unwrap())
        })
    });

    let (mut hp_a, _, _, hp_b_name) = HostPairService::pair(&group, ("alice", "bob"));
    let mut conv2 = 1000u64;
    g.bench_function(BenchmarkId::new("host-pair", "new-flow"), |bch| {
        bch.iter(|| {
            conv2 += 1;
            black_box(hp_a.protect(&hp_b_name, conv2, &payload).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_steady_state, bench_flow_start);
criterion_main!(benches);
