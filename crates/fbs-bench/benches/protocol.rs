//! Criterion benches of the FBS protocol path itself, including the §5.3
//! and §7.2 design-choice ablations called out in DESIGN.md:
//!
//! * single-pass MAC+encrypt vs two-pass;
//! * combined FST/TFKC lookup vs separate FAM + TFKC;
//! * per-datagram cost across payload sizes and variants.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fbs_bench::endpoints::{endpoint_pair, principals};
use fbs_core::policy::IdleTimeoutPolicy;
use fbs_core::{Datagram, FbsConfig};
use fbs_core::{Fam, FlowKey, SealedFlowKey, SflAllocator};
use fbs_crypto::dh::DhGroup;
use fbs_ip::CombinedTable;
use std::sync::Arc;

fn dgram(payload: usize) -> Datagram {
    let (s, d) = principals();
    Datagram::new(s, d, vec![0xA5u8; payload])
}

fn bench_send_receive(c: &mut Criterion) {
    let mut g = c.benchmark_group("send-receive");
    for payload in [64usize, 512, 1460, 8192] {
        g.throughput(Throughput::Bytes(payload as u64));
        for (name, nop, secret) in [
            ("nop", true, false),
            ("md5-only", false, false),
            ("des+md5", false, true),
        ] {
            let cfg = FbsConfig {
                nop_crypto: nop,
                ..FbsConfig::default()
            };
            let (mut tx, mut rx, _) = endpoint_pair(cfg, DhGroup::oakley1());
            // Warm caches.
            let pd = tx.send(1, dgram(payload), secret).unwrap();
            rx.receive(pd).unwrap();
            g.bench_with_input(BenchmarkId::new(name, payload), &payload, |b, &payload| {
                b.iter(|| {
                    let pd = tx.send(1, dgram(payload), secret).unwrap();
                    black_box(rx.receive(pd).unwrap())
                })
            });
        }
    }
    g.finish();
}

fn bench_single_vs_two_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("data-touching");
    let payload = 8192usize;
    g.throughput(Throughput::Bytes(payload as u64));
    for (name, single) in [("single-pass", true), ("two-pass", false)] {
        let cfg = FbsConfig {
            single_pass: single,
            ..FbsConfig::default()
        };
        let (mut tx, _, _) = endpoint_pair(cfg, DhGroup::oakley1());
        tx.send(1, dgram(payload), true).unwrap(); // warm
        g.bench_function(name, |b| {
            b.iter(|| black_box(tx.send(1, dgram(payload), true).unwrap()))
        });
    }
    g.finish();
}

fn bench_lookup_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow-lookup");
    // §7.2 ablation: merged FST/TFKC (one hash) vs FAM classify + TFKC
    // get (two hashes). Measured on the lookup machinery alone.
    let tuple = fbs_ip::FiveTuple {
        proto: 17,
        saddr: [10, 0, 0, 1],
        sport: 4321,
        daddr: [10, 0, 0, 2],
        dport: 53,
    };
    let mut combined = CombinedTable::new(64, 600, SflAllocator::new(1));
    combined
        .lookup(tuple, 0, |sfl| {
            Ok::<_, ()>(Arc::new(SealedFlowKey::seal(FlowKey(
                sfl.to_be_bytes().repeat(2),
            ))))
        })
        .unwrap();
    g.bench_function("combined-fst-tfkc", |b| {
        b.iter(|| {
            combined
                .lookup(black_box(tuple), 1, |sfl| {
                    Ok::<_, ()>(Arc::new(SealedFlowKey::seal(FlowKey(
                        sfl.to_be_bytes().repeat(2),
                    ))))
                })
                .unwrap()
        })
    });

    let mut fam: Fam<Vec<u8>, IdleTimeoutPolicy> =
        Fam::new(64, IdleTimeoutPolicy::new(600), SflAllocator::new(1));
    let mut tfkc: fbs_core::SoftCache<u64, FlowKey> =
        fbs_core::SoftCache::new(64, 1, |k: &u64| fbs_crypto::crc32(&k.to_be_bytes()));
    let attrs: Vec<u8> = b"10.0.0.1:4321->10.0.0.2:53/17".to_vec();
    let class = fam.classify(attrs.clone(), 0, 100);
    tfkc.insert(class.sfl, FlowKey(vec![0; 16]));
    g.bench_function("separate-fam-then-tfkc", |b| {
        b.iter(|| {
            let class = fam.classify(black_box(attrs.clone()), 1, 100);
            black_box(tfkc.get(&class.sfl))
        })
    });
    g.finish();
}

fn bench_header_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("header");
    let header = fbs_core::SecurityFlowHeader {
        sfl: 0x0102030405060708,
        confounder: 0xDEADBEEF,
        timestamp: 123456,
        mac_alg: fbs_crypto::MacAlgorithm::KeyedMd5,
        enc_alg: fbs_core::EncAlgorithm::DesCbc,
        suite: fbs_crypto::CipherSuite::Paper,
        plaintext_len: 1460,
        mac: vec![0xAB; 16],
    };
    let encoded = header.encode();
    g.bench_function("encode", |b| b.iter(|| black_box(header.encode())));
    g.bench_function("decode", |b| {
        b.iter(|| black_box(fbs_core::SecurityFlowHeader::decode(&encoded).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_send_receive,
    bench_single_vs_two_pass,
    bench_lookup_paths,
    bench_header_codec
);
criterion_main!(benches);
