//! Criterion microbenches for the cryptographic substrate — the modern
//! analogue of the paper's CryptoLib calibration (§7.2: DES-CBC 549 kB/s,
//! MD5 7060 kB/s on a Pentium 133).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fbs_crypto::dh::{DhGroup, PrivateValue};
use fbs_crypto::{crc32, des, keyed_digest, md5, sha1, Bbs, Des, DesMode, Lcg64};

fn bench_ciphers(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    let buf = vec![0xA5u8; 64 * 1024];
    let key = Des::new(b"benchkey");
    g.throughput(Throughput::Bytes(buf.len() as u64));
    for mode in [DesMode::Cbc, DesMode::Ecb, DesMode::Cfb, DesMode::Ofb] {
        g.bench_function(format!("encrypt-64k-{mode:?}"), |b| {
            b.iter(|| des::encrypt(&key, 0xDEAD_BEEF, mode, black_box(&buf)))
        });
    }
    g.bench_function("decrypt-64k-Cbc", |b| {
        let ct = des::encrypt(&key, 0xDEAD_BEEF, DesMode::Cbc, &buf);
        b.iter(|| des::decrypt(&key, 0xDEAD_BEEF, DesMode::Cbc, black_box(&ct), buf.len()))
    });
    g.finish();
}

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    let buf = vec![0xA5u8; 64 * 1024];
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("md5-64k", |b| b.iter(|| md5::md5(black_box(&buf))));
    g.bench_function("sha1-64k", |b| b.iter(|| sha1::sha1(black_box(&buf))));
    g.bench_function("keyed-md5-64k", |b| {
        b.iter(|| keyed_digest(b"flow-key", &[black_box(&buf)]))
    });
    g.bench_function("crc32-64k", |b| b.iter(|| crc32(black_box(&buf))));
    g.finish();
}

fn bench_keying(c: &mut Criterion) {
    let mut g = c.benchmark_group("keying");
    // The expensive once-per-pair operation: 768-bit modexp.
    let group = DhGroup::oakley1();
    let a = PrivateValue::from_entropy(group.clone(), b"bench-a-entropy-bytes");
    let b_pub = PrivateValue::from_entropy(group, b"bench-b-entropy-bytes").public_value();
    g.sample_size(10);
    g.bench_function("dh-master-key-oakley1", |bch| {
        bch.iter(|| a.master_key(black_box(&b_pub)))
    });
    // The cheap per-flow operation.
    let master = a.master_key(&b_pub);
    g.bench_function("flow-key-derivation", |bch| {
        bch.iter(|| {
            fbs_core::derive_flow_key(
                fbs_core::KeyDerivation::Md5,
                black_box(42),
                &master,
                &fbs_core::Principal::named("S"),
                &fbs_core::Principal::named("D"),
            )
        })
    });
    g.finish();
}

fn bench_rngs(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    // Statistical (confounder) vs cryptographic (per-datagram key)
    // randomness: the §2.2 bottleneck, quantified.
    let mut lcg = Lcg64::new(7);
    g.bench_function("lcg-8-bytes", |b| {
        let mut buf = [0u8; 8];
        b.iter(|| {
            lcg.fill(&mut buf);
            black_box(buf)
        })
    });
    let mut bbs = Bbs::with_default_modulus(b"bench-bbs-seed");
    g.sample_size(20);
    g.bench_function("bbs-8-bytes", |b| {
        let mut buf = [0u8; 8];
        b.iter(|| {
            bbs.fill(&mut buf);
            black_box(buf)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ciphers,
    bench_hashes,
    bench_keying,
    bench_rngs
);
criterion_main!(benches);
