//! The master key daemon (MKD) — paper §5.3, Fig. 5.
//!
//! MKC misses are served by an "upcall" to the MKD, which obtains the
//! peer's public value (through the PVC / certificate machinery behind the
//! [`PublicValueSource`] trait) and computes the pair-based master key via
//! modular exponentiation — the expensive operation FBS amortises across
//! all of a principal pair's flows.
//!
//! In the paper the MKD is a user-space daemon reached from the kernel via
//! an OS upcall primitive; here the upcall is a method call, and the
//! user/kernel boundary survives as the trait boundary: everything behind
//! `PublicValueSource` is "user space" (certificate caches, directory
//! fetches with simulated RTT, verification), while the MKD's caller (the
//! protocol endpoint with its MKC) is "kernel".

use crate::breaker::{
    Allow, BreakerConfig, BreakerState, CircuitBreaker, Transition, TransitionEvent,
};
use crate::clock::Clock;
use crate::error::{FbsError, Result};
use crate::principal::Principal;
use crate::retry::RetryPolicy;
use fbs_crypto::dh::{PrivateValue, PublicValue};
use fbs_obs::{BreakerStateKind, Event, MetricsRegistry};
use std::collections::HashMap;
use std::sync::Arc;

/// Supplies verified public values for principals.
///
/// Implementations encapsulate the PVC (public value cache), fetches to a
/// certificate authority or secure directory, and per-use certificate
/// verification (§5.3: certificates rather than bare values are cached so
/// the cache itself need not be secure). Fetch requests must bypass FBS
/// (the "secure flow bypass" of Fig. 5) to avoid the circularity of
/// securing the fetch that enables security.
pub trait PublicValueSource: Send + Sync {
    /// Fetch the verified public value for `principal`.
    fn fetch(&self, principal: &Principal) -> Result<PublicValue>;
}

/// Shared sources work anywhere an owned one does — callers can keep a
/// handle (e.g. for statistics) while the MKD holds another.
impl<T: PublicValueSource + ?Sized> PublicValueSource for Arc<T> {
    fn fetch(&self, principal: &Principal) -> Result<PublicValue> {
        (**self).fetch(principal)
    }
}

/// A trivial in-memory source for tests and self-contained examples: all
/// public values are "pinned" at initialisation (§5.3 mentions pinning as
/// the alternative to directory fetches).
#[derive(Default)]
pub struct PinnedDirectory {
    entries: std::collections::HashMap<Principal, PublicValue>,
}

impl PinnedDirectory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin `principal`'s public value.
    pub fn pin(&mut self, principal: Principal, value: PublicValue) {
        self.entries.insert(principal, value);
    }
}

impl PublicValueSource for PinnedDirectory {
    fn fetch(&self, principal: &Principal) -> Result<PublicValue> {
        self.entries
            .get(principal)
            .cloned()
            .ok_or_else(|| crate::error::FbsError::PrincipalUnknown(principal.to_string()))
    }
}

/// MKD statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MkdStats {
    /// Upcalls received (one per MKC miss).
    pub upcalls: u64,
    /// Upcalls that failed (unknown principal, bad certificate, open
    /// breaker, retries exhausted, ...).
    pub failures: u64,
    /// Public-value fetch retries after a failed attempt.
    pub retries: u64,
    /// Upcalls whose retry schedule was exhausted.
    pub retry_exhausted: u64,
    /// Per-peer circuit-breaker trips to open.
    pub breaker_opens: u64,
    /// Breaker half-open transitions (recovery probes let through).
    pub breaker_half_opens: u64,
    /// Breaker transitions back to closed.
    pub breaker_closes: u64,
    /// Upcalls rejected fast because the peer's breaker was open.
    pub breaker_fast_fails: u64,
}

impl MkdStats {
    /// Fold these counters into a snapshot under the `mkd.*` /
    /// `retry.*` / `breaker.*` names a live `fbs_obs::MetricsRegistry`
    /// uses.
    pub fn contribute(&self, snap: &mut fbs_obs::MetricsSnapshot) {
        snap.add("mkd.upcalls", self.upcalls);
        snap.add("mkd.failures", self.failures);
        snap.add("retry.attempts", self.retries);
        snap.add("retry.exhausted", self.retry_exhausted);
        snap.add("breaker.opened", self.breaker_opens);
        snap.add("breaker.half_open", self.breaker_half_opens);
        snap.add("breaker.closed", self.breaker_closes);
        snap.add("breaker.fast_fails", self.breaker_fast_fails);
    }
}

/// Lock-free published view of [`MkdStats`]: the owner re-publishes the
/// whole struct after each upcall (under whatever lock guards the MKD),
/// and readers snapshot it without taking that lock. Because every field
/// is stored in one publish pass and the struct is only ever written by
/// the lock holder, a snapshot is at worst one upcall stale — never torn
/// in a way that breaks monotonicity of any individual counter.
#[derive(Debug, Default)]
pub struct AtomicMkdStats {
    upcalls: std::sync::atomic::AtomicU64,
    failures: std::sync::atomic::AtomicU64,
    retries: std::sync::atomic::AtomicU64,
    retry_exhausted: std::sync::atomic::AtomicU64,
    breaker_opens: std::sync::atomic::AtomicU64,
    breaker_half_opens: std::sync::atomic::AtomicU64,
    breaker_closes: std::sync::atomic::AtomicU64,
    breaker_fast_fails: std::sync::atomic::AtomicU64,
}

impl AtomicMkdStats {
    /// A fresh zeroed handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-publish `stats` (called by the MKD's owner after each upcall).
    pub fn publish(&self, stats: &MkdStats) {
        use std::sync::atomic::Ordering::Relaxed;
        self.upcalls.store(stats.upcalls, Relaxed);
        self.failures.store(stats.failures, Relaxed);
        self.retries.store(stats.retries, Relaxed);
        self.retry_exhausted.store(stats.retry_exhausted, Relaxed);
        self.breaker_opens.store(stats.breaker_opens, Relaxed);
        self.breaker_half_opens
            .store(stats.breaker_half_opens, Relaxed);
        self.breaker_closes.store(stats.breaker_closes, Relaxed);
        self.breaker_fast_fails
            .store(stats.breaker_fast_fails, Relaxed);
    }

    /// Read the most recently published counters.
    pub fn snapshot(&self) -> MkdStats {
        use std::sync::atomic::Ordering::Relaxed;
        MkdStats {
            upcalls: self.upcalls.load(Relaxed),
            failures: self.failures.load(Relaxed),
            retries: self.retries.load(Relaxed),
            retry_exhausted: self.retry_exhausted.load(Relaxed),
            breaker_opens: self.breaker_opens.load(Relaxed),
            breaker_half_opens: self.breaker_half_opens.load(Relaxed),
            breaker_closes: self.breaker_closes.load(Relaxed),
            breaker_fast_fails: self.breaker_fast_fails.load(Relaxed),
        }
    }
}

/// Fault-tolerance wrapping for the upcall path: a retry schedule
/// around the public-value fetch plus a per-peer circuit breaker, both
/// driven by a deterministic clock.
pub struct Resilience {
    /// Retry schedule for the public-value fetch.
    pub retry: RetryPolicy,
    /// Breaker tuning, applied per peer.
    pub breaker: BreakerConfig,
    /// Time source for breaker open/half-open timing.
    pub clock: Arc<dyn Clock>,
    breakers: HashMap<Principal, CircuitBreaker>,
}

impl Resilience {
    /// Resilience under `retry` and `breaker`, timed by `clock`.
    pub fn new(retry: RetryPolicy, breaker: BreakerConfig, clock: Arc<dyn Clock>) -> Self {
        Resilience {
            retry,
            breaker,
            clock,
            breakers: HashMap::new(),
        }
    }
}

/// The master key daemon.
pub struct MasterKeyDaemon {
    private: PrivateValue,
    source: Box<dyn PublicValueSource>,
    stats: MkdStats,
    resilience: Option<Resilience>,
    obs: Option<Arc<MetricsRegistry>>,
}

impl MasterKeyDaemon {
    /// Create an MKD for a principal holding `private`, resolving peers
    /// through `source`. Upcalls are single-shot; add
    /// [`with_resilience`](Self::with_resilience) for retry + breaker.
    pub fn new(private: PrivateValue, source: Box<dyn PublicValueSource>) -> Self {
        MasterKeyDaemon {
            private,
            source,
            stats: MkdStats::default(),
            resilience: None,
            obs: None,
        }
    }

    /// Harden the upcall path (builder style): retry the public-value
    /// fetch under `retry` and gate each peer behind a circuit breaker.
    pub fn with_resilience(mut self, resilience: Resilience) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// Attach a metrics registry: retry attempts, breaker transitions,
    /// and fast-fails are recorded as flight-recorder events.
    pub fn set_obs(&mut self, registry: Arc<MetricsRegistry>) {
        self.obs = Some(registry);
    }

    fn record(&self, event: Event) {
        if let Some(reg) = &self.obs {
            reg.record(event);
        }
    }

    fn note_transition(&mut self, t: TransitionEvent) {
        let to = match t.transition {
            Transition::Opened => {
                self.stats.breaker_opens += 1;
                BreakerStateKind::Open
            }
            Transition::HalfOpened => {
                self.stats.breaker_half_opens += 1;
                BreakerStateKind::HalfOpen
            }
            Transition::Closed => {
                self.stats.breaker_closes += 1;
                BreakerStateKind::Closed
            }
        };
        let from = match t.from {
            BreakerState::Closed => BreakerStateKind::Closed,
            BreakerState::Open { .. } => BreakerStateKind::Open,
            BreakerState::HalfOpen => BreakerStateKind::HalfOpen,
        };
        self.record(Event::BreakerTransition {
            from,
            to,
            in_state_us: t.in_state_us,
        });
        // Line the transition up against any sampled flow traces.
        if let Some(tracer) = self.obs.as_ref().and_then(|reg| reg.tracer()) {
            tracer.annotate("breaker_transition", to.name(), t.at_us, t.in_state_us);
        }
    }

    /// The `Upcall(MKDaemon, D)` of Fig. 6: produce the pair-based master
    /// key `K_{S,D}` for the local principal and `peer`. With resilience
    /// configured, the fetch is retried per the policy and the peer's
    /// circuit breaker may fail the upcall fast while open.
    pub fn master_key(&mut self, peer: &Principal) -> Result<Vec<u8>> {
        self.stats.upcalls += 1;
        let Some(res) = &mut self.resilience else {
            let public = self.source.fetch(peer).inspect_err(|_| {
                self.stats.failures += 1;
            })?;
            return Ok(self.private.master_key(&public));
        };

        let now_us = res.clock.now_micros();
        // Steady-state breaker lookups are a single hash probe with no
        // key clone: the loop/break shape ends the probe's borrow before
        // the miss-path insert, so only the very first upcall for a peer
        // pays the `Principal` clone that creating its breaker requires.
        let (allow, transition) = loop {
            if let Some(b) = res.breakers.get_mut(peer) {
                break b.allow(now_us);
            }
            res.breakers
                .insert(peer.clone(), CircuitBreaker::new(res.breaker));
        };
        if let Some(t) = transition {
            self.note_transition(t);
        }
        if allow == Allow::FastFail {
            self.stats.failures += 1;
            self.stats.breaker_fast_fails += 1;
            self.record(Event::BreakerFastFail);
            return Err(FbsError::CircuitOpen(peer.to_string()));
        }

        let res = self.resilience.as_mut().expect("checked above");
        let source = &self.source;
        let outcome = res.retry.run(|| source.fetch(peer));
        for (i, backoff_us) in outcome.backoffs_us.iter().enumerate() {
            self.stats.retries += 1;
            self.record(Event::RetryAttempt {
                attempt: i as u32 + 1,
                backoff_us: *backoff_us,
            });
        }
        let res = self.resilience.as_mut().expect("checked above");
        let breaker = res.breakers.get_mut(peer).expect("inserted above");
        match outcome.result {
            Ok(public) => {
                // Success time mirrors the failure path: the virtual
                // backoff spent retrying has already elapsed.
                let succeeded_at = now_us.saturating_add(outcome.total_backoff_us);
                let transition = breaker.on_success(succeeded_at);
                if let Some(t) = transition {
                    self.note_transition(t);
                }
                Ok(self.private.master_key(&public))
            }
            Err(e) => {
                // Failure time includes the virtual backoff spent
                // retrying, so the open interval starts when the last
                // attempt would have finished.
                let failed_at = now_us.saturating_add(outcome.total_backoff_us);
                let transition = breaker.on_failure(failed_at);
                self.stats.failures += 1;
                if outcome.exhausted && outcome.attempts > 1 {
                    self.stats.retry_exhausted += 1;
                    self.record(Event::RetryExhausted {
                        attempts: outcome.attempts,
                    });
                }
                if let Some(t) = transition {
                    self.note_transition(t);
                }
                Err(e)
            }
        }
    }

    /// Would an upcall for `peer` fail fast right now because its
    /// breaker is open? Pure — consumes no probe, trips nothing. Lets
    /// release loops skip work that is guaranteed to fail.
    pub fn would_fast_fail(&self, peer: &Principal) -> bool {
        let Some(res) = &self.resilience else {
            return false;
        };
        res.breakers
            .get(peer)
            .is_some_and(|b| b.would_fast_fail(res.clock.now_micros()))
    }

    /// The peer's breaker state, if resilience is configured and the
    /// peer has been seen.
    pub fn breaker_state(&self, peer: &Principal) -> Option<BreakerState> {
        self.resilience
            .as_ref()
            .and_then(|r| r.breakers.get(peer))
            .map(|b| b.state())
    }

    /// This principal's own public value (for publishing/certification).
    pub fn public_value(&self) -> PublicValue {
        self.private.public_value()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MkdStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbs_crypto::dh::DhGroup;

    fn daemon_pair() -> (MasterKeyDaemon, MasterKeyDaemon, Principal, Principal) {
        let group = DhGroup::test_group();
        let s_priv = PrivateValue::from_entropy(group.clone(), b"source-entropy-bytes");
        let d_priv = PrivateValue::from_entropy(group, b"dest-entropy-bytes!!");
        let s = Principal::named("S");
        let d = Principal::named("D");
        let mut dir_s = PinnedDirectory::new();
        dir_s.pin(d.clone(), d_priv.public_value());
        let mut dir_d = PinnedDirectory::new();
        dir_d.pin(s.clone(), s_priv.public_value());
        (
            MasterKeyDaemon::new(s_priv, Box::new(dir_s)),
            MasterKeyDaemon::new(d_priv, Box::new(dir_d)),
            s,
            d,
        )
    }

    #[test]
    fn both_ends_compute_same_master_key() {
        let (mut mkd_s, mut mkd_d, s, d) = daemon_pair();
        let k_sd = mkd_s.master_key(&d).unwrap();
        let k_ds = mkd_d.master_key(&s).unwrap();
        assert_eq!(k_sd, k_ds);
        assert_eq!(mkd_s.stats().upcalls, 1);
        assert_eq!(mkd_s.stats().failures, 0);
    }

    #[test]
    fn unknown_principal_fails() {
        let (mut mkd_s, _, _, _) = daemon_pair();
        let err = mkd_s.master_key(&Principal::named("stranger")).unwrap_err();
        assert!(matches!(err, crate::error::FbsError::PrincipalUnknown(_)));
        assert_eq!(mkd_s.stats().failures, 1);
    }

    #[test]
    fn public_value_is_stable() {
        let (mkd_s, _, _, _) = daemon_pair();
        assert_eq!(mkd_s.public_value(), mkd_s.public_value());
    }

    /// A source that fails with `Transport` until `healthy_after` calls
    /// have been made, then serves a pinned value.
    struct FlakySource {
        inner: PinnedDirectory,
        calls: std::sync::atomic::AtomicU64,
        healthy_after: u64,
    }

    impl PublicValueSource for FlakySource {
        fn fetch(&self, principal: &Principal) -> Result<PublicValue> {
            let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if n < self.healthy_after {
                Err(FbsError::Transport("simulated outage".into()))
            } else {
                self.inner.fetch(principal)
            }
        }
    }

    fn resilient_daemon(
        healthy_after: u64,
        clock: Arc<crate::clock::ManualClock>,
    ) -> (MasterKeyDaemon, Principal) {
        let group = DhGroup::test_group();
        let s_priv = PrivateValue::from_entropy(group.clone(), b"source-entropy-bytes");
        let d_priv = PrivateValue::from_entropy(group, b"dest-entropy-bytes!!");
        let d = Principal::named("D");
        let mut dir = PinnedDirectory::new();
        dir.pin(d.clone(), d_priv.public_value());
        let source = FlakySource {
            inner: dir,
            calls: std::sync::atomic::AtomicU64::new(0),
            healthy_after,
        };
        let retry = RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 1_000,
            max_backoff_us: 10_000,
            deadline_us: 1_000_000,
            jitter_seed: 42,
        };
        let breaker = BreakerConfig {
            failure_threshold: 2,
            open_duration_us: 5_000_000,
        };
        let mkd = MasterKeyDaemon::new(s_priv, Box::new(source))
            .with_resilience(Resilience::new(retry, breaker, clock));
        (mkd, d)
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let clock = Arc::new(crate::clock::ManualClock::starting_at(100));
        let (mut mkd, d) = resilient_daemon(2, clock);
        // First two fetches fail, third succeeds — all within one upcall.
        assert!(mkd.master_key(&d).is_ok());
        let s = mkd.stats();
        assert_eq!(s.upcalls, 1);
        assert_eq!(s.failures, 0);
        assert_eq!(s.retries, 2);
        assert_eq!(s.retry_exhausted, 0);
        assert_eq!(mkd.breaker_state(&d), Some(BreakerState::Closed));
    }

    #[test]
    fn breaker_opens_after_exhausted_retries_and_recovers() {
        let clock = Arc::new(crate::clock::ManualClock::starting_at(100));
        // 7 failing fetches: upcall 1 burns 3 (exhausted), upcall 2
        // burns 3 more and trips the breaker (threshold 2); the 7th
        // failure would be the half-open probe's first fetch.
        let (mut mkd, d) = resilient_daemon(7, Arc::clone(&clock));
        assert!(mkd.master_key(&d).is_err());
        assert!(mkd.master_key(&d).is_err());
        let s = mkd.stats();
        assert_eq!(s.failures, 2);
        assert_eq!(s.retry_exhausted, 2);
        assert_eq!(s.breaker_opens, 1);
        assert!(matches!(
            mkd.breaker_state(&d),
            Some(BreakerState::Open { .. })
        ));
        assert!(mkd.would_fast_fail(&d));

        // While open: fast fail without touching the source.
        let err = mkd.master_key(&d).unwrap_err();
        assert!(matches!(err, FbsError::CircuitOpen(_)));
        assert_eq!(mkd.stats().breaker_fast_fails, 1);

        // After the open interval the next upcall is the probe; the
        // source has healed (6 fetches made < 7? no: 3+3=6, so probe's
        // first fetch is call 7 → fails, but its retry succeeds).
        clock.advance(10); // 10 s >> 5 s open duration
        assert!(!mkd.would_fast_fail(&d));
        assert!(mkd.master_key(&d).is_ok());
        let s = mkd.stats();
        assert_eq!(s.breaker_half_opens, 1);
        assert_eq!(s.breaker_closes, 1);
        assert_eq!(mkd.breaker_state(&d), Some(BreakerState::Closed));
    }

    #[test]
    fn resilience_events_mirror_legacy_stats() {
        let clock = Arc::new(crate::clock::ManualClock::starting_at(100));
        let (mut mkd, d) = resilient_daemon(u64::MAX, Arc::clone(&clock));
        let reg = Arc::new(fbs_obs::MetricsRegistry::new());
        mkd.set_obs(Arc::clone(&reg));
        for _ in 0..3 {
            let _ = mkd.master_key(&d);
        }
        clock.advance(10);
        let _ = mkd.master_key(&d); // half-open probe, fails, re-opens
        let s = mkd.stats();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("retry.attempts"), s.retries);
        assert_eq!(snap.counter("retry.exhausted"), s.retry_exhausted);
        assert_eq!(snap.counter("breaker.opened"), s.breaker_opens);
        assert_eq!(snap.counter("breaker.half_open"), s.breaker_half_opens);
        assert_eq!(snap.counter("breaker.closed"), s.breaker_closes);
        assert_eq!(snap.counter("breaker.fast_fails"), s.breaker_fast_fails);
        assert!(s.breaker_opens >= 2, "probe failure should re-open");
        assert!(s.breaker_fast_fails >= 1);
    }
}
