//! The master key daemon (MKD) — paper §5.3, Fig. 5.
//!
//! MKC misses are served by an "upcall" to the MKD, which obtains the
//! peer's public value (through the PVC / certificate machinery behind the
//! [`PublicValueSource`] trait) and computes the pair-based master key via
//! modular exponentiation — the expensive operation FBS amortises across
//! all of a principal pair's flows.
//!
//! In the paper the MKD is a user-space daemon reached from the kernel via
//! an OS upcall primitive; here the upcall is a method call, and the
//! user/kernel boundary survives as the trait boundary: everything behind
//! `PublicValueSource` is "user space" (certificate caches, directory
//! fetches with simulated RTT, verification), while the MKD's caller (the
//! protocol endpoint with its MKC) is "kernel".

use crate::error::Result;
use crate::principal::Principal;
use fbs_crypto::dh::{PrivateValue, PublicValue};

/// Supplies verified public values for principals.
///
/// Implementations encapsulate the PVC (public value cache), fetches to a
/// certificate authority or secure directory, and per-use certificate
/// verification (§5.3: certificates rather than bare values are cached so
/// the cache itself need not be secure). Fetch requests must bypass FBS
/// (the "secure flow bypass" of Fig. 5) to avoid the circularity of
/// securing the fetch that enables security.
pub trait PublicValueSource: Send + Sync {
    /// Fetch the verified public value for `principal`.
    fn fetch(&self, principal: &Principal) -> Result<PublicValue>;
}

/// A trivial in-memory source for tests and self-contained examples: all
/// public values are "pinned" at initialisation (§5.3 mentions pinning as
/// the alternative to directory fetches).
#[derive(Default)]
pub struct PinnedDirectory {
    entries: std::collections::HashMap<Principal, PublicValue>,
}

impl PinnedDirectory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin `principal`'s public value.
    pub fn pin(&mut self, principal: Principal, value: PublicValue) {
        self.entries.insert(principal, value);
    }
}

impl PublicValueSource for PinnedDirectory {
    fn fetch(&self, principal: &Principal) -> Result<PublicValue> {
        self.entries
            .get(principal)
            .cloned()
            .ok_or_else(|| crate::error::FbsError::PrincipalUnknown(principal.to_string()))
    }
}

/// MKD statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MkdStats {
    /// Upcalls received (one per MKC miss).
    pub upcalls: u64,
    /// Upcalls that failed (unknown principal, bad certificate, ...).
    pub failures: u64,
}

impl MkdStats {
    /// Fold these counters into a snapshot under the `mkd.*` names a live
    /// `fbs_obs::MetricsRegistry` uses.
    pub fn contribute(&self, snap: &mut fbs_obs::MetricsSnapshot) {
        snap.add("mkd.upcalls", self.upcalls);
        snap.add("mkd.failures", self.failures);
    }
}

/// The master key daemon.
pub struct MasterKeyDaemon {
    private: PrivateValue,
    source: Box<dyn PublicValueSource>,
    stats: MkdStats,
}

impl MasterKeyDaemon {
    /// Create an MKD for a principal holding `private`, resolving peers
    /// through `source`.
    pub fn new(private: PrivateValue, source: Box<dyn PublicValueSource>) -> Self {
        MasterKeyDaemon {
            private,
            source,
            stats: MkdStats::default(),
        }
    }

    /// The `Upcall(MKDaemon, D)` of Fig. 6: produce the pair-based master
    /// key `K_{S,D}` for the local principal and `peer`.
    pub fn master_key(&mut self, peer: &Principal) -> Result<Vec<u8>> {
        self.stats.upcalls += 1;
        let public = self.source.fetch(peer).inspect_err(|_| {
            self.stats.failures += 1;
        })?;
        Ok(self.private.master_key(&public))
    }

    /// This principal's own public value (for publishing/certification).
    pub fn public_value(&self) -> PublicValue {
        self.private.public_value()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MkdStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbs_crypto::dh::DhGroup;

    fn daemon_pair() -> (MasterKeyDaemon, MasterKeyDaemon, Principal, Principal) {
        let group = DhGroup::test_group();
        let s_priv = PrivateValue::from_entropy(group.clone(), b"source-entropy-bytes");
        let d_priv = PrivateValue::from_entropy(group, b"dest-entropy-bytes!!");
        let s = Principal::named("S");
        let d = Principal::named("D");
        let mut dir_s = PinnedDirectory::new();
        dir_s.pin(d.clone(), d_priv.public_value());
        let mut dir_d = PinnedDirectory::new();
        dir_d.pin(s.clone(), s_priv.public_value());
        (
            MasterKeyDaemon::new(s_priv, Box::new(dir_s)),
            MasterKeyDaemon::new(d_priv, Box::new(dir_d)),
            s,
            d,
        )
    }

    #[test]
    fn both_ends_compute_same_master_key() {
        let (mut mkd_s, mut mkd_d, s, d) = daemon_pair();
        let k_sd = mkd_s.master_key(&d).unwrap();
        let k_ds = mkd_d.master_key(&s).unwrap();
        assert_eq!(k_sd, k_ds);
        assert_eq!(mkd_s.stats().upcalls, 1);
        assert_eq!(mkd_s.stats().failures, 0);
    }

    #[test]
    fn unknown_principal_fails() {
        let (mut mkd_s, _, _, _) = daemon_pair();
        let err = mkd_s.master_key(&Principal::named("stranger")).unwrap_err();
        assert!(matches!(err, crate::error::FbsError::PrincipalUnknown(_)));
        assert_eq!(mkd_s.stats().failures, 1);
    }

    #[test]
    fn public_value_is_stable() {
        let (mkd_s, _, _, _) = daemon_pair();
        assert_eq!(mkd_s.public_value(), mkd_s.public_value());
    }
}
