//! Bounded single-producer/single-consumer rings for the worker runtime.
//!
//! `SpscRing` carries sub-batches from the ingress/partition stage to a
//! shard-owning worker (and replies back). It is written in safe Rust —
//! the library crates `forbid(unsafe_code)` — so each slot is a
//! `Mutex<Option<T>>` rather than an `UnsafeCell`. The protocol keeps
//! those locks uncontended:
//!
//! * the producer writes slot `tail % cap` only while `tail - head < cap`;
//! * the consumer reads slot `head % cap` only while `head < tail`;
//! * producer and consumer could only meet on the same slot if
//!   `tail - head ≡ 0 (mod cap)` — i.e. the ring is empty or full, and
//!   both cases are excluded before touching a slot.
//!
//! So every slot acquisition is a single uncontended CAS; the atomics on
//! `head`/`tail` are the real synchronisation (Release on publish,
//! Acquire on observe). Multi-producer or multi-consumer use is a
//! protocol violation but stays memory-safe: the worst outcome is a
//! blocked slot lock, never a torn value.
//!
//! # Producer-side contract
//!
//! `try_push` returning `Err(item)` means **backpressure**, nothing
//! else: the consumer has not drained slot `tail % cap` yet. The ring
//! never sheds, blocks, or reorders — those policies belong to the
//! caller, and the caller must bound them:
//!
//! * **Never spin unbounded.** A consumer that has stalled or died will
//!   never free a slot, so a bare `loop { try_push }` wedges the
//!   producer forever. Spin (or park) against a deadline, then *shed*:
//!   hand the item a terminal verdict and account for it (the fbs-ip
//!   runtime counts these as `hooks.shed.*` and rejects the datagrams
//!   rather than dropping them silently).
//! * Re-offering the same item after `Err` is fine — FIFO order is
//!   defined by successful pushes, and a failed push publishes nothing.
//! * `Err` hands the item back by value; nothing is cloned or leaked on
//!   the backpressure path.
//!
//! Capacity 1 (and capacity 0, which rounds up to 1) is a valid
//! degenerate ring: it alternates strictly between one push and one
//! pop, so every push after the first wraps the single slot — the
//! concurrency tests below exercise exactly that boundary.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Bounded SPSC ring of `T` with power-of-two-free capacity (any
/// capacity ≥ 1 works; indices are reduced modulo the slot count).
#[derive(Debug)]
pub struct SpscRing<T> {
    slots: Box<[Mutex<Option<T>>]>,
    /// Next position the consumer will pop (monotonic).
    head: AtomicUsize,
    /// Next position the producer will push (monotonic).
    tail: AtomicUsize,
}

impl<T> SpscRing<T> {
    /// Create a ring holding at most `capacity` in-flight items.
    ///
    /// A zero capacity is rounded up to 1 so `try_push` can always make
    /// progress once the consumer drains.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1);
        let slots = (0..cap).map(|_| Mutex::new(None)).collect();
        Self {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Number of items currently in flight.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True when no items are in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of in-flight items.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Producer side: enqueue `item`, or hand it back when the ring is
    /// full (backpressure — the caller decides whether to spin or park).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots.len() {
            return Err(item);
        }
        let slot = &self.slots[tail % self.slots.len()];
        *slot.lock().expect("spsc slot poisoned") = Some(item);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: dequeue the oldest item, or `None` when empty.
    pub fn try_pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &self.slots[head % self.slots.len()];
        let item = slot
            .lock()
            .expect("spsc slot poisoned")
            .take()
            .expect("spsc slot published empty");
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let ring = SpscRing::with_capacity(4);
        for i in 0..4 {
            assert!(ring.try_push(i).is_ok());
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.try_push(99), Err(99));
        for i in 0..4 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert!(ring.try_pop().is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn wraps_across_the_slot_boundary() {
        let ring = SpscRing::with_capacity(2);
        for round in 0..10 {
            assert!(ring.try_push(round * 2).is_ok());
            assert!(ring.try_push(round * 2 + 1).is_ok());
            assert_eq!(ring.try_pop(), Some(round * 2));
            assert_eq!(ring.try_pop(), Some(round * 2 + 1));
        }
    }

    #[test]
    fn zero_capacity_rounds_up_to_one() {
        let ring = SpscRing::with_capacity(0);
        assert_eq!(ring.capacity(), 1);
        assert!(ring.try_push(7).is_ok());
        assert_eq!(ring.try_push(8), Err(8));
        assert_eq!(ring.try_pop(), Some(7));
    }

    /// Drive `n` items through a ring from a real producer thread while
    /// the test thread consumes, and assert exact FIFO delivery. With
    /// tiny capacities every slot index wraps thousands of times, so
    /// this hammers the head/tail wraparound and the empty/full
    /// boundary where producer and consumer touch adjacent slots.
    fn concurrent_wraparound(capacity: usize, n: u64) {
        let ring = Arc::new(SpscRing::with_capacity(capacity));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut rejected = 0u64;
                for i in 0..n {
                    let mut item = i;
                    loop {
                        match ring.try_push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                // Backpressure: bounded here only by the
                                // test's liveness (the consumer is known
                                // to drain); real callers must deadline.
                                item = back;
                                rejected += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
                rejected
            })
        };
        let mut seen = Vec::with_capacity(n as usize);
        while seen.len() < n as usize {
            match ring.try_pop() {
                Some(v) => seen.push(v),
                None => std::thread::yield_now(),
            }
        }
        let rejected = producer.join().unwrap();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
        assert!(ring.is_empty());
        // A capacity-1 ring under a faster producer must have exercised
        // the backpressure path; zero rejections would mean the test
        // never hit the boundary it exists to cover. (Not asserted —
        // scheduling-dependent — but kept observable.)
        let _ = rejected;
    }

    #[test]
    fn capacity_one_concurrent_wraparound_is_fifo() {
        concurrent_wraparound(1, 20_000);
    }

    #[test]
    fn zero_capacity_ring_survives_concurrent_wraparound() {
        // with_capacity(0) rounds up to a single slot; the concurrent
        // behaviour must be identical to an explicit capacity of 1.
        concurrent_wraparound(0, 20_000);
    }

    #[test]
    fn cross_thread_handoff_preserves_order() {
        let ring = Arc::new(SpscRing::with_capacity(8));
        let n = 10_000u64;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..n {
                    let mut item = i;
                    loop {
                        match ring.try_push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            })
        };
        let mut seen = Vec::with_capacity(n as usize);
        while seen.len() < n as usize {
            match ring.try_pop() {
                Some(v) => seen.push(v),
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }
}
