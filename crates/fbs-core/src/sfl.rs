//! Security flow label allocation (§5.3, "Generating the Security Flow
//! Label").
//!
//! The essential requirement is that the same *sfl* never be assigned to
//! two different flows: a large (≥64-bit) counter with a randomised initial
//! value suffices. Randomising the start prevents attackers exploiting sfl
//! reuse "by continuously resetting the protocol subsystem". The sfl need
//! not be random — it feeds a one-way pseudorandom hash.

/// Allocates unique 64-bit security flow labels.
#[derive(Debug, Clone)]
pub struct SflAllocator {
    next: u64,
    issued: u64,
}

impl SflAllocator {
    /// Create with a randomised initial counter value (caller supplies the
    /// randomness, e.g. from OS entropy at subsystem initialisation).
    pub fn new(initial: u64) -> Self {
        SflAllocator {
            next: initial,
            issued: 0,
        }
    }

    /// Allocate the next sfl.
    ///
    /// The pair-based master key is assumed to change before the counter
    /// wraps (§5.3); with 64 bits and a new flow every microsecond that is
    /// over half a million years, so wrapping simply continues the count.
    pub fn next_sfl(&mut self) -> u64 {
        let sfl = self.next;
        self.next = self.next.wrapping_add(1);
        self.issued += 1;
        sfl
    }

    /// Number of labels issued since initialisation.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_unique() {
        let mut a = SflAllocator::new(100);
        let labels: Vec<u64> = (0..5).map(|_| a.next_sfl()).collect();
        assert_eq!(labels, vec![100, 101, 102, 103, 104]);
        assert_eq!(a.issued(), 5);
    }

    #[test]
    fn wraparound_continues() {
        let mut a = SflAllocator::new(u64::MAX);
        assert_eq!(a.next_sfl(), u64::MAX);
        assert_eq!(a.next_sfl(), 0);
        assert_eq!(a.issued(), 2);
    }

    #[test]
    fn distinct_initials_distinct_streams() {
        let mut a = SflAllocator::new(7);
        let mut b = SflAllocator::new(8);
        assert_ne!(a.next_sfl(), b.next_sfl());
    }
}
