//! Security flow label allocation (§5.3, "Generating the Security Flow
//! Label").
//!
//! The essential requirement is that the same *sfl* never be assigned to
//! two different flows: a large (≥64-bit) counter with a randomised initial
//! value suffices. Randomising the start prevents attackers exploiting sfl
//! reuse "by continuously resetting the protocol subsystem". The sfl need
//! not be random — it feeds a one-way pseudorandom hash.

/// Allocates unique 64-bit security flow labels.
#[derive(Debug, Clone)]
pub struct SflAllocator {
    next: u64,
    stride: u64,
    issued: u64,
}

impl SflAllocator {
    /// Create with a randomised initial counter value (caller supplies the
    /// randomness, e.g. from OS entropy at subsystem initialisation).
    pub fn new(initial: u64) -> Self {
        Self::with_stride(initial, 1)
    }

    /// Create an allocator that steps by `stride` instead of 1. A sharded
    /// endpoint gives shard *i* of *N* the allocator
    /// `with_stride(base * N + i, N)`: every sfl it issues is ≡ *i*
    /// (mod *N*), so `sfl % N` recovers the owning shard and the per-shard
    /// streams are disjoint (uniqueness is preserved across shards).
    ///
    /// # Panics
    /// Panics if `stride` is zero (the allocator would reissue one label).
    pub fn with_stride(initial: u64, stride: u64) -> Self {
        assert!(stride > 0, "sfl stride must be nonzero");
        SflAllocator {
            next: initial,
            stride,
            issued: 0,
        }
    }

    /// Allocate the next sfl.
    ///
    /// The pair-based master key is assumed to change before the counter
    /// wraps (§5.3); with 64 bits and a new flow every microsecond that is
    /// over half a million years, so wrapping simply continues the count.
    pub fn next_sfl(&mut self) -> u64 {
        let sfl = self.next;
        self.next = self.next.wrapping_add(self.stride);
        self.issued += 1;
        sfl
    }

    /// Number of labels issued since initialisation.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_unique() {
        let mut a = SflAllocator::new(100);
        let labels: Vec<u64> = (0..5).map(|_| a.next_sfl()).collect();
        assert_eq!(labels, vec![100, 101, 102, 103, 104]);
        assert_eq!(a.issued(), 5);
    }

    #[test]
    fn wraparound_continues() {
        let mut a = SflAllocator::new(u64::MAX);
        assert_eq!(a.next_sfl(), u64::MAX);
        assert_eq!(a.next_sfl(), 0);
        assert_eq!(a.issued(), 2);
    }

    #[test]
    fn distinct_initials_distinct_streams() {
        let mut a = SflAllocator::new(7);
        let mut b = SflAllocator::new(8);
        assert_ne!(a.next_sfl(), b.next_sfl());
    }

    #[test]
    fn strided_streams_are_disjoint_and_congruent() {
        // 4 shards: shard i issues sfls ≡ i (mod 4), streams never meet.
        let n = 4u64;
        let base = 0x1234_5678_9ABC_DEF0u64;
        let mut all = std::collections::HashSet::new();
        for i in 0..n {
            let mut a = SflAllocator::with_stride(base.wrapping_mul(n).wrapping_add(i), n);
            for _ in 0..100 {
                let sfl = a.next_sfl();
                assert_eq!(sfl % n, i, "shard congruence");
                assert!(all.insert(sfl), "cross-shard uniqueness");
            }
            assert_eq!(a.issued(), 100);
        }
    }

    #[test]
    fn strided_wraparound_continues() {
        let mut a = SflAllocator::with_stride(u64::MAX - 1, 4);
        assert_eq!(a.next_sfl(), u64::MAX - 1);
        assert_eq!(a.next_sfl(), 2); // wraps past u64::MAX
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_stride_panics() {
        let _ = SflAllocator::with_stride(0, 0);
    }
}
