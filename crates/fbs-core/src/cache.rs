//! Soft-state key caches (§5.3, "Key Caching").
//!
//! All FBS caches — public value cache (PVC), master key cache (MKC),
//! transmission flow key cache (TFKC), receive flow key cache (RFKC) — hold
//! only *soft state*: every entry can be discarded and recomputed, so cache
//! policy affects performance, never correctness.
//!
//! The paper analyses misses with the classic 3C model: **cold** misses
//! initialise entries, **capacity** misses mean the working set exceeds the
//! cache, and **collision** misses are artifacts of limited associativity
//! or a poor index hash. Because the caches must be software with O(1)
//! access, associativity is kept low and the *hash function* carries the
//! burden of decorrelating inputs (local addresses, sequential sfls) —
//! hence CRC-32 (§5.3). This module implements that set-associative design
//! with a pluggable index hash, LRU replacement within each set, and
//! optional 3C miss classification via a shadow fully-associative LRU,
//! which is what the Fig. 11 experiments sweep.
//!
//! # Storage layout (million-flow residency)
//!
//! Entries live in flat open-addressed slot arrays rather than
//! `Vec`-of-`Vec` sets: a control-byte array (one byte per slot holding
//! either EMPTY or a 7-bit fingerprint of the index hash, swiss-table
//! style) plus struct-of-arrays entry storage (keys, values and LRU
//! ticks in separate parallel arrays). A lookup scans the control bytes
//! of its set's slot window first and only compares keys on a
//! fingerprint match, so a miss at high occupancy touches one cache line
//! of control bytes, not `assoc` full entries. The set index is still
//! `hash(k) % num_sets` — exactly the paper's "randomise, then take the
//! modulo" structure — and replacement is still LRU within the set's
//! window, so the 3C behaviour under study is unchanged.
//!
//! Large caches (more than [`GROW_START_SETS`] sets) start small and
//! **resize incrementally**: the table doubles toward the configured
//! geometry as occupancy grows, and each doubling keeps the previous
//! array alive while a migration cursor rehomes at most
//! [`MIGRATE_SETS`] sets per lookup/insert. No single datagram ever
//! pays a full-table rehash or a full-table zeroing stall (new arrays
//! are initialised lazily behind a watermark). Small caches — every
//! geometry the figure experiments sweep — allocate at full size up
//! front and never migrate, so their behaviour is bit-identical to the
//! direct implementation.
//!
//! A cache can also be attached to a [`MemoryBudget`]: each resident
//! entry charges a fixed byte cost under the cache's [`BudgetKind`],
//! and an insert that would cross the budget's ceiling evicts this
//! cache's own LRU entries *before* allocating (budget-driven eviction;
//! soft state makes that always safe).

use crate::mem::{BudgetKind, MemoryBudget};
use fbs_obs::{CacheKind, CacheOutcome, Event, MetricsRegistry};
use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Control byte for a vacant slot. Occupied slots hold the low 7 bits of
/// `hash >> 25` (always `<= 0x7F`, so never equal to this).
const CTRL_EMPTY: u8 = 0xFF;

/// Caches configured with at most this many sets allocate at full size
/// and never resize; larger caches start at (about) this many sets and
/// double incrementally as they fill.
pub const GROW_START_SETS: usize = 512;

/// Upper bound on sets rehomed from the old table per cache operation
/// while a resize is in flight (so per-datagram migration work is at
/// most `MIGRATE_SETS * assoc` entry moves).
pub const MIGRATE_SETS: usize = 4;

/// Buckets in the probe-length histogram: bucket `i` counts lookups
/// that examined `i` slots (`0` is unused; the last bucket absorbs
/// longer probes).
pub const PROBE_HIST_BUCKETS: usize = 32;

/// Default cap on the 3C classifier's key history (distinct keys ever
/// seen). Far above every figure-experiment working set; hit only at
/// scale, where classification turns itself off rather than growing
/// without bound.
pub const DEFAULT_CLASSIFIER_KEY_CAP: usize = 1 << 20;

fn fingerprint(h: u32) -> u8 {
    (h >> 25) as u8
}

/// Which kind of miss occurred, per the 3C model of §5.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissKind {
    /// First-ever reference to this key: unavoidable.
    Cold,
    /// The key was referenced before but would have been evicted even by a
    /// fully-associative cache of the same total capacity.
    Capacity,
    /// The key would have survived in a fully-associative cache: it was
    /// evicted only because of set conflicts (limited associativity or a
    /// hash that clusters keys).
    Collision,
}

/// Result of a classified lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// The entry was present.
    Hit,
    /// The entry was absent, for the stated reason (reason is `Cold` when
    /// classification is disabled and the key is new, `Capacity` otherwise).
    Miss(MissKind),
}

/// Running hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the entry.
    pub hits: u64,
    /// Cold (compulsory) misses.
    pub cold_misses: u64,
    /// Capacity misses.
    pub capacity_misses: u64,
    /// Collision (conflict) misses.
    pub collision_misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Times 3C classification shut itself off because the key history
    /// hit its cap (0 or 1 per cache; aggregated across caches when
    /// stats are shared). While off, non-cold misses count as capacity.
    pub classifier_disabled: u64,
}

impl CacheStats {
    /// Total misses of all kinds.
    pub fn misses(&self) -> u64 {
        self.cold_misses + self.capacity_misses + self.collision_misses
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses()
    }

    /// Miss fraction in `[0, 1]`; 0 when no lookups have happened.
    pub fn miss_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.misses() as f64 / total as f64
        }
    }

    /// Synonym for [`CacheStats::lookups`]: hits plus all miss kinds.
    pub fn total_lookups(&self) -> u64 {
        self.lookups()
    }

    /// Synonym for [`CacheStats::miss_rate`], matching the "miss ratio"
    /// terminology of the Fig. 11 analysis.
    pub fn miss_ratio(&self) -> f64 {
        self.miss_rate()
    }

    /// Fold these counters into a snapshot under `cache.<kind>.*` names —
    /// the same namespace a live [`MetricsRegistry`] uses, so snapshots
    /// built either way are comparable.
    pub fn contribute(&self, kind: CacheKind, snap: &mut fbs_obs::MetricsSnapshot) {
        let k = kind.name();
        snap.add(&format!("cache.{k}.hits"), self.hits);
        snap.add(&format!("cache.{k}.cold_misses"), self.cold_misses);
        snap.add(&format!("cache.{k}.capacity_misses"), self.capacity_misses);
        snap.add(
            &format!("cache.{k}.collision_misses"),
            self.collision_misses,
        );
        snap.add(&format!("cache.{k}.insertions"), self.insertions);
        snap.add(&format!("cache.{k}.evictions"), self.evictions);
        snap.add(
            &format!("cache.{k}.classifier_disabled"),
            self.classifier_disabled,
        );
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lookups, {} hits ({:.2}% miss): {} cold / {} capacity / {} collision; {} insertions, {} evictions",
            self.total_lookups(),
            self.hits,
            self.miss_ratio() * 100.0,
            self.cold_misses,
            self.capacity_misses,
            self.collision_misses,
            self.insertions,
            self.evictions,
        )
    }
}

/// Lock-free cache counters: the live backing store behind
/// [`SoftCache::stats`]. Each cache owns one by default; several caches
/// (e.g. the per-shard TFKC slices of a sharded endpoint) can be pointed
/// at a *shared* handle via [`SoftCache::share_stats`], so a metrics
/// scrape reads one coherent aggregate without taking any shard lock.
///
/// All updates use relaxed ordering: the counters are monotone event
/// counts with no happens-before obligations, and `lookups()` is always
/// derived as `hits + misses` from the same snapshot, so the coherence
/// invariant `hits + misses == lookups` holds for every snapshot.
#[derive(Debug, Default)]
pub struct AtomicCacheStats {
    hits: AtomicU64,
    cold_misses: AtomicU64,
    capacity_misses: AtomicU64,
    collision_misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    classifier_disabled: AtomicU64,
}

impl AtomicCacheStats {
    /// A fresh zeroed handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the counters into a plain [`CacheStats`] value.
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            cold_misses: self.cold_misses.load(Ordering::Relaxed),
            capacity_misses: self.capacity_misses.load(Ordering::Relaxed),
            collision_misses: self.collision_misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            classifier_disabled: self.classifier_disabled.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.cold_misses.store(0, Ordering::Relaxed);
        self.capacity_misses.store(0, Ordering::Relaxed);
        self.collision_misses.store(0, Ordering::Relaxed);
        self.insertions.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.classifier_disabled.store(0, Ordering::Relaxed);
    }
}

/// One flat slot array: control bytes plus SoA entry storage. Slots
/// past the `ctrl.len()` watermark are implicitly EMPTY — arrays are
/// reserved to `sets * assoc` up front but initialised lazily, so
/// standing up a doubled table during a resize never writes the whole
/// allocation in one stall.
struct Table<K, V> {
    sets: usize,
    assoc: usize,
    ctrl: Vec<u8>,
    keys: Vec<Option<K>>,
    vals: Vec<Option<V>>,
    used: Vec<u64>,
}

impl<K, V> Table<K, V> {
    fn new(sets: usize, assoc: usize) -> Self {
        let cap = sets * assoc;
        Table {
            sets,
            assoc,
            ctrl: Vec::with_capacity(cap),
            keys: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
            used: Vec::with_capacity(cap),
        }
    }

    /// Extend the initialised watermark to cover slots `..end`.
    fn ensure_slots(&mut self, end: usize) {
        while self.ctrl.len() < end {
            self.ctrl.push(CTRL_EMPTY);
            self.keys.push(None);
            self.vals.push(None);
            self.used.push(0);
        }
    }

    fn ctrl_at(&self, slot: usize) -> u8 {
        self.ctrl.get(slot).copied().unwrap_or(CTRL_EMPTY)
    }

    /// Heap bytes held by this table's arrays (reserved capacity, which
    /// is what the allocator actually committed).
    fn heap_bytes(&self) -> u64 {
        (self.ctrl.capacity() * std::mem::size_of::<u8>()
            + self.keys.capacity() * std::mem::size_of::<Option<K>>()
            + self.vals.capacity() * std::mem::size_of::<Option<V>>()
            + self.used.capacity() * std::mem::size_of::<u64>()) as u64
    }
}

impl<K: Eq, V> Table<K, V> {
    /// Scan `set`'s slot window for `key`. Returns `(hit_slot,
    /// slots_probed, first_empty_slot)`. The whole window is scanned on
    /// a miss (removal leaves holes, so an empty slot does not
    /// terminate the probe), but only fingerprint-matching slots pay a
    /// key comparison.
    fn probe(&self, set: usize, fp: u8, key: &K) -> (Option<usize>, usize, Option<usize>) {
        let base = set * self.assoc;
        let mut first_empty = None;
        for i in 0..self.assoc {
            let slot = base + i;
            let c = self.ctrl_at(slot);
            if c == CTRL_EMPTY {
                if first_empty.is_none() {
                    first_empty = Some(slot);
                }
            } else if c == fp && self.keys[slot].as_ref() == Some(key) {
                return (Some(slot), i + 1, first_empty);
            }
        }
        (None, self.assoc, first_empty)
    }

    /// Least-recently-used occupied slot in `set`'s window, if any.
    fn window_lru(&self, set: usize) -> Option<usize> {
        let base = set * self.assoc;
        (base..base + self.assoc)
            .filter(|&s| self.ctrl_at(s) != CTRL_EMPTY)
            .min_by_key(|&s| self.used[s])
    }

    /// Vacate `slot`, returning its entry. Caller keeps the books.
    fn remove(&mut self, slot: usize) -> (K, V) {
        self.ctrl[slot] = CTRL_EMPTY;
        let k = self.keys[slot].take().expect("occupied slot has a key");
        let v = self.vals[slot].take().expect("occupied slot has a value");
        (k, v)
    }

    /// Fill `slot` (must be initialised and empty or being overwritten).
    fn place(&mut self, slot: usize, fp: u8, key: K, value: V, tick: u64) {
        self.ctrl[slot] = fp;
        self.keys[slot] = Some(key);
        self.vals[slot] = Some(value);
        self.used[slot] = tick;
    }
}

/// Shadow fully-associative LRU used only for 3C classification.
struct ShadowLru<K> {
    capacity: usize,
    /// Most-recent at the back. Linear scan is fine: capacities here are
    /// the cache sizes under study (tens to a few thousand entries).
    order: Vec<K>,
}

impl<K: Eq + Clone> ShadowLru<K> {
    fn touch(&mut self, key: &K) -> bool {
        let present = if let Some(pos) = self.order.iter().position(|k| k == key) {
            self.order.remove(pos);
            true
        } else {
            false
        };
        self.order.push(key.clone());
        if self.order.len() > self.capacity {
            self.order.remove(0);
        }
        present
    }
}

/// Key history + shadow LRU backing 3C classification, with a cap on
/// history memory (the `seen` set is the only structure here that would
/// otherwise grow with every distinct key forever).
struct Classifier<K> {
    seen: HashSet<K>,
    shadow: ShadowLru<K>,
    key_cap: usize,
}

/// A set-associative soft-state cache with pluggable index hash and LRU
/// replacement.
///
/// ```
/// use fbs_core::SoftCache;
/// // 8 sets × 2 ways, indexed by CRC-32 (the §5.3 recommendation).
/// let mut tfkc: SoftCache<u64, &str> =
///     SoftCache::new(8, 2, |sfl: &u64| fbs_crypto::crc32(&sfl.to_be_bytes()));
/// tfkc.insert(42, "flow-key-bytes");
/// assert_eq!(tfkc.get(&42), Some("flow-key-bytes"));
/// assert_eq!(tfkc.get(&43), None); // miss: recompute and insert
/// assert_eq!(tfkc.stats().hits, 1);
/// ```
pub struct SoftCache<K, V> {
    /// The live table; inserts always land here.
    table: Table<K, V>,
    /// Previous table while a resize is migrating, plus the index of the
    /// next old set to rehome. Old sets below the cursor are empty.
    old: Option<Table<K, V>>,
    migrate_cursor: usize,
    /// Configured geometry (the table grows toward `num_sets`).
    num_sets: usize,
    assoc: usize,
    hash: Box<dyn Fn(&K) -> u32 + Send + Sync>,
    tick: u64,
    /// Resident entries across both tables.
    live: usize,
    /// Entries rehomed by the incremental migrator (includes
    /// migrate-on-access moves).
    migrated: u64,
    /// Fallback eviction scan position for budget evictions when the
    /// target window has nothing to give.
    evict_cursor: usize,
    /// Probe-length histogram: bucket `i` counts lookups that examined
    /// `i` slots.
    probe_hist: [u64; PROBE_HIST_BUCKETS],
    /// Reused scratch for migration steps (no per-datagram allocation).
    scratch: Vec<(K, V, u64)>,
    /// Counters live behind an `Arc` so a metrics scraper can snapshot
    /// them without borrowing (or locking) the cache itself; see
    /// [`SoftCache::share_stats`].
    stats: Arc<AtomicCacheStats>,
    /// Key history for cold-miss detection + shadow LRU for capacity vs
    /// collision discrimination. `None` disables classification (all
    /// non-cold misses count as capacity) and avoids its overhead.
    classifier: Option<Classifier<K>>,
    /// Optional metrics registry plus the cache's identity in the event
    /// stream. `None` (the default) keeps lookups observation-free.
    obs: Option<(Arc<MetricsRegistry>, CacheKind)>,
    /// Optional memory budget: `(ledger, kind, bytes charged per
    /// resident entry)`.
    budget: Option<(MemoryBudget, BudgetKind, u64)>,
}

impl<K: Eq + Hash + Clone, V: Clone> SoftCache<K, V> {
    /// Create a cache of `num_sets * assoc` total entries. `hash` maps a
    /// key to a 32-bit value; the set index is `hash(k) % num_sets`
    /// (exactly the paper's "randomise, then take the modulo" structure).
    ///
    /// Geometries above [`GROW_START_SETS`] sets start small and grow
    /// incrementally (see the module docs); smaller ones are allocated
    /// at full size immediately.
    ///
    /// # Panics
    /// Panics if `num_sets` or `assoc` is zero.
    pub fn new(
        num_sets: usize,
        assoc: usize,
        hash: impl Fn(&K) -> u32 + Send + Sync + 'static,
    ) -> Self {
        assert!(
            num_sets > 0 && assoc > 0,
            "cache dimensions must be nonzero"
        );
        let mut start = num_sets;
        while start > GROW_START_SETS {
            start = start.div_ceil(2);
        }
        SoftCache {
            table: Table::new(start, assoc),
            old: None,
            migrate_cursor: 0,
            num_sets,
            assoc,
            hash: Box::new(hash),
            tick: 0,
            live: 0,
            migrated: 0,
            evict_cursor: 0,
            probe_hist: [0; PROBE_HIST_BUCKETS],
            scratch: Vec::new(),
            stats: Arc::new(AtomicCacheStats::new()),
            classifier: None,
            obs: None,
            budget: None,
        }
    }

    /// Attach a metrics registry: lookups emit
    /// [`Event::CacheLookup`] and insertions feed the registry's
    /// per-cache insertion/eviction counters, all under `kind`'s name.
    /// Resident entries also keep the registry's
    /// `cache.<kind>.resident_bytes` gauge current when a budget is
    /// attached.
    pub fn set_obs(&mut self, registry: Arc<MetricsRegistry>, kind: CacheKind) {
        self.obs = Some((registry, kind));
    }

    /// Attach a [`MemoryBudget`]: every resident entry charges
    /// `entry_bytes` under `kind`, and inserts that would cross the
    /// budget's ceiling evict this cache's LRU entries first.
    pub fn set_budget(&mut self, budget: MemoryBudget, kind: BudgetKind, entry_bytes: u64) {
        // Entries already resident are charged retroactively so the
        // ledger is coherent no matter when the budget was attached.
        budget.charge(kind, self.live as u64 * entry_bytes);
        if let Some((reg, ck)) = &self.obs {
            reg.cache_resident_add(*ck, self.live as u64 * entry_bytes);
        }
        self.budget = Some((budget, kind, entry_bytes));
    }

    /// The attached budget, if any.
    pub fn budget(&self) -> Option<&MemoryBudget> {
        self.budget.as_ref().map(|(b, _, _)| b)
    }

    /// Bytes charged to the budget for resident entries (0 when no
    /// budget is attached).
    pub fn resident_bytes(&self) -> u64 {
        self.budget
            .as_ref()
            .map(|(_, _, eb)| self.live as u64 * eb)
            .unwrap_or(0)
    }

    /// Heap bytes held by the slot arrays themselves (both tables while
    /// a resize is in flight). Entry *values* that own further heap
    /// (e.g. `Arc` payloads) are accounted by the budget's
    /// `entry_bytes`, not here.
    pub fn table_bytes(&self) -> u64 {
        self.table.heap_bytes() + self.old.as_ref().map(|t| t.heap_bytes()).unwrap_or(0)
    }

    /// Enable 3C miss classification (used by the Fig. 11 experiments).
    /// Costs a shadow LRU of the same total capacity plus a key-history
    /// set capped at [`DEFAULT_CLASSIFIER_KEY_CAP`] distinct keys; past
    /// the cap, classification turns itself off (see
    /// [`CacheStats::classifier_disabled`]).
    pub fn with_classification(self) -> Self {
        self.with_classification_capped(DEFAULT_CLASSIFIER_KEY_CAP)
    }

    /// Enable 3C miss classification with an explicit cap on the key
    /// history. When the number of distinct keys ever seen reaches
    /// `key_cap`, the classifier is dropped (history memory freed),
    /// `classifier_disabled` is counted, and later non-cold misses are
    /// reported as capacity misses.
    pub fn with_classification_capped(mut self, key_cap: usize) -> Self {
        let cap = self.capacity();
        self.classifier = Some(Classifier {
            seen: HashSet::new(),
            shadow: ShadowLru {
                capacity: cap,
                order: Vec::with_capacity(cap.min(DEFAULT_CLASSIFIER_KEY_CAP)),
            },
            key_cap,
        });
        self
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.num_sets * self.assoc
    }

    /// Number of sets (the configured geometry; see
    /// [`live_sets`](Self::live_sets) for the currently allocated table).
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Sets in the live table right now (grows toward
    /// [`num_sets`](Self::num_sets)).
    pub fn live_sets(&self) -> usize {
        self.table.sets
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// True while an incremental resize is still migrating entries.
    pub fn resizing(&self) -> bool {
        self.old.is_some()
    }

    /// Entries rehomed by the incremental migrator so far.
    pub fn migrated_entries(&self) -> u64 {
        self.migrated
    }

    /// Probe-length histogram: bucket `i` counts lookups that examined
    /// `i` slots (the last bucket absorbs longer probes).
    pub fn probe_histogram(&self) -> [u64; PROBE_HIST_BUCKETS] {
        self.probe_hist
    }

    /// Accumulated statistics (a snapshot of the live atomic counters).
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// The live counter handle. Cloning the `Arc` lets a reader snapshot
    /// the counters later without touching the cache (lock-free scrapes).
    pub fn stats_handle(&self) -> Arc<AtomicCacheStats> {
        Arc::clone(&self.stats)
    }

    /// Point this cache's bookkeeping at `shared`, aggregating its counts
    /// with every other cache sharing the same handle. Counts already
    /// accumulated locally are folded into `shared` so nothing is lost.
    pub fn share_stats(&mut self, shared: Arc<AtomicCacheStats>) {
        let prior = self.stats.snapshot();
        shared.hits.fetch_add(prior.hits, Ordering::Relaxed);
        shared
            .cold_misses
            .fetch_add(prior.cold_misses, Ordering::Relaxed);
        shared
            .capacity_misses
            .fetch_add(prior.capacity_misses, Ordering::Relaxed);
        shared
            .collision_misses
            .fetch_add(prior.collision_misses, Ordering::Relaxed);
        shared
            .insertions
            .fetch_add(prior.insertions, Ordering::Relaxed);
        shared
            .evictions
            .fetch_add(prior.evictions, Ordering::Relaxed);
        shared
            .classifier_disabled
            .fetch_add(prior.classifier_disabled, Ordering::Relaxed);
        self.stats = shared;
    }

    /// Reset statistics (entries are kept). Note this zeroes the shared
    /// handle when one was installed via [`share_stats`](Self::share_stats).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn record_probe(&mut self, probed: usize) {
        self.probe_hist[probed.min(PROBE_HIST_BUCKETS - 1)] += 1;
    }

    /// Drop the classifier if tracking `key` would push the history past
    /// its cap; returns whether classification is (still) active.
    fn classifier_guard(&mut self, key: &K) -> bool {
        let disable = match &self.classifier {
            Some(c) => c.seen.len() >= c.key_cap && !c.seen.contains(key),
            None => false,
        };
        if disable {
            self.classifier = None;
            self.stats
                .classifier_disabled
                .fetch_add(1, Ordering::Relaxed);
        }
        self.classifier.is_some()
    }

    /// Classify a miss, update classifier state and statistics.
    fn classify_miss(&mut self, key: &K) -> MissKind {
        let kind = if !self.classifier_guard(key) {
            MissKind::Capacity
        } else {
            let c = self.classifier.as_mut().expect("guard says active");
            let was_seen = c.seen.contains(key);
            // touch() both queries and refreshes the shadow LRU.
            let in_shadow = c.shadow.touch(key);
            c.seen.insert(key.clone());
            if !was_seen {
                MissKind::Cold
            } else if in_shadow {
                // Would have hit fully-associative ⇒ conflict artifact.
                MissKind::Collision
            } else {
                MissKind::Capacity
            }
        };
        let field = match kind {
            MissKind::Cold => &self.stats.cold_misses,
            MissKind::Capacity => &self.stats.capacity_misses,
            MissKind::Collision => &self.stats.collision_misses,
        };
        field.fetch_add(1, Ordering::Relaxed);
        kind
    }

    fn classifier_note_hit(&mut self, key: &K) {
        if self.classifier_guard(key) {
            let c = self.classifier.as_mut().expect("guard says active");
            c.seen.insert(key.clone());
            c.shadow.touch(key);
        }
    }

    /// Book an eviction out of the live table's `slot`: stats, budget
    /// release, resident-bytes gauge.
    fn evict_live_slot(&mut self, slot: usize) -> (K, V) {
        let (k, v) = self.table.remove(slot);
        self.live -= 1;
        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        if let Some((budget, bk, eb)) = &self.budget {
            budget.release(*bk, *eb);
        }
        if let Some((reg, ck)) = &self.obs {
            reg.cache_eviction(*ck);
            if let Some((_, _, eb)) = &self.budget {
                reg.cache_resident_sub(*ck, *eb);
            }
        }
        (k, v)
    }

    /// Book a brand-new resident entry (budget charge + gauge).
    fn note_resident_added(&mut self) {
        self.live += 1;
        if let Some((budget, bk, eb)) = &self.budget {
            budget.charge(*bk, *eb);
            if let Some((reg, ck)) = &self.obs {
                reg.cache_resident_add(*ck, *eb);
            }
        }
    }

    /// Book a removal that is not an eviction (invalidate/clear).
    fn note_resident_removed(&mut self, n: usize) {
        self.live -= n;
        if let Some((budget, bk, eb)) = &self.budget {
            budget.release(*bk, *eb * n as u64);
            if let Some((reg, ck)) = &self.obs {
                reg.cache_resident_sub(*ck, *eb * n as u64);
            }
        }
    }

    /// Rehome up to [`MIGRATE_SETS`] sets from the old table. Bounded
    /// work; called from every lookup/insert while a resize is in
    /// flight, so the migration cost is amortised across datagrams.
    fn step_migration(&mut self) {
        for _ in 0..MIGRATE_SETS {
            let Some(old) = &mut self.old else { return };
            if self.migrate_cursor >= old.sets {
                self.old = None;
                return;
            }
            let set = self.migrate_cursor;
            self.migrate_cursor += 1;
            let mut moved = std::mem::take(&mut self.scratch);
            let base = set * old.assoc;
            for slot in base..base + old.assoc {
                if old.ctrl_at(slot) == CTRL_EMPTY {
                    continue;
                }
                let k = old.keys[slot].take().expect("occupied");
                let v = old.vals[slot].take().expect("occupied");
                old.ctrl[slot] = CTRL_EMPTY;
                moved.push((k, v, old.used[slot]));
            }
            for (k, v, used) in moved.drain(..) {
                self.rehome(k, v, used);
            }
            self.scratch = moved;
        }
    }

    /// Place a migrated entry into the live table at its new home,
    /// evicting the window LRU if the window is full. Keeps the entry's
    /// original recency tick so LRU order survives the resize.
    fn rehome(&mut self, key: K, value: V, used: u64) {
        let h = (self.hash)(&key);
        let fp = fingerprint(h);
        let set = (h as usize) % self.table.sets;
        let base = set * self.assoc;
        self.table.ensure_slots(base + self.assoc);
        let (_, _, first_empty) = self.table.probe(set, fp, &key);
        let slot = match first_empty {
            Some(s) => s,
            None => {
                let victim = self.table.window_lru(set).expect("full window");
                let _ = self.evict_live_slot(victim);
                victim
            }
        };
        self.table.place(slot, fp, key, value, used);
        self.migrated += 1;
    }

    /// Begin an incremental doubling if the live table is filling up and
    /// has not yet reached the configured geometry.
    fn maybe_grow(&mut self) {
        if self.old.is_some() || self.table.sets >= self.num_sets {
            return;
        }
        let cap = self.table.sets * self.assoc;
        if (self.live + 1) * 4 <= cap * 3 {
            return;
        }
        let next = (self.table.sets * 2).min(self.num_sets);
        let fresh = Table::new(next, self.assoc);
        self.old = Some(std::mem::replace(&mut self.table, fresh));
        self.migrate_cursor = 0;
    }

    /// Evict this cache's own entries until charging one more entry
    /// fits under the budget (budget-driven eviction before
    /// allocation). Prefers the LRU of the incoming key's window, then
    /// falls back to a cursor scan so progress is guaranteed.
    fn evict_for_budget(&mut self, set: usize) {
        loop {
            let over = match &self.budget {
                Some((budget, _, eb)) => budget.would_exceed(*eb),
                None => false,
            };
            if !over || self.live == 0 {
                return;
            }
            if let Some(victim) = self.table.window_lru(set) {
                let _ = self.evict_live_slot(victim);
                continue;
            }
            // Window empty: scan the live table from the cursor for any
            // occupied slot. If every resident entry is still in the old
            // table, migrate a step and retry.
            let limit = self.table.ctrl.len();
            let mut found = None;
            for i in 0..limit.max(1) {
                let slot = (self.evict_cursor + i) % limit.max(1);
                if self.table.ctrl_at(slot) != CTRL_EMPTY {
                    found = Some(slot);
                    break;
                }
            }
            match found {
                Some(slot) => {
                    self.evict_cursor = (slot + 1) % limit.max(1);
                    let _ = self.evict_live_slot(slot);
                }
                None => {
                    if self.old.is_some() {
                        self.step_migration();
                    } else {
                        return;
                    }
                }
            }
        }
    }

    /// Look up `key`, returning a clone of the value on hit. Updates LRU
    /// recency, statistics, and (when enabled) the 3C classifier.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.get_ref(key).cloned()
    }

    /// Look up `key`, returning a borrow of the value on hit — the hot-path
    /// accessor: identical LRU/stats/classifier/observation bookkeeping to
    /// [`get`](Self::get), without cloning the value.
    pub fn get_ref(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        if self.old.is_some() {
            self.step_migration();
        }
        let h = (self.hash)(key);
        let fp = fingerprint(h);
        let set = (h as usize) % self.table.sets;
        let (hit, probed, _) = self.table.probe(set, fp, key);
        if let Some(slot) = hit {
            self.record_probe(probed);
            self.table.used[slot] = tick;
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            self.classifier_note_hit(key);
            if let Some((reg, kind)) = &self.obs {
                reg.record(Event::CacheLookup {
                    kind: *kind,
                    outcome: CacheOutcome::Hit,
                });
            }
            return self.table.vals[slot].as_ref();
        }
        // Not in the live table: check the un-migrated remainder of the
        // old one and migrate the entry on access.
        let mut old_probed = 0;
        let mut found_old = None;
        if let Some(old) = &self.old {
            let oset = (h as usize) % old.sets;
            if oset >= self.migrate_cursor {
                let (ohit, op, _) = old.probe(oset, fp, key);
                old_probed = op;
                found_old = ohit;
            }
        }
        if let Some(slot) = found_old {
            let old = self.old.as_mut().expect("probed above");
            let (k, v) = old.remove(slot);
            self.record_probe(probed + old_probed);
            self.rehome(k, v, tick);
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            self.classifier_note_hit(key);
            if let Some((reg, kind)) = &self.obs {
                reg.record(Event::CacheLookup {
                    kind: *kind,
                    outcome: CacheOutcome::Hit,
                });
            }
            // rehome() placed it in the live table; find it again (one
            // short window scan) to hand back the borrow.
            let set = (h as usize) % self.table.sets;
            let (slot, _, _) = self.table.probe(set, fp, key);
            return self.table.vals[slot.expect("just rehomed")].as_ref();
        }
        // Full miss.
        self.record_probe(probed + old_probed);
        let miss = self.classify_miss(key);
        if let Some((reg, kind)) = &self.obs {
            let outcome = match miss {
                MissKind::Cold => CacheOutcome::MissCold,
                MissKind::Capacity => CacheOutcome::MissCapacity,
                MissKind::Collision => CacheOutcome::MissCollision,
            };
            reg.record(Event::CacheLookup {
                kind: *kind,
                outcome,
            });
        }
        None
    }

    /// Run `f` over the cached value on a hit, without cloning it. Same
    /// bookkeeping as [`get`](Self::get).
    pub fn with<R>(&mut self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.get_ref(key).map(f)
    }

    /// Quiet lookup: no recency update, no statistics, no classifier, no
    /// events, no migration stepping. For callers that already recorded
    /// a miss and later need a plain presence check (e.g. re-checking
    /// after an out-of-band insert) — the re-check must not perturb the
    /// counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        let h = (self.hash)(key);
        let fp = fingerprint(h);
        let set = (h as usize) % self.table.sets;
        if let (Some(slot), _, _) = self.table.probe(set, fp, key) {
            return self.table.vals[slot].as_ref();
        }
        if let Some(old) = &self.old {
            let oset = (h as usize) % old.sets;
            if oset >= self.migrate_cursor {
                if let (Some(slot), _, _) = old.probe(oset, fp, key) {
                    return old.vals[slot].as_ref();
                }
            }
        }
        None
    }

    /// Detailed lookup for tests/experiments: like [`get`](Self::get) but
    /// reports what happened.
    pub fn probe(&mut self, key: &K) -> (Option<V>, Lookup) {
        let before = self.stats.snapshot();
        let v = self.get(key);
        let after = self.stats.snapshot();
        let result = if v.is_some() {
            Lookup::Hit
        } else if after.cold_misses > before.cold_misses {
            Lookup::Miss(MissKind::Cold)
        } else if after.collision_misses > before.collision_misses {
            Lookup::Miss(MissKind::Collision)
        } else {
            Lookup::Miss(MissKind::Capacity)
        };
        (v, result)
    }

    /// Insert (or overwrite) `key → value`, evicting the set's LRU entry if
    /// the set is full. Returns the evicted entry, if any.
    ///
    /// With a budget attached, entries are evicted (LRU-first) until the
    /// new entry's bytes fit under the ceiling *before* it is placed.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.tick += 1;
        let tick = self.tick;
        if self.old.is_some() {
            self.step_migration();
        }
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        let h = (self.hash)(&key);
        let fp = fingerprint(h);
        let set = (h as usize) % self.table.sets;
        // Overwrite in the live table: no eviction, no residency change.
        if let (Some(slot), _, _) = self.table.probe(set, fp, &key) {
            self.table.vals[slot] = Some(value);
            self.table.used[slot] = tick;
            if let Some((reg, kind)) = &self.obs {
                reg.cache_insertion(*kind, false);
            }
            return None;
        }
        // Overwrite of an entry still in the old table: pull it out and
        // fall through to placement (residency carries over).
        let mut carried = false;
        if let Some(old) = &mut self.old {
            let oset = (h as usize) % old.sets;
            if oset >= self.migrate_cursor {
                if let (Some(slot), _, _) = old.probe(oset, fp, &key) {
                    let _ = old.remove(slot);
                    carried = true;
                }
            }
        }
        if !carried {
            self.evict_for_budget(set);
            self.maybe_grow();
        }
        // The grow above may have swapped tables: recompute the window.
        let set = (h as usize) % self.table.sets;
        let base = set * self.assoc;
        self.table.ensure_slots(base + self.assoc);
        let (_, _, first_empty) = self.table.probe(set, fp, &key);
        let (slot, evicted) = match first_empty {
            Some(slot) => (slot, None),
            None => {
                // Evict LRU.
                let victim = self.table.window_lru(set).expect("full window");
                let (ek, ev) = self.evict_live_slot(victim);
                (victim, Some((ek, ev)))
            }
        };
        self.table.place(slot, fp, key, value, tick);
        if carried {
            // The move itself is residency-neutral, but the placement may
            // have evicted a different entry (already booked above).
        } else {
            self.note_resident_added();
        }
        if let Some((reg, kind)) = &self.obs {
            // Evictions (including this insert's, if any) are booked in
            // evict_live_slot via cache_eviction — passing `false` here
            // keeps the registry's eviction count single-sourced.
            reg.cache_insertion(*kind, false);
        }
        evicted
    }

    /// Remove `key` if present, returning its value. (Used for explicit
    /// invalidation, e.g. on rekey.)
    pub fn invalidate(&mut self, key: &K) -> Option<V> {
        let h = (self.hash)(key);
        let fp = fingerprint(h);
        let set = (h as usize) % self.table.sets;
        if let (Some(slot), _, _) = self.table.probe(set, fp, key) {
            let (_, v) = self.table.remove(slot);
            self.note_resident_removed(1);
            return Some(v);
        }
        if let Some(old) = &mut self.old {
            let oset = (h as usize) % old.sets;
            if oset >= self.migrate_cursor {
                if let (Some(slot), _, _) = old.probe(oset, fp, key) {
                    let (_, v) = old.remove(slot);
                    self.note_resident_removed(1);
                    return Some(v);
                }
            }
        }
        None
    }

    /// Drop every entry (soft state: always safe). The grown table
    /// geometry is kept; the old table of an in-flight resize is freed.
    pub fn clear(&mut self) {
        let n = self.live;
        self.table.ctrl.clear();
        self.table.keys.clear();
        self.table.vals.clear();
        self.table.used.clear();
        self.old = None;
        self.note_resident_removed(n);
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct(n: usize) -> SoftCache<u64, String> {
        SoftCache::new(n, 1, |k: &u64| fbs_crypto::crc32(&k.to_be_bytes()))
    }

    #[test]
    fn hit_after_insert() {
        let mut c = direct(8);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one".into());
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn overwrite_same_key_does_not_evict() {
        let mut c = direct(8);
        c.insert(1, "a".into());
        let evicted = c.insert(1, "b".into());
        assert!(evicted.is_none());
        assert_eq!(c.get(&1).as_deref(), Some("b"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        // One slot: any two distinct keys conflict.
        let mut c = direct(1);
        c.insert(1, "one".into());
        let evicted = c.insert(2, "two".into());
        assert_eq!(evicted, Some((1, "one".into())));
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2).as_deref(), Some("two"));
    }

    #[test]
    fn lru_within_set() {
        // 1 set, 2-way: touching key 1 makes key 2 the LRU victim.
        let mut c: SoftCache<u64, u64> = SoftCache::new(1, 2, |_| 0);
        c.insert(1, 10);
        c.insert(2, 20);
        c.get(&1);
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
    }

    #[test]
    fn invalidate_removes() {
        let mut c = direct(8);
        c.insert(5, "five".into());
        assert_eq!(c.invalidate(&5).as_deref(), Some("five"));
        assert_eq!(c.get(&5), None);
        assert_eq!(c.invalidate(&5), None);
    }

    #[test]
    fn clear_empties() {
        let mut c = direct(8);
        c.insert(1, "x".into());
        c.insert(2, "y".into());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn cold_miss_classification() {
        let mut c = direct(4).with_classification();
        let (_, l1) = c.probe(&1);
        assert_eq!(l1, Lookup::Miss(MissKind::Cold));
        c.insert(1, "x".into());
        let (_, l2) = c.probe(&1);
        assert_eq!(l2, Lookup::Hit);
    }

    #[test]
    fn collision_vs_capacity_classification() {
        // 2 slots direct-mapped with a hash that maps everything to set 0:
        // keys 1 and 2 fight over one set while set 1 stays empty. A
        // fully-associative cache of capacity 2 would hold both ⇒ the
        // re-reference of key 1 is a COLLISION miss.
        let mut c: SoftCache<u64, u64> = SoftCache::new(2, 1, |_| 0).with_classification();
        c.probe(&1);
        c.insert(1, 1);
        c.probe(&2);
        c.insert(2, 2); // evicts 1 from set 0 (both hash to set 0)
        let (_, l) = c.probe(&1);
        assert_eq!(l, Lookup::Miss(MissKind::Collision));

        // Capacity miss: run 3 distinct keys through a capacity-2 cache
        // with a perfect-spread hash... use 1 set x 2-way so associativity
        // is full: any miss on a reseen key must be capacity.
        let mut c2: SoftCache<u64, u64> = SoftCache::new(1, 2, |_| 0).with_classification();
        for k in [1u64, 2, 3] {
            c2.probe(&k);
            c2.insert(k, k);
        }
        let (_, l) = c2.probe(&1); // 1 was evicted by 3 even fully-assoc
        assert_eq!(l, Lookup::Miss(MissKind::Capacity));
    }

    #[test]
    fn stats_accumulate() {
        let mut c = direct(8).with_classification();
        for k in 0u64..8 {
            c.get(&k);
            c.insert(k, format!("{k}"));
        }
        for k in 0u64..8 {
            c.get(&k);
        }
        let s = c.stats();
        assert_eq!(s.cold_misses, 8);
        assert!(s.hits >= 6, "good hash should mostly hit: {s:?}");
        assert!(s.miss_rate() < 0.7);
    }

    #[test]
    fn miss_rate_zero_when_untouched() {
        let c = direct(4);
        assert_eq!(c.stats().miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_sets_panics() {
        let _ = SoftCache::<u64, u64>::new(0, 1, |_| 0);
    }

    #[test]
    fn capacity_reporting() {
        let c: SoftCache<u64, u64> = SoftCache::new(16, 4, |_| 0);
        assert_eq!(c.capacity(), 64);
        assert_eq!(c.num_sets(), 16);
        assert_eq!(c.assoc(), 4);
    }

    #[test]
    fn total_lookups_and_miss_ratio_match_primaries() {
        let mut c = direct(8);
        for k in 0u64..4 {
            c.get(&k);
            c.insert(k, format!("{k}"));
            c.get(&k);
        }
        let s = c.stats();
        assert_eq!(s.total_lookups(), s.lookups());
        assert_eq!(s.total_lookups(), 8);
        assert_eq!(s.miss_ratio(), s.miss_rate());
        assert_eq!(s.miss_ratio(), 0.5);
    }

    #[test]
    fn stats_display_is_readable() {
        let mut c = direct(8);
        c.get(&1);
        c.insert(1, "x".into());
        c.get(&1);
        let line = c.stats().to_string();
        assert!(line.contains("2 lookups"), "{line}");
        assert!(line.contains("1 hits"), "{line}");
        assert!(line.contains("50.00% miss"), "{line}");
        assert!(line.contains("1 insertions"), "{line}");
    }

    #[test]
    fn get_ref_and_with_match_get_bookkeeping() {
        let mut a = direct(4).with_classification();
        let mut b = direct(4).with_classification();
        for k in 0u64..6 {
            assert_eq!(a.get(&k), b.get_ref(&k).cloned());
            a.insert(k, format!("{k}"));
            b.insert(k, format!("{k}"));
        }
        for k in 0u64..6 {
            assert_eq!(a.get(&k), b.with(&k, |v| v.clone()));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn obs_mirrors_local_stats() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut c = direct(2).with_classification();
        c.set_obs(Arc::clone(&reg), CacheKind::Tfkc);
        for k in 0u64..6 {
            c.get(&k);
            c.insert(k, format!("{k}"));
        }
        for k in 0u64..6 {
            c.get(&k);
        }
        let s = c.stats();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cache.tfkc.hits"), s.hits);
        assert_eq!(snap.counter("cache.tfkc.cold_misses"), s.cold_misses);
        assert_eq!(
            snap.counter("cache.tfkc.capacity_misses"),
            s.capacity_misses
        );
        assert_eq!(
            snap.counter("cache.tfkc.collision_misses"),
            s.collision_misses
        );
        assert_eq!(snap.counter("cache.tfkc.insertions"), s.insertions);
        assert_eq!(snap.counter("cache.tfkc.evictions"), s.evictions);
        // The flight recorder saw every lookup.
        let lookups = snap
            .events
            .iter()
            .filter(|e| matches!(e.event, Event::CacheLookup { .. }))
            .count() as u64;
        assert_eq!(lookups, s.lookups());
    }

    #[test]
    fn shared_stats_aggregate_across_caches() {
        let shared = Arc::new(AtomicCacheStats::new());
        let mut a = direct(4);
        let mut b = direct(4);
        a.get(&1); // accumulated before sharing: must fold into the handle
        a.share_stats(Arc::clone(&shared));
        b.share_stats(Arc::clone(&shared));
        a.insert(1, "x".into());
        b.insert(2, "y".into());
        a.get(&1);
        b.get(&2);
        let s = shared.snapshot();
        assert_eq!(s.hits, 2);
        assert_eq!(s.insertions, 2);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.lookups(), 3);
        // Both caches report the shared aggregate.
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.stats(), s);
    }

    #[test]
    fn stats_handle_snapshots_without_borrowing_cache() {
        let mut c = direct(4);
        let handle = c.stats_handle();
        c.get(&7);
        c.insert(7, "seven".into());
        c.get(&7);
        assert_eq!(handle.snapshot(), c.stats());
        assert_eq!(handle.snapshot().hits, 1);
    }

    #[test]
    fn contribute_matches_registry_namespace() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut c = direct(4).with_classification();
        c.set_obs(Arc::clone(&reg), CacheKind::Rfkc);
        for k in 0u64..5 {
            c.get(&k);
            c.insert(k, format!("{k}"));
            c.get(&k);
        }
        let mut from_stats = fbs_obs::MetricsSnapshot::new();
        c.stats().contribute(CacheKind::Rfkc, &mut from_stats);
        let live = reg.snapshot();
        assert_eq!(from_stats.counters, live.counters);
    }

    // ---- incremental resize ----------------------------------------

    fn growing(num_sets: usize, assoc: usize) -> SoftCache<u64, u64> {
        SoftCache::new(num_sets, assoc, |k: &u64| {
            fbs_crypto::crc32(&k.to_be_bytes())
        })
    }

    #[test]
    fn large_caches_start_small_and_grow() {
        let c = growing(4096, 1);
        assert!(c.live_sets() <= GROW_START_SETS);
        assert_eq!(c.num_sets(), 4096);
        assert_eq!(c.capacity(), 4096);
    }

    #[test]
    fn residents_remain_hits_across_rehash_steps() {
        let mut c = growing(2048, 2);
        let mut alive: HashSet<u64> = HashSet::new();
        for k in 0u64..3000 {
            if let Some((ek, _)) = c.insert(k, k * 10) {
                alive.remove(&ek);
            }
            alive.insert(k);
            // Interleave lookups so migration steps run mid-growth and
            // resident entries are exercised while both tables exist.
            if k % 7 == 0 {
                let probe_key = k / 2;
                if alive.contains(&probe_key) {
                    assert_eq!(
                        c.get(&probe_key),
                        Some(probe_key * 10),
                        "resident key {probe_key} lost during resize (live_sets={})",
                        c.live_sets()
                    );
                }
            }
        }
        assert!(c.migrated_entries() > 0, "growth should have migrated");
        assert_eq!(c.live_sets(), 2048, "table should reach full geometry");
        // Every entry never reported evicted is still a hit.
        for k in alive.iter() {
            assert_eq!(c.get(k), Some(k * 10), "resident key {k} lost");
        }
        assert_eq!(c.len(), alive.len());
        let s = c.stats();
        assert_eq!(s.lookups(), s.hits + s.misses());
    }

    #[test]
    fn migration_work_is_bounded_per_operation() {
        let mut c = growing(2048, 1);
        // Fill past the growth trigger so a resize is in flight.
        let mut k = 0u64;
        while !c.resizing() {
            c.insert(k, k);
            k += 1;
            assert!(k < 10_000, "growth never triggered");
        }
        while c.resizing() {
            let before = c.migrated_entries();
            c.get(&0);
            let moved = c.migrated_entries() - before;
            assert!(
                moved <= (MIGRATE_SETS * c.assoc() + 1) as u64,
                "one op migrated {moved} entries"
            );
        }
    }

    #[test]
    fn probe_histogram_counts_every_classified_lookup() {
        let mut c = growing(64, 4);
        for k in 0u64..100 {
            c.get(&k);
            c.insert(k, k);
        }
        for k in 0u64..100 {
            c.get(&k);
        }
        let hist: u64 = c.probe_histogram().iter().sum();
        assert_eq!(hist, c.stats().lookups());
    }

    #[test]
    fn table_bytes_nonzero_and_bounded() {
        let mut c = growing(1024, 4);
        for k in 0u64..2000 {
            c.insert(k, k);
        }
        let bytes = c.table_bytes();
        assert!(bytes > 0);
        // Flat SoA slots for (u64 → u64): well under 200 bytes per slot
        // even counting both tables mid-resize.
        assert!(
            bytes <= (c.num_sets() * c.assoc() * 200) as u64,
            "table bytes {bytes} out of range"
        );
    }

    // ---- memory budget ----------------------------------------------

    #[test]
    fn budget_eviction_before_allocation() {
        use crate::mem::{BudgetKind, MemoryBudget};
        let entry = 64u64;
        let budget = MemoryBudget::bounded(entry * 100);
        let mut c = growing(4096, 4);
        c.set_budget(budget.clone(), BudgetKind::Tfkc, entry);
        for k in 0u64..1000 {
            c.insert(k, k);
            assert!(
                budget.used_bytes() <= budget.limit_bytes(),
                "budget overshot at k={k}: {} > {}",
                budget.used_bytes(),
                budget.limit_bytes()
            );
        }
        assert!(c.len() <= 100);
        assert!(c.stats().evictions >= 900);
        assert_eq!(budget.used_bytes(), c.len() as u64 * entry);
        assert_eq!(
            budget.exceeded_events(),
            0,
            "eviction must pre-empt overshoot"
        );
        // Recent keys are still served.
        assert_eq!(c.get(&999), Some(999));
    }

    #[test]
    fn budget_shared_across_kinds_evicts_locally() {
        use crate::mem::{BudgetKind, MemoryBudget};
        let entry = 32u64;
        let budget = MemoryBudget::bounded(entry * 40);
        let mut tx = growing(1024, 2);
        let mut rx = growing(1024, 2);
        tx.set_budget(budget.clone(), BudgetKind::Tfkc, entry);
        rx.set_budget(budget.clone(), BudgetKind::Rfkc, entry);
        for k in 0u64..200 {
            tx.insert(k, k);
            rx.insert(k + 1_000_000, k);
        }
        assert!(budget.used_bytes() <= budget.limit_bytes());
        assert!(tx.len() + rx.len() <= 40);
        assert!(
            !tx.is_empty() && !rx.is_empty(),
            "both kinds keep some residency"
        );
        assert_eq!(budget.used_by(BudgetKind::Tfkc), tx.len() as u64 * entry);
        assert_eq!(budget.used_by(BudgetKind::Rfkc), rx.len() as u64 * entry);
    }

    #[test]
    fn budget_ledger_survives_invalidate_and_clear() {
        use crate::mem::{BudgetKind, MemoryBudget};
        let entry = 16u64;
        let budget = MemoryBudget::bounded(entry * 1000);
        let mut c = growing(64, 2);
        c.set_budget(budget.clone(), BudgetKind::Mkc, entry);
        for k in 0u64..50 {
            c.insert(k, k);
        }
        let before = budget.used_bytes();
        assert_eq!(before, c.len() as u64 * entry);
        c.invalidate(&10);
        assert_eq!(budget.used_bytes(), c.len() as u64 * entry);
        c.clear();
        assert_eq!(budget.used_bytes(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn budget_coherent_under_resize_and_eviction_storm() {
        use crate::mem::{BudgetKind, MemoryBudget};
        let entry = 48u64;
        let budget = MemoryBudget::bounded(entry * 300);
        let mut c = growing(8192, 4);
        c.set_budget(budget.clone(), BudgetKind::Rfkc, entry);
        // Storm: working set far above both the budget and the initial
        // table, with interleaved lookups driving migration.
        for round in 0u64..3 {
            for k in 0u64..2000 {
                c.insert(round * 10_000 + k, k);
                if k % 3 == 0 {
                    c.get(&(round * 10_000 + k / 2));
                }
            }
        }
        let s = c.stats();
        assert_eq!(s.lookups(), s.hits + s.misses());
        assert_eq!(budget.used_bytes(), c.len() as u64 * entry);
        assert!(budget.used_bytes() <= budget.limit_bytes());
        assert!(s.evictions > 0);
        assert_eq!(budget.exceeded_events(), 0);
    }

    // ---- classifier cap ---------------------------------------------

    #[test]
    fn classifier_disables_at_history_cap() {
        let mut c: SoftCache<u64, u64> =
            SoftCache::new(8, 1, |k: &u64| fbs_crypto::crc32(&k.to_be_bytes()))
                .with_classification_capped(4);
        for k in 0u64..4 {
            let (_, l) = c.probe(&k);
            assert_eq!(l, Lookup::Miss(MissKind::Cold), "under cap: cold");
            c.insert(k, k);
        }
        assert_eq!(c.stats().classifier_disabled, 0);
        // The 5th distinct key would push the history past its cap:
        // classification turns itself off and the miss is capacity.
        let (_, l) = c.probe(&100);
        assert_eq!(l, Lookup::Miss(MissKind::Capacity));
        assert_eq!(c.stats().classifier_disabled, 1);
        // Still off (counted once), and the cache still works.
        let (_, l) = c.probe(&200);
        assert_eq!(l, Lookup::Miss(MissKind::Capacity));
        assert_eq!(c.stats().classifier_disabled, 1);
        c.insert(100, 100);
        assert_eq!(c.get(&100), Some(100));
    }

    #[test]
    fn default_classification_cap_is_generous() {
        // The figure experiments must never hit the cap.
        let mut c = direct(128).with_classification();
        for k in 0u64..10_000 {
            c.get(&k);
            c.insert(k, format!("{k}"));
        }
        assert_eq!(c.stats().classifier_disabled, 0);
        assert_eq!(c.stats().cold_misses, 10_000);
    }
}
