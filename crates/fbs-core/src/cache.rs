//! Soft-state key caches (§5.3, "Key Caching").
//!
//! All FBS caches — public value cache (PVC), master key cache (MKC),
//! transmission flow key cache (TFKC), receive flow key cache (RFKC) — hold
//! only *soft state*: every entry can be discarded and recomputed, so cache
//! policy affects performance, never correctness.
//!
//! The paper analyses misses with the classic 3C model: **cold** misses
//! initialise entries, **capacity** misses mean the working set exceeds the
//! cache, and **collision** misses are artifacts of limited associativity
//! or a poor index hash. Because the caches must be software with O(1)
//! access, associativity is kept low and the *hash function* carries the
//! burden of decorrelating inputs (local addresses, sequential sfls) —
//! hence CRC-32 (§5.3). This module implements a set-associative cache with
//! a pluggable index hash, LRU replacement within each set, and optional
//! 3C miss classification via a shadow fully-associative LRU, which is what
//! the Fig. 11 experiments sweep.

use fbs_obs::{CacheKind, CacheOutcome, Event, MetricsRegistry};
use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which kind of miss occurred, per the 3C model of §5.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissKind {
    /// First-ever reference to this key: unavoidable.
    Cold,
    /// The key was referenced before but would have been evicted even by a
    /// fully-associative cache of the same total capacity.
    Capacity,
    /// The key would have survived in a fully-associative cache: it was
    /// evicted only because of set conflicts (limited associativity or a
    /// hash that clusters keys).
    Collision,
}

/// Result of a classified lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// The entry was present.
    Hit,
    /// The entry was absent, for the stated reason (reason is `Cold` when
    /// classification is disabled and the key is new, `Capacity` otherwise).
    Miss(MissKind),
}

/// Running hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the entry.
    pub hits: u64,
    /// Cold (compulsory) misses.
    pub cold_misses: u64,
    /// Capacity misses.
    pub capacity_misses: u64,
    /// Collision (conflict) misses.
    pub collision_misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Total misses of all kinds.
    pub fn misses(&self) -> u64 {
        self.cold_misses + self.capacity_misses + self.collision_misses
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses()
    }

    /// Miss fraction in `[0, 1]`; 0 when no lookups have happened.
    pub fn miss_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.misses() as f64 / total as f64
        }
    }

    /// Synonym for [`CacheStats::lookups`]: hits plus all miss kinds.
    pub fn total_lookups(&self) -> u64 {
        self.lookups()
    }

    /// Synonym for [`CacheStats::miss_rate`], matching the "miss ratio"
    /// terminology of the Fig. 11 analysis.
    pub fn miss_ratio(&self) -> f64 {
        self.miss_rate()
    }

    /// Fold these counters into a snapshot under `cache.<kind>.*` names —
    /// the same namespace a live [`MetricsRegistry`] uses, so snapshots
    /// built either way are comparable.
    pub fn contribute(&self, kind: CacheKind, snap: &mut fbs_obs::MetricsSnapshot) {
        let k = kind.name();
        snap.add(&format!("cache.{k}.hits"), self.hits);
        snap.add(&format!("cache.{k}.cold_misses"), self.cold_misses);
        snap.add(&format!("cache.{k}.capacity_misses"), self.capacity_misses);
        snap.add(
            &format!("cache.{k}.collision_misses"),
            self.collision_misses,
        );
        snap.add(&format!("cache.{k}.insertions"), self.insertions);
        snap.add(&format!("cache.{k}.evictions"), self.evictions);
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lookups, {} hits ({:.2}% miss): {} cold / {} capacity / {} collision; {} insertions, {} evictions",
            self.total_lookups(),
            self.hits,
            self.miss_ratio() * 100.0,
            self.cold_misses,
            self.capacity_misses,
            self.collision_misses,
            self.insertions,
            self.evictions,
        )
    }
}

/// Lock-free cache counters: the live backing store behind
/// [`SoftCache::stats`]. Each cache owns one by default; several caches
/// (e.g. the per-shard TFKC slices of a sharded endpoint) can be pointed
/// at a *shared* handle via [`SoftCache::share_stats`], so a metrics
/// scrape reads one coherent aggregate without taking any shard lock.
///
/// All updates use relaxed ordering: the counters are monotone event
/// counts with no happens-before obligations, and `lookups()` is always
/// derived as `hits + misses` from the same snapshot, so the coherence
/// invariant `hits + misses == lookups` holds for every snapshot.
#[derive(Debug, Default)]
pub struct AtomicCacheStats {
    hits: AtomicU64,
    cold_misses: AtomicU64,
    capacity_misses: AtomicU64,
    collision_misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl AtomicCacheStats {
    /// A fresh zeroed handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the counters into a plain [`CacheStats`] value.
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            cold_misses: self.cold_misses.load(Ordering::Relaxed),
            capacity_misses: self.capacity_misses.load(Ordering::Relaxed),
            collision_misses: self.collision_misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.cold_misses.store(0, Ordering::Relaxed);
        self.capacity_misses.store(0, Ordering::Relaxed);
        self.collision_misses.store(0, Ordering::Relaxed);
        self.insertions.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

struct Slot<K, V> {
    key: K,
    value: V,
    last_used: u64,
}

/// Shadow fully-associative LRU used only for 3C classification.
struct ShadowLru<K> {
    capacity: usize,
    /// Most-recent at the back. Linear scan is fine: capacities here are
    /// the cache sizes under study (tens to a few thousand entries).
    order: Vec<K>,
}

impl<K: Eq + Clone> ShadowLru<K> {
    fn touch(&mut self, key: &K) -> bool {
        let present = if let Some(pos) = self.order.iter().position(|k| k == key) {
            self.order.remove(pos);
            true
        } else {
            false
        };
        self.order.push(key.clone());
        if self.order.len() > self.capacity {
            self.order.remove(0);
        }
        present
    }
}

/// A set-associative soft-state cache with pluggable index hash and LRU
/// replacement.
///
/// ```
/// use fbs_core::SoftCache;
/// // 8 sets × 2 ways, indexed by CRC-32 (the §5.3 recommendation).
/// let mut tfkc: SoftCache<u64, &str> =
///     SoftCache::new(8, 2, |sfl: &u64| fbs_crypto::crc32(&sfl.to_be_bytes()));
/// tfkc.insert(42, "flow-key-bytes");
/// assert_eq!(tfkc.get(&42), Some("flow-key-bytes"));
/// assert_eq!(tfkc.get(&43), None); // miss: recompute and insert
/// assert_eq!(tfkc.stats().hits, 1);
/// ```
pub struct SoftCache<K, V> {
    sets: Vec<Vec<Slot<K, V>>>,
    assoc: usize,
    hash: Box<dyn Fn(&K) -> u32 + Send + Sync>,
    tick: u64,
    /// Counters live behind an `Arc` so a metrics scraper can snapshot
    /// them without borrowing (or locking) the cache itself; see
    /// [`SoftCache::share_stats`].
    stats: Arc<AtomicCacheStats>,
    /// Key history for cold-miss detection + shadow LRU for capacity vs
    /// collision discrimination. `None` disables classification (all
    /// non-cold misses count as capacity) and avoids its overhead.
    classifier: Option<(HashSet<K>, ShadowLru<K>)>,
    /// Optional metrics registry plus the cache's identity in the event
    /// stream. `None` (the default) keeps lookups observation-free.
    obs: Option<(Arc<MetricsRegistry>, CacheKind)>,
}

impl<K: Eq + Hash + Clone, V: Clone> SoftCache<K, V> {
    /// Create a cache of `num_sets * assoc` total entries. `hash` maps a
    /// key to a 32-bit value; the set index is `hash(k) % num_sets`
    /// (exactly the paper's "randomise, then take the modulo" structure).
    ///
    /// # Panics
    /// Panics if `num_sets` or `assoc` is zero.
    pub fn new(
        num_sets: usize,
        assoc: usize,
        hash: impl Fn(&K) -> u32 + Send + Sync + 'static,
    ) -> Self {
        assert!(
            num_sets > 0 && assoc > 0,
            "cache dimensions must be nonzero"
        );
        SoftCache {
            sets: (0..num_sets).map(|_| Vec::with_capacity(assoc)).collect(),
            assoc,
            hash: Box::new(hash),
            tick: 0,
            stats: Arc::new(AtomicCacheStats::new()),
            classifier: None,
            obs: None,
        }
    }

    /// Attach a metrics registry: lookups emit
    /// [`Event::CacheLookup`] and insertions feed the registry's
    /// per-cache insertion/eviction counters, all under `kind`'s name.
    pub fn set_obs(&mut self, registry: Arc<MetricsRegistry>, kind: CacheKind) {
        self.obs = Some((registry, kind));
    }

    /// Enable 3C miss classification (used by the Fig. 11 experiments).
    /// Costs a shadow LRU of the same total capacity.
    pub fn with_classification(mut self) -> Self {
        let cap = self.capacity();
        self.classifier = Some((
            HashSet::new(),
            ShadowLru {
                capacity: cap,
                order: Vec::with_capacity(cap),
            },
        ));
        self
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.assoc
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Accumulated statistics (a snapshot of the live atomic counters).
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// The live counter handle. Cloning the `Arc` lets a reader snapshot
    /// the counters later without touching the cache (lock-free scrapes).
    pub fn stats_handle(&self) -> Arc<AtomicCacheStats> {
        Arc::clone(&self.stats)
    }

    /// Point this cache's bookkeeping at `shared`, aggregating its counts
    /// with every other cache sharing the same handle. Counts already
    /// accumulated locally are folded into `shared` so nothing is lost.
    pub fn share_stats(&mut self, shared: Arc<AtomicCacheStats>) {
        let prior = self.stats.snapshot();
        shared.hits.fetch_add(prior.hits, Ordering::Relaxed);
        shared
            .cold_misses
            .fetch_add(prior.cold_misses, Ordering::Relaxed);
        shared
            .capacity_misses
            .fetch_add(prior.capacity_misses, Ordering::Relaxed);
        shared
            .collision_misses
            .fetch_add(prior.collision_misses, Ordering::Relaxed);
        shared
            .insertions
            .fetch_add(prior.insertions, Ordering::Relaxed);
        shared
            .evictions
            .fetch_add(prior.evictions, Ordering::Relaxed);
        self.stats = shared;
    }

    /// Reset statistics (entries are kept). Note this zeroes the shared
    /// handle when one was installed via [`share_stats`](Self::share_stats).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn set_index(&self, key: &K) -> usize {
        ((self.hash)(key) as usize) % self.sets.len()
    }

    /// Classify a miss, update classifier state and statistics.
    fn classify_miss(&mut self, key: &K) -> MissKind {
        let kind = match &mut self.classifier {
            None => MissKind::Capacity,
            Some((seen, shadow)) => {
                let was_seen = seen.contains(key);
                // touch() both queries and refreshes the shadow LRU.
                let in_shadow = shadow.touch(key);
                seen.insert(key.clone());
                if !was_seen {
                    MissKind::Cold
                } else if in_shadow {
                    // Would have hit fully-associative ⇒ conflict artifact.
                    MissKind::Collision
                } else {
                    MissKind::Capacity
                }
            }
        };
        let field = match kind {
            MissKind::Cold => &self.stats.cold_misses,
            MissKind::Capacity => &self.stats.capacity_misses,
            MissKind::Collision => &self.stats.collision_misses,
        };
        field.fetch_add(1, Ordering::Relaxed);
        kind
    }

    /// Look up `key`, returning a clone of the value on hit. Updates LRU
    /// recency, statistics, and (when enabled) the 3C classifier.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.get_ref(key).cloned()
    }

    /// Look up `key`, returning a borrow of the value on hit — the hot-path
    /// accessor: identical LRU/stats/classifier/observation bookkeeping to
    /// [`get`](Self::get), without cloning the value.
    pub fn get_ref(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(key);
        let pos = self.sets[idx].iter().position(|s| &s.key == key);
        let Some(pos) = pos else {
            // Miss path.
            let miss = self.classify_miss(key);
            if let Some((reg, kind)) = &self.obs {
                let outcome = match miss {
                    MissKind::Cold => CacheOutcome::MissCold,
                    MissKind::Capacity => CacheOutcome::MissCapacity,
                    MissKind::Collision => CacheOutcome::MissCollision,
                };
                reg.record(Event::CacheLookup {
                    kind: *kind,
                    outcome,
                });
            }
            return None;
        };
        self.sets[idx][pos].last_used = tick;
        self.stats.hits.fetch_add(1, Ordering::Relaxed);
        if let Some((seen, shadow)) = &mut self.classifier {
            seen.insert(key.clone());
            shadow.touch(key);
        }
        if let Some((reg, kind)) = &self.obs {
            reg.record(Event::CacheLookup {
                kind: *kind,
                outcome: CacheOutcome::Hit,
            });
        }
        Some(&self.sets[idx][pos].value)
    }

    /// Run `f` over the cached value on a hit, without cloning it. Same
    /// bookkeeping as [`get`](Self::get).
    pub fn with<R>(&mut self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.get_ref(key).map(f)
    }

    /// Quiet lookup: no recency update, no statistics, no classifier, no
    /// events. For callers that already recorded a miss and later need a
    /// plain presence check (e.g. re-checking after an out-of-band
    /// insert) — the re-check must not perturb the counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        let idx = self.set_index(key);
        self.sets[idx]
            .iter()
            .find(|s| &s.key == key)
            .map(|s| &s.value)
    }

    /// Detailed lookup for tests/experiments: like [`get`](Self::get) but
    /// reports what happened.
    pub fn probe(&mut self, key: &K) -> (Option<V>, Lookup) {
        let before = self.stats.snapshot();
        let v = self.get(key);
        let after = self.stats.snapshot();
        let result = if v.is_some() {
            Lookup::Hit
        } else if after.cold_misses > before.cold_misses {
            Lookup::Miss(MissKind::Cold)
        } else if after.collision_misses > before.collision_misses {
            Lookup::Miss(MissKind::Collision)
        } else {
            Lookup::Miss(MissKind::Capacity)
        };
        (v, result)
    }

    /// Insert (or overwrite) `key → value`, evicting the set's LRU entry if
    /// the set is full. Returns the evicted entry, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(&key);
        let set = &mut self.sets[idx];
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        let evicted = 'insert: {
            if let Some(slot) = set.iter_mut().find(|s| s.key == key) {
                slot.value = value;
                slot.last_used = tick;
                break 'insert None;
            }
            if set.len() < self.assoc {
                set.push(Slot {
                    key,
                    value,
                    last_used: tick,
                });
                break 'insert None;
            }
            // Evict LRU.
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("set is full, must have a victim");
            let old = set.swap_remove(victim);
            set.push(Slot {
                key,
                value,
                last_used: tick,
            });
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            Some((old.key, old.value))
        };
        if let Some((reg, kind)) = &self.obs {
            reg.cache_insertion(*kind, evicted.is_some());
        }
        evicted
    }

    /// Remove `key` if present, returning its value. (Used for explicit
    /// invalidation, e.g. on rekey.)
    pub fn invalidate(&mut self, key: &K) -> Option<V> {
        let idx = self.set_index(key);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|s| &s.key == key)?;
        Some(set.swap_remove(pos).value)
    }

    /// Drop every entry (soft state: always safe).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct(n: usize) -> SoftCache<u64, String> {
        SoftCache::new(n, 1, |k: &u64| fbs_crypto::crc32(&k.to_be_bytes()))
    }

    #[test]
    fn hit_after_insert() {
        let mut c = direct(8);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one".into());
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn overwrite_same_key_does_not_evict() {
        let mut c = direct(8);
        c.insert(1, "a".into());
        let evicted = c.insert(1, "b".into());
        assert!(evicted.is_none());
        assert_eq!(c.get(&1).as_deref(), Some("b"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        // One slot: any two distinct keys conflict.
        let mut c = direct(1);
        c.insert(1, "one".into());
        let evicted = c.insert(2, "two".into());
        assert_eq!(evicted, Some((1, "one".into())));
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2).as_deref(), Some("two"));
    }

    #[test]
    fn lru_within_set() {
        // 1 set, 2-way: touching key 1 makes key 2 the LRU victim.
        let mut c: SoftCache<u64, u64> = SoftCache::new(1, 2, |_| 0);
        c.insert(1, 10);
        c.insert(2, 20);
        c.get(&1);
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
    }

    #[test]
    fn invalidate_removes() {
        let mut c = direct(8);
        c.insert(5, "five".into());
        assert_eq!(c.invalidate(&5).as_deref(), Some("five"));
        assert_eq!(c.get(&5), None);
        assert_eq!(c.invalidate(&5), None);
    }

    #[test]
    fn clear_empties() {
        let mut c = direct(8);
        c.insert(1, "x".into());
        c.insert(2, "y".into());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn cold_miss_classification() {
        let mut c = direct(4).with_classification();
        let (_, l1) = c.probe(&1);
        assert_eq!(l1, Lookup::Miss(MissKind::Cold));
        c.insert(1, "x".into());
        let (_, l2) = c.probe(&1);
        assert_eq!(l2, Lookup::Hit);
    }

    #[test]
    fn collision_vs_capacity_classification() {
        // 2 slots direct-mapped with a hash that maps everything to set 0:
        // keys 1 and 2 fight over one set while set 1 stays empty. A
        // fully-associative cache of capacity 2 would hold both ⇒ the
        // re-reference of key 1 is a COLLISION miss.
        let mut c: SoftCache<u64, u64> = SoftCache::new(2, 1, |_| 0).with_classification();
        c.probe(&1);
        c.insert(1, 1);
        c.probe(&2);
        c.insert(2, 2); // evicts 1 from set 0 (both hash to set 0)
        let (_, l) = c.probe(&1);
        assert_eq!(l, Lookup::Miss(MissKind::Collision));

        // Capacity miss: run 3 distinct keys through a capacity-2 cache
        // with a perfect-spread hash... use 1 set x 2-way so associativity
        // is full: any miss on a reseen key must be capacity.
        let mut c2: SoftCache<u64, u64> = SoftCache::new(1, 2, |_| 0).with_classification();
        for k in [1u64, 2, 3] {
            c2.probe(&k);
            c2.insert(k, k);
        }
        let (_, l) = c2.probe(&1); // 1 was evicted by 3 even fully-assoc
        assert_eq!(l, Lookup::Miss(MissKind::Capacity));
    }

    #[test]
    fn stats_accumulate() {
        let mut c = direct(8).with_classification();
        for k in 0u64..8 {
            c.get(&k);
            c.insert(k, format!("{k}"));
        }
        for k in 0u64..8 {
            c.get(&k);
        }
        let s = c.stats();
        assert_eq!(s.cold_misses, 8);
        assert!(s.hits >= 6, "good hash should mostly hit: {s:?}");
        assert!(s.miss_rate() < 0.7);
    }

    #[test]
    fn miss_rate_zero_when_untouched() {
        let c = direct(4);
        assert_eq!(c.stats().miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_sets_panics() {
        let _ = SoftCache::<u64, u64>::new(0, 1, |_| 0);
    }

    #[test]
    fn capacity_reporting() {
        let c: SoftCache<u64, u64> = SoftCache::new(16, 4, |_| 0);
        assert_eq!(c.capacity(), 64);
        assert_eq!(c.num_sets(), 16);
        assert_eq!(c.assoc(), 4);
    }

    #[test]
    fn total_lookups_and_miss_ratio_match_primaries() {
        let mut c = direct(8);
        for k in 0u64..4 {
            c.get(&k);
            c.insert(k, format!("{k}"));
            c.get(&k);
        }
        let s = c.stats();
        assert_eq!(s.total_lookups(), s.lookups());
        assert_eq!(s.total_lookups(), 8);
        assert_eq!(s.miss_ratio(), s.miss_rate());
        assert_eq!(s.miss_ratio(), 0.5);
    }

    #[test]
    fn stats_display_is_readable() {
        let mut c = direct(8);
        c.get(&1);
        c.insert(1, "x".into());
        c.get(&1);
        let line = c.stats().to_string();
        assert!(line.contains("2 lookups"), "{line}");
        assert!(line.contains("1 hits"), "{line}");
        assert!(line.contains("50.00% miss"), "{line}");
        assert!(line.contains("1 insertions"), "{line}");
    }

    #[test]
    fn get_ref_and_with_match_get_bookkeeping() {
        let mut a = direct(4).with_classification();
        let mut b = direct(4).with_classification();
        for k in 0u64..6 {
            assert_eq!(a.get(&k), b.get_ref(&k).cloned());
            a.insert(k, format!("{k}"));
            b.insert(k, format!("{k}"));
        }
        for k in 0u64..6 {
            assert_eq!(a.get(&k), b.with(&k, |v| v.clone()));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn obs_mirrors_local_stats() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut c = direct(2).with_classification();
        c.set_obs(Arc::clone(&reg), CacheKind::Tfkc);
        for k in 0u64..6 {
            c.get(&k);
            c.insert(k, format!("{k}"));
        }
        for k in 0u64..6 {
            c.get(&k);
        }
        let s = c.stats();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cache.tfkc.hits"), s.hits);
        assert_eq!(snap.counter("cache.tfkc.cold_misses"), s.cold_misses);
        assert_eq!(
            snap.counter("cache.tfkc.capacity_misses"),
            s.capacity_misses
        );
        assert_eq!(
            snap.counter("cache.tfkc.collision_misses"),
            s.collision_misses
        );
        assert_eq!(snap.counter("cache.tfkc.insertions"), s.insertions);
        assert_eq!(snap.counter("cache.tfkc.evictions"), s.evictions);
        // The flight recorder saw every lookup.
        let lookups = snap
            .events
            .iter()
            .filter(|e| matches!(e.event, Event::CacheLookup { .. }))
            .count() as u64;
        assert_eq!(lookups, s.lookups());
    }

    #[test]
    fn shared_stats_aggregate_across_caches() {
        let shared = Arc::new(AtomicCacheStats::new());
        let mut a = direct(4);
        let mut b = direct(4);
        a.get(&1); // accumulated before sharing: must fold into the handle
        a.share_stats(Arc::clone(&shared));
        b.share_stats(Arc::clone(&shared));
        a.insert(1, "x".into());
        b.insert(2, "y".into());
        a.get(&1);
        b.get(&2);
        let s = shared.snapshot();
        assert_eq!(s.hits, 2);
        assert_eq!(s.insertions, 2);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.lookups(), 3);
        // Both caches report the shared aggregate.
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.stats(), s);
    }

    #[test]
    fn stats_handle_snapshots_without_borrowing_cache() {
        let mut c = direct(4);
        let handle = c.stats_handle();
        c.get(&7);
        c.insert(7, "seven".into());
        c.get(&7);
        assert_eq!(handle.snapshot(), c.stats());
        assert_eq!(handle.snapshot().hits, 1);
    }

    #[test]
    fn contribute_matches_registry_namespace() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut c = direct(4).with_classification();
        c.set_obs(Arc::clone(&reg), CacheKind::Rfkc);
        for k in 0u64..5 {
            c.get(&k);
            c.insert(k, format!("{k}"));
            c.get(&k);
        }
        let mut from_stats = fbs_obs::MetricsSnapshot::new();
        c.stats().contribute(CacheKind::Rfkc, &mut from_stats);
        let live = reg.snapshot();
        assert_eq!(from_stats.counters, live.counters);
    }
}
