//! Bounded parking queue for datagrams awaiting key material.
//!
//! When a datagram cannot be protected or verified because its flow key
//! is unavailable (MKD outage, directory outage, open circuit breaker),
//! a *park* verdict holds it briefly instead of dropping it outright.
//! Two bounds preserve datagram semantics (§3: security state must
//! never turn datagram service into a blocking one):
//!
//! * **capacity** — a full queue rejects new datagrams (overflow), so
//!   memory use is bounded no matter how long the fault lasts;
//! * **per-datagram deadline** — an entry that waits past its deadline
//!   is dropped on the next [`expire`](ParkingQueue::expire) sweep,
//!   becoming ordinary datagram loss.
//!
//! The queue is FIFO and time-driven via caller-passed microsecond
//! timestamps (no internal clock), so it is deterministic under
//! simulated time. Counters live in [`ParkStats`]; flight-recorder
//! events are emitted by the owner, which knows the registry.

use fbs_obs::MetricsSnapshot;
use std::collections::VecDeque;

/// Park/release/expiry counters, in the shared `park.*` namespace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParkStats {
    /// Datagrams parked.
    pub parked: u64,
    /// Datagrams released for re-processing.
    pub released: u64,
    /// Datagrams dropped on deadline expiry.
    pub expired: u64,
    /// Datagrams rejected because the queue was full.
    pub overflow: u64,
    /// High-water mark of queue depth.
    pub peak_depth: u64,
}

impl ParkStats {
    /// Fold these counters into a snapshot under the `park.*` names a
    /// live `MetricsRegistry` uses.
    pub fn contribute(&self, snap: &mut MetricsSnapshot) {
        snap.add("park.parked", self.parked);
        snap.add("park.released", self.released);
        snap.add("park.expired", self.expired);
        snap.add("park.overflow", self.overflow);
    }
}

/// One parked item plus its timing envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parked<T> {
    /// The held item.
    pub item: T,
    /// When it was first parked, in clock microseconds (preserved
    /// across re-parks so total waiting time is bounded).
    pub parked_at_us: u64,
    /// Absolute drop deadline, in clock microseconds.
    pub deadline_us: u64,
}

/// A bounded FIFO of items waiting for key material.
#[derive(Debug)]
pub struct ParkingQueue<T> {
    items: VecDeque<Parked<T>>,
    capacity: usize,
    default_ttl_us: u64,
    stats: ParkStats,
}

impl<T> ParkingQueue<T> {
    /// A queue holding at most `capacity` items, each defaulting to a
    /// `default_ttl_us` lifetime from its first park.
    pub fn new(capacity: usize, default_ttl_us: u64) -> Self {
        ParkingQueue {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            default_ttl_us,
            stats: ParkStats::default(),
        }
    }

    /// Park `item` at `now_us` with the default TTL. On overflow the
    /// item is handed back via `Err` so the caller can count the drop.
    pub fn park(&mut self, item: T, now_us: u64) -> Result<(), T> {
        self.park_entry(
            Parked {
                item,
                parked_at_us: now_us,
                deadline_us: now_us.saturating_add(self.default_ttl_us),
            },
            true,
        )
    }

    /// Re-park an entry that was released but still cannot proceed,
    /// keeping its original park time and deadline — so an item's total
    /// residency is bounded by its first deadline, not reset each
    /// round. Does NOT count towards `stats.parked`: that counter
    /// tracks first admissions, coherent with the `park.parked` event
    /// the owner emits once per datagram.
    pub fn repark(&mut self, entry: Parked<T>) -> Result<(), T> {
        self.park_entry(entry, false)
    }

    fn park_entry(&mut self, entry: Parked<T>, fresh: bool) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.stats.overflow += 1;
            return Err(entry.item);
        }
        self.items.push_back(entry);
        if fresh {
            self.stats.parked += 1;
        }
        self.stats.peak_depth = self.stats.peak_depth.max(self.items.len() as u64);
        Ok(())
    }

    /// Drop every entry whose deadline has passed, returning how many
    /// expired. Runs as one in-place rotation of the queue — no
    /// allocation ever, which matters because the worker release loops
    /// call this on every pass whether or not anything expired.
    pub fn expire(&mut self, now_us: u64) -> u64 {
        let mut expired = 0;
        for _ in 0..self.items.len() {
            let e = self.items.pop_front().expect("length checked");
            if e.deadline_us > now_us {
                self.items.push_back(e);
            } else {
                expired += 1;
            }
        }
        self.stats.expired += expired;
        expired
    }

    /// Remove every entry whose deadline has passed and hand the entries
    /// back (oldest first) so the caller can reclaim what they hold —
    /// pooled payload buffers in particular must go back to their
    /// [`BufferPool`](crate::BufferPool) instead of being dropped.
    ///
    /// Survivors are rotated in place (a full cycle of pop/push within
    /// the ring's existing buffer), so the common nothing-expired call
    /// performs no allocation at all: the returned `Vec` only allocates
    /// once there are expired entries to carry.
    pub fn take_expired(&mut self, now_us: u64) -> Vec<Parked<T>> {
        let mut expired = Vec::new();
        for _ in 0..self.items.len() {
            let e = self.items.pop_front().expect("length checked");
            if e.deadline_us > now_us {
                self.items.push_back(e);
            } else {
                expired.push(e);
            }
        }
        self.stats.expired += expired.len() as u64;
        expired
    }

    /// Drain the whole queue (oldest first) for a release attempt. The
    /// caller re-parks entries that still cannot proceed and calls
    /// [`note_released`](Self::note_released) for those that could.
    pub fn take_all(&mut self) -> Vec<Parked<T>> {
        self.items.drain(..).collect()
    }

    /// Record a successful release of an entry first parked at
    /// `parked_at_us`; returns how long it waited.
    pub fn note_released(&mut self, parked_at_us: u64, now_us: u64) -> u64 {
        self.stats.released += 1;
        now_us.saturating_sub(parked_at_us)
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Accumulated counters.
    pub fn stats(&self) -> ParkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_park_and_take() {
        let mut q: ParkingQueue<u32> = ParkingQueue::new(4, 1_000);
        q.park(1, 0).unwrap();
        q.park(2, 10).unwrap();
        let all = q.take_all();
        assert_eq!(all.iter().map(|e| e.item).collect::<Vec<_>>(), vec![1, 2]);
        assert!(q.is_empty());
        assert_eq!(q.stats().parked, 2);
    }

    #[test]
    fn overflow_returns_item_and_counts() {
        let mut q: ParkingQueue<u32> = ParkingQueue::new(2, 1_000);
        q.park(1, 0).unwrap();
        q.park(2, 0).unwrap();
        assert_eq!(q.park(3, 0), Err(3));
        assert_eq!(q.stats().overflow, 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.stats().peak_depth, 2);
    }

    #[test]
    fn expiry_drops_past_deadline_only() {
        let mut q: ParkingQueue<u32> = ParkingQueue::new(8, 1_000);
        q.park(1, 0).unwrap(); // deadline 1_000
        q.park(2, 600).unwrap(); // deadline 1_600
        assert_eq!(q.expire(500), 0);
        assert_eq!(q.expire(1_200), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.take_all()[0].item, 2);
        assert_eq!(q.stats().expired, 1);
    }

    #[test]
    fn repark_preserves_original_deadline() {
        let mut q: ParkingQueue<u32> = ParkingQueue::new(8, 1_000);
        q.park(7, 100).unwrap(); // deadline 1_100
        let mut all = q.take_all();
        let entry = all.pop().unwrap();
        q.repark(entry).unwrap();
        // Re-parking at a later time must not extend the lifetime.
        assert_eq!(q.expire(1_200), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn take_expired_returns_entries_and_counts() {
        let mut q: ParkingQueue<Vec<u8>> = ParkingQueue::new(8, 1_000);
        q.park(vec![1], 0).unwrap(); // deadline 1_000
        q.park(vec![2], 100).unwrap(); // deadline 1_100
        q.park(vec![3], 900).unwrap(); // deadline 1_900
        let expired = q.take_expired(1_100);
        assert_eq!(
            expired.iter().map(|e| e.item.clone()).collect::<Vec<_>>(),
            vec![vec![1], vec![2]],
            "oldest first, entries handed back for buffer reclamation"
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.stats().expired, 2);
    }

    #[test]
    fn expire_never_allocates_and_preserves_order() {
        let mut q: ParkingQueue<u32> = ParkingQueue::new(16, 1_000);
        for i in 0..10u32 {
            q.park(i, i as u64 * 100).unwrap(); // deadlines 1_000..1_900
        }
        // The ring buffer must be rotated in place: its backing
        // allocation (identified by its capacity) may never be replaced
        // by expire/take_expired, no matter how often they run or how
        // many entries they drop.
        let buf_cap = q.items.capacity();
        for now in [0u64, 500, 999] {
            assert_eq!(q.expire(now), 0);
            assert_eq!(q.items.capacity(), buf_cap, "no-expiry pass reallocated");
        }
        // A no-expiry take_expired hands back a Vec that never allocated.
        let none = q.take_expired(999);
        assert!(none.is_empty());
        assert_eq!(none.capacity(), 0, "empty result must not allocate");
        assert_eq!(q.items.capacity(), buf_cap);
        // Partial expiry keeps survivor order and the same buffer.
        assert_eq!(q.expire(1_450), 5);
        assert_eq!(q.items.capacity(), buf_cap, "expiry pass reallocated");
        let survivors: Vec<u32> = q.take_all().into_iter().map(|e| e.item).collect();
        assert_eq!(survivors, vec![5, 6, 7, 8, 9], "oldest-first order kept");
    }

    #[test]
    fn released_wait_is_measured_from_first_park() {
        let mut q: ParkingQueue<u32> = ParkingQueue::new(8, 10_000);
        q.park(1, 500).unwrap();
        let entry = q.take_all().pop().unwrap();
        let waited = q.note_released(entry.parked_at_us, 2_500);
        assert_eq!(waited, 2_000);
        assert_eq!(q.stats().released, 1);
    }

    #[test]
    fn contribute_uses_shared_namespace() {
        let mut q: ParkingQueue<u32> = ParkingQueue::new(1, 100);
        q.park(1, 0).unwrap();
        let _ = q.park(2, 0);
        q.expire(200);
        let mut snap = MetricsSnapshot::new();
        q.stats().contribute(&mut snap);
        assert_eq!(snap.counter("park.parked"), 1);
        assert_eq!(snap.counter("park.overflow"), 1);
        assert_eq!(snap.counter("park.expired"), 1);
        assert_eq!(snap.counter("park.released"), 0);
    }
}
