//! Worker-fault injection interface for the datagram-plane runtime.
//!
//! A worker runtime (the thread-per-core pipeline in `fbs-ip`) consults
//! an optional [`WorkerFaultInjector`] at well-defined points so a chaos
//! harness can schedule worker panics, stalls, and ring saturation
//! deterministically. The trait lives here — not in `fbs-chaos` — so the
//! runtime crate never depends on the chaos crate; `fbs-chaos` provides
//! the production implementation (`WorkerChaos`) driven by a seeded
//! fault plan over virtual time.
//!
//! Determinism contract: every decision is a pure function of
//! `(worker, now_us)` plus internal edge-trigger state, never of wall
//! clock. Panics and stalls are *edge-triggered* — they fire once per
//! scheduled fault window — while ring saturation is *level-triggered*
//! (true for every query inside the window), because the producer polls
//! it per sub-batch and the shed counters must scale with offered load.

/// Fault decisions a worker runtime polls before processing work.
///
/// All methods take the worker index and the current virtual time in
/// microseconds (as carried by the work being processed, so the worker
/// thread itself needs no clock). The no-op default is "no injector
/// attached": implementations decide everything; callers must tolerate
/// any combination of answers.
pub trait WorkerFaultInjector: Send + Sync {
    /// True if worker `worker` should panic now. Edge-triggered: once a
    /// scheduled panic fires, subsequent calls in the same fault window
    /// return false, so a supervised respawn does not immediately
    /// re-panic on the next sub-batch.
    fn take_panic(&self, worker: usize, now_us: u64) -> bool;

    /// Stall duration to inject before processing, in microseconds of
    /// *wall* time (0 = none). Edge-triggered like [`take_panic`]
    /// (fires once per window): stalls model scheduling hiccups and
    /// must add latency without perturbing any virtual-time counter,
    /// or seeded runs would stop being byte-identical.
    ///
    /// [`take_panic`]: WorkerFaultInjector::take_panic
    fn take_stall_us(&self, worker: usize, now_us: u64) -> u64;

    /// True while worker `worker`'s ingress ring should be treated as
    /// saturated. Level-triggered: the *producer* consults this before
    /// pushing and sheds as if `try_push` had failed for the whole
    /// window. Modelling saturation producer-side keeps virtual time
    /// advancing (a blocked producer would freeze the clock that ends
    /// the window) and exercises the same shed path real backpressure
    /// takes.
    fn ring_saturated(&self, worker: usize, now_us: u64) -> bool;
}
