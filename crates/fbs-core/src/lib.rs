//! # fbs-core — the Flow-Based Security (FBS) protocol
//!
//! Layer-independent implementation of the FBS datagram security protocol
//! from Mittra & Woo, *A Flow-Based Approach to Datagram Security*, SIGCOMM
//! 1997. The protocol's two core mechanisms (§5.1):
//!
//! * the **flow association mechanism** ([`fam`]) separates outgoing
//!   datagrams into flows under pluggable policy modules, emitting an
//!   opaque *security flow label* (sfl) per flow;
//! * **zero-message keying** ([`keying`], [`mkd`]) derives the per-flow key
//!   `K_f = H(sfl | K_{S,D} | S | D)` from the Diffie-Hellman pair-based
//!   master key, so the correct destination can compute the flow key from
//!   the datagram alone — no end-to-end exchange, no hard state.
//!
//! Everything cached (master keys, flow keys, public values) is *soft
//! state* ([`cache`]): discardable and recomputable, preserving datagram
//! semantics while amortising crypto cost over a flow's datagrams.
//!
//! The crate is deliberately unaware of any concrete protocol layer; the
//! mapping to an IP-like stack lives in `fbs-ip`, per the paper's §7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batchauth;
pub mod breaker;
pub mod cache;
pub mod clock;
pub mod concurrent;
pub mod error;
pub mod fam;
pub mod fault;
pub mod header;
pub mod keying;
pub mod mem;
pub mod mkd;
pub mod park;
pub mod policy;
pub mod pool;
pub mod principal;
pub mod protocol;
pub mod replay;
pub mod retry;
pub mod ring;
pub mod sealer;
pub mod sfl;

pub use batchauth::{BatchVerifier, ResolveStats};
pub use breaker::{Allow, BreakerConfig, BreakerState, CircuitBreaker, Transition};
pub use cache::{AtomicCacheStats, CacheStats, Lookup, MissKind, SoftCache};
pub use clock::{Clock, ManualClock, SystemClock};
pub use concurrent::{KeyingService, Published, ShardedCache};
pub use error::{FbsError, Result, RuntimeError};
pub use fam::{Classification, Fam, FlowPolicy, FlowRecord, FstEntry, KeyUnavailableVerdict};
pub use fault::WorkerFaultInjector;
pub use header::{EncAlgorithm, HeaderView, SecurityFlowHeader};
pub use keying::{derive_flow_key, FlowKey, KeyDerivation, SealedFlowKey};
pub use mem::{BudgetKind, BudgetSnapshot, MemoryBudget};
pub use mkd::{AtomicMkdStats, MasterKeyDaemon, PinnedDirectory, PublicValueSource, Resilience};
pub use park::{ParkStats, Parked, ParkingQueue};
pub use pool::{BufferPool, PoolStats};
pub use principal::Principal;
pub use protocol::{
    flow_key_hash, AtomicEndpointStats, Datagram, FbsConfig, FbsEndpoint, FlowCodec, FlowKeyId,
    ProtectedDatagram, MIN_SHIPPED_MAC,
};
pub use replay::FreshnessWindow;
pub use retry::{RetryOutcome, RetryPolicy};
pub use ring::SpscRing;
pub use sealer::{OpenJob, ParallelSealer, SealJob, SealerStats};
pub use sfl::SflAllocator;
