//! Per-shard memory budgets for the soft-state tables.
//!
//! Every FBS soft-state structure — the TFKC/RFKC/MKC key caches, the
//! FAM's flow state table — holds state that can be discarded and
//! recomputed, so the correct response to memory pressure is *eviction*,
//! never allocation failure. A [`MemoryBudget`] gives one shard (or one
//! endpoint) a typed byte ledger: each table charges its resident bytes
//! under a [`BudgetKind`], and a table that is about to allocate past the
//! limit evicts its own entries first (budget-driven eviction before
//! allocation). Budgets are worker-owned in the sharded runtime — each
//! worker enforces the budget of the shards it owns with no cross-shard
//! coordination — but the counters are atomics behind an `Arc`, so a
//! metrics scrape or health probe on another thread can read usage
//! without touching the owning worker.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which soft-state table a charge belongs to. The ledger is typed so
/// `mem.shard.<i>.*` gauges can say *what* is resident, not just how
/// much.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// Transmit-side flow key cache entries.
    Tfkc,
    /// Receive-side flow key cache entries.
    Rfkc,
    /// Master key cache entries.
    Mkc,
    /// Flow attribute map state (FST slots and history).
    Fam,
}

impl BudgetKind {
    /// All kinds, in gauge order.
    pub const ALL: [BudgetKind; 4] = [
        BudgetKind::Tfkc,
        BudgetKind::Rfkc,
        BudgetKind::Mkc,
        BudgetKind::Fam,
    ];

    /// Lower-case name used in gauge keys.
    pub fn name(self) -> &'static str {
        match self {
            BudgetKind::Tfkc => "tfkc",
            BudgetKind::Rfkc => "rfkc",
            BudgetKind::Mkc => "mkc",
            BudgetKind::Fam => "fam",
        }
    }

    fn index(self) -> usize {
        match self {
            BudgetKind::Tfkc => 0,
            BudgetKind::Rfkc => 1,
            BudgetKind::Mkc => 2,
            BudgetKind::Fam => 3,
        }
    }
}

#[derive(Debug)]
struct BudgetInner {
    /// Byte ceiling; 0 means unbounded (accounting only, never evicts).
    limit_bytes: u64,
    /// Resident bytes per [`BudgetKind`], `BudgetKind::ALL` order.
    used: [AtomicU64; 4],
    /// Times a charge found the budget full and forced eviction (or, with
    /// nothing left to evict, overshot). Monotone; feeds the
    /// `memory_budget_exceeded` health condition.
    exceeded: AtomicU64,
}

/// A point-in-time view of one budget's ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BudgetSnapshot {
    /// Resident bytes charged under [`BudgetKind::Tfkc`].
    pub tfkc_bytes: u64,
    /// Resident bytes charged under [`BudgetKind::Rfkc`].
    pub rfkc_bytes: u64,
    /// Resident bytes charged under [`BudgetKind::Mkc`].
    pub mkc_bytes: u64,
    /// Resident bytes charged under [`BudgetKind::Fam`].
    pub fam_bytes: u64,
    /// Byte ceiling (0 = unbounded).
    pub limit_bytes: u64,
    /// Charges that hit the ceiling.
    pub exceeded_events: u64,
}

impl BudgetSnapshot {
    /// Total resident bytes across every kind.
    pub fn used_bytes(&self) -> u64 {
        self.tfkc_bytes + self.rfkc_bytes + self.mkc_bytes + self.fam_bytes
    }

    /// Fold this ledger into a snapshot under `mem.shard.<i>.*` names —
    /// the same namespace the live registry's per-shard gauge table
    /// uses, so snapshots built either way are comparable.
    pub fn contribute(&self, shard: usize, snap: &mut fbs_obs::MetricsSnapshot) {
        snap.add(&format!("mem.shard.{shard}.tfkc_bytes"), self.tfkc_bytes);
        snap.add(&format!("mem.shard.{shard}.rfkc_bytes"), self.rfkc_bytes);
        snap.add(&format!("mem.shard.{shard}.mkc_bytes"), self.mkc_bytes);
        snap.add(&format!("mem.shard.{shard}.fam_bytes"), self.fam_bytes);
        snap.add(&format!("mem.shard.{shard}.used_bytes"), self.used_bytes());
        snap.add(&format!("mem.shard.{shard}.limit_bytes"), self.limit_bytes);
        snap.add(
            &format!("mem.shard.{shard}.budget_exceeded"),
            self.exceeded_events,
        );
    }
}

/// A typed byte ledger with an optional ceiling. Cloning shares the
/// ledger (`Arc` inside): the owning worker charges and releases, any
/// thread may read.
#[derive(Clone, Debug)]
pub struct MemoryBudget {
    inner: Arc<BudgetInner>,
}

impl MemoryBudget {
    /// A budget with a byte ceiling. Tables attached to it evict before
    /// allocating past `limit_bytes`.
    pub fn bounded(limit_bytes: u64) -> Self {
        MemoryBudget {
            inner: Arc::new(BudgetInner {
                limit_bytes,
                used: Default::default(),
                exceeded: AtomicU64::new(0),
            }),
        }
    }

    /// An accounting-only budget: usage is tracked, nothing is ever
    /// evicted for budget reasons. (`limit_bytes() == 0`.)
    pub fn unbounded() -> Self {
        Self::bounded(0)
    }

    /// The byte ceiling; 0 means unbounded.
    pub fn limit_bytes(&self) -> u64 {
        self.inner.limit_bytes
    }

    /// Total resident bytes across every kind.
    pub fn used_bytes(&self) -> u64 {
        BudgetKind::ALL.iter().map(|k| self.used_by(*k)).sum()
    }

    /// Resident bytes charged under `kind`.
    pub fn used_by(&self, kind: BudgetKind) -> u64 {
        self.inner.used[kind.index()].load(Ordering::Relaxed)
    }

    /// Would charging `bytes` more cross the ceiling? Always false for
    /// unbounded budgets.
    pub fn would_exceed(&self, bytes: u64) -> bool {
        let limit = self.inner.limit_bytes;
        limit > 0 && self.used_bytes().saturating_add(bytes) > limit
    }

    /// Record `bytes` as resident under `kind`. The caller is expected to
    /// have made room first (see [`would_exceed`](Self::would_exceed));
    /// charging past the ceiling is permitted — soft state keeps working
    /// — but counts an exceeded event.
    pub fn charge(&self, kind: BudgetKind, bytes: u64) {
        self.inner.used[kind.index()].fetch_add(bytes, Ordering::Relaxed);
        let limit = self.inner.limit_bytes;
        if limit > 0 && self.used_bytes() > limit {
            self.inner.exceeded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Release `bytes` previously charged under `kind` (saturating: a
    /// release that was never charged clamps at zero rather than
    /// wrapping).
    pub fn release(&self, kind: BudgetKind, bytes: u64) {
        let cell = &self.inner.used[kind.index()];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Charges that found the budget full.
    pub fn exceeded_events(&self) -> u64 {
        self.inner.exceeded.load(Ordering::Relaxed)
    }

    /// Bytes left under the ceiling (`u64::MAX` when unbounded).
    pub fn headroom_bytes(&self) -> u64 {
        let limit = self.inner.limit_bytes;
        if limit == 0 {
            u64::MAX
        } else {
            limit.saturating_sub(self.used_bytes())
        }
    }

    /// Zero every kind's usage and the exceeded count. Used when a shard
    /// is rebuilt after a worker fault: the lost shard's charges would
    /// otherwise leak into the fresh generation's ledger.
    pub fn reset(&self) {
        for cell in &self.inner.used {
            cell.store(0, Ordering::Relaxed);
        }
        self.inner.exceeded.store(0, Ordering::Relaxed);
    }

    /// Read the ledger into a plain [`BudgetSnapshot`] value.
    pub fn snapshot(&self) -> BudgetSnapshot {
        BudgetSnapshot {
            tfkc_bytes: self.used_by(BudgetKind::Tfkc),
            rfkc_bytes: self.used_by(BudgetKind::Rfkc),
            mkc_bytes: self.used_by(BudgetKind::Mkc),
            fam_bytes: self.used_by(BudgetKind::Fam),
            limit_bytes: self.inner.limit_bytes,
            exceeded_events: self.exceeded_events(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_roundtrip() {
        let b = MemoryBudget::bounded(1000);
        b.charge(BudgetKind::Tfkc, 400);
        b.charge(BudgetKind::Rfkc, 100);
        assert_eq!(b.used_bytes(), 500);
        assert_eq!(b.used_by(BudgetKind::Tfkc), 400);
        assert_eq!(b.headroom_bytes(), 500);
        b.release(BudgetKind::Tfkc, 400);
        assert_eq!(b.used_bytes(), 100);
    }

    #[test]
    fn release_saturates_at_zero() {
        let b = MemoryBudget::unbounded();
        b.charge(BudgetKind::Mkc, 10);
        b.release(BudgetKind::Mkc, 100);
        assert_eq!(b.used_by(BudgetKind::Mkc), 0);
    }

    #[test]
    fn would_exceed_tracks_limit() {
        let b = MemoryBudget::bounded(100);
        assert!(!b.would_exceed(100));
        b.charge(BudgetKind::Fam, 60);
        assert!(b.would_exceed(41));
        assert!(!b.would_exceed(40));
        assert_eq!(b.exceeded_events(), 0);
        b.charge(BudgetKind::Fam, 41);
        assert_eq!(b.exceeded_events(), 1);
    }

    #[test]
    fn unbounded_never_exceeds() {
        let b = MemoryBudget::unbounded();
        b.charge(BudgetKind::Tfkc, u64::MAX / 2);
        assert!(!b.would_exceed(u64::MAX / 2));
        assert_eq!(b.headroom_bytes(), u64::MAX);
        assert_eq!(b.exceeded_events(), 0);
    }

    #[test]
    fn reset_zeroes_ledger() {
        let b = MemoryBudget::bounded(64);
        b.charge(BudgetKind::Tfkc, 100);
        assert!(b.exceeded_events() > 0);
        b.reset();
        assert_eq!(b.used_bytes(), 0);
        assert_eq!(b.exceeded_events(), 0);
    }

    #[test]
    fn snapshot_contributes_shard_namespace() {
        let b = MemoryBudget::bounded(4096);
        b.charge(BudgetKind::Tfkc, 128);
        b.charge(BudgetKind::Fam, 256);
        let snap = b.snapshot();
        assert_eq!(snap.used_bytes(), 384);
        let mut m = fbs_obs::MetricsSnapshot::new();
        snap.contribute(3, &mut m);
        assert_eq!(m.counter("mem.shard.3.tfkc_bytes"), 128);
        assert_eq!(m.counter("mem.shard.3.fam_bytes"), 256);
        assert_eq!(m.counter("mem.shard.3.used_bytes"), 384);
        assert_eq!(m.counter("mem.shard.3.limit_bytes"), 4096);
    }

    #[test]
    fn clones_share_the_ledger() {
        let a = MemoryBudget::bounded(512);
        let b = a.clone();
        a.charge(BudgetKind::Rfkc, 64);
        assert_eq!(b.used_by(BudgetKind::Rfkc), 64);
        b.release(BudgetKind::Rfkc, 64);
        assert_eq!(a.used_bytes(), 0);
    }
}
