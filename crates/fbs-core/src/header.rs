//! The security flow header (paper §5.2, Fig. 2).
//!
//! Fields and sizes follow the paper's IP-mapping choices (§7.2):
//! 64-bit *sfl*, 32-bit confounder, 32-bit minute timestamp, 128-bit MAC
//! (for MD5). On top of the four core fields, the paper says "for
//! generality, the security flow header should also include an algorithm
//! identification field" — we include one (MAC algorithm, encryption
//! algorithm, MAC length) plus an explicit plaintext length so block-cipher
//! zero padding can be trimmed without consulting higher layers.
//!
//! ```text
//!  0               8               16              24            31
//! +---------------------------------------------------------------+
//! |                security flow label (sfl), 64 bits             |
//! +---------------------------------------------------------------+
//! |                     confounder, 32 bits                       |
//! +---------------------------------------------------------------+
//! |            timestamp (minutes since FBS epoch), 32 bits       |
//! +---------------+---------------+---------------+---------------+
//! |   mac alg id  |   enc alg id  |    mac len    |   suite id    |
//! +---------------+---------------+---------------+---------------+
//! |                  plaintext length, 32 bits                    |
//! +---------------------------------------------------------------+
//! |                    MAC (mac len bytes)  ...                   |
//! +---------------------------------------------------------------+
//! ```
//!
//! Byte 19 (formerly reserved-zero) carries the [`CipherSuite`] id. The
//! paper-faithful suite is id 0, so paper-profile frames are bit-identical
//! to the pre-suite wire format.

use crate::error::{FbsError, Result};
use fbs_crypto::{CipherSuite, DesMode, MacAlgorithm};

/// Fixed-size prefix length (everything before the variable-length MAC).
pub const FIXED_PREFIX_LEN: usize = 24;

/// Header length with the paper's MD5 MAC (24 + 16).
pub const HEADER_LEN_MD5: usize = FIXED_PREFIX_LEN + 16;

/// Encryption algorithm selector for the algorithm-ID field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum EncAlgorithm {
    /// No confidentiality: body travels in the clear, MAC only.
    #[default]
    None,
    /// DES in CBC mode — the paper's implementation choice (§7.2).
    DesCbc,
    /// DES in ECB mode with confounder whitening (§5.2).
    DesEcb,
    /// DES in 64-bit CFB mode.
    DesCfb,
    /// DES in 64-bit OFB mode.
    DesOfb,
    /// Triple DES (EDE2) in CBC mode — the stronger-cipher option the
    /// algorithm-ID field exists to enable (CryptoLib shipped 3DES too).
    TdeaCbc,
    /// DES in counter mode, keystream generated 4 blocks at a time through
    /// the word-sliced core — the fast-profile cipher. Stream mode: no
    /// padding, wire body length equals plaintext length.
    DesCtr,
    /// ChaCha20 stream cipher (RFC 8439) — the AEAD-profile cipher.
    ChaCha20,
}

impl EncAlgorithm {
    /// Wire identifier.
    pub fn wire_id(self) -> u8 {
        match self {
            EncAlgorithm::None => 0,
            EncAlgorithm::DesCbc => 1,
            EncAlgorithm::DesEcb => 2,
            EncAlgorithm::DesCfb => 3,
            EncAlgorithm::DesOfb => 4,
            EncAlgorithm::TdeaCbc => 5,
            EncAlgorithm::DesCtr => 6,
            EncAlgorithm::ChaCha20 => 7,
        }
    }

    /// Inverse of [`wire_id`](Self::wire_id).
    pub fn from_wire_id(id: u8) -> Option<Self> {
        Some(match id {
            0 => EncAlgorithm::None,
            1 => EncAlgorithm::DesCbc,
            2 => EncAlgorithm::DesEcb,
            3 => EncAlgorithm::DesCfb,
            4 => EncAlgorithm::DesOfb,
            5 => EncAlgorithm::TdeaCbc,
            6 => EncAlgorithm::DesCtr,
            7 => EncAlgorithm::ChaCha20,
            _ => return None,
        })
    }

    /// The FIPS 81 mode, if this algorithm encrypts *as a block cipher*.
    /// `None` for [`EncAlgorithm::None`] and for the stream algorithms,
    /// which the suite dispatch handles before this is consulted.
    pub fn des_mode(self) -> Option<DesMode> {
        match self {
            EncAlgorithm::None | EncAlgorithm::DesCtr | EncAlgorithm::ChaCha20 => None,
            EncAlgorithm::DesCbc | EncAlgorithm::TdeaCbc => Some(DesMode::Cbc),
            EncAlgorithm::DesEcb => Some(DesMode::Ecb),
            EncAlgorithm::DesCfb => Some(DesMode::Cfb),
            EncAlgorithm::DesOfb => Some(DesMode::Ofb),
        }
    }

    /// True for stream algorithms: no padding, wire body length equals
    /// plaintext length.
    pub fn is_stream(self) -> bool {
        matches!(self, EncAlgorithm::DesCtr | EncAlgorithm::ChaCha20)
    }

    /// True when the cipher is Triple DES rather than single DES.
    pub fn is_triple(self) -> bool {
        self == EncAlgorithm::TdeaCbc
    }

    /// True when the body is encrypted (the `secret` flag of Fig. 4, read
    /// back from the header on the receive side).
    pub fn is_secret(self) -> bool {
        self != EncAlgorithm::None
    }
}

/// The FBS security flow header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecurityFlowHeader {
    /// Security flow label: the opaque per-flow identifier produced by the
    /// flow association mechanism.
    pub sfl: u64,
    /// Per-datagram statistically-random confounder; duplicated to 64 bits
    /// to form the DES IV (§7.2).
    pub confounder: u32,
    /// Minutes since the FBS epoch; replay freshness check input.
    pub timestamp: u32,
    /// MAC algorithm (algorithm-ID field).
    pub mac_alg: MacAlgorithm,
    /// Encryption algorithm (algorithm-ID field); `None` ⇒ MAC-only.
    pub enc_alg: EncAlgorithm,
    /// Crypto-plane profile (header byte 19; 0 = paper-faithful).
    pub suite: CipherSuite,
    /// Plaintext body length before padding (equal to body length when
    /// `enc_alg` is `None`).
    pub plaintext_len: u32,
    /// The keyed MAC over confounder | timestamp | payload (§5.2). Possibly
    /// truncated (§5.3 allows truncation to save header bytes).
    pub mac: Vec<u8>,
}

impl SecurityFlowHeader {
    /// Total encoded length of this header.
    pub fn encoded_len(&self) -> usize {
        FIXED_PREFIX_LEN + self.mac.len()
    }

    /// The 64-bit DES IV: the 32-bit confounder duplicated (§7.2).
    pub fn iv64(&self) -> u64 {
        ((self.confounder as u64) << 32) | self.confounder as u64
    }

    /// Serialise to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&self.sfl.to_be_bytes());
        out.extend_from_slice(&self.confounder.to_be_bytes());
        out.extend_from_slice(&self.timestamp.to_be_bytes());
        out.push(self.mac_alg.wire_id());
        out.push(self.enc_alg.wire_id());
        out.push(self.mac.len() as u8);
        out.push(self.suite.wire_id());
        out.extend_from_slice(&self.plaintext_len.to_be_bytes());
        out.extend_from_slice(&self.mac);
        out
    }

    /// Borrow this header as the allocation-free [`HeaderView`] the open
    /// core consumes, so owned headers and wire parses feed the same path.
    pub fn view(&self) -> HeaderView<'_> {
        HeaderView {
            sfl: self.sfl,
            confounder: self.confounder,
            timestamp: self.timestamp,
            mac_alg: self.mac_alg,
            enc_alg: self.enc_alg,
            suite: self.suite,
            plaintext_len: self.plaintext_len,
            mac: &self.mac,
        }
    }

    /// Parse a header from the front of `buf`, returning the header and the
    /// number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        let (view, used) = HeaderView::parse(buf)?;
        Ok((
            SecurityFlowHeader {
                sfl: view.sfl,
                confounder: view.confounder,
                timestamp: view.timestamp,
                mac_alg: view.mac_alg,
                enc_alg: view.enc_alg,
                suite: view.suite,
                plaintext_len: view.plaintext_len,
                mac: view.mac.to_vec(),
            },
            used,
        ))
    }
}

/// A borrowed, allocation-free view of a decoded security flow header: the
/// fixed fields plus the MAC as a slice into the original buffer. The open
/// fast path parses with this; [`SecurityFlowHeader::decode`] is built on
/// it, so both share one set of validation rules.
#[derive(Clone, Copy, Debug)]
pub struct HeaderView<'a> {
    /// Security flow label.
    pub sfl: u64,
    /// Per-datagram confounder.
    pub confounder: u32,
    /// Minutes since the FBS epoch.
    pub timestamp: u32,
    /// MAC algorithm.
    pub mac_alg: MacAlgorithm,
    /// Encryption algorithm.
    pub enc_alg: EncAlgorithm,
    /// Crypto-plane profile (header byte 19; 0 = paper-faithful).
    pub suite: CipherSuite,
    /// Plaintext body length before padding.
    pub plaintext_len: u32,
    /// The (possibly truncated) MAC bytes, borrowed from the wire buffer.
    pub mac: &'a [u8],
}

impl<'a> HeaderView<'a> {
    /// Parse a header from the front of `buf`, returning the view and the
    /// number of bytes consumed.
    pub fn parse(buf: &'a [u8]) -> Result<(Self, usize)> {
        if buf.len() < FIXED_PREFIX_LEN {
            return Err(FbsError::MalformedHeader("shorter than fixed prefix"));
        }
        let sfl = u64::from_be_bytes(buf[0..8].try_into().unwrap());
        let confounder = u32::from_be_bytes(buf[8..12].try_into().unwrap());
        let timestamp = u32::from_be_bytes(buf[12..16].try_into().unwrap());
        let mac_alg =
            MacAlgorithm::from_wire_id(buf[16]).ok_or(FbsError::UnknownAlgorithm(buf[16]))?;
        let enc_alg =
            EncAlgorithm::from_wire_id(buf[17]).ok_or(FbsError::UnknownAlgorithm(buf[17]))?;
        let mac_len = buf[18] as usize;
        if mac_len == 0 || mac_len > mac_alg.output_len() {
            return Err(FbsError::MalformedHeader("bad MAC length"));
        }
        let suite =
            CipherSuite::from_wire_id(buf[19]).ok_or(FbsError::UnknownAlgorithm(buf[19]))?;
        let plaintext_len = u32::from_be_bytes(buf[20..24].try_into().unwrap());
        if buf.len() < FIXED_PREFIX_LEN + mac_len {
            return Err(FbsError::MalformedHeader("truncated MAC"));
        }
        let mac = &buf[FIXED_PREFIX_LEN..FIXED_PREFIX_LEN + mac_len];
        Ok((
            HeaderView {
                sfl,
                confounder,
                timestamp,
                mac_alg,
                enc_alg,
                suite,
                plaintext_len,
                mac,
            },
            FIXED_PREFIX_LEN + mac_len,
        ))
    }

    /// The 64-bit DES IV: the 32-bit confounder duplicated (§7.2).
    pub fn iv64(&self) -> u64 {
        ((self.confounder as u64) << 32) | self.confounder as u64
    }

    /// Serialise this header into `out[..FIXED_PREFIX_LEN + mac.len()]` —
    /// the in-place counterpart of [`SecurityFlowHeader::encode`], used by
    /// the seal fast path to write straight into a pooled wire buffer.
    ///
    /// # Panics
    /// Panics if `out` is shorter than the encoded header.
    pub fn encode_into(&self, out: &mut [u8]) {
        out[0..8].copy_from_slice(&self.sfl.to_be_bytes());
        out[8..12].copy_from_slice(&self.confounder.to_be_bytes());
        out[12..16].copy_from_slice(&self.timestamp.to_be_bytes());
        out[16] = self.mac_alg.wire_id();
        out[17] = self.enc_alg.wire_id();
        out[18] = self.mac.len() as u8;
        out[19] = self.suite.wire_id();
        out[20..24].copy_from_slice(&self.plaintext_len.to_be_bytes());
        out[FIXED_PREFIX_LEN..FIXED_PREFIX_LEN + self.mac.len()].copy_from_slice(self.mac);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SecurityFlowHeader {
        SecurityFlowHeader {
            sfl: 0x0102030405060708,
            confounder: 0xDEADBEEF,
            timestamp: 123_456,
            mac_alg: MacAlgorithm::KeyedMd5,
            enc_alg: EncAlgorithm::DesCbc,
            suite: CipherSuite::Paper,
            plaintext_len: 1000,
            mac: vec![0xAB; 16],
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let bytes = h.encode();
        assert_eq!(bytes.len(), HEADER_LEN_MD5);
        let (parsed, used) = SecurityFlowHeader::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(parsed, h);
    }

    #[test]
    fn decode_with_trailing_payload() {
        let mut bytes = sample().encode();
        bytes.extend_from_slice(b"payload follows");
        let (parsed, used) = SecurityFlowHeader::decode(&bytes).unwrap();
        assert_eq!(used, HEADER_LEN_MD5);
        assert_eq!(parsed.sfl, 0x0102030405060708);
    }

    #[test]
    fn truncated_mac_detected() {
        let bytes = sample().encode();
        assert!(matches!(
            SecurityFlowHeader::decode(&bytes[..30]),
            Err(FbsError::MalformedHeader("truncated MAC"))
        ));
    }

    #[test]
    fn too_short_prefix_detected() {
        assert!(SecurityFlowHeader::decode(&[0u8; 10]).is_err());
    }

    #[test]
    fn unknown_algorithms_detected() {
        let mut bytes = sample().encode();
        bytes[16] = 250;
        assert!(matches!(
            SecurityFlowHeader::decode(&bytes),
            Err(FbsError::UnknownAlgorithm(250))
        ));
        let mut bytes = sample().encode();
        bytes[17] = 99;
        assert!(matches!(
            SecurityFlowHeader::decode(&bytes),
            Err(FbsError::UnknownAlgorithm(99))
        ));
    }

    #[test]
    fn zero_or_oversize_mac_len_rejected() {
        let mut bytes = sample().encode();
        bytes[18] = 0;
        assert!(SecurityFlowHeader::decode(&bytes).is_err());
        let mut bytes = sample().encode();
        bytes[18] = 17; // > MD5 output
        assert!(SecurityFlowHeader::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_mac_supported() {
        // §5.3: "it is possible though, with reduced security, to use only
        // part of these hashes as the MAC".
        let mut h = sample();
        h.mac = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let bytes = h.encode();
        assert_eq!(bytes.len(), FIXED_PREFIX_LEN + 8);
        let (parsed, _) = SecurityFlowHeader::decode(&bytes).unwrap();
        assert_eq!(parsed.mac.len(), 8);
    }

    #[test]
    fn iv_duplicates_confounder() {
        assert_eq!(sample().iv64(), 0xDEADBEEF_DEADBEEF);
    }

    #[test]
    fn view_encode_into_matches_encode() {
        let h = sample();
        let wire = h.encode();
        let (view, used) = HeaderView::parse(&wire).unwrap();
        let mut buf = vec![0u8; used];
        view.encode_into(&mut buf);
        assert_eq!(buf, h.encode());
        assert_eq!(view.iv64(), h.iv64());
    }

    #[test]
    fn enc_alg_wire_roundtrip() {
        for alg in [
            EncAlgorithm::None,
            EncAlgorithm::DesCbc,
            EncAlgorithm::DesEcb,
            EncAlgorithm::DesCfb,
            EncAlgorithm::DesOfb,
            EncAlgorithm::TdeaCbc,
            EncAlgorithm::DesCtr,
            EncAlgorithm::ChaCha20,
        ] {
            assert_eq!(EncAlgorithm::from_wire_id(alg.wire_id()), Some(alg));
        }
        assert!(EncAlgorithm::TdeaCbc.is_triple());
        assert!(!EncAlgorithm::DesCbc.is_triple());
        assert_eq!(EncAlgorithm::from_wire_id(42), None);
        assert!(!EncAlgorithm::None.is_secret());
        assert!(EncAlgorithm::DesCbc.is_secret());
        // Stream algorithms encrypt but have no FIPS 81 block mode.
        for alg in [EncAlgorithm::DesCtr, EncAlgorithm::ChaCha20] {
            assert!(alg.is_stream());
            assert!(alg.is_secret());
            assert!(alg.des_mode().is_none());
        }
        assert!(!EncAlgorithm::DesCbc.is_stream());
        assert!(!EncAlgorithm::None.is_stream());
    }

    #[test]
    fn suite_byte_roundtrips() {
        for suite in CipherSuite::ALL {
            let mut h = sample();
            h.suite = suite;
            let bytes = h.encode();
            assert_eq!(bytes[19], suite.wire_id());
            let (parsed, _) = SecurityFlowHeader::decode(&bytes).unwrap();
            assert_eq!(parsed.suite, suite);
        }
    }

    #[test]
    fn paper_suite_keeps_byte19_zero() {
        // Pre-suite frames wrote a reserved zero at byte 19; the paper
        // suite must keep that byte zero for bit-identical output.
        assert_eq!(sample().encode()[19], 0);
    }

    #[test]
    fn unknown_suite_byte_rejected() {
        let mut bytes = sample().encode();
        bytes[19] = 9;
        assert!(matches!(
            SecurityFlowHeader::decode(&bytes),
            Err(FbsError::UnknownAlgorithm(9))
        ));
    }

    #[test]
    fn paper_core_fields_are_32_bytes() {
        // The paper's core header (sfl 8 + confounder 4 + ts 4 + MD5 MAC 16)
        // is 32 bytes; our algorithm-ID extension adds 8.
        assert_eq!(HEADER_LEN_MD5, 32 + 8);
    }
}
