//! Batch-amortized MAC verification (MABS-style, PAPERS.md arxiv
//! 1311.6001) with bisection fallback.
//!
//! Each datagram still carries its own tag — datagrams must stay
//! independently deliverable — but the receive side defers the
//! accept/reject *decision*: a worker's sub-batch accumulates
//! (computed, shipped) tag pairs into a [`BatchVerifier`] and resolves
//! them with ONE fold over the XOR-differences. The clean case (every tag
//! matches, by far the common one) costs a single branch for the whole
//! sub-batch instead of one comparison-and-branch per datagram, and keeps
//! the per-datagram loop free of the reject control-flow.
//!
//! On a dirty fold the verifier bisects: ranges whose fold is clean are
//! accepted wholesale, dirty ranges split until single datagrams are
//! isolated. One corrupt datagram in a sub-batch of `n` degrades to
//! `O(log n)` range folds — scalar verification of the guilty datagram —
//! instead of rejecting the whole batch.
//!
//! All comparisons remain constant-time in the tag bytes (XOR-OR folds,
//! same discipline as `mac_eq`); only match/mismatch topology is revealed,
//! exactly as with per-datagram comparison.

use fbs_crypto::mac::MAX_MAC_SIZE;

/// One deferred tag comparison.
#[derive(Clone, Copy)]
struct TagPair {
    /// Locally computed (truncated) MAC.
    computed: [u8; MAX_MAC_SIZE],
    /// Shipped MAC, copied out of the wire buffer (which is recycled
    /// before resolution).
    shipped: [u8; MAX_MAC_SIZE],
    /// Compared length (the truncated MAC length).
    len: usize,
    /// Lengths disagreed at push time: fails regardless of bytes.
    len_mismatch: bool,
    /// Caller correlation token (e.g. sub-batch item index).
    token: usize,
}

impl TagPair {
    /// OR-fold of the XOR difference: zero iff the tags match.
    fn diff(&self) -> u8 {
        let mut d = self.len_mismatch as u8;
        for i in 0..self.len {
            d |= self.computed[i] ^ self.shipped[i];
        }
        d
    }
}

/// Counters from one [`BatchVerifier::resolve`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResolveStats {
    /// Datagrams covered by this resolution.
    pub checked: usize,
    /// Range folds performed (1 when the batch was clean).
    pub folds: u64,
    /// Bisection steps taken (0 when the batch was clean).
    pub bisections: u64,
    /// Datagrams that failed verification.
    pub rejected: usize,
}

/// Reusable accumulator for deferred tag comparisons. Workers keep one per
/// worker and `resolve` it at sub-batch boundaries; the backing storage is
/// retained across batches, so steady-state operation allocates nothing.
#[derive(Default)]
pub struct BatchVerifier {
    pending: Vec<TagPair>,
}

impl BatchVerifier {
    /// An empty verifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of deferred comparisons.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Defer one comparison. `computed` is the locally recomputed
    /// (truncated) tag, `shipped` the tag from the wire; `token` is echoed
    /// back for failures at resolution.
    pub fn push(&mut self, computed: &[u8], shipped: &[u8], token: usize) {
        debug_assert!(computed.len() <= MAX_MAC_SIZE && shipped.len() <= MAX_MAC_SIZE);
        let mut pair = TagPair {
            computed: [0; MAX_MAC_SIZE],
            shipped: [0; MAX_MAC_SIZE],
            len: computed.len().min(MAX_MAC_SIZE),
            len_mismatch: computed.len() != shipped.len(),
            token,
        };
        pair.computed[..pair.len].copy_from_slice(&computed[..pair.len]);
        let ship_n = shipped.len().min(MAX_MAC_SIZE);
        pair.shipped[..ship_n].copy_from_slice(&shipped[..ship_n]);
        self.pending.push(pair);
    }

    /// OR-fold over a range of pending pairs: zero iff every tag matches.
    fn fold(&self, lo: usize, hi: usize) -> u8 {
        let mut d = 0u8;
        for pair in &self.pending[lo..hi] {
            d |= pair.diff();
        }
        d
    }

    /// Resolve every pending comparison: tokens of failed datagrams are
    /// appended to `failed` (left untouched when the batch is clean).
    /// Pending state is cleared; the verifier is immediately reusable.
    pub fn resolve(&mut self, failed: &mut Vec<usize>) -> ResolveStats {
        let n = self.pending.len();
        let mut stats = ResolveStats {
            checked: n,
            ..ResolveStats::default()
        };
        if n == 0 {
            return stats;
        }
        stats.folds = 1;
        if self.fold(0, n) == 0 {
            // The common case: one fold, one branch, whole batch accepted.
            self.pending.clear();
            return stats;
        }
        // Bisection: split dirty ranges until single datagrams isolate.
        let mut ranges = vec![(0usize, n)];
        while let Some((lo, hi)) = ranges.pop() {
            if hi - lo == 1 {
                if self.pending[lo].diff() != 0 {
                    failed.push(self.pending[lo].token);
                    stats.rejected += 1;
                }
                continue;
            }
            stats.bisections += 1;
            let mid = lo + (hi - lo) / 2;
            for (a, b) in [(lo, mid), (mid, hi)] {
                stats.folds += 1;
                if self.fold(a, b) != 0 {
                    ranges.push((a, b));
                }
            }
        }
        self.pending.clear();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(b: u8) -> [u8; 16] {
        [b; 16]
    }

    #[test]
    fn clean_batch_is_one_fold() {
        let mut v = BatchVerifier::new();
        for i in 0..64 {
            v.push(&tag(i as u8), &tag(i as u8), i);
        }
        let mut failed = Vec::new();
        let stats = v.resolve(&mut failed);
        assert!(failed.is_empty());
        assert_eq!(stats.checked, 64);
        assert_eq!(stats.folds, 1);
        assert_eq!(stats.bisections, 0);
        assert_eq!(stats.rejected, 0);
        assert!(v.is_empty());
    }

    #[test]
    fn single_corrupt_datagram_isolated() {
        let mut v = BatchVerifier::new();
        for i in 0..33 {
            let shipped = if i == 17 { tag(0xFF) } else { tag(i as u8) };
            v.push(&tag(i as u8), &shipped, i);
        }
        let mut failed = Vec::new();
        let stats = v.resolve(&mut failed);
        assert_eq!(failed, vec![17]);
        assert_eq!(stats.rejected, 1);
        assert!(stats.bisections > 0);
        // Bisection is logarithmic, not linear: far fewer folds than a
        // scalar sweep of 33 comparisons would branch on.
        assert!(stats.folds <= 2 * 33_u64.ilog2() as u64 + 3, "{stats:?}");
    }

    #[test]
    fn multiple_corrupt_datagrams_all_isolated() {
        let mut v = BatchVerifier::new();
        let bad = [0usize, 5, 6, 31];
        for i in 0..32 {
            let shipped = if bad.contains(&i) {
                tag(0xEE)
            } else {
                tag(i as u8)
            };
            v.push(&tag(i as u8), &shipped, i);
        }
        let mut failed = Vec::new();
        let stats = v.resolve(&mut failed);
        failed.sort_unstable();
        assert_eq!(failed, bad.to_vec());
        assert_eq!(stats.rejected, 4);
    }

    #[test]
    fn all_corrupt_rejects_all() {
        let mut v = BatchVerifier::new();
        for i in 0..7 {
            v.push(&tag(1), &tag(2), i);
        }
        let mut failed = Vec::new();
        let stats = v.resolve(&mut failed);
        assert_eq!(failed.len(), 7);
        assert_eq!(stats.rejected, 7);
    }

    #[test]
    fn length_mismatch_fails() {
        let mut v = BatchVerifier::new();
        // Empty shipped MAC vs non-empty computed: must NOT vacuously pass.
        v.push(&tag(0)[..8], &[], 0);
        // Truncated shipped MAC with matching prefix: still a mismatch.
        v.push(&tag(3)[..8], &tag(3)[..4], 1);
        let mut failed = Vec::new();
        v.resolve(&mut failed);
        failed.sort_unstable();
        assert_eq!(failed, vec![0, 1]);
    }

    #[test]
    fn reusable_after_resolution() {
        let mut v = BatchVerifier::new();
        v.push(&tag(1), &tag(2), 9);
        let mut failed = Vec::new();
        v.resolve(&mut failed);
        assert_eq!(failed, vec![9]);
        failed.clear();
        v.push(&tag(4), &tag(4), 10);
        let stats = v.resolve(&mut failed);
        assert!(failed.is_empty());
        assert_eq!(stats.checked, 1);
    }

    #[test]
    fn empty_resolution_is_free() {
        let mut v = BatchVerifier::new();
        let mut failed = Vec::new();
        let stats = v.resolve(&mut failed);
        assert_eq!(stats, ResolveStats::default());
    }
}
