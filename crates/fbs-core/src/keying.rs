//! Zero-message keying: flow key derivation (§5.1-5.2).
//!
//! `K_f = H(sfl | K_{S,D} | S | D)` where `H` is a one-way cryptographic
//! hash. Knowing `K_{S,D}` and the *sfl* makes derivation cheap; knowing a
//! flow key reveals neither the master key nor any sibling flow key (the
//! §6.1 containment property). `S` and `D` are included to explicitly tie
//! the flow key to the principal pair, which also serves multi-homed
//! principals.

use crate::header::EncAlgorithm;
use crate::principal::Principal;
use fbs_crypto::des::TripleDes;
use fbs_crypto::{md5::Md5, sha1::Sha1, CipherSuite, Des, MacAlgorithm, MacContext};
use std::sync::OnceLock;

/// Hash used for flow-key derivation (the paper names MD5, SHS, even DES as
/// candidates for `H`; we provide the two real hashes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum KeyDerivation {
    /// MD5: 16-byte flow keys (the implementation's choice).
    #[default]
    Md5,
    /// SHA-1: 20-byte flow keys.
    Sha1,
}

/// A derived per-flow key. Soft state: safe to discard and recompute.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct FlowKey(pub Vec<u8>);

impl FlowKey {
    /// Key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// First 8 bytes as a DES key (DES uses 56 effective bits of an 8-byte
    /// key; the flow key is long enough for either hash choice).
    pub fn des_key(&self) -> [u8; 8] {
        let mut k = [0u8; 8];
        k.copy_from_slice(&self.0[..8]);
        k
    }

    /// First 16 bytes as a two-key Triple-DES (EDE2) key.
    pub fn tdea_key(&self) -> [u8; 16] {
        let mut k = [0u8; 16];
        k.copy_from_slice(&self.0[..16]);
        k
    }
}

impl std::fmt::Debug for FlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material in logs.
        write!(f, "FlowKey(<{} bytes>)", self.0.len())
    }
}

/// A [`FlowKey`] with its cipher schedules pre-expanded and its
/// [`CipherSuite`] sealed in, so per-flow setup runs once at key-derivation
/// time rather than inside the per-datagram fast path. The flow-key caches
/// store these (behind `Arc`, making cache hits a refcount bump).
///
/// Carrying the suite here is what lets workers dispatch crypto per *key*
/// instead of per *config*: a config change mid-batch cannot change how
/// already-resolved flows seal or open.
pub struct SealedFlowKey {
    key: FlowKey,
    des: Des,
    tdea: OnceLock<TripleDes>,
    suite: CipherSuite,
    /// MAC context with the flow-key prefix already absorbed, cloned per
    /// datagram instead of re-absorbing the key (skips one compression
    /// round for the prefix-keyed algorithms). Not used for Poly1305,
    /// whose key is one-time per datagram.
    mac_prefix: Option<(MacAlgorithm, MacContext)>,
    /// 256-bit ChaCha20 key expanded from the flow key (AEAD suite).
    chacha: OnceLock<[u8; 32]>,
}

impl SealedFlowKey {
    /// Seal `key` under the paper suite: expand its DES schedule now,
    /// everything else on demand. Compatibility entry point; the hot path
    /// uses [`seal_for`](Self::seal_for).
    pub fn seal(key: FlowKey) -> Self {
        let des = Des::new(&key.des_key());
        SealedFlowKey {
            key,
            des,
            tdea: OnceLock::new(),
            suite: CipherSuite::Paper,
            mac_prefix: None,
            chacha: OnceLock::new(),
        }
    }

    /// Seal `key` for a specific profile, building *all* schedules the
    /// configured algorithms will need at derivation time: the DES
    /// schedule, the Triple-DES schedule when `enc_alg` is triple (so the
    /// first datagram of a flow doesn't pay the `new_ede2` build inside a
    /// seal/open stage span), the ChaCha20 key for the AEAD suite, and the
    /// cached MAC key-prefix context. After this, the per-datagram path
    /// performs no schedule construction at all.
    pub fn seal_for(
        key: FlowKey,
        suite: CipherSuite,
        mac_alg: MacAlgorithm,
        enc_alg: EncAlgorithm,
    ) -> Self {
        let sealed = Self::seal(key);
        let mut sealed = SealedFlowKey { suite, ..sealed };
        if enc_alg.is_triple() {
            let _ = sealed.tdea();
        }
        if suite == CipherSuite::AeadChaPoly {
            let _ = sealed.chacha_key();
        } else if mac_alg != MacAlgorithm::Poly1305 {
            sealed.mac_prefix = Some((mac_alg, mac_alg.begin(sealed.key.as_bytes())));
        }
        sealed
    }

    /// The profile this key was sealed for.
    pub fn suite(&self) -> CipherSuite {
        self.suite
    }

    /// The underlying flow key.
    pub fn key(&self) -> &FlowKey {
        &self.key
    }

    /// Key bytes (MAC keying material).
    pub fn as_bytes(&self) -> &[u8] {
        self.key.as_bytes()
    }

    /// The cached single-DES schedule.
    pub fn des(&self) -> &Des {
        &self.des
    }

    /// The cached two-key Triple-DES (EDE2) schedule. Pre-built by
    /// [`seal_for`](Self::seal_for) when the configured cipher is triple;
    /// the lazy fallback covers received frames whose header names TDEA
    /// even though the local config does not.
    pub fn tdea(&self) -> &TripleDes {
        self.tdea
            .get_or_init(|| TripleDes::new_ede2(&self.key.tdea_key()))
    }

    /// The 256-bit ChaCha20 key: the flow key expanded through two
    /// domain-separated MD5 invocations (the flow key itself is only 16 or
    /// 20 bytes). Pre-built by [`seal_for`](Self::seal_for) for the AEAD
    /// suite.
    pub fn chacha_key(&self) -> &[u8; 32] {
        self.chacha.get_or_init(|| {
            let mut out = [0u8; 32];
            let mut h = Md5::new();
            h.update(self.key.as_bytes());
            h.update(b"\x00fbs-chacha");
            out[..16].copy_from_slice(&h.finalize());
            let mut h = Md5::new();
            h.update(self.key.as_bytes());
            h.update(b"\x01fbs-chacha");
            out[16..].copy_from_slice(&h.finalize());
            out
        })
    }

    /// Begin a MAC computation keyed by this flow key: clones the cached
    /// key-prefix context when `alg` matches the sealed algorithm, falls
    /// back to absorbing the key otherwise (e.g. a received frame naming a
    /// different MAC than the local config).
    pub fn mac_begin(&self, alg: MacAlgorithm) -> MacContext {
        match &self.mac_prefix {
            Some((cached_alg, ctx)) if *cached_alg == alg => ctx.clone(),
            _ => alg.begin(self.key.as_bytes()),
        }
    }
}

impl std::fmt::Debug for SealedFlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Cached subkeys are key material too: redact like FlowKey.
        write!(f, "SealedFlowKey({:?})", self.key)
    }
}

/// Derive `K_f = H(sfl | K_{S,D} | S | D)`.
///
/// Principal encodings are length-prefixed inside the hash input so that
/// distinct `(S, D)` pairs can never collide by boundary-shifting (e.g.
/// S="ab", D="c" vs S="a", D="bc").
pub fn derive_flow_key(
    derivation: KeyDerivation,
    sfl: u64,
    master_key: &[u8],
    source: &Principal,
    destination: &Principal,
) -> FlowKey {
    let s_len = (source.len() as u32).to_be_bytes();
    let d_len = (destination.len() as u32).to_be_bytes();
    match derivation {
        KeyDerivation::Md5 => {
            let mut h = Md5::new();
            h.update(&sfl.to_be_bytes());
            h.update(master_key);
            h.update(&s_len);
            h.update(source.as_bytes());
            h.update(&d_len);
            h.update(destination.as_bytes());
            FlowKey(h.finalize().to_vec())
        }
        KeyDerivation::Sha1 => {
            let mut h = Sha1::new();
            h.update(&sfl.to_be_bytes());
            h.update(master_key);
            h.update(&s_len);
            h.update(source.as_bytes());
            h.update(&d_len);
            h.update(destination.as_bytes());
            FlowKey(h.finalize().to_vec())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> Principal {
        Principal::named(name)
    }

    #[test]
    fn deterministic() {
        let k1 = derive_flow_key(KeyDerivation::Md5, 7, b"master", &p("S"), &p("D"));
        let k2 = derive_flow_key(KeyDerivation::Md5, 7, b"master", &p("S"), &p("D"));
        assert_eq!(k1, k2);
        assert_eq!(k1.as_bytes().len(), 16);
    }

    #[test]
    fn sha1_variant_is_20_bytes() {
        let k = derive_flow_key(KeyDerivation::Sha1, 7, b"master", &p("S"), &p("D"));
        assert_eq!(k.as_bytes().len(), 20);
    }

    #[test]
    fn sfl_separates_flows() {
        // Breaking one flow key must not compromise sibling flows (§6.1).
        let k1 = derive_flow_key(KeyDerivation::Md5, 1, b"master", &p("S"), &p("D"));
        let k2 = derive_flow_key(KeyDerivation::Md5, 2, b"master", &p("S"), &p("D"));
        assert_ne!(k1, k2);
    }

    #[test]
    fn direction_matters() {
        // Flows are unidirectional (§5.2 observations): S→D and D→S with the
        // same sfl yield different keys.
        let k_sd = derive_flow_key(KeyDerivation::Md5, 9, b"master", &p("S"), &p("D"));
        let k_ds = derive_flow_key(KeyDerivation::Md5, 9, b"master", &p("D"), &p("S"));
        assert_ne!(k_sd, k_ds);
    }

    #[test]
    fn master_key_matters() {
        let k1 = derive_flow_key(KeyDerivation::Md5, 9, b"master-1", &p("S"), &p("D"));
        let k2 = derive_flow_key(KeyDerivation::Md5, 9, b"master-2", &p("S"), &p("D"));
        assert_ne!(k1, k2);
    }

    #[test]
    fn principal_boundary_shifting_cannot_collide() {
        let k1 = derive_flow_key(KeyDerivation::Md5, 9, b"m", &p("ab"), &p("c"));
        let k2 = derive_flow_key(KeyDerivation::Md5, 9, b"m", &p("a"), &p("bc"));
        assert_ne!(k1, k2);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let k = derive_flow_key(KeyDerivation::Md5, 9, b"m", &p("S"), &p("D"));
        assert_eq!(format!("{k:?}"), "FlowKey(<16 bytes>)");
    }

    #[test]
    fn des_key_is_prefix() {
        let k = derive_flow_key(KeyDerivation::Md5, 9, b"m", &p("S"), &p("D"));
        assert_eq!(&k.des_key()[..], &k.as_bytes()[..8]);
    }

    #[test]
    fn seal_for_prebuilds_tdea_schedule() {
        use fbs_crypto::des::key_schedule_count;
        let k = derive_flow_key(KeyDerivation::Md5, 9, b"m", &p("S"), &p("D"));
        let sealed = SealedFlowKey::seal_for(
            k,
            CipherSuite::Paper,
            MacAlgorithm::KeyedMd5,
            EncAlgorithm::TdeaCbc,
        );
        // The first datagram of the flow must not pay `new_ede2` inside a
        // stage span: the schedule already exists.
        let before = key_schedule_count();
        let _ = sealed.tdea();
        assert_eq!(
            key_schedule_count(),
            before,
            "TDEA schedule must be built at key-derivation time"
        );
    }

    #[test]
    fn mac_begin_cached_prefix_matches_fresh() {
        let k = derive_flow_key(KeyDerivation::Md5, 9, b"m", &p("S"), &p("D"));
        let bytes = k.as_bytes().to_vec();
        let sealed = SealedFlowKey::seal_for(
            k,
            CipherSuite::FastDes,
            MacAlgorithm::KeyedMd5,
            EncAlgorithm::DesCtr,
        );
        for msg in [&b"datagram one"[..], b"two", b""] {
            let mut cached = sealed.mac_begin(MacAlgorithm::KeyedMd5);
            cached.update(msg);
            let mut fresh = MacAlgorithm::KeyedMd5.begin(&bytes);
            fresh.update(msg);
            assert_eq!(cached.finalize(), fresh.finalize());
        }
        // A mismatching algorithm falls back to a fresh absorb.
        let mut other = sealed.mac_begin(MacAlgorithm::KeyedSha1);
        other.update(b"x");
        let mut fresh = MacAlgorithm::KeyedSha1.begin(&bytes);
        fresh.update(b"x");
        assert_eq!(other.finalize(), fresh.finalize());
    }

    #[test]
    fn chacha_key_is_deterministic_and_key_separated() {
        let k1 = derive_flow_key(KeyDerivation::Md5, 1, b"m", &p("S"), &p("D"));
        let k2 = derive_flow_key(KeyDerivation::Md5, 2, b"m", &p("S"), &p("D"));
        let s1a = SealedFlowKey::seal(k1.clone());
        let s1b = SealedFlowKey::seal(k1);
        let s2 = SealedFlowKey::seal(k2);
        assert_eq!(s1a.chacha_key(), s1b.chacha_key());
        assert_ne!(s1a.chacha_key(), s2.chacha_key());
    }

    #[test]
    fn seal_defaults_to_paper_suite() {
        let k = derive_flow_key(KeyDerivation::Md5, 9, b"m", &p("S"), &p("D"));
        assert_eq!(SealedFlowKey::seal(k).suite(), CipherSuite::Paper);
    }
}
