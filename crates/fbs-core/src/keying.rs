//! Zero-message keying: flow key derivation (§5.1-5.2).
//!
//! `K_f = H(sfl | K_{S,D} | S | D)` where `H` is a one-way cryptographic
//! hash. Knowing `K_{S,D}` and the *sfl* makes derivation cheap; knowing a
//! flow key reveals neither the master key nor any sibling flow key (the
//! §6.1 containment property). `S` and `D` are included to explicitly tie
//! the flow key to the principal pair, which also serves multi-homed
//! principals.

use crate::principal::Principal;
use fbs_crypto::des::TripleDes;
use fbs_crypto::{md5::Md5, sha1::Sha1, Des};
use std::sync::OnceLock;

/// Hash used for flow-key derivation (the paper names MD5, SHS, even DES as
/// candidates for `H`; we provide the two real hashes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum KeyDerivation {
    /// MD5: 16-byte flow keys (the implementation's choice).
    #[default]
    Md5,
    /// SHA-1: 20-byte flow keys.
    Sha1,
}

/// A derived per-flow key. Soft state: safe to discard and recompute.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct FlowKey(pub Vec<u8>);

impl FlowKey {
    /// Key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// First 8 bytes as a DES key (DES uses 56 effective bits of an 8-byte
    /// key; the flow key is long enough for either hash choice).
    pub fn des_key(&self) -> [u8; 8] {
        let mut k = [0u8; 8];
        k.copy_from_slice(&self.0[..8]);
        k
    }

    /// First 16 bytes as a two-key Triple-DES (EDE2) key.
    pub fn tdea_key(&self) -> [u8; 16] {
        let mut k = [0u8; 16];
        k.copy_from_slice(&self.0[..16]);
        k
    }
}

impl std::fmt::Debug for FlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material in logs.
        write!(f, "FlowKey(<{} bytes>)", self.0.len())
    }
}

/// A [`FlowKey`] with its DES key schedule pre-expanded, so subkey expansion
/// runs once per flow rather than once per datagram. The flow-key caches
/// store these (behind `Arc`, making cache hits a refcount bump); the
/// Triple-DES schedule is built lazily on first use since most deployments
/// run single DES.
pub struct SealedFlowKey {
    key: FlowKey,
    des: Des,
    tdea: OnceLock<TripleDes>,
}

impl SealedFlowKey {
    /// Seal `key`: expand its DES schedule now, Triple-DES on demand.
    pub fn seal(key: FlowKey) -> Self {
        let des = Des::new(&key.des_key());
        SealedFlowKey {
            key,
            des,
            tdea: OnceLock::new(),
        }
    }

    /// The underlying flow key.
    pub fn key(&self) -> &FlowKey {
        &self.key
    }

    /// Key bytes (MAC keying material).
    pub fn as_bytes(&self) -> &[u8] {
        self.key.as_bytes()
    }

    /// The cached single-DES schedule.
    pub fn des(&self) -> &Des {
        &self.des
    }

    /// The cached two-key Triple-DES (EDE2) schedule, built on first use.
    pub fn tdea(&self) -> &TripleDes {
        self.tdea
            .get_or_init(|| TripleDes::new_ede2(&self.key.tdea_key()))
    }
}

impl std::fmt::Debug for SealedFlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Cached subkeys are key material too: redact like FlowKey.
        write!(f, "SealedFlowKey({:?})", self.key)
    }
}

/// Derive `K_f = H(sfl | K_{S,D} | S | D)`.
///
/// Principal encodings are length-prefixed inside the hash input so that
/// distinct `(S, D)` pairs can never collide by boundary-shifting (e.g.
/// S="ab", D="c" vs S="a", D="bc").
pub fn derive_flow_key(
    derivation: KeyDerivation,
    sfl: u64,
    master_key: &[u8],
    source: &Principal,
    destination: &Principal,
) -> FlowKey {
    let s_len = (source.len() as u32).to_be_bytes();
    let d_len = (destination.len() as u32).to_be_bytes();
    match derivation {
        KeyDerivation::Md5 => {
            let mut h = Md5::new();
            h.update(&sfl.to_be_bytes());
            h.update(master_key);
            h.update(&s_len);
            h.update(source.as_bytes());
            h.update(&d_len);
            h.update(destination.as_bytes());
            FlowKey(h.finalize().to_vec())
        }
        KeyDerivation::Sha1 => {
            let mut h = Sha1::new();
            h.update(&sfl.to_be_bytes());
            h.update(master_key);
            h.update(&s_len);
            h.update(source.as_bytes());
            h.update(&d_len);
            h.update(destination.as_bytes());
            FlowKey(h.finalize().to_vec())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> Principal {
        Principal::named(name)
    }

    #[test]
    fn deterministic() {
        let k1 = derive_flow_key(KeyDerivation::Md5, 7, b"master", &p("S"), &p("D"));
        let k2 = derive_flow_key(KeyDerivation::Md5, 7, b"master", &p("S"), &p("D"));
        assert_eq!(k1, k2);
        assert_eq!(k1.as_bytes().len(), 16);
    }

    #[test]
    fn sha1_variant_is_20_bytes() {
        let k = derive_flow_key(KeyDerivation::Sha1, 7, b"master", &p("S"), &p("D"));
        assert_eq!(k.as_bytes().len(), 20);
    }

    #[test]
    fn sfl_separates_flows() {
        // Breaking one flow key must not compromise sibling flows (§6.1).
        let k1 = derive_flow_key(KeyDerivation::Md5, 1, b"master", &p("S"), &p("D"));
        let k2 = derive_flow_key(KeyDerivation::Md5, 2, b"master", &p("S"), &p("D"));
        assert_ne!(k1, k2);
    }

    #[test]
    fn direction_matters() {
        // Flows are unidirectional (§5.2 observations): S→D and D→S with the
        // same sfl yield different keys.
        let k_sd = derive_flow_key(KeyDerivation::Md5, 9, b"master", &p("S"), &p("D"));
        let k_ds = derive_flow_key(KeyDerivation::Md5, 9, b"master", &p("D"), &p("S"));
        assert_ne!(k_sd, k_ds);
    }

    #[test]
    fn master_key_matters() {
        let k1 = derive_flow_key(KeyDerivation::Md5, 9, b"master-1", &p("S"), &p("D"));
        let k2 = derive_flow_key(KeyDerivation::Md5, 9, b"master-2", &p("S"), &p("D"));
        assert_ne!(k1, k2);
    }

    #[test]
    fn principal_boundary_shifting_cannot_collide() {
        let k1 = derive_flow_key(KeyDerivation::Md5, 9, b"m", &p("ab"), &p("c"));
        let k2 = derive_flow_key(KeyDerivation::Md5, 9, b"m", &p("a"), &p("bc"));
        assert_ne!(k1, k2);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let k = derive_flow_key(KeyDerivation::Md5, 9, b"m", &p("S"), &p("D"));
        assert_eq!(format!("{k:?}"), "FlowKey(<16 bytes>)");
    }

    #[test]
    fn des_key_is_prefix() {
        let k = derive_flow_key(KeyDerivation::Md5, 9, b"m", &p("S"), &p("D"));
        assert_eq!(&k.des_key()[..], &k.as_bytes()[..8]);
    }
}
