//! Retry with exponential backoff and deterministic jitter.
//!
//! The paper's keying operations — the PVC's directory fetch and the MKD
//! upcall — are "extremely expensive" (§5.3) but also the only places the
//! stack depends on a remote party, so a transient failure there must
//! cost a bounded retry, never a wedge. [`RetryPolicy`] wraps such an
//! operation with capped exponential backoff, seeded jitter, and a
//! deadline.
//!
//! Backoff is accounted in **virtual time**: the policy charges each
//! wait against its deadline budget and reports the total, but never
//! sleeps. This matches how the rest of the workspace treats expensive
//! waits (the certificate [`Directory`](../../fbs_cert) *accounts* its
//! RTT rather than sleeping it) and keeps retried paths fully
//! deterministic under a [`ManualClock`](crate::clock::ManualClock),
//! which does not advance on its own.

use fbs_crypto::rng::Lcg64;

/// Exponential-backoff retry schedule. `Copy` and stateless between
/// `run`s: every invocation derives its jitter stream from the seed and
/// the attempt index, so identical inputs retry identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (including the first). 1 disables
    /// retrying.
    pub max_attempts: u32,
    /// Backoff before the second attempt, in microseconds.
    pub base_backoff_us: u64,
    /// Cap on any single backoff, in microseconds.
    pub max_backoff_us: u64,
    /// Total backoff budget, in microseconds: once accumulated backoff
    /// would exceed this, the policy gives up even if attempts remain.
    pub deadline_us: u64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_us: 10_000,
            max_backoff_us: 500_000,
            deadline_us: 2_000_000,
            jitter_seed: 0x5bd1_e995,
        }
    }
}

/// What a retried operation produced, plus how hard it had to work.
#[derive(Debug, Clone)]
pub struct RetryOutcome<T, E> {
    /// The final attempt's result.
    pub result: Result<T, E>,
    /// Attempts actually made (>= 1).
    pub attempts: u32,
    /// Total virtual backoff charged, in microseconds.
    pub total_backoff_us: u64,
    /// Backoff charged before each failed attempt's successor, in order
    /// (one entry per retry that was scheduled). Lets the caller emit
    /// one observability event per retry after the fact.
    pub backoffs_us: Vec<u64>,
    /// True when the policy gave up (attempts or deadline exhausted)
    /// while the operation was still failing.
    pub exhausted: bool,
}

impl RetryPolicy {
    /// Backoff before attempt `attempt + 1` (0-based failed attempt):
    /// `min(base << attempt, max)` plus up to 50% deterministic jitter.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        let shifted = self
            .base_backoff_us
            .checked_shl(attempt)
            .unwrap_or(self.max_backoff_us);
        let capped = shifted.min(self.max_backoff_us);
        // Mix the attempt index into the seed so each retry draws a
        // distinct — but reproducible — jitter value.
        let mut rng = Lcg64::new(self.jitter_seed ^ ((attempt as u64 + 1) * 0x9e37_79b9));
        let jitter_span = capped / 2;
        if jitter_span == 0 {
            capped
        } else {
            capped + rng.next_u64() % jitter_span
        }
    }

    /// Run `op` under this policy. The operation is attempted up to
    /// `max_attempts` times; after each failure the next backoff is
    /// charged against `deadline_us` and recorded. No real time passes.
    pub fn run<T, E>(&self, mut op: impl FnMut() -> Result<T, E>) -> RetryOutcome<T, E> {
        let mut attempts = 0u32;
        let mut total_backoff_us = 0u64;
        let mut backoffs_us = Vec::new();
        loop {
            attempts += 1;
            match op() {
                Ok(v) => {
                    return RetryOutcome {
                        result: Ok(v),
                        attempts,
                        total_backoff_us,
                        backoffs_us,
                        exhausted: false,
                    }
                }
                Err(e) => {
                    if attempts >= self.max_attempts.max(1) {
                        return RetryOutcome {
                            result: Err(e),
                            attempts,
                            total_backoff_us,
                            backoffs_us,
                            exhausted: true,
                        };
                    }
                    let backoff = self.backoff_us(attempts - 1);
                    if total_backoff_us.saturating_add(backoff) > self.deadline_us {
                        return RetryOutcome {
                            result: Err(e),
                            attempts,
                            total_backoff_us,
                            backoffs_us,
                            exhausted: true,
                        };
                    }
                    total_backoff_us += backoff;
                    backoffs_us.push(backoff);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_success_makes_one_attempt() {
        let p = RetryPolicy::default();
        let out = p.run(|| Ok::<_, ()>(42));
        assert_eq!(out.result, Ok(42));
        assert_eq!(out.attempts, 1);
        assert_eq!(out.total_backoff_us, 0);
        assert!(!out.exhausted);
        assert!(out.backoffs_us.is_empty());
    }

    #[test]
    fn retries_until_success() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let out = p.run(|| {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.result, Ok(3));
        assert_eq!(out.attempts, 3);
        assert_eq!(out.backoffs_us.len(), 2);
        assert!(out.total_backoff_us > 0);
        assert!(!out.exhausted);
    }

    #[test]
    fn exhausts_after_max_attempts() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let out = p.run(|| {
            calls += 1;
            Err::<(), _>("down")
        });
        assert_eq!(calls, 3);
        assert_eq!(out.attempts, 3);
        assert!(out.exhausted);
        assert!(out.result.is_err());
    }

    #[test]
    fn deadline_stops_before_max_attempts() {
        let p = RetryPolicy {
            max_attempts: 100,
            base_backoff_us: 10_000,
            max_backoff_us: 500_000,
            deadline_us: 25_000,
            jitter_seed: 7,
        };
        let out = p.run(|| Err::<(), _>("down"));
        assert!(out.exhausted);
        // The first backoff (>= 10 ms + jitter) fits under 25 ms at most
        // once; the schedule cannot have run anywhere near 100 attempts.
        assert!(out.attempts < 5, "attempts = {}", out.attempts);
        assert!(out.total_backoff_us <= 25_000);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff_us: 1_000,
            max_backoff_us: 8_000,
            deadline_us: u64::MAX,
            jitter_seed: 1,
        };
        // Jitter adds at most 50%: attempt k's backoff is within
        // [min(base<<k, max), 1.5 * min(base<<k, max)).
        for k in 0..8 {
            let expect = (1_000u64 << k).min(8_000);
            let b = p.backoff_us(k);
            assert!(b >= expect && b < expect + expect / 2 + 1, "k={k} b={b}");
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let p = RetryPolicy::default();
        let a: Vec<u64> = (0..6).map(|k| p.backoff_us(k)).collect();
        let b: Vec<u64> = (0..6).map(|k| p.backoff_us(k)).collect();
        assert_eq!(a, b);
        let q = RetryPolicy {
            jitter_seed: 999,
            ..p
        };
        let c: Vec<u64> = (0..6).map(|k| q.backoff_us(k)).collect();
        assert_ne!(a, c, "different seeds should jitter differently");
    }

    #[test]
    fn zero_max_attempts_still_tries_once() {
        let p = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let out = p.run(|| {
            calls += 1;
            Err::<(), _>(())
        });
        assert_eq!(calls, 1);
        assert_eq!(out.attempts, 1);
        assert!(out.exhausted);
    }
}
