//! Replay protection via window-based timestamps (§5.3, §6.2).
//!
//! FBS deliberately uses a *stateless* freshness check — a sliding window
//! centred on the receiver's current time — rather than nonces, which would
//! require extra communication and hard state, violating datagram
//! semantics. The protection is coarse by design: minute resolution, and a
//! window wide enough to absorb transmission delay plus clock skew between
//! loosely-synchronised machines. Replays *inside* the window succeed; the
//! paper's position is that complete replay protection belongs to higher
//! layers (which typically already sequence datagrams).

use crate::error::{FbsError, Result};

/// A sliding freshness window over minute-resolution timestamps.
///
/// ```
/// use fbs_core::FreshnessWindow;
/// let w = FreshnessWindow::new(2); // ±2 minutes
/// assert!(w.is_fresh(100, 101));   // 1 minute of skew: fresh
/// assert!(!w.is_fresh(100, 103));  // 3 minutes: stale
/// assert!(w.is_fresh(102, 100));   // symmetric — sender clock ahead is fine
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FreshnessWindow {
    /// Half-width of the acceptance window in minutes. A datagram stamped
    /// `t` is fresh at receiver time `now` iff `|now - t| <= half_width`.
    pub half_width_minutes: u32,
}

impl Default for FreshnessWindow {
    /// The paper suggests wide-area windows "on the order of minutes"; we
    /// default to ±2 minutes.
    fn default() -> Self {
        FreshnessWindow {
            half_width_minutes: 2,
        }
    }
}

impl FreshnessWindow {
    /// Construct with an explicit half-width.
    pub fn new(half_width_minutes: u32) -> Self {
        FreshnessWindow { half_width_minutes }
    }

    /// The `Fresh(t)` predicate of Fig. 4 (R3).
    pub fn is_fresh(&self, datagram_minutes: u32, now_minutes: u32) -> bool {
        now_minutes.abs_diff(datagram_minutes) <= self.half_width_minutes
    }

    /// Check freshness, returning the paper's R4 error when stale.
    pub fn check(&self, datagram_minutes: u32, now_minutes: u32) -> Result<()> {
        if self.is_fresh(datagram_minutes, now_minutes) {
            Ok(())
        } else {
            Err(FbsError::StaleTimestamp {
                datagram_minutes,
                now_minutes,
                window_minutes: self.half_width_minutes,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_time_is_fresh() {
        let w = FreshnessWindow::new(2);
        assert!(w.is_fresh(100, 100));
    }

    #[test]
    fn window_is_symmetric() {
        // Sliding window centred on current time: both slow datagrams and
        // fast (ahead-of-clock) senders are tolerated equally.
        let w = FreshnessWindow::new(2);
        assert!(w.is_fresh(98, 100));
        assert!(w.is_fresh(102, 100));
        assert!(!w.is_fresh(97, 100));
        assert!(!w.is_fresh(103, 100));
    }

    #[test]
    fn check_reports_details() {
        let w = FreshnessWindow::new(1);
        match w.check(10, 100) {
            Err(FbsError::StaleTimestamp {
                datagram_minutes,
                now_minutes,
                window_minutes,
            }) => {
                assert_eq!(datagram_minutes, 10);
                assert_eq!(now_minutes, 100);
                assert_eq!(window_minutes, 1);
            }
            other => panic!("expected StaleTimestamp, got {other:?}"),
        }
    }

    #[test]
    fn zero_width_accepts_only_exact_minute() {
        let w = FreshnessWindow::new(0);
        assert!(w.is_fresh(100, 100));
        assert!(!w.is_fresh(99, 100));
    }

    #[test]
    fn no_underflow_near_epoch() {
        let w = FreshnessWindow::new(5);
        assert!(w.is_fresh(0, 3));
        assert!(w.is_fresh(3, 0)); // receiver clock behind sender
    }
}
