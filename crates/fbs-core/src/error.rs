//! Error type for FBS protocol processing.

use std::fmt;

/// Errors surfaced by FBS send/receive processing and its substrates.
///
/// The receive-side variants correspond to the `return error` branches of
/// the paper's Fig. 4 pseudo-code: a stale timestamp fails the freshness
/// check (R3-4) and a MAC mismatch fails verification (R7-9).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FbsError {
    /// Receive R3-4: the datagram timestamp fell outside the freshness
    /// window (replay protection, §6.2).
    StaleTimestamp {
        /// Timestamp carried in the datagram (minutes since the FBS epoch).
        datagram_minutes: u32,
        /// Receiver's current time (minutes since the FBS epoch).
        now_minutes: u32,
        /// Window half-width that was enforced.
        window_minutes: u32,
    },
    /// Receive R7-9: the computed MAC did not match the header MAC. The
    /// datagram was modified, truncated, spliced from another flow, or keyed
    /// differently.
    BadMac,
    /// The security flow header could not be parsed.
    MalformedHeader(&'static str),
    /// The header names a MAC or encryption algorithm this endpoint does
    /// not support (unknown algorithm-ID field value, §5.2).
    UnknownAlgorithm(u8),
    /// The public value for a principal could not be obtained (PVC miss and
    /// the certificate directory had no entry / fetch failed).
    PrincipalUnknown(String),
    /// A certificate failed verification when it was about to be used
    /// (certificates are verified on each use, §5.3).
    CertificateInvalid(String),
    /// Encrypted body was not a whole number of cipher blocks, or the
    /// declared plaintext length exceeds the ciphertext.
    MalformedCiphertext,
    /// A transport-level failure (used by mappings, not the core protocol).
    Transport(String),
    /// The per-peer circuit breaker is open: key material for this peer
    /// failed repeatedly and requests fail fast until the breaker
    /// half-opens (carries the peer's name).
    CircuitOpen(String),
}

impl FbsError {
    /// True for errors that mean "key material is unavailable right now
    /// but may become available" — the class a degradation policy
    /// (fail-open / fail-closed / park) applies to. Cryptographic
    /// verdicts (bad MAC, stale timestamp, malformed input) are final
    /// and never degrade.
    pub fn is_key_unavailable(&self) -> bool {
        matches!(
            self,
            FbsError::PrincipalUnknown(_)
                | FbsError::CertificateInvalid(_)
                | FbsError::Transport(_)
                | FbsError::CircuitOpen(_)
        )
    }
}

impl fmt::Display for FbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FbsError::StaleTimestamp {
                datagram_minutes,
                now_minutes,
                window_minutes,
            } => write!(
                f,
                "stale timestamp: datagram at {datagram_minutes} min, now {now_minutes} min, \
                 window ±{window_minutes} min"
            ),
            FbsError::BadMac => write!(f, "MAC verification failed"),
            FbsError::MalformedHeader(why) => write!(f, "malformed FBS header: {why}"),
            FbsError::UnknownAlgorithm(id) => write!(f, "unknown algorithm id {id}"),
            FbsError::PrincipalUnknown(p) => write!(f, "no public value for principal {p}"),
            FbsError::CertificateInvalid(p) => write!(f, "certificate invalid for {p}"),
            FbsError::MalformedCiphertext => write!(f, "malformed ciphertext"),
            FbsError::Transport(why) => write!(f, "transport error: {why}"),
            FbsError::CircuitOpen(p) => write!(f, "circuit breaker open for peer {p}"),
        }
    }
}

impl std::error::Error for FbsError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, FbsError>;

/// Errors surfaced by a worker runtime's control and data planes.
///
/// Distinct from [`FbsError`]: these are not protocol verdicts but
/// infrastructure failures — a worker thread that died, a control
/// round-trip that timed out, a drain that could not finish before its
/// deadline. Callers decide whether to fail closed, retry, or surface
/// the error; the runtime itself never panics on these paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The worker's control mailbox or reply channel is gone: the
    /// thread exited (panicked past its supervisor, or the runtime is
    /// shutting down) and can no longer serve requests.
    WorkerUnavailable {
        /// Index of the unreachable worker.
        worker: usize,
    },
    /// A control round-trip (stats scrape, flush, config op) did not
    /// complete within the runtime's control deadline. The worker may
    /// be stalled rather than dead; the operation must not block the
    /// caller forever either way.
    ControlTimeout {
        /// Index of the worker that failed to acknowledge in time.
        worker: usize,
    },
    /// `drain_with_deadline` ran out of time with work still parked or
    /// in flight on some workers.
    DrainTimeout {
        /// Number of workers that had not finished draining.
        pending_workers: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::WorkerUnavailable { worker } => {
                write!(f, "worker {worker} is unavailable (thread exited)")
            }
            RuntimeError::ControlTimeout { worker } => {
                write!(
                    f,
                    "worker {worker} did not acknowledge a control op in time"
                )
            }
            RuntimeError::DrainTimeout { pending_workers } => {
                write!(
                    f,
                    "drain deadline expired with {pending_workers} worker(s) pending"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}
