//! Reusable output-buffer pool for the zero-copy seal/open fast path.
//!
//! `seal_into`/`open_into` write into caller-supplied `Vec<u8>`s; this pool
//! is where those vectors come from and return to, so steady-state sealing
//! allocates nothing per datagram. Buffers are plain `Vec<u8>` — taking one
//! out hands the caller full ownership, so a buffer that escapes (e.g. is
//! transmitted and never returned) is merely an allocation, never a leak of
//! pool bookkeeping.

use fbs_obs::{Counter, MetricsRegistry, MetricsSnapshot};
use std::sync::Arc;

/// Default number of buffers kept on the freelist.
pub const DEFAULT_MAX_POOLED: usize = 32;

/// Default capacity pre-reserved for fresh buffers: a full header plus a
/// typical MTU-sized body, so the first seal into a new buffer does not
/// regrow it.
pub const DEFAULT_BUF_CAPACITY: usize = 2048;

/// Counters for pool behaviour; mirrors the legacy-stats idiom of the other
/// components so snapshots and the registry share a namespace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes served from the freelist.
    pub hits: u64,
    /// Takes that allocated a fresh buffer.
    pub misses: u64,
    /// Buffers returned to the freelist.
    pub returns: u64,
    /// Returned buffers dropped because the freelist was full.
    pub discards: u64,
}

impl PoolStats {
    /// Merge into a metrics snapshot under the `pool.*` namespace.
    pub fn contribute(&self, snap: &mut MetricsSnapshot) {
        snap.add("pool.hits", self.hits);
        snap.add("pool.misses", self.misses);
        snap.add("pool.returns", self.returns);
        snap.add("pool.discards", self.discards);
    }
}

/// A freelist of recycled `Vec<u8>` output buffers.
///
/// Not thread-safe by itself — each worker owns its own pool (the
/// parallel sealer gives every worker one), which keeps `take`/`put` free
/// of any synchronisation.
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    max_pooled: usize,
    buf_capacity: usize,
    stats: PoolStats,
    obs: Option<Arc<MetricsRegistry>>,
}

impl BufferPool {
    /// A pool with the default size limits.
    pub fn new() -> Self {
        BufferPool::with_limits(DEFAULT_MAX_POOLED, DEFAULT_BUF_CAPACITY)
    }

    /// A pool keeping at most `max_pooled` buffers, pre-reserving
    /// `buf_capacity` bytes in fresh ones.
    pub fn with_limits(max_pooled: usize, buf_capacity: usize) -> Self {
        BufferPool {
            free: Vec::with_capacity(max_pooled),
            max_pooled,
            buf_capacity,
            stats: PoolStats::default(),
            obs: None,
        }
    }

    /// Attach a metrics registry; hits/misses/returns/discards are counted
    /// there as well as in the legacy stats, so the pool ledger
    /// (`takes == returns + discards` at quiesce) is checkable from a
    /// snapshot alone.
    pub fn attach_obs(&mut self, registry: Arc<MetricsRegistry>) {
        self.obs = Some(registry);
    }

    /// Take a buffer: recycled if available, freshly allocated otherwise.
    /// The buffer is always empty (`len == 0`).
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                self.stats.hits += 1;
                if let Some(reg) = &self.obs {
                    reg.incr(Counter::PoolHits);
                }
                buf
            }
            None => {
                self.stats.misses += 1;
                if let Some(reg) = &self.obs {
                    reg.incr(Counter::PoolMisses);
                }
                Vec::with_capacity(self.buf_capacity)
            }
        }
    }

    /// Return a buffer to the freelist (dropped if the freelist is full).
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if self.free.len() < self.max_pooled {
            buf.clear();
            self.free.push(buf);
            self.stats.returns += 1;
            if let Some(reg) = &self.obs {
                reg.incr(Counter::PoolReturns);
            }
        } else {
            self.stats.discards += 1;
            if let Some(reg) = &self.obs {
                reg.incr(Counter::PoolDiscards);
            }
        }
    }

    /// Push `n` buffers onto `out` (recycled where available, fresh
    /// otherwise). The batch-supply mirror of [`Self::take`]: the worker
    /// runtime ships one supply buffer per datagram with each sub-batch.
    pub fn take_n_into(&mut self, n: usize, out: &mut Vec<Vec<u8>>) {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.take());
        }
    }

    /// Drain every buffer in `bufs` back into the freelist, keeping
    /// `bufs`' capacity for reuse. The batch mirror of [`Self::put`].
    pub fn put_all(&mut self, bufs: &mut Vec<Vec<u8>>) {
        for buf in bufs.drain(..) {
            self.put(buf);
        }
    }

    /// Buffers currently on the freelist.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Pool counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_take_misses_then_hits_after_put() {
        let mut pool = BufferPool::with_limits(2, 64);
        let a = pool.take();
        assert_eq!(a.capacity(), 64);
        assert_eq!(
            pool.stats(),
            PoolStats {
                misses: 1,
                ..Default::default()
            }
        );

        pool.put(a);
        let b = pool.take();
        assert!(b.capacity() >= 64);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.returns), (1, 1, 1));
    }

    #[test]
    fn returned_buffers_come_back_empty() {
        let mut pool = BufferPool::new();
        let mut a = pool.take();
        a.extend_from_slice(b"leftover plaintext");
        pool.put(a);
        let b = pool.take();
        assert!(b.is_empty());
    }

    #[test]
    fn freelist_is_bounded() {
        let mut pool = BufferPool::with_limits(1, 16);
        let a = pool.take();
        let b = pool.take();
        pool.put(a);
        pool.put(b); // freelist full: discarded
        assert_eq!(pool.idle(), 1);
        let s = pool.stats();
        assert_eq!((s.returns, s.discards), (1, 1));
    }

    #[test]
    fn batch_take_and_put_balance_the_ledger() {
        let mut pool = BufferPool::with_limits(8, 64);
        let mut supplies = Vec::new();
        pool.take_n_into(3, &mut supplies);
        assert_eq!(supplies.len(), 3);
        pool.put_all(&mut supplies);
        assert!(supplies.is_empty());
        let s = pool.stats();
        assert_eq!((s.misses, s.returns), (3, 3));
        pool.take_n_into(2, &mut supplies);
        assert_eq!(pool.stats().hits, 2);
    }

    #[test]
    fn registry_sees_hits_and_misses() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut pool = BufferPool::new();
        pool.attach_obs(Arc::clone(&reg));
        let a = pool.take();
        pool.put(a);
        let _b = pool.take();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pool.misses"), 1);
        assert_eq!(snap.counter("pool.hits"), 1);
        assert_eq!(snap.counter("pool.returns"), 1);
    }

    #[test]
    fn stats_contribute_uses_pool_namespace() {
        let mut pool = BufferPool::new();
        let a = pool.take();
        pool.put(a);
        let mut snap = MetricsSnapshot::new();
        pool.stats().contribute(&mut snap);
        assert_eq!(snap.counter("pool.misses"), 1);
        assert_eq!(snap.counter("pool.returns"), 1);
    }
}
