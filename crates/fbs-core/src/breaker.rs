//! Per-peer circuit breaker for the keying control plane.
//!
//! Zero-message keying makes the MKD upcall (and behind it the PVC /
//! certificate directory) the one remote dependency on the datagram
//! path. When a peer's key material fails repeatedly, retrying on every
//! datagram turns one fault into a retry storm; the breaker converts
//! that into a fast local failure. Classic three-state machine:
//!
//! * **Closed** — requests flow; consecutive failures are counted.
//! * **Open** — entered after `failure_threshold` consecutive failures;
//!   requests fail fast (no upcall) until `open_duration_us` elapses.
//! * **HalfOpen** — entered on the first `allow` after the open timer
//!   expires; exactly one probe is let through. Success closes the
//!   breaker, failure re-opens it for another full interval.
//!
//! The breaker is time-driven but never sleeps: callers pass `now_us`
//! from whatever [`Clock`](crate::clock::Clock) they use, so behaviour
//! is deterministic under simulated time. State transitions are
//! *returned* rather than recorded, letting the owner (the MKD) emit
//! observability events and bump its legacy stats without this module
//! depending on `fbs-obs`.

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before half-opening, in
    /// microseconds.
    pub open_duration_us: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_duration_us: 1_000_000,
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Failing fast until the stated time.
    Open {
        /// When the breaker will half-open, in clock microseconds.
        until_us: u64,
    },
    /// A recovery probe is in flight.
    HalfOpen,
}

/// A state transition the caller should record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// The breaker tripped open.
    Opened,
    /// The open timer expired; one probe is allowed.
    HalfOpened,
    /// A probe (or normal request) succeeded; the breaker closed.
    Closed,
}

/// A transition plus the timing the observability plane wants: when it
/// happened and how long the breaker sat in the state it left. All
/// times come from the caller's clock, so the record is deterministic
/// under simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionEvent {
    /// What happened.
    pub transition: Transition,
    /// The state left behind.
    pub from: BreakerState,
    /// Clock microseconds when the transition fired.
    pub at_us: u64,
    /// How long the breaker sat in `from`, in clock microseconds.
    pub in_state_us: u64,
}

/// Verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allow {
    /// Proceed normally (breaker closed).
    Yes,
    /// Proceed, but this is the half-open recovery probe.
    Probe,
    /// Fail fast without touching the protected resource.
    FastFail,
}

/// One peer's circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    /// Clock reading when the current state was entered (0 for the
    /// initial Closed state).
    state_entered_us: u64,
}

impl CircuitBreaker {
    /// A closed breaker under `cfg`.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            state_entered_us: 0,
        }
    }

    /// Swap to `state` at `now_us`, producing the transition record.
    fn transition(&mut self, t: Transition, state: BreakerState, now_us: u64) -> TransitionEvent {
        let from = self.state;
        let in_state_us = now_us.saturating_sub(self.state_entered_us);
        self.state = state;
        self.state_entered_us = now_us;
        TransitionEvent {
            transition: t,
            from,
            at_us: now_us,
            in_state_us,
        }
    }

    /// How long the breaker has been in its current state at `now_us`.
    pub fn time_in_state_us(&self, now_us: u64) -> u64 {
        now_us.saturating_sub(self.state_entered_us)
    }

    /// Current state (an `Open` breaker stays `Open` here even past its
    /// timer — the half-open transition happens on the next `allow`).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Would a request at `now_us` fail fast? Pure: no transition, no
    /// probe consumed — for callers that only want to skip doomed work.
    pub fn would_fast_fail(&self, now_us: u64) -> bool {
        matches!(self.state, BreakerState::Open { until_us } if now_us < until_us)
    }

    /// Gate one request. May half-open an expired `Open` breaker, in
    /// which case the transition is returned alongside the verdict.
    pub fn allow(&mut self, now_us: u64) -> (Allow, Option<TransitionEvent>) {
        match self.state {
            BreakerState::Closed => (Allow::Yes, None),
            BreakerState::HalfOpen => {
                // A probe is already outstanding; fail fast until it
                // resolves via on_success/on_failure.
                (Allow::FastFail, None)
            }
            BreakerState::Open { until_us } => {
                if now_us < until_us {
                    (Allow::FastFail, None)
                } else {
                    let t = self.transition(Transition::HalfOpened, BreakerState::HalfOpen, now_us);
                    (Allow::Probe, Some(t))
                }
            }
        }
    }

    /// Record a success at `now_us`. Closes a half-open breaker and
    /// resets the failure count.
    pub fn on_success(&mut self, now_us: u64) -> Option<TransitionEvent> {
        self.consecutive_failures = 0;
        match self.state {
            BreakerState::HalfOpen => {
                Some(self.transition(Transition::Closed, BreakerState::Closed, now_us))
            }
            _ => None,
        }
    }

    /// Record a failure at `now_us`. Trips the breaker when the
    /// threshold is reached; a failed half-open probe re-opens it for a
    /// full interval.
    pub fn on_failure(&mut self, now_us: u64) -> Option<TransitionEvent> {
        self.consecutive_failures += 1;
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.cfg.failure_threshold,
            BreakerState::Open { .. } => false,
        };
        if trip {
            let open = BreakerState::Open {
                until_us: now_us.saturating_add(self.cfg.open_duration_us),
            };
            Some(self.transition(Transition::Opened, open, now_us))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_duration_us: 1_000,
        }
    }

    fn kind(t: Option<TransitionEvent>) -> Option<Transition> {
        t.map(|t| t.transition)
    }

    #[test]
    fn closed_allows_and_counts_failures() {
        let mut b = CircuitBreaker::new(cfg());
        assert_eq!(b.allow(0).0, Allow::Yes);
        assert_eq!(kind(b.on_failure(0)), None);
        assert_eq!(kind(b.on_failure(1)), None);
        assert_eq!(b.state(), BreakerState::Closed);
        let t = b.on_failure(2).unwrap();
        assert_eq!(t.transition, Transition::Opened);
        assert_eq!(t.from, BreakerState::Closed);
        assert_eq!(t.at_us, 2);
        assert_eq!(t.in_state_us, 2);
        assert_eq!(b.state(), BreakerState::Open { until_us: 1_002 });
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(0);
        b.on_failure(0);
        assert_eq!(kind(b.on_success(0)), None);
        b.on_failure(0);
        b.on_failure(0);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn open_fast_fails_then_half_opens() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_failure(100);
        }
        assert!(b.would_fast_fail(500));
        assert_eq!(b.allow(500), (Allow::FastFail, None));
        assert!(!b.would_fast_fail(1_100));
        let (verdict, t) = b.allow(1_100);
        assert_eq!(verdict, Allow::Probe);
        let t = t.unwrap();
        assert_eq!(t.transition, Transition::HalfOpened);
        assert_eq!(t.from, BreakerState::Open { until_us: 1_100 });
        // Tripped at 100, half-opened at 1_100: 1_000 µs in Open.
        assert_eq!(t.in_state_us, 1_000);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Second caller while the probe is out: still fast-fails.
        assert_eq!(b.allow(1_100), (Allow::FastFail, None));
    }

    #[test]
    fn probe_success_closes() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_failure(0);
        }
        b.allow(2_000);
        let t = b.on_success(2_500).unwrap();
        assert_eq!(t.transition, Transition::Closed);
        assert_eq!(t.from, BreakerState::HalfOpen);
        assert_eq!(t.in_state_us, 500);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.allow(2_500).0, Allow::Yes);
    }

    #[test]
    fn probe_failure_reopens_full_interval() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_failure(0);
        }
        b.allow(2_000);
        assert_eq!(kind(b.on_failure(2_000)), Some(Transition::Opened));
        assert_eq!(b.state(), BreakerState::Open { until_us: 3_000 });
        assert!(b.would_fast_fail(2_500));
    }

    #[test]
    fn time_in_state_tracks_current_state() {
        let mut b = CircuitBreaker::new(cfg());
        assert_eq!(b.time_in_state_us(250), 250);
        for _ in 0..3 {
            b.on_failure(400);
        }
        assert_eq!(b.time_in_state_us(900), 500);
    }
}
