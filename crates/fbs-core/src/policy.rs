//! Example security flow policies (paper §4, §5.1, §7.1).
//!
//! The FAM is policy-driven: what constitutes a flow is decided by mapper/
//! sweeper plug-ins. This module supplies layer-independent policies used
//! by tests, baselines and experiments; the concrete 5-tuple IP policy of
//! Fig. 7 lives in `fbs-ip`, closer to the protocol fields it inspects.

use crate::fam::{FlowPolicy, FstEntry};
use fbs_crypto::crc32;
use std::hash::Hash;

/// Generic idle-timeout policy over any hashable attribute type: datagrams
/// with equal attributes belong to one flow until the flow sits idle longer
/// than THRESHOLD — the structure of the paper's §7.1 policy, abstracted
/// from the 5-tuple.
#[derive(Clone, Debug)]
pub struct IdleTimeoutPolicy {
    /// Seconds of inactivity after which a flow expires (Fig. 7's
    /// THRESHOLD; the paper studies 300-1800 s).
    pub threshold_secs: u64,
}

impl IdleTimeoutPolicy {
    /// Policy with the given THRESHOLD.
    pub fn new(threshold_secs: u64) -> Self {
        IdleTimeoutPolicy { threshold_secs }
    }
}

/// Attribute encoding used by the generic policies: the attribute's
/// canonical bytes (hashed with CRC-32 per §5.3).
pub trait FlowAttrs: Clone + Eq + Hash {
    /// Canonical byte encoding, fed to the randomising index hash.
    fn canonical_bytes(&self) -> Vec<u8>;
}

impl FlowAttrs for Vec<u8> {
    fn canonical_bytes(&self) -> Vec<u8> {
        self.clone()
    }
}

impl FlowAttrs for String {
    fn canonical_bytes(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }
}

impl FlowAttrs for u64 {
    fn canonical_bytes(&self) -> Vec<u8> {
        self.to_be_bytes().to_vec()
    }
}

impl<A: FlowAttrs> FlowPolicy<A> for IdleTimeoutPolicy {
    fn index(&self, attrs: &A, table_size: usize) -> usize {
        crc32(&attrs.canonical_bytes()) as usize % table_size
    }

    fn same_flow(&self, entry_attrs: &A, attrs: &A) -> bool {
        entry_attrs == attrs
    }

    fn expired(&self, entry: &FstEntry<A>, now_secs: u64) -> bool {
        now_secs.saturating_sub(entry.last) > self.threshold_secs
    }
}

/// Host-pair policy: one flow per destination principal that never expires.
/// Running FBS under this policy degenerates to host-pair keying with a
/// per-pair traffic key — useful as a baseline that shares the FBS code
/// path (§2.2 / §7.4 comparisons).
#[derive(Clone, Copy, Debug, Default)]
pub struct HostPairPolicy;

impl<A: FlowAttrs> FlowPolicy<A> for HostPairPolicy {
    fn index(&self, attrs: &A, table_size: usize) -> usize {
        crc32(&attrs.canonical_bytes()) as usize % table_size
    }

    fn same_flow(&self, entry_attrs: &A, attrs: &A) -> bool {
        entry_attrs == attrs
    }

    fn expired(&self, _entry: &FstEntry<A>, _now_secs: u64) -> bool {
        false
    }
}

/// Per-datagram policy: every datagram is its own flow (a new sfl every
/// time). The degenerate fine-grained extreme — maximum key isolation,
/// maximum keying cost; the §7.4 comparison point for SKIP-style
/// per-datagram keying.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerDatagramPolicy;

impl<A: FlowAttrs> FlowPolicy<A> for PerDatagramPolicy {
    fn index(&self, attrs: &A, table_size: usize) -> usize {
        crc32(&attrs.canonical_bytes()) as usize % table_size
    }

    fn same_flow(&self, _entry_attrs: &A, _attrs: &A) -> bool {
        // Nothing ever matches: every datagram starts a new flow.
        false
    }

    fn expired(&self, _entry: &FstEntry<A>, _now_secs: u64) -> bool {
        true
    }
}

/// Key wear-out wrapper (§5.2, third observation): "with use, an
/// encryption key will 'wear out' and should be changed. The lifetime of
/// an encryption key depends on ... the length of time it has been used,
/// and the amount of data that has been encrypted with it. With FBS,
/// rekeying can be easily accomplished via the FAM by changing the sfl.
/// Rekeying decisions, though, are made by policy modules."
///
/// This module wraps any inner policy and additionally expires a flow once
/// it has carried `max_bytes` or lived `max_age_secs` — starting a new
/// flow, hence a new sfl, hence a fresh key, with zero protocol actions.
#[derive(Clone, Debug)]
pub struct WearOutPolicy<P> {
    /// The wrapped policy (idle expiry etc. still applies).
    pub inner: P,
    /// Rekey after this many payload bytes under one key (`u64::MAX` to
    /// disable).
    pub max_bytes: u64,
    /// Rekey after this flow age in seconds (`u64::MAX` to disable).
    pub max_age_secs: u64,
}

impl<P> WearOutPolicy<P> {
    /// Wrap `inner` with byte- and age-based rekeying.
    pub fn new(inner: P, max_bytes: u64, max_age_secs: u64) -> Self {
        WearOutPolicy {
            inner,
            max_bytes,
            max_age_secs,
        }
    }
}

impl<A, P: FlowPolicy<A>> FlowPolicy<A> for WearOutPolicy<P> {
    fn index(&self, attrs: &A, table_size: usize) -> usize {
        self.inner.index(attrs, table_size)
    }

    fn same_flow(&self, entry_attrs: &A, attrs: &A) -> bool {
        self.inner.same_flow(entry_attrs, attrs)
    }

    fn expired(&self, entry: &FstEntry<A>, now_secs: u64) -> bool {
        self.inner.expired(entry, now_secs)
            || entry.bytes >= self.max_bytes
            || now_secs.saturating_sub(entry.created) >= self.max_age_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fam::{Fam, FlowStart};
    use crate::sfl::SflAllocator;

    fn fam_with<P: FlowPolicy<String>>(policy: P) -> Fam<String, P> {
        Fam::new(64, policy, SflAllocator::new(1))
    }

    #[test]
    fn idle_timeout_policy_flow_lifecycle() {
        let mut fam = fam_with(IdleTimeoutPolicy::new(600));
        let a1 = fam.classify("conv-a".into(), 0, 10);
        let a2 = fam.classify("conv-a".into(), 300, 10);
        assert_eq!(a1.sfl, a2.sfl);
        let a3 = fam.classify("conv-a".into(), 1000, 10); // idle 700 > 600
        assert_ne!(a1.sfl, a3.sfl);
    }

    #[test]
    fn host_pair_policy_never_expires() {
        let mut fam = fam_with(HostPairPolicy);
        let c1 = fam.classify("hostB".into(), 0, 10);
        let c2 = fam.classify("hostB".into(), 1_000_000_000, 10);
        assert_eq!(c1.sfl, c2.sfl, "host-pair flows are eternal");
    }

    #[test]
    fn per_datagram_policy_always_new() {
        let mut fam = fam_with(PerDatagramPolicy);
        let c1 = fam.classify("same".into(), 0, 10);
        let c2 = fam.classify("same".into(), 0, 10);
        assert_ne!(c1.sfl, c2.sfl);
        assert!(c2.is_new_flow());
        // Replacing an expired own-entry, not a collision.
        assert_eq!(c2.start, FlowStart::ReplacedExpired);
    }

    #[test]
    fn wear_out_by_bytes_rotates_sfl() {
        // A busy flow rotates its key after max_bytes, with no idle gap.
        let policy = WearOutPolicy::new(IdleTimeoutPolicy::new(600), 10_000, u64::MAX);
        let mut fam = Fam::new(64, policy, SflAllocator::new(1));
        let c1 = fam.classify("bulk".to_string(), 0, 6_000);
        let c2 = fam.classify("bulk".to_string(), 1, 6_000); // 12k ≥ 10k
        assert_eq!(c1.sfl, c2.sfl, "still under the limit at classify time");
        let c3 = fam.classify("bulk".to_string(), 2, 100);
        assert_ne!(c1.sfl, c3.sfl, "rekeyed after wearing out");
        assert_eq!(c3.start, FlowStart::ReplacedExpired);
    }

    #[test]
    fn wear_out_by_age_rotates_sfl() {
        // A chatty flow that never idles still rekeys every max_age secs.
        let policy = WearOutPolicy::new(IdleTimeoutPolicy::new(600), u64::MAX, 3600);
        let mut fam = Fam::new(64, policy, SflAllocator::new(1));
        let first = fam.classify("telnet".to_string(), 0, 10);
        let mut last = first;
        for t in (10..7200).step_by(10) {
            last = fam.classify("telnet".to_string(), t, 10);
        }
        assert_ne!(first.sfl, last.sfl, "long-lived flow must have rekeyed");
        assert!(fam.stats().flows_started >= 2);
    }

    #[test]
    fn wear_out_preserves_idle_expiry() {
        let policy = WearOutPolicy::new(IdleTimeoutPolicy::new(600), u64::MAX, u64::MAX);
        let mut fam = Fam::new(64, policy, SflAllocator::new(1));
        let c1 = fam.classify("x".to_string(), 0, 1);
        let c2 = fam.classify("x".to_string(), 601, 1);
        assert_ne!(c1.sfl, c2.sfl);
    }

    #[test]
    fn distinct_attr_types_work() {
        let mut fam: Fam<u64, IdleTimeoutPolicy> =
            Fam::new(32, IdleTimeoutPolicy::new(60), SflAllocator::new(9));
        let c1 = fam.classify(42u64, 0, 1);
        let c2 = fam.classify(42u64, 30, 1);
        assert_eq!(c1.sfl, c2.sfl);
    }
}
