//! Principals: the uniquely-addressable endpoints of a datagram service.
//!
//! The paper deliberately leaves principals abstract — "the principals could
//! be network interfaces on hosts, the hosts themselves, network protocol
//! layers, applications, or end users" (§5.2). The only requirement is
//! unique addressability, so a principal here is an opaque byte string.
//! Mappings (e.g. the IP mapping in `fbs-ip`) choose the encoding.

use std::fmt;
use std::sync::Arc;

/// An opaque, uniquely-addressable principal identity.
///
/// The bytes participate directly in flow-key derivation
/// (`K_f = H(sfl | K_{S,D} | S | D)`), so two principals are "the same"
/// exactly when their byte encodings are equal (`Arc`'s comparison and
/// hash impls delegate to the contents). The identity is refcounted:
/// cloning a principal — which the seal/open fast path does on every
/// datagram to build flow-key cache IDs — never touches the heap.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Principal(Arc<[u8]>);

impl Principal {
    /// Construct from raw bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Principal(bytes.into().into())
    }

    /// Construct from a human-readable name (UTF-8 bytes).
    pub fn named(name: &str) -> Self {
        Principal(name.as_bytes().into())
    }

    /// Construct from an IPv4 address (network byte order), the encoding
    /// used by the IP mapping for host-level principals.
    pub fn from_ipv4(addr: [u8; 4]) -> Self {
        Principal(addr.as_slice().into())
    }

    /// The raw identity bytes, as fed to the flow-key hash.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the identity encoding.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the identity encoding is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Principal(")?;
        fmt::Display::fmt(self, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // IPv4-sized identities render as dotted quads, printable UTF-8
        // renders as text, anything else as hex.
        if self.0.len() == 4 {
            return write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3]);
        }
        match std::str::from_utf8(&self.0) {
            Ok(s) if s.chars().all(|c| c.is_ascii_graphic() || c == ' ') && !s.is_empty() => {
                write!(f, "{s}")
            }
            _ => {
                for b in self.0.iter() {
                    write!(f, "{b:02x}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_roundtrip() {
        let p = Principal::named("hostA");
        assert_eq!(p.as_bytes(), b"hostA");
        assert_eq!(p.to_string(), "hostA");
    }

    #[test]
    fn ipv4_display() {
        let p = Principal::from_ipv4([192, 168, 69, 1]);
        assert_eq!(p.to_string(), "192.168.69.1");
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn binary_renders_hex() {
        let p = Principal::from_bytes(vec![0x00, 0x01, 0xff]);
        assert_eq!(p.to_string(), "0001ff");
    }

    #[test]
    fn equality_is_byte_equality() {
        assert_eq!(Principal::named("x"), Principal::from_bytes(b"x".to_vec()));
        assert_ne!(Principal::named("x"), Principal::named("y"));
    }
}
