//! Principals: the uniquely-addressable endpoints of a datagram service.
//!
//! The paper deliberately leaves principals abstract — "the principals could
//! be network interfaces on hosts, the hosts themselves, network protocol
//! layers, applications, or end users" (§5.2). The only requirement is
//! unique addressability, so a principal here is an opaque byte string.
//! Mappings (e.g. the IP mapping in `fbs-ip`) choose the encoding.

use std::fmt;
use std::sync::Arc;

/// Identities at most this long live inline in the `Principal` value
/// itself — IPv4 addresses (4 bytes) and typical short names never touch
/// the heap, at construction or on clone.
const INLINE_MAX: usize = 22;

/// An opaque, uniquely-addressable principal identity.
///
/// The bytes participate directly in flow-key derivation
/// (`K_f = H(sfl | K_{S,D} | S | D)`), so two principals are "the same"
/// exactly when their byte encodings are equal — equality, ordering, and
/// hashing all delegate to [`Principal::as_bytes`]. Short identities
/// (up to [`INLINE_MAX`] bytes, which covers the IP mapping's 4-byte
/// host principals) are stored inline: the datagram fast path builds one
/// per packet and clones it into flow-key cache IDs, and neither step
/// may allocate. Longer identities fall back to a refcounted buffer, so
/// cloning stays heap-free there too.
#[derive(Clone)]
pub struct Principal(Repr);

#[derive(Clone)]
enum Repr {
    Inline { len: u8, buf: [u8; INLINE_MAX] },
    Shared(Arc<[u8]>),
}

impl Principal {
    fn new(bytes: &[u8]) -> Self {
        if bytes.len() <= INLINE_MAX {
            let mut buf = [0u8; INLINE_MAX];
            buf[..bytes.len()].copy_from_slice(bytes);
            Principal(Repr::Inline {
                len: bytes.len() as u8,
                buf,
            })
        } else {
            Principal(Repr::Shared(bytes.into()))
        }
    }

    /// Construct from raw bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Principal::new(&bytes.into())
    }

    /// Construct from a human-readable name (UTF-8 bytes).
    pub fn named(name: &str) -> Self {
        Principal::new(name.as_bytes())
    }

    /// Construct from an IPv4 address (network byte order), the encoding
    /// used by the IP mapping for host-level principals. Always inline —
    /// this runs once per datagram on the protect/verify paths.
    pub fn from_ipv4(addr: [u8; 4]) -> Self {
        Principal::new(&addr)
    }

    /// The raw identity bytes, as fed to the flow-key hash.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Shared(b) => b,
        }
    }

    /// Length of the identity encoding.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// True when the identity encoding is empty.
    pub fn is_empty(&self) -> bool {
        self.as_bytes().is_empty()
    }
}

// Identity is the byte string, regardless of representation.
impl PartialEq for Principal {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Principal {}

impl std::hash::Hash for Principal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl PartialOrd for Principal {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Principal {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_bytes().cmp(other.as_bytes())
    }
}

impl fmt::Debug for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Principal(")?;
        fmt::Display::fmt(self, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // IPv4-sized identities render as dotted quads, printable UTF-8
        // renders as text, anything else as hex.
        let bytes = self.as_bytes();
        if bytes.len() == 4 {
            return write!(f, "{}.{}.{}.{}", bytes[0], bytes[1], bytes[2], bytes[3]);
        }
        match std::str::from_utf8(bytes) {
            Ok(s) if s.chars().all(|c| c.is_ascii_graphic() || c == ' ') && !s.is_empty() => {
                write!(f, "{s}")
            }
            _ => {
                for b in bytes {
                    write!(f, "{b:02x}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_roundtrip() {
        let p = Principal::named("hostA");
        assert_eq!(p.as_bytes(), b"hostA");
        assert_eq!(p.to_string(), "hostA");
    }

    #[test]
    fn ipv4_display() {
        let p = Principal::from_ipv4([192, 168, 69, 1]);
        assert_eq!(p.to_string(), "192.168.69.1");
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn binary_renders_hex() {
        let p = Principal::from_bytes(vec![0x00, 0x01, 0xff]);
        assert_eq!(p.to_string(), "0001ff");
    }

    #[test]
    fn equality_is_byte_equality() {
        assert_eq!(Principal::named("x"), Principal::from_bytes(b"x".to_vec()));
        assert_ne!(Principal::named("x"), Principal::named("y"));
    }

    #[test]
    fn long_identities_behave_like_short_ones() {
        // Past INLINE_MAX the representation switches to a shared buffer;
        // equality, ordering, and hashing must not notice.
        let long = "a-principal-name-well-past-the-inline-threshold";
        assert!(long.len() > INLINE_MAX);
        let p = Principal::named(long);
        let q = Principal::from_bytes(long.as_bytes().to_vec());
        assert_eq!(p, q);
        assert_eq!(p.clone().as_bytes(), long.as_bytes());
        assert_eq!(p.to_string(), long);
        let mut set = std::collections::HashSet::new();
        set.insert(p);
        assert!(set.contains(&q));
        // Boundary: exactly INLINE_MAX bytes stays inline and equal.
        let edge = vec![0x42u8; INLINE_MAX];
        assert_eq!(Principal::from_bytes(edge.clone()), Principal::new(&edge));
    }
}
