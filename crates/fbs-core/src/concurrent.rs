//! Concurrency primitives for the sharded endpoint: read-mostly config
//! snapshots, a sharded wrapper over [`SoftCache`], and the shared
//! keying service that serialises MKD upcalls without serialising the
//! datagram path.
//!
//! The paper's scaling argument (§5.3, §7) is that per-flow soft state
//! lets datagram security keep up with traffic; this module supplies
//! the pieces that let that state go *concurrent* — each shard of flow
//! state behind its own small lock, with the expensive shared resources
//! (master keys, the MKD's modular exponentiation) behind a separate,
//! rarely-contended service.
//!
//! # Lock-ordering rules
//!
//! 1. Endpoint flow-state shards are not locked at all: each is owned
//!    outright by one worker thread (`fbs-ip`'s worker runtime), so a
//!    key derivation on a miss runs on the owning worker with no
//!    endpoint lock held — only the [`KeyingService`] locks below are
//!    taken, and the sfl is reserved before the derive so a failure
//!    burns it (sfls are never reused).
//! 2. Inside [`KeyingService`], the order is `mkd` lock → MKC shard
//!    lock. The fast path touches only an MKC shard lock and releases
//!    it before any `mkd` acquisition, so no cycle exists.
//! 3. [`Published`] reads/writes nest inside anything (leaf lock, held
//!    only for an `Arc` clone or swap).

use crate::cache::{AtomicCacheStats, CacheStats, SoftCache};
use crate::error::Result;
use crate::mkd::{AtomicMkdStats, MasterKeyDaemon, MkdStats};
use crate::principal::Principal;
use fbs_crypto::crc32;
use fbs_obs::{Counter, MetricsRegistry};
use parking_lot::Mutex;
use std::sync::Arc;

/// A read-mostly value published as an `Arc` snapshot: readers pay one
/// refcount bump (no writer can block them for longer than the swap),
/// writers swap in a whole new snapshot. Readers that loaded the old
/// `Arc` keep a consistent view until they drop it — exactly the
/// semantics wanted for endpoint config/policy, which must be coherent
/// *per datagram*, not per field.
///
/// Built on `std::sync::RwLock` (the vendored `parking_lot` exposes
/// only `Mutex`); the critical sections are a clone and a store, so the
/// lock is never held across user code. Poisoning is absorbed — an
/// `Arc` clone/swap cannot leave the value torn.
#[derive(Debug)]
pub struct Published<T> {
    inner: std::sync::RwLock<Arc<T>>,
}

impl<T> Published<T> {
    /// Publish an initial value.
    pub fn new(value: T) -> Self {
        Published {
            inner: std::sync::RwLock::new(Arc::new(value)),
        }
    }

    /// Load the current snapshot.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.inner.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Swap in a new snapshot. In-flight readers keep the old one.
    pub fn store(&self, value: Arc<T>) {
        *self.inner.write().unwrap_or_else(|e| e.into_inner()) = value;
    }
}

/// A sharded, internally-locked wrapper over [`SoftCache`]: N inner
/// caches (N rounded up to a power of two), each behind its own small
/// mutex, all feeding one shared [`AtomicCacheStats`] handle so
/// `stats()` is a single lock-free aggregate with the usual coherence
/// invariant (`hits + misses == lookups`).
///
/// The shard index uses the *upper* bits of the same hash the inner
/// caches use for their set index (`(hash >> 16) & mask`), so sharding
/// stays decorrelated from set selection: keys that would collide in
/// one cache's set do not all land in one shard, and vice versa.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<SoftCache<K, V>>>,
    mask: u32,
    hash: Arc<dyn Fn(&K) -> u32 + Send + Sync>,
    stats: Arc<AtomicCacheStats>,
}

impl<K: Eq + std::hash::Hash + Clone + 'static, V: Clone> ShardedCache<K, V> {
    /// `num_shards` (rounded up to a power of two, min 1) inner caches,
    /// each of `num_sets × assoc` geometry, indexed by `hash`.
    pub fn new(
        num_shards: usize,
        num_sets: usize,
        assoc: usize,
        hash: impl Fn(&K) -> u32 + Send + Sync + 'static,
    ) -> Self {
        let n = num_shards.max(1).next_power_of_two();
        let hash: Arc<dyn Fn(&K) -> u32 + Send + Sync> = Arc::new(hash);
        let stats = Arc::new(AtomicCacheStats::new());
        let shards = (0..n)
            .map(|_| {
                let h = Arc::clone(&hash);
                let mut cache = SoftCache::new(num_sets, assoc, move |k: &K| h(k));
                cache.share_stats(Arc::clone(&stats));
                Mutex::new(cache)
            })
            .collect();
        ShardedCache {
            shards,
            mask: (n - 1) as u32,
            hash,
            stats,
        }
    }

    fn shard(&self, key: &K) -> &Mutex<SoftCache<K, V>> {
        let idx = ((self.hash)(key) >> 16) & self.mask;
        &self.shards[idx as usize]
    }

    /// Look up `key` (one shard lock).
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().get(key)
    }

    /// Insert `key → value` (one shard lock).
    pub fn insert(&self, key: K, value: V) -> Option<(K, V)> {
        self.shard(&key).lock().insert(key, value)
    }

    /// Remove `key` if present (one shard lock).
    pub fn invalidate(&self, key: &K) -> Option<V> {
        self.shard(key).lock().invalidate(key)
    }

    /// Drop every entry in every shard.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }

    /// Aggregate statistics across all shards — lock-free.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// The shared live counter handle.
    pub fn stats_handle(&self) -> Arc<AtomicCacheStats> {
        Arc::clone(&self.stats)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total live entries (locks each shard briefly; control-plane use).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The shared keying service of a sharded endpoint: the master key
/// cache (sharded, lock-free stats) in front of the one
/// [`MasterKeyDaemon`] (its own mutex — upcalls are rare and expensive,
/// §5.3's whole point). Shard workers call
/// [`master_key`](Self::master_key) with their shard lock RELEASED
/// (lock-ordering rule 1).
///
/// A double-checked MKC probe under the `mkd` lock guarantees at most
/// one upcall per peer even when several shards miss the same peer
/// concurrently — the paper's amortisation argument would be defeated
/// by a thundering herd of modular exponentiations.
pub struct KeyingService {
    mkc: ShardedCache<Principal, Vec<u8>>,
    mkd: Mutex<MasterKeyDaemon>,
    mkd_stats: AtomicMkdStats,
    obs: Mutex<Option<Arc<MetricsRegistry>>>,
}

impl KeyingService {
    /// Wrap `mkd` behind an MKC of `mkc_slots` direct-mapped slots,
    /// sharded `mkc_shards` ways.
    pub fn new(mkd: MasterKeyDaemon, mkc_slots: usize, mkc_shards: usize) -> Self {
        let mkd_stats = AtomicMkdStats::new();
        mkd_stats.publish(&mkd.stats());
        KeyingService {
            mkc: ShardedCache::new(mkc_shards, mkc_slots, 1, |p: &Principal| {
                crc32(p.as_bytes())
            }),
            mkd: Mutex::new(mkd),
            mkd_stats,
            obs: Mutex::new(None),
        }
    }

    /// Attach a metrics registry: MKD upcalls/failures are counted and
    /// the daemon emits its retry/breaker events into it.
    pub fn attach_obs(&self, registry: Arc<MetricsRegistry>) {
        self.mkd.lock().set_obs(Arc::clone(&registry));
        *self.obs.lock() = Some(registry);
    }

    /// Pair master key via the MKC, upcalling the MKD on a miss
    /// (Fig. 6). Thread-safe; at most one upcall per peer under races.
    pub fn master_key(&self, peer: &Principal) -> Result<Vec<u8>> {
        if let Some(k) = self.mkc.get(peer) {
            return Ok(k);
        }
        // Miss: take the MKD lock, then re-probe the MKC — a racing
        // thread may have completed the upcall while we waited. Lock
        // order is mkd → mkc-shard (rule 2); the fast path above
        // released its mkc-shard lock before we got here.
        let mut mkd = self.mkd.lock();
        if let Some(k) = self.mkc.get(peer) {
            return Ok(k);
        }
        let obs = self.obs.lock().clone();
        if let Some(reg) = &obs {
            reg.incr(Counter::MkdUpcalls);
        }
        let result = mkd.master_key(peer);
        self.mkd_stats.publish(&mkd.stats());
        match result {
            Ok(k) => {
                self.mkc.insert(peer.clone(), k.clone());
                Ok(k)
            }
            Err(e) => {
                if let Some(reg) = &obs {
                    reg.incr(Counter::MkdFailures);
                }
                Err(e)
            }
        }
    }

    /// Would an upcall for `peer` fail fast right now? Takes the `mkd`
    /// lock briefly (pure read; release loops call this between shard
    /// locks, never inside one).
    pub fn would_fast_fail(&self, peer: &Principal) -> bool {
        self.mkd.lock().would_fast_fail(peer)
    }

    /// The peer's circuit-breaker state (brief `mkd` lock).
    pub fn breaker_state(&self, peer: &Principal) -> Option<crate::breaker::BreakerState> {
        self.mkd.lock().breaker_state(peer)
    }

    /// Invalidate the cached master key for `peer` (rekey).
    pub fn forget_peer(&self, peer: &Principal) {
        self.mkc.invalidate(peer);
    }

    /// MKC statistics — lock-free.
    pub fn mkc_stats(&self) -> CacheStats {
        self.mkc.stats()
    }

    /// MKD statistics — lock-free (published after each upcall).
    pub fn mkd_stats(&self) -> MkdStats {
        self.mkd_stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mkd::PinnedDirectory;
    use fbs_crypto::dh::{DhGroup, PrivateValue};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn published_snapshot_swap() {
        let p = Published::new(41u32);
        let old = p.load();
        p.store(Arc::new(42));
        assert_eq!(*old, 41, "in-flight reader keeps its snapshot");
        assert_eq!(*p.load(), 42);
    }

    #[test]
    fn sharded_cache_roundtrip_and_shared_stats() {
        let c: ShardedCache<u64, u64> =
            ShardedCache::new(4, 8, 1, |k: &u64| crc32(&k.to_be_bytes()));
        assert_eq!(c.num_shards(), 4);
        for k in 0..32u64 {
            assert_eq!(c.get(&k), None);
            c.insert(k, k * 10);
        }
        for k in 0..32u64 {
            assert_eq!(c.get(&k), Some(k * 10), "key {k}");
        }
        let s = c.stats();
        assert_eq!(s.hits, 32);
        assert_eq!(s.misses(), 32);
        assert_eq!(s.insertions, 32);
        assert_eq!(s.lookups(), s.hits + s.misses(), "coherence");
        assert_eq!(c.len(), 32);
        c.invalidate(&0);
        assert_eq!(c.len(), 31);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_cache_rounds_shards_to_power_of_two() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(3, 4, 1, |_| 0);
        assert_eq!(c.num_shards(), 4);
        let c: ShardedCache<u64, u64> = ShardedCache::new(0, 4, 1, |_| 0);
        assert_eq!(c.num_shards(), 1);
    }

    /// A directory that counts fetches, to prove single-upcall-per-peer.
    struct CountingSource {
        inner: PinnedDirectory,
        fetches: Arc<AtomicU64>,
    }

    impl crate::mkd::PublicValueSource for CountingSource {
        fn fetch(&self, p: &Principal) -> Result<fbs_crypto::dh::PublicValue> {
            self.fetches.fetch_add(1, Ordering::SeqCst);
            self.inner.fetch(p)
        }
    }

    fn service_with_peer() -> (KeyingService, Principal, Arc<AtomicU64>) {
        let group = DhGroup::test_group();
        let s_priv = PrivateValue::from_entropy(group.clone(), b"source-entropy-bytes");
        let d_priv = PrivateValue::from_entropy(group, b"dest-entropy-bytes!!");
        let d = Principal::named("D");
        let mut dir = PinnedDirectory::new();
        dir.pin(d.clone(), d_priv.public_value());
        let fetches = Arc::new(AtomicU64::new(0));
        let source = CountingSource {
            inner: dir,
            fetches: Arc::clone(&fetches),
        };
        let svc = KeyingService::new(MasterKeyDaemon::new(s_priv, Box::new(source)), 32, 4);
        (svc, d, fetches)
    }

    #[test]
    fn keying_service_amortises_upcalls() {
        let (svc, d, fetches) = service_with_peer();
        let k1 = svc.master_key(&d).unwrap();
        let k2 = svc.master_key(&d).unwrap();
        assert_eq!(k1, k2);
        assert_eq!(fetches.load(Ordering::SeqCst), 1, "one upcall, then MKC");
        assert_eq!(svc.mkd_stats().upcalls, 1);
        assert_eq!(svc.mkc_stats().hits, 1);
        svc.forget_peer(&d);
        svc.master_key(&d).unwrap();
        assert_eq!(fetches.load(Ordering::SeqCst), 2, "rekey forces re-fetch");
    }

    #[test]
    fn keying_service_single_upcall_under_contention() {
        let (svc, d, fetches) = service_with_peer();
        let svc = Arc::new(svc);
        let keys: Vec<Vec<u8>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let svc = Arc::clone(&svc);
                    let d = d.clone();
                    scope.spawn(move || svc.master_key(&d).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(keys.windows(2).all(|w| w[0] == w[1]), "one key for all");
        assert_eq!(
            fetches.load(Ordering::SeqCst),
            1,
            "double-checked MKC probe collapses the thundering herd"
        );
        let s = svc.mkc_stats();
        assert_eq!(s.lookups(), s.hits + s.misses(), "coherence");
    }

    #[test]
    fn keying_service_failure_counts() {
        let (svc, _, _) = service_with_peer();
        let stranger = Principal::named("stranger");
        assert!(svc.master_key(&stranger).is_err());
        assert_eq!(svc.mkd_stats().failures, 1);
        // Failures are not cached: a second attempt upcalls again.
        assert!(svc.master_key(&stranger).is_err());
        assert_eq!(svc.mkd_stats().upcalls, 2);
    }
}
