//! FBS protocol processing: `FBSSend` / `FBSReceive` (paper §5.2, Fig. 4)
//! with the cached fast path of Fig. 6.
//!
//! An [`FbsEndpoint`] owns one principal's soft state: the master key cache
//! (MKC), transmission and receive flow key caches (TFKC/RFKC), the LCG
//! confounder source, and the upcall path to the master key daemon. Send
//! and receive follow the paper's pseudo-code line by line; the one
//! deliberate adjustment is on the receive side, where the body is
//! decrypted *before* MAC verification because the MAC is computed over the
//! plaintext on the send side (Fig. 4 line S6 runs before S8-9; the paper's
//! R7 as literally written would MAC the ciphertext, which could never
//! match — an acknowledged pseudo-code shorthand).
//!
//! Data-touching operations are combined per §5.3: with
//! [`FbsConfig::single_pass`] the MAC absorption and block encryption
//! proceed block-by-block in one loop over the payload.

use crate::batchauth::BatchVerifier;
use crate::cache::{CacheStats, SoftCache};
use crate::clock::Clock;
use crate::error::{FbsError, Result};
use crate::fam::{Fam, FlowPolicy};
use crate::header::{EncAlgorithm, HeaderView, SecurityFlowHeader, FIXED_PREFIX_LEN};
use crate::keying::{derive_flow_key, KeyDerivation, SealedFlowKey};
use crate::mkd::{MasterKeyDaemon, MkdStats};
use crate::principal::Principal;
use crate::replay::FreshnessWindow;
use fbs_crypto::chacha::{ChaCha20, Poly1305};
use fbs_crypto::crc32::Crc32;
use fbs_crypto::des::{
    ctr_xor_at, decrypt_in_place, padded_len, BlockCipher, BlockEncryptor, Des, TripleDes,
    BLOCK_SIZE,
};
use fbs_crypto::mac::MAX_MAC_SIZE;
use fbs_crypto::rng::Lcg64;
use fbs_crypto::{crc32, mac_eq, CipherSuite, MacAlgorithm};
use fbs_obs::{CacheKind, Counter, Event, MetricsRegistry, MetricsSnapshot};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An unprotected datagram as handed to FBS by the upper layer: header
/// fields relevant to FBS (source/destination principals) plus the body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Datagram {
    /// Source principal `S`.
    pub source: Principal,
    /// Destination principal `D`.
    pub destination: Principal,
    /// Higher-layer payload.
    pub body: Vec<u8>,
}

impl Datagram {
    /// Convenience constructor.
    pub fn new(source: Principal, destination: Principal, body: impl Into<Vec<u8>>) -> Self {
        Datagram {
            source,
            destination,
            body: body.into(),
        }
    }
}

/// A datagram carrying a security flow header; what travels on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtectedDatagram {
    /// Source principal (from the underlying transport's header).
    pub source: Principal,
    /// Destination principal.
    pub destination: Principal,
    /// The FBS security flow header.
    pub header: SecurityFlowHeader,
    /// Body — encrypted when `header.enc_alg.is_secret()`.
    pub body: Vec<u8>,
}

impl ProtectedDatagram {
    /// Serialise header + body as the byte payload handed to the underlying
    /// datagram transport (`Send()` of Fig. 4).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = self.header.encode();
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse a wire payload back into a protected datagram; source and
    /// destination come from the underlying transport.
    pub fn decode_payload(
        source: Principal,
        destination: Principal,
        payload: &[u8],
    ) -> Result<Self> {
        let (header, used) = SecurityFlowHeader::decode(payload)?;
        Ok(ProtectedDatagram {
            source,
            destination,
            header,
            body: payload[used..].to_vec(),
        })
    }

    /// Total wire overhead added by FBS for this datagram.
    pub fn overhead(&self) -> usize {
        self.header.encoded_len() + self.body.len() - self.header.plaintext_len as usize
    }
}

/// Minimum shipped MAC length in bytes. §5.3 allows truncating the MAC to
/// save header bytes, but a truncation below this floor guts the
/// authenticator entirely — `mac_truncate = Some(0)` would ship a
/// zero-length MAC that `mac_eq` vacuously accepts, making every forged
/// datagram verify. Configured truncations are clamped up to this value.
pub const MIN_SHIPPED_MAC: usize = 4;

/// Endpoint configuration.
#[derive(Clone, Debug)]
pub struct FbsConfig {
    /// Hash for flow-key derivation (`H` in §5.2).
    pub key_derivation: KeyDerivation,
    /// MAC algorithm (`HMAC` in §5.2 — the paper's keyed MD5 by default).
    /// The AEAD suite overrides this with Poly1305.
    pub mac_alg: MacAlgorithm,
    /// Optional MAC truncation (§5.3 allows shipping a prefix). Values
    /// below [`MIN_SHIPPED_MAC`] are clamped up (see
    /// [`FbsConfig::validate`]).
    pub mac_truncate: Option<usize>,
    /// Encryption algorithm used when the `secret` flag is set under the
    /// paper suite. The fast and AEAD suites select their own ciphers.
    pub enc_alg: EncAlgorithm,
    /// Crypto-plane profile. Sealed into every flow key this endpoint
    /// derives and carried in header byte 19; both halves of a flow must
    /// agree (a received frame naming a different suite is rejected as
    /// [`FbsError::BadMac`]).
    pub suite: CipherSuite,
    /// Replay freshness window.
    pub freshness: FreshnessWindow,
    /// TFKC geometry: sets × associativity.
    pub tfkc_sets: usize,
    /// TFKC associativity.
    pub tfkc_assoc: usize,
    /// RFKC geometry: sets × associativity.
    pub rfkc_sets: usize,
    /// RFKC associativity.
    pub rfkc_assoc: usize,
    /// MKC slots (direct-mapped).
    pub mkc_slots: usize,
    /// Combine MAC + encryption into a single data-touching pass (§5.3).
    pub single_pass: bool,
    /// "FBS NOP" instrumentation mode (§7.3, Fig. 8): the full protocol
    /// path runs — FAM, caches, header insertion, parsing — but MAC
    /// computation and encryption "return immediately" (zero MAC, identity
    /// cipher) so the non-cryptographic overhead can be measured. NEVER
    /// enable outside measurements.
    pub nop_crypto: bool,
}

impl Default for FbsConfig {
    fn default() -> Self {
        FbsConfig {
            key_derivation: KeyDerivation::Md5,
            mac_alg: MacAlgorithm::KeyedMd5,
            mac_truncate: None,
            enc_alg: EncAlgorithm::DesCbc,
            suite: CipherSuite::Paper,
            freshness: FreshnessWindow::default(),
            // §5.3: TFKC should cover the average number of active flows;
            // 64 direct-mapped slots matches the implementation's combined
            // FST/TFKC sizing ("e.g., 32 or above", footnote 11).
            tfkc_sets: 64,
            tfkc_assoc: 1,
            rfkc_sets: 64,
            rfkc_assoc: 1,
            // MKC covers concurrent correspondent principals.
            mkc_slots: 32,
            single_pass: true,
            nop_crypto: false,
        }
    }
}

impl FbsConfig {
    /// Check the configuration for values that would silently weaken the
    /// protocol. Returns an error for a `mac_truncate` below
    /// [`MIN_SHIPPED_MAC`] (a `Some(0)` truncation ships an empty MAC that
    /// verifies vacuously) and for Poly1305 configured as the flow MAC of
    /// a non-AEAD suite (Poly1305 keys are one-time; only the AEAD suite
    /// derives them safely).
    pub fn validate(&self) -> Result<()> {
        if let Some(n) = self.mac_truncate {
            if n < MIN_SHIPPED_MAC {
                return Err(FbsError::MalformedHeader(
                    "mac_truncate below the 4-byte minimum",
                ));
            }
        }
        if self.suite != CipherSuite::AeadChaPoly && self.mac_alg == MacAlgorithm::Poly1305 {
            return Err(FbsError::MalformedHeader(
                "Poly1305 requires the AEAD suite (one-time keys)",
            ));
        }
        Ok(())
    }

    /// A copy with insecure values clamped to their safe floors: the
    /// defensive counterpart of [`validate`](Self::validate), applied by
    /// [`FlowCodec::new`] so even a hand-built config that skipped
    /// validation cannot ship a forgeable MAC.
    pub fn normalized(mut self) -> Self {
        if let Some(n) = &mut self.mac_truncate {
            *n = (*n).max(MIN_SHIPPED_MAC);
        }
        if self.suite != CipherSuite::AeadChaPoly && self.mac_alg == MacAlgorithm::Poly1305 {
            self.mac_alg = MacAlgorithm::KeyedMd5;
        }
        self
    }

    /// The MAC algorithm the configured suite actually uses.
    pub fn suite_mac_alg(&self) -> MacAlgorithm {
        match self.suite {
            CipherSuite::Paper | CipherSuite::FastDes => self.mac_alg,
            CipherSuite::AeadChaPoly => MacAlgorithm::Poly1305,
        }
    }

    /// The cipher the configured suite uses when `secret` is requested.
    pub fn suite_enc_alg(&self) -> EncAlgorithm {
        match self.suite {
            CipherSuite::Paper => self.enc_alg,
            CipherSuite::FastDes => EncAlgorithm::DesCtr,
            CipherSuite::AeadChaPoly => EncAlgorithm::ChaCha20,
        }
    }

    /// Seal a derived flow key with every schedule this configuration
    /// needs, ready for the per-datagram path.
    pub fn seal_key(&self, key: crate::keying::FlowKey) -> SealedFlowKey {
        SealedFlowKey::seal_for(key, self.suite, self.suite_mac_alg(), self.suite_enc_alg())
    }

    /// Shipped MAC length for a MAC of `full` bytes under this config's
    /// truncation, never below [`MIN_SHIPPED_MAC`].
    fn shipped_mac_len(&self, full: usize) -> usize {
        self.mac_truncate
            .map_or(full, |n| full.min(n.max(MIN_SHIPPED_MAC)))
    }
}

/// Endpoint-level counters (cache hit rates live in the cache stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Datagrams sent.
    pub sends: u64,
    /// Datagrams received and accepted.
    pub receives: u64,
    /// Datagrams rejected for staleness (R3-4).
    pub replay_drops: u64,
    /// Datagrams rejected for MAC mismatch (R7-9).
    pub mac_drops: u64,
    /// Datagrams rejected for malformed ciphertext/framing.
    pub malformed_drops: u64,
    /// Bodies encrypted.
    pub encryptions: u64,
    /// Bodies decrypted.
    pub decryptions: u64,
}

impl EndpointStats {
    /// Fold these counters into a snapshot under the `endpoint.*` names a
    /// live [`MetricsRegistry`] uses, so a sum of per-endpoint legacy
    /// stats and a registry snapshot land in the same namespace.
    pub fn contribute(&self, snap: &mut MetricsSnapshot) {
        snap.add("endpoint.sends", self.sends);
        snap.add("endpoint.receives", self.receives);
        snap.add("endpoint.replay_drops", self.replay_drops);
        snap.add("endpoint.mac_drops", self.mac_drops);
        snap.add("endpoint.malformed_drops", self.malformed_drops);
        snap.add("endpoint.encryptions", self.encryptions);
        snap.add("endpoint.decryptions", self.decryptions);
    }
}

/// Cache key for flow keys: (sfl, remote principal, local principal). The
/// local principal is included for multi-homed principals (§5.3 fn. 7).
pub type FlowKeyId = (u64, Principal, Principal);

/// The §5.3-recommended randomising hash over the concatenated id,
/// streamed so each cache probe allocates nothing. Public so sharded
/// endpoints can build their own TFKC/RFKC slices with the exact index
/// function the monolithic endpoint uses.
pub fn flow_key_hash(id: &FlowKeyId) -> u32 {
    let mut h = Crc32::new();
    h.update(&id.0.to_be_bytes());
    h.update(id.1.as_bytes());
    h.update(id.2.as_bytes());
    h.finalize()
}

/// Lock-free endpoint counters backing [`FlowCodec::stats`]. Multiple
/// codecs (the per-shard slices of a sharded endpoint) can share one
/// handle via [`FlowCodec::share_stats`], so a scrape reads a single
/// coherent aggregate without taking any shard lock. All updates are
/// relaxed: these are independent monotone event counts.
#[derive(Debug, Default)]
pub struct AtomicEndpointStats {
    sends: AtomicU64,
    receives: AtomicU64,
    replay_drops: AtomicU64,
    mac_drops: AtomicU64,
    malformed_drops: AtomicU64,
    encryptions: AtomicU64,
    decryptions: AtomicU64,
}

impl AtomicEndpointStats {
    /// A fresh zeroed handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the counters into a plain [`EndpointStats`] value.
    pub fn snapshot(&self) -> EndpointStats {
        EndpointStats {
            sends: self.sends.load(Ordering::Relaxed),
            receives: self.receives.load(Ordering::Relaxed),
            replay_drops: self.replay_drops.load(Ordering::Relaxed),
            mac_drops: self.mac_drops.load(Ordering::Relaxed),
            malformed_drops: self.malformed_drops.load(Ordering::Relaxed),
            encryptions: self.encryptions.load(Ordering::Relaxed),
            decryptions: self.decryptions.load(Ordering::Relaxed),
        }
    }

    fn absorb(&self, prior: EndpointStats) {
        self.sends.fetch_add(prior.sends, Ordering::Relaxed);
        self.receives.fetch_add(prior.receives, Ordering::Relaxed);
        self.replay_drops
            .fetch_add(prior.replay_drops, Ordering::Relaxed);
        self.mac_drops.fetch_add(prior.mac_drops, Ordering::Relaxed);
        self.malformed_drops
            .fetch_add(prior.malformed_drops, Ordering::Relaxed);
        self.encryptions
            .fetch_add(prior.encryptions, Ordering::Relaxed);
        self.decryptions
            .fetch_add(prior.decryptions, Ordering::Relaxed);
    }
}

/// The key-agnostic half of an endpoint: confounder generation, header
/// encode/seal, decrypt/MAC-verify, freshness, and the endpoint-level
/// counters — everything `FBSSend`/`FBSReceive` do *except* key lookup
/// and derivation. A sharded endpoint instantiates one `FlowCodec` per
/// shard (each with its own confounder stream) around a shared keying
/// service; the monolithic [`FbsEndpoint`] wraps exactly one.
pub struct FlowCodec {
    local: Principal,
    cfg: FbsConfig,
    clock: Arc<dyn Clock>,
    confounder: Lcg64,
    stats: Arc<AtomicEndpointStats>,
    obs: Option<Arc<MetricsRegistry>>,
}

impl FlowCodec {
    /// A codec for `local`. `seed` randomises the confounder generator
    /// (must differ across codecs, §5.3 — per-shard codecs derive their
    /// seeds from the endpoint seed and the shard index).
    pub fn new(local: Principal, cfg: FbsConfig, clock: Arc<dyn Clock>, seed: u64) -> Self {
        FlowCodec {
            local,
            // Clamp insecure settings (zero-length truncated MACs, misused
            // one-time MAC algorithms) even if the caller skipped
            // `FbsConfig::validate`.
            cfg: cfg.normalized(),
            clock,
            confounder: Lcg64::new(seed),
            stats: Arc::new(AtomicEndpointStats::new()),
            obs: None,
        }
    }

    /// Attach a metrics registry for datagram-path events.
    pub fn set_obs(&mut self, registry: Arc<MetricsRegistry>) {
        self.obs = Some(registry);
    }

    /// The local principal.
    pub fn local(&self) -> &Principal {
        &self.local
    }

    /// The configuration in use.
    pub fn config(&self) -> &FbsConfig {
        &self.cfg
    }

    /// Shared clock handle.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Endpoint counters (a snapshot of the live atomic counters).
    pub fn stats(&self) -> EndpointStats {
        self.stats.snapshot()
    }

    /// The live counter handle, for lock-free scrapes.
    pub fn stats_handle(&self) -> Arc<AtomicEndpointStats> {
        Arc::clone(&self.stats)
    }

    /// Point this codec's counters at `shared`, folding in anything
    /// accumulated so far — how per-shard codecs aggregate into one
    /// endpoint-wide handle.
    pub fn share_stats(&mut self, shared: Arc<AtomicEndpointStats>) {
        shared.absorb(self.stats.snapshot());
        self.stats = shared;
    }

    /// R3-4 of Fig. 4: reject a stale or future timestamp, counting the
    /// drop. Callers run this *before* key lookup so the replay verdict
    /// (and its stats) never depends on key availability.
    pub fn check_freshness(&self, timestamp: u32) -> Result<()> {
        let now_minutes = self.clock.now_minutes();
        if let Err(e) = self.cfg.freshness.check(timestamp, now_minutes) {
            self.stats.replay_drops.fetch_add(1, Ordering::Relaxed);
            if let Some(reg) = &self.obs {
                reg.record(Event::ReplayDrop {
                    datagram_minutes: timestamp,
                    now_minutes,
                });
            }
            return Err(e);
        }
        Ok(())
    }

    /// Seal `body` under `key` into `out`: encode, pad, encrypt, MAC —
    /// no per-datagram heap allocation. Byte-identical to the monolithic
    /// endpoint's output for the same confounder stream.
    pub fn seal_with_key_into(
        &mut self,
        sfl: u64,
        key: &SealedFlowKey,
        body: &[u8],
        secret: bool,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let confounder = self.confounder.next_u32();
        let timestamp = self.clock.now_minutes();
        // Dispatch on the suite sealed into the key (falling back to the
        // config for compatibility keys): the profile travels with the key
        // schedule, so a worker never branches on mutable config mid-batch.
        let suite = key.suite();
        let mac_alg = match suite {
            CipherSuite::AeadChaPoly => MacAlgorithm::Poly1305,
            _ => self.cfg.mac_alg,
        };
        let enc_alg = if secret && !self.cfg.nop_crypto {
            match suite {
                CipherSuite::Paper => self.cfg.enc_alg,
                CipherSuite::FastDes => EncAlgorithm::DesCtr,
                CipherSuite::AeadChaPoly => EncAlgorithm::ChaCha20,
            }
        } else {
            EncAlgorithm::None
        };
        let mac_out_len = mac_alg.output_len();
        let shipped = self.cfg.shipped_mac_len(mac_out_len);
        let header_len = FIXED_PREFIX_LEN + shipped;
        // Block ciphers pad to a whole block; stream ciphers (and
        // MAC-only) keep the wire body at plaintext length.
        let wire_body_len = if enc_alg.des_mode().is_some() {
            padded_len(body.len())
        } else {
            body.len()
        };
        // One resize: zero-fills the header region and any padding; the
        // plaintext is copied in exactly once.
        out.clear();
        out.resize(header_len + wire_body_len, 0);
        out[header_len..header_len + body.len()].copy_from_slice(body);
        let (head, wire_body) = out.split_at_mut(header_len);
        let mut mac_buf = [0u8; MAX_MAC_SIZE];
        let mac_len = seal_core(
            &self.cfg,
            key,
            suite,
            sfl,
            confounder,
            timestamp,
            body.len(),
            mac_alg,
            enc_alg,
            wire_body,
            &mut mac_buf,
        );
        debug_assert_eq!(mac_len, mac_out_len);
        HeaderView {
            sfl,
            confounder,
            timestamp,
            mac_alg,
            enc_alg,
            suite,
            plaintext_len: body.len() as u32,
            mac: &mac_buf[..shipped],
        }
        .encode_into(head);
        self.note_sealed(enc_alg, body.len() as u64);
        Ok(())
    }

    /// Recover and verify a wire body under a caller-provided flow key:
    /// R7-11 of Fig. 4 (decrypt before MAC, see module docs) — the
    /// receive half of the §7.2 combined-table fast path. Freshness
    /// ([`check_freshness`](Self::check_freshness)) and key lookup are
    /// the caller's job.
    pub fn open_with_key_into(
        &self,
        h: &HeaderView<'_>,
        key: &SealedFlowKey,
        body: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let Some((expected, full)) = self.open_compute(h, key, body, out)? else {
            // Fig. 8's "FBS NOP": MAC verification returns immediately.
            self.note_received(out.len() as u64);
            return Ok(());
        };
        // R7-9: MAC verification (constant-time compare).
        let used = self.cfg.shipped_mac_len(full);
        if !mac_eq(&expected[..used], h.mac) {
            self.note_mac_drop();
            return Err(FbsError::BadMac);
        }
        self.note_received(out.len() as u64);
        // R12: `out` holds the datagram body.
        Ok(())
    }

    /// [`Self::open_with_key_into`] with the MAC *comparison* deferred into
    /// `verifier` (MABS-style batch verification): the body is recovered
    /// and the expected tag computed now, but the accept/reject decision —
    /// and the receive/mac-drop accounting — happens when the caller
    /// resolves the verifier over the whole sub-batch. Returns `true` when
    /// a tag was enqueued (the caller MUST resolve the verifier and then
    /// call [`Self::note_deferred_pass`] or
    /// [`Self::note_deferred_mac_drop`] per datagram), `false` when the
    /// datagram was fully accepted here (NOP-crypto mode).
    pub fn open_with_key_deferred(
        &self,
        h: &HeaderView<'_>,
        key: &SealedFlowKey,
        body: &[u8],
        out: &mut Vec<u8>,
        token: usize,
        verifier: &mut BatchVerifier,
    ) -> Result<bool> {
        let Some((expected, full)) = self.open_compute(h, key, body, out)? else {
            self.note_received(out.len() as u64);
            return Ok(false);
        };
        let used = self.cfg.shipped_mac_len(full);
        // The shipped MAC is copied out of the wire buffer: by resolution
        // time the payload buffer has been recycled into the pool.
        verifier.push(&expected[..used], h.mac, token);
        Ok(true)
    }

    /// Deferred-verification bookkeeping: the datagram whose tag was
    /// enqueued by [`Self::open_with_key_deferred`] passed batch
    /// verification.
    pub fn note_deferred_pass(&self, bytes: u64) {
        self.note_received(bytes);
    }

    /// Deferred-verification bookkeeping: the datagram failed batch
    /// verification (isolated by bisection).
    pub fn note_deferred_mac_drop(&self) {
        self.note_mac_drop();
    }

    /// Recover the body into `out` and compute the expected MAC, dispatched
    /// on the (authenticated) suite id. Returns `None` in NOP-crypto mode
    /// (body recovered, nothing to verify), otherwise the expected tag and
    /// its untruncated length.
    fn open_compute(
        &self,
        h: &HeaderView<'_>,
        key: &SealedFlowKey,
        body: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<Option<([u8; MAX_MAC_SIZE], usize)>> {
        // Both halves of a flow must run the same profile: a frame naming
        // a different suite is keyed differently by construction (the
        // suite id is absorbed into the MAC of the non-paper suites) and
        // is rejected up front, so no downgrade path exists.
        if h.suite != self.cfg.suite {
            self.note_mac_drop();
            return Err(FbsError::BadMac);
        }
        let mut expected = [0u8; MAX_MAC_SIZE];
        let full = match h.suite {
            CipherSuite::Paper => {
                if let Err(e) = open_body_into(h, key, body, out) {
                    self.note_malformed();
                    return Err(e);
                }
                self.note_decrypted(h);
                if self.cfg.nop_crypto {
                    return Ok(None);
                }
                // The paper layout: MAC over confounder | timestamp |
                // plaintext — bit-identical to the pre-suite wire format.
                let mut ctx = key.mac_begin(h.mac_alg);
                ctx.update(&h.confounder.to_be_bytes());
                ctx.update(&h.timestamp.to_be_bytes());
                ctx.update(out);
                ctx.finalize_into(&mut expected)
            }
            CipherSuite::FastDes => {
                if !matches!(h.enc_alg, EncAlgorithm::None | EncAlgorithm::DesCtr)
                    || h.plaintext_len as usize != body.len()
                {
                    self.note_malformed();
                    return Err(FbsError::MalformedCiphertext);
                }
                out.clear();
                out.extend_from_slice(body);
                if h.enc_alg == EncAlgorithm::DesCtr {
                    ctr_xor_at(key.des(), ctr_base(h.confounder, h.timestamp), 0, out);
                }
                self.note_decrypted(h);
                if self.cfg.nop_crypto {
                    return Ok(None);
                }
                let mut ctx = key.mac_begin(h.mac_alg);
                ctx.update(&[h.suite.wire_id()]);
                ctx.update(&h.confounder.to_be_bytes());
                ctx.update(&h.timestamp.to_be_bytes());
                ctx.update(out);
                ctx.finalize_into(&mut expected)
            }
            CipherSuite::AeadChaPoly => {
                if !matches!(h.enc_alg, EncAlgorithm::None | EncAlgorithm::ChaCha20)
                    || h.plaintext_len as usize != body.len()
                {
                    self.note_malformed();
                    return Err(FbsError::MalformedCiphertext);
                }
                out.clear();
                out.extend_from_slice(body);
                let cc = ChaCha20::new(
                    key.chacha_key(),
                    &aead_nonce(h.sfl, h.confounder, h.timestamp),
                );
                if self.cfg.nop_crypto {
                    if h.enc_alg == EncAlgorithm::ChaCha20 {
                        cc.xor_keystream(1, out);
                    }
                    self.note_decrypted(h);
                    return Ok(None);
                }
                // Encrypt-then-MAC: the tag covers the ciphertext, so it
                // is computed before decryption.
                let mut p = Poly1305::new(&cc.poly1305_key());
                p.update(&[h.suite.wire_id()]);
                p.update(&h.confounder.to_be_bytes());
                p.update(&h.timestamp.to_be_bytes());
                p.update(out);
                expected[..16].copy_from_slice(&p.finalize());
                if h.enc_alg == EncAlgorithm::ChaCha20 {
                    cc.xor_keystream(1, out);
                }
                self.note_decrypted(h);
                16
            }
        };
        Ok(Some((expected, full)))
    }

    /// Decryption accounting, fired once per secret body.
    fn note_decrypted(&self, h: &HeaderView<'_>) {
        if h.enc_alg.is_secret() {
            self.stats.decryptions.fetch_add(1, Ordering::Relaxed);
            if let Some(reg) = &self.obs {
                reg.incr(Counter::Decryptions);
            }
        }
    }

    /// Malformed-frame accounting (stats + event).
    fn note_malformed(&self) {
        self.stats.malformed_drops.fetch_add(1, Ordering::Relaxed);
        if let Some(reg) = &self.obs {
            reg.record(Event::MalformedDrop);
        }
    }

    /// MAC-mismatch accounting (stats + event).
    fn note_mac_drop(&self) {
        self.stats.mac_drops.fetch_add(1, Ordering::Relaxed);
        if let Some(reg) = &self.obs {
            reg.record(Event::MacDrop);
        }
    }

    /// Shared send-side accounting (stats + observation), identical for
    /// the legacy and zero-copy paths.
    fn note_sealed(&self, enc_alg: EncAlgorithm, plaintext_bytes: u64) {
        if enc_alg.is_secret() {
            self.stats.encryptions.fetch_add(1, Ordering::Relaxed);
        }
        self.stats.sends.fetch_add(1, Ordering::Relaxed);
        if let Some(reg) = &self.obs {
            if enc_alg.is_secret() {
                reg.incr(Counter::Encryptions);
            }
            reg.record(Event::Send {
                bytes: plaintext_bytes,
            });
        }
    }

    fn note_received(&self, bytes: u64) {
        self.stats.receives.fetch_add(1, Ordering::Relaxed);
        if let Some(reg) = &self.obs {
            reg.record(Event::Receive { bytes });
        }
    }
}

/// One principal's FBS protocol state.
pub struct FbsEndpoint {
    codec: FlowCodec,
    seed: u64,
    mkd: MasterKeyDaemon,
    mkc: SoftCache<Principal, Vec<u8>>,
    tfkc: SoftCache<FlowKeyId, Arc<SealedFlowKey>>,
    rfkc: SoftCache<FlowKeyId, Arc<SealedFlowKey>>,
    /// Optional metrics registry; `None` (the default) keeps the datagram
    /// path observation-free.
    obs: Option<Arc<MetricsRegistry>>,
}

impl FbsEndpoint {
    /// Create an endpoint for `local`. `seed` randomises the confounder
    /// generator (must differ across initialisations, §5.3); `mkd` carries
    /// the principal's private value and certificate access.
    pub fn new(
        local: Principal,
        cfg: FbsConfig,
        clock: Arc<dyn Clock>,
        seed: u64,
        mkd: MasterKeyDaemon,
    ) -> Self {
        let mkc = SoftCache::new(cfg.mkc_slots, 1, |p: &Principal| crc32(p.as_bytes()));
        let tfkc = SoftCache::new(cfg.tfkc_sets, cfg.tfkc_assoc, flow_key_hash);
        let rfkc = SoftCache::new(cfg.rfkc_sets, cfg.rfkc_assoc, flow_key_hash);
        FbsEndpoint {
            codec: FlowCodec::new(local, cfg, clock, seed),
            seed,
            mkd,
            mkc,
            tfkc,
            rfkc,
            obs: None,
        }
    }

    /// Attach a metrics registry: the endpoint emits datagram-path events
    /// (send/receive, drops, key-derivation latency) and cascades the
    /// registry into its MKC/TFKC/RFKC so cache lookups are observed under
    /// their own [`CacheKind`]s.
    pub fn attach_obs(&mut self, registry: Arc<MetricsRegistry>) {
        self.mkc.set_obs(Arc::clone(&registry), CacheKind::Mkc);
        self.tfkc.set_obs(Arc::clone(&registry), CacheKind::Tfkc);
        self.rfkc.set_obs(Arc::clone(&registry), CacheKind::Rfkc);
        self.mkd.set_obs(Arc::clone(&registry));
        self.codec.set_obs(Arc::clone(&registry));
        self.obs = Some(registry);
    }

    /// The local principal.
    pub fn local(&self) -> &Principal {
        self.codec.local()
    }

    /// The configuration in use.
    pub fn config(&self) -> &FbsConfig {
        self.codec.config()
    }

    /// Decompose the endpoint into the parts a sharded wrapper needs:
    /// `(local, cfg, clock, seed, mkd)`. The caller builds per-shard
    /// [`FlowCodec`]s and its own caches from these; the endpoint's own
    /// (still-empty, if taken at construction time) soft state is
    /// discarded — safe by definition.
    pub fn into_keying_parts(self) -> (Principal, FbsConfig, Arc<dyn Clock>, u64, MasterKeyDaemon) {
        let FlowCodec {
            local, cfg, clock, ..
        } = self.codec;
        (local, cfg, clock, self.seed, self.mkd)
    }

    /// Pair master key via MKC, upcalling the MKD on a miss (Fig. 6).
    fn master_key(&mut self, peer: &Principal) -> Result<Vec<u8>> {
        if let Some(k) = self.mkc.get(peer) {
            return Ok(k);
        }
        if let Some(reg) = &self.obs {
            reg.incr(Counter::MkdUpcalls);
        }
        let k = match self.mkd.master_key(peer) {
            Ok(k) => k,
            Err(e) => {
                if let Some(reg) = &self.obs {
                    reg.incr(Counter::MkdFailures);
                }
                return Err(e);
            }
        };
        self.mkc.insert(peer.clone(), k.clone());
        Ok(k)
    }

    /// Transmit-side flow key via TFKC (Fig. 6, replacing Fig. 4 line S3).
    /// A hit is an `Arc` refcount bump — no key bytes are copied and the
    /// cached DES key schedule rides along.
    fn flow_key_tx(&mut self, sfl: u64, destination: &Principal) -> Result<Arc<SealedFlowKey>> {
        let id = (sfl, destination.clone(), self.codec.local.clone());
        if let Some(k) = self.tfkc.get_ref(&id) {
            return Ok(Arc::clone(k));
        }
        let t0 = self.obs.as_ref().map(|_| self.codec.clock.now_micros());
        let master = self.master_key(destination)?;
        let k = Arc::new(self.codec.cfg.seal_key(derive_flow_key(
            self.codec.cfg.key_derivation,
            sfl,
            &master,
            &self.codec.local,
            destination,
        )));
        self.record_derivation(t0);
        self.tfkc.insert(id, Arc::clone(&k));
        Ok(k)
    }

    /// Receive-side flow key via RFKC (Fig. 4 lines R5-6).
    fn flow_key_rx(&mut self, sfl: u64, source: &Principal) -> Result<Arc<SealedFlowKey>> {
        let id = (sfl, source.clone(), self.codec.local.clone());
        if let Some(k) = self.rfkc.get_ref(&id) {
            return Ok(Arc::clone(k));
        }
        let t0 = self.obs.as_ref().map(|_| self.codec.clock.now_micros());
        let master = self.master_key(source)?;
        let k = Arc::new(self.codec.cfg.seal_key(derive_flow_key(
            self.codec.cfg.key_derivation,
            sfl,
            &master,
            source,
            &self.codec.local,
        )));
        self.record_derivation(t0);
        self.rfkc.insert(id, Arc::clone(&k));
        Ok(k)
    }

    /// Record a zero-message key derivation that started at `t0` (micros,
    /// `None` when observation is off). Covers the whole miss path: MKC
    /// probe, possible MKD upcall, and the hash.
    fn record_derivation(&self, t0: Option<u64>) {
        if let (Some(reg), Some(t0)) = (&self.obs, t0) {
            reg.record(Event::KeyDerivation {
                micros: self.codec.clock.now_micros().saturating_sub(t0),
            });
        }
    }

    /// Derive a transmit flow key WITHOUT consulting the TFKC. Used by the
    /// combined FST/TFKC optimisation of §7.2, where the caller keeps the
    /// flow key in its own merged table and only needs the derivation
    /// (MKC → MKD upcall → hash). The returned key carries its expanded
    /// DES schedule, so the caller's table amortises subkey expansion too.
    pub fn derive_flow_key_tx(
        &mut self,
        sfl: u64,
        destination: &Principal,
    ) -> Result<Arc<SealedFlowKey>> {
        let t0 = self.obs.as_ref().map(|_| self.codec.clock.now_micros());
        let master = self.master_key(destination)?;
        let k = derive_flow_key(
            self.codec.cfg.key_derivation,
            sfl,
            &master,
            &self.codec.local,
            destination,
        );
        self.record_derivation(t0);
        Ok(Arc::new(self.codec.cfg.seal_key(k)))
    }

    /// `FBSSend` with a caller-provided flow key (the combined-table fast
    /// path of §7.2). Performs S4-S10 of Fig. 4; the caller did S1-S3.
    ///
    /// This is a structured-view wrapper over the one seal implementation
    /// ([`Self::seal_with_key_into`] → `seal_core`): the wire payload is
    /// sealed exactly as the zero-copy path would, then re-parsed into a
    /// [`ProtectedDatagram`]. Callers on the hot path should use
    /// [`Self::seal_into`]/[`Self::seal_with_key_into`] directly.
    pub fn send_with_key(
        &mut self,
        sfl: u64,
        key: &SealedFlowKey,
        datagram: Datagram,
        secret: bool,
    ) -> Result<ProtectedDatagram> {
        debug_assert_eq!(
            datagram.source, self.codec.local,
            "sending from a foreign principal"
        );
        let mut wire = Vec::new();
        self.seal_with_key_into(sfl, key, &datagram.body, secret, &mut wire)?;
        ProtectedDatagram::decode_payload(datagram.source, datagram.destination, &wire)
    }

    /// `FBSSend` (Fig. 4): protect `datagram` under flow `sfl` (obtained
    /// from a FAM classification). `secret` requests confidentiality.
    pub fn send(
        &mut self,
        sfl: u64,
        datagram: Datagram,
        secret: bool,
    ) -> Result<ProtectedDatagram> {
        // S2-3: flow key (cached per Fig. 6).
        let key = self.flow_key_tx(sfl, &datagram.destination)?;
        self.send_with_key(sfl, &key, datagram, secret)
    }

    /// `FBSSend` straight into a caller-supplied buffer: encode, pad,
    /// encrypt, and MAC into `out` with no per-datagram heap allocation.
    /// `out` ends up holding exactly the wire payload that
    /// [`ProtectedDatagram::encode_payload`] would have produced —
    /// byte-for-byte, including the confounder sequence (both paths draw
    /// from the same per-endpoint generator).
    pub fn seal_into(
        &mut self,
        sfl: u64,
        destination: &Principal,
        body: &[u8],
        secret: bool,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let key = self.flow_key_tx(sfl, destination)?;
        self.seal_with_key_into(sfl, &key, body, secret, out)
    }

    /// [`Self::seal_into`] with a caller-provided flow key (the §7.2
    /// combined-table fast path, zero-copy edition).
    pub fn seal_with_key_into(
        &mut self,
        sfl: u64,
        key: &SealedFlowKey,
        body: &[u8],
        secret: bool,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        self.codec.seal_with_key_into(sfl, key, body, secret, out)
    }

    /// Classify through `fam` and send: the full Fig. 4 send path (S1-S10).
    pub fn send_classified<A, P>(
        &mut self,
        fam: &mut Fam<A, P>,
        attrs: A,
        datagram: Datagram,
        secret: bool,
    ) -> Result<ProtectedDatagram>
    where
        A: Clone + Eq + Hash,
        P: FlowPolicy<A>,
    {
        let now = self.codec.clock.now_secs();
        let class = fam.classify(attrs, now, datagram.body.len() as u64);
        self.send(class.sfl, datagram, secret)
    }

    /// `FBSReceive` (Fig. 4): verify and strip protection, returning the
    /// original datagram.
    pub fn receive(&mut self, pd: ProtectedDatagram) -> Result<Datagram> {
        let mut body = Vec::with_capacity(pd.body.len());
        self.open_core(&pd.source, &pd.header.view(), &pd.body, &mut body)?;
        Ok(Datagram {
            source: pd.source,
            destination: pd.destination,
            body,
        })
    }

    /// `FBSReceive` straight from a wire payload into a caller-supplied
    /// buffer: parse the security flow header, decrypt in place inside
    /// `out`, and verify the MAC — no plaintext temporary is allocated.
    /// On success `out` holds the recovered body.
    pub fn open_into(
        &mut self,
        source: &Principal,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let (view, used) = HeaderView::parse(payload)?;
        self.open_core(source, &view, &payload[used..], out)
    }

    /// The shared receive core: freshness, flow key, decrypt, MAC verify.
    /// Statistics and events fire exactly as the legacy `receive` did —
    /// the drop accounting now lives in the [`FlowCodec`] halves.
    fn open_core(
        &mut self,
        source: &Principal,
        h: &HeaderView<'_>,
        body: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<()> {
        // R3-4: freshness, before key lookup so a stale datagram is
        // rejected as stale even when its key is unavailable.
        self.codec.check_freshness(h.timestamp)?;
        // R5-6: flow key from the sfl (cached).
        let key = self.flow_key_rx(h.sfl, source)?;
        // R7-11: decrypt, then MAC-verify over the plaintext.
        self.codec.open_with_key_into(h, &key, body, out)
    }

    /// Invalidate the cached master key for `peer` (rekey: §5.2 notes the
    /// pair master key changes when a principal's private value changes).
    pub fn forget_peer(&mut self, peer: &Principal) {
        self.mkc.invalidate(peer);
    }

    /// Drop all flow-key soft state (always safe — it is recomputed on
    /// demand; this is what "soft state" buys, §5.2 observations).
    pub fn flush_flow_keys(&mut self) {
        self.tfkc.clear();
        self.rfkc.clear();
    }

    /// Endpoint counters.
    pub fn stats(&self) -> EndpointStats {
        self.codec.stats()
    }

    /// The codec half (confounder, seal/open, freshness, counters) —
    /// read access for callers that want its lock-free stats handle.
    pub fn codec(&self) -> &FlowCodec {
        &self.codec
    }

    /// TFKC statistics.
    pub fn tfkc_stats(&self) -> CacheStats {
        self.tfkc.stats()
    }

    /// RFKC statistics.
    pub fn rfkc_stats(&self) -> CacheStats {
        self.rfkc.stats()
    }

    /// MKC statistics.
    pub fn mkc_stats(&self) -> CacheStats {
        self.mkc.stats()
    }

    /// MKD statistics.
    pub fn mkd_stats(&self) -> MkdStats {
        self.mkd.stats()
    }

    /// The endpoint's master key daemon (read access: breaker state,
    /// fast-fail checks for release loops).
    pub fn mkd(&self) -> &MasterKeyDaemon {
        &self.mkd
    }

    /// Shared clock handle.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        self.codec.clock()
    }
}

/// The cipher a flow key materialises into, per the header's algorithm-ID.
/// Borrows the key schedule cached inside [`SealedFlowKey`], so selecting a
/// cipher costs nothing per datagram.
enum FlowCipher<'a> {
    Single(&'a Des),
    Triple(&'a TripleDes),
}

impl<'a> FlowCipher<'a> {
    fn for_alg(alg: EncAlgorithm, key: &'a SealedFlowKey) -> FlowCipher<'a> {
        if alg.is_triple() {
            FlowCipher::Triple(key.tdea())
        } else {
            FlowCipher::Single(key.des())
        }
    }
}

impl BlockCipher for FlowCipher<'_> {
    fn encrypt_block(&self, block: &mut [u8; 8]) {
        match self {
            FlowCipher::Single(c) => c.encrypt_block(block),
            FlowCipher::Triple(c) => c.encrypt_block(block),
        }
    }
    fn decrypt_block(&self, block: &mut [u8; 8]) {
        match self {
            FlowCipher::Single(c) => c.decrypt_block(block),
            FlowCipher::Triple(c) => c.decrypt_block(block),
        }
    }
}

/// CTR counter base for the fast suite: confounder || timestamp. Keystream
/// block `i` is `E(base + i)`; uniqueness rests on the per-datagram
/// confounder (32 random bits per minute bucket — the same birthday bound
/// the paper's CBC IV already relies on).
fn ctr_base(confounder: u32, timestamp: u32) -> u64 {
    ((confounder as u64) << 32) | timestamp as u64
}

/// 96-bit AEAD nonce: confounder | timestamp | low sfl bits. Unique per
/// datagram under the same flow key to the extent the confounder is.
fn aead_nonce(sfl: u64, confounder: u32, timestamp: u32) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[0..4].copy_from_slice(&confounder.to_be_bytes());
    nonce[4..8].copy_from_slice(&timestamp.to_be_bytes());
    nonce[8..12].copy_from_slice(&(sfl as u32).to_be_bytes());
    nonce
}

/// Fused chunk size for the fast-DES single-pass loop: MAC absorption and
/// CTR keystream XOR alternate over chunks this large (a multiple of both
/// the DES block and the 4-wide keystream stride).
const CTR_FUSE_CHUNK: usize = 256;

/// Compute the MAC and optionally encrypt, honouring the single-pass
/// configuration — entirely in place. `body` is the wire body region:
/// `body[..plaintext_len]` holds the plaintext, the remainder (zeroed
/// padding, present only when a block cipher is selected) completes the
/// final block. The MAC lands in `mac_out`; the untruncated length is
/// returned. Dispatch is per [`CipherSuite`]; the paper suite's output is
/// bit-identical to the pre-suite implementation.
#[allow(clippy::too_many_arguments)]
fn seal_core(
    cfg: &FbsConfig,
    key: &SealedFlowKey,
    suite: CipherSuite,
    sfl: u64,
    confounder: u32,
    timestamp: u32,
    plaintext_len: usize,
    mac_alg: MacAlgorithm,
    enc_alg: EncAlgorithm,
    body: &mut [u8],
    mac_out: &mut [u8; MAX_MAC_SIZE],
) -> usize {
    let out_len = mac_alg.output_len();
    if cfg.nop_crypto {
        // Fig. 8's "FBS NOP": MAC computation returns immediately.
        mac_out[..out_len].fill(0);
        return out_len;
    }

    match suite {
        CipherSuite::Paper => {}
        CipherSuite::FastDes => {
            // Fast profile: prefix-keyed MAC (cached key prefix) over
            // suite | confounder | timestamp | plaintext, fused with the
            // 4-wide DES-CTR keystream XOR in one pass over the data.
            debug_assert_eq!(body.len(), plaintext_len);
            let mut ctx = key.mac_begin(mac_alg);
            ctx.update(&[suite.wire_id()]);
            ctx.update(&confounder.to_be_bytes());
            ctx.update(&timestamp.to_be_bytes());
            if enc_alg == EncAlgorithm::DesCtr {
                let base = ctr_base(confounder, timestamp);
                let mut off = 0;
                while off < body.len() {
                    let n = (body.len() - off).min(CTR_FUSE_CHUNK);
                    let chunk = &mut body[off..off + n];
                    // Plaintext enters the MAC, then is encrypted in place.
                    ctx.update(chunk);
                    ctr_xor_at(key.des(), base, (off / BLOCK_SIZE) as u64, chunk);
                    off += n;
                }
            } else {
                ctx.update(body);
            }
            return ctx.finalize_into(mac_out);
        }
        CipherSuite::AeadChaPoly => {
            // AEAD profile: ChaCha20 from keystream block 1, Poly1305 tag
            // (one-time key from block 0) over suite | confounder |
            // timestamp | ciphertext — encrypt-then-MAC per RFC 8439.
            debug_assert_eq!(body.len(), plaintext_len);
            let cc = ChaCha20::new(key.chacha_key(), &aead_nonce(sfl, confounder, timestamp));
            if enc_alg == EncAlgorithm::ChaCha20 {
                cc.xor_keystream(1, body);
            }
            let mut p = Poly1305::new(&cc.poly1305_key());
            p.update(&[suite.wire_id()]);
            p.update(&confounder.to_be_bytes());
            p.update(&timestamp.to_be_bytes());
            p.update(body);
            mac_out[..Poly1305::TAG_LEN].copy_from_slice(&p.finalize());
            return Poly1305::TAG_LEN;
        }
    }

    let Some(mode) = enc_alg.des_mode() else {
        // MAC-only path: single data touch by construction.
        debug_assert_eq!(body.len(), plaintext_len);
        let mut ctx = key.mac_begin(mac_alg);
        ctx.update(&confounder.to_be_bytes());
        ctx.update(&timestamp.to_be_bytes());
        ctx.update(body);
        return ctx.finalize_into(mac_out);
    };

    debug_assert_eq!(body.len(), padded_len(plaintext_len));
    let des = FlowCipher::for_alg(enc_alg, key);
    let iv = ((confounder as u64) << 32) | confounder as u64;
    if !cfg.single_pass {
        // Two-pass ablation: MAC sweep, then encryption sweep.
        let mut ctx = key.mac_begin(mac_alg);
        ctx.update(&confounder.to_be_bytes());
        ctx.update(&timestamp.to_be_bytes());
        ctx.update(&body[..plaintext_len]);
        let n = ctx.finalize_into(mac_out);
        fbs_crypto::des::encrypt_in_place(&des, iv, mode, body);
        return n;
    }

    // Single pass (§5.3): absorb each plaintext block into the MAC and
    // encrypt it in the same loop iteration.
    let mut ctx = key.mac_begin(mac_alg);
    ctx.update(&confounder.to_be_bytes());
    ctx.update(&timestamp.to_be_bytes());
    let mut enc = BlockEncryptor::new(&des, mode, iv);
    for (i, chunk) in body.chunks_exact_mut(BLOCK_SIZE).enumerate() {
        let start = i * BLOCK_SIZE;
        let valid = plaintext_len.saturating_sub(start).min(BLOCK_SIZE);
        if valid > 0 {
            // Only true payload bytes enter the MAC; padding does not.
            ctx.update(&chunk[..valid]);
        }
        enc.process(chunk.try_into().expect("chunks_exact yields 8 bytes"));
    }
    ctx.finalize_into(mac_out)
}

/// Recover the plaintext body into `out` (decrypting in place inside `out`
/// if needed) and validate framing.
fn open_body_into(
    h: &HeaderView<'_>,
    key: &SealedFlowKey,
    body: &[u8],
    out: &mut Vec<u8>,
) -> Result<()> {
    match h.enc_alg.des_mode() {
        None => {
            if h.plaintext_len as usize != body.len() {
                return Err(FbsError::MalformedCiphertext);
            }
            out.clear();
            out.extend_from_slice(body);
            Ok(())
        }
        Some(mode) => {
            let len = h.plaintext_len as usize;
            if !body.len().is_multiple_of(BLOCK_SIZE)
                || len > body.len()
                || body.len() - len >= BLOCK_SIZE
            {
                return Err(FbsError::MalformedCiphertext);
            }
            let des = FlowCipher::for_alg(h.enc_alg, key);
            out.clear();
            out.extend_from_slice(body);
            decrypt_in_place(&des, h.iv64(), mode, out);
            out.truncate(len);
            Ok(())
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::mkd::PinnedDirectory;
    use fbs_crypto::dh::{DhGroup, PrivateValue};

    /// Build a connected pair of endpoints sharing a manual clock.
    pub(crate) fn endpoint_pair(cfg: FbsConfig) -> (FbsEndpoint, FbsEndpoint, ManualClock) {
        let clock = ManualClock::starting_at(1_000_000);
        let group = DhGroup::test_group();
        let s_priv = PrivateValue::from_entropy(group.clone(), b"source-entropy-20-bytes");
        let d_priv = PrivateValue::from_entropy(group, b"dest-entropy-20-bytes!!");
        let s = Principal::named("S");
        let d = Principal::named("D");
        let mut dir_s = PinnedDirectory::new();
        dir_s.pin(d.clone(), d_priv.public_value());
        let mut dir_d = PinnedDirectory::new();
        dir_d.pin(s.clone(), s_priv.public_value());
        let ep_s = FbsEndpoint::new(
            s,
            cfg.clone(),
            Arc::new(clock.clone()),
            0x1111,
            MasterKeyDaemon::new(s_priv, Box::new(dir_s)),
        );
        let ep_d = FbsEndpoint::new(
            d,
            cfg,
            Arc::new(clock.clone()),
            0x2222,
            MasterKeyDaemon::new(d_priv, Box::new(dir_d)),
        );
        (ep_s, ep_d, clock)
    }

    /// Build `n` sender endpoints sharing principal "S"'s identity (same
    /// DH private value, same directory) but with DISTINCT confounder
    /// seeds (§5.3), plus one receiver "D" that verifies them all. Worker
    /// `i`'s seed depends only on `i`, so a second call yields bit-wise
    /// reference endpoints.
    pub(crate) fn sender_fleet(
        cfg: FbsConfig,
        n: usize,
    ) -> (Vec<FbsEndpoint>, FbsEndpoint, ManualClock) {
        let clock = ManualClock::starting_at(1_000_000);
        let group = DhGroup::test_group();
        let s_priv = PrivateValue::from_entropy(group.clone(), b"source-entropy-20-bytes");
        let d_priv = PrivateValue::from_entropy(group, b"dest-entropy-20-bytes!!");
        let s = Principal::named("S");
        let d = Principal::named("D");
        let senders = (0..n)
            .map(|i| {
                let mut dir = PinnedDirectory::new();
                dir.pin(d.clone(), d_priv.public_value());
                FbsEndpoint::new(
                    s.clone(),
                    cfg.clone(),
                    Arc::new(clock.clone()),
                    0x1111 + (i as u64) * 0x10000,
                    MasterKeyDaemon::new(s_priv.clone(), Box::new(dir)),
                )
            })
            .collect();
        let mut dir_d = PinnedDirectory::new();
        dir_d.pin(s.clone(), s_priv.public_value());
        let receiver = FbsEndpoint::new(
            d,
            cfg,
            Arc::new(clock.clone()),
            0x2222,
            MasterKeyDaemon::new(d_priv, Box::new(dir_d)),
        );
        (senders, receiver, clock)
    }

    /// Mirror image of [`sender_fleet`]: one sender "S" plus `n` receiver
    /// endpoints sharing principal "D"'s identity, for the parallel open
    /// path (any worker can derive any flow's receive key from the shared
    /// master key, §5.2's zero-message property).
    pub(crate) fn receiver_fleet(
        cfg: FbsConfig,
        n: usize,
    ) -> (FbsEndpoint, Vec<FbsEndpoint>, ManualClock) {
        let clock = ManualClock::starting_at(1_000_000);
        let group = DhGroup::test_group();
        let s_priv = PrivateValue::from_entropy(group.clone(), b"source-entropy-20-bytes");
        let d_priv = PrivateValue::from_entropy(group, b"dest-entropy-20-bytes!!");
        let s = Principal::named("S");
        let d = Principal::named("D");
        let receivers = (0..n)
            .map(|i| {
                let mut dir = PinnedDirectory::new();
                dir.pin(s.clone(), s_priv.public_value());
                FbsEndpoint::new(
                    d.clone(),
                    cfg.clone(),
                    Arc::new(clock.clone()),
                    0x2222 + (i as u64) * 0x10000,
                    MasterKeyDaemon::new(d_priv.clone(), Box::new(dir)),
                )
            })
            .collect();
        let mut dir_s = PinnedDirectory::new();
        dir_s.pin(d.clone(), d_priv.public_value());
        let sender = FbsEndpoint::new(
            s,
            cfg,
            Arc::new(clock.clone()),
            0x1111,
            MasterKeyDaemon::new(s_priv, Box::new(dir_s)),
        );
        (sender, receivers, clock)
    }

    fn dgram(body: &[u8]) -> Datagram {
        Datagram::new(Principal::named("S"), Principal::named("D"), body)
    }

    #[test]
    fn roundtrip_cleartext() {
        let (mut s, mut d, _) = endpoint_pair(FbsConfig::default());
        let pd = s.send(42, dgram(b"hello"), false).unwrap();
        assert_eq!(pd.header.enc_alg, EncAlgorithm::None);
        assert_eq!(pd.body, b"hello"); // MAC-only: body visible
        let got = d.receive(pd).unwrap();
        assert_eq!(got.body, b"hello");
        assert_eq!(d.stats().receives, 1);
    }

    #[test]
    fn roundtrip_encrypted() {
        let (mut s, mut d, _) = endpoint_pair(FbsConfig::default());
        let pd = s.send(42, dgram(b"top secret payload"), true).unwrap();
        assert!(pd.header.enc_alg.is_secret());
        assert_ne!(&pd.body[..18.min(pd.body.len())], b"top secret payload");
        assert_eq!(pd.body.len() % 8, 0);
        let got = d.receive(pd).unwrap();
        assert_eq!(got.body, b"top secret payload");
    }

    #[test]
    fn roundtrip_empty_body() {
        let (mut s, mut d, _) = endpoint_pair(FbsConfig::default());
        for secret in [false, true] {
            let pd = s.send(1, dgram(b""), secret).unwrap();
            let got = d.receive(pd).unwrap();
            assert!(got.body.is_empty());
        }
    }

    #[test]
    fn single_pass_and_two_pass_agree_on_the_wire() {
        let cfg1 = FbsConfig {
            single_pass: true,
            ..FbsConfig::default()
        };
        let cfg2 = FbsConfig {
            single_pass: false,
            ..FbsConfig::default()
        };
        let (mut s1, _, _) = endpoint_pair(cfg1);
        let (mut s2, _, _) = endpoint_pair(cfg2);
        let p1 = s1.send(9, dgram(b"exactly the same bytes"), true).unwrap();
        let p2 = s2.send(9, dgram(b"exactly the same bytes"), true).unwrap();
        // Same seed ⇒ same confounder ⇒ identical wire output.
        assert_eq!(p1.header.mac, p2.header.mac);
        assert_eq!(p1.body, p2.body);
    }

    #[test]
    fn all_cipher_modes_roundtrip() {
        for enc in [
            EncAlgorithm::DesCbc,
            EncAlgorithm::DesEcb,
            EncAlgorithm::DesCfb,
            EncAlgorithm::DesOfb,
            EncAlgorithm::TdeaCbc,
        ] {
            let cfg = FbsConfig {
                enc_alg: enc,
                ..FbsConfig::default()
            };
            let (mut s, mut d, _) = endpoint_pair(cfg);
            let pd = s.send(3, dgram(b"mode test payload 123"), true).unwrap();
            let got = d.receive(pd).unwrap();
            assert_eq!(got.body, b"mode test payload 123", "{enc:?}");
        }
    }

    #[test]
    fn tampered_body_rejected() {
        let (mut s, mut d, _) = endpoint_pair(FbsConfig::default());
        let mut pd = s.send(42, dgram(b"do not touch"), true).unwrap();
        pd.body[0] ^= 0x80;
        assert_eq!(d.receive(pd), Err(FbsError::BadMac));
        assert_eq!(d.stats().mac_drops, 1);
    }

    #[test]
    fn tampered_timestamp_rejected() {
        // The MAC covers the timestamp, so shifting it (within the window)
        // still fails verification.
        let (mut s, mut d, _) = endpoint_pair(FbsConfig::default());
        let mut pd = s.send(42, dgram(b"payload"), false).unwrap();
        pd.header.timestamp += 1;
        assert_eq!(d.receive(pd), Err(FbsError::BadMac));
    }

    #[test]
    fn tampered_confounder_rejected() {
        let (mut s, mut d, _) = endpoint_pair(FbsConfig::default());
        let mut pd = s.send(42, dgram(b"payload"), false).unwrap();
        pd.header.confounder ^= 1;
        assert_eq!(d.receive(pd), Err(FbsError::BadMac));
    }

    #[test]
    fn cut_and_paste_across_flows_rejected() {
        // §2.2's cut-and-paste attack: splice flow-1 ciphertext into a
        // flow-2 datagram. Different flow keys make the MAC fail.
        let (mut s, mut d, _) = endpoint_pair(FbsConfig::default());
        let pd1 = s.send(1, dgram(b"AAAAAAAA"), true).unwrap();
        let mut pd2 = s.send(2, dgram(b"BBBBBBBB"), true).unwrap();
        pd2.body = pd1.body.clone();
        assert_eq!(d.receive(pd2), Err(FbsError::BadMac));
    }

    #[test]
    fn sfl_relabel_rejected() {
        // Relabelling a datagram to another flow changes the derived key.
        let (mut s, mut d, _) = endpoint_pair(FbsConfig::default());
        let mut pd = s.send(1, dgram(b"flow one data"), true).unwrap();
        pd.header.sfl = 2;
        assert!(d.receive(pd).is_err());
    }

    #[test]
    fn stale_datagram_rejected() {
        let (mut s, mut d, clock) = endpoint_pair(FbsConfig::default());
        let pd = s.send(1, dgram(b"old news"), false).unwrap();
        clock.advance(10 * 60); // 10 minutes > default ±2
        assert!(matches!(
            d.receive(pd),
            Err(FbsError::StaleTimestamp { .. })
        ));
        assert_eq!(d.stats().replay_drops, 1);
    }

    #[test]
    fn replay_within_window_succeeds_as_documented() {
        // §6.2: replay protection cannot be perfect — a replay inside the
        // freshness window is accepted; higher layers must sequence.
        let (mut s, mut d, _) = endpoint_pair(FbsConfig::default());
        let pd = s.send(1, dgram(b"replayable"), false).unwrap();
        assert!(d.receive(pd.clone()).is_ok());
        assert!(d.receive(pd).is_ok());
    }

    #[test]
    fn flow_key_caches_amortise() {
        let (mut s, mut d, _) = endpoint_pair(FbsConfig::default());
        for _ in 0..10 {
            let pd = s.send(5, dgram(b"data"), true).unwrap();
            d.receive(pd).unwrap();
        }
        // One TFKC miss (first datagram), nine hits; same for RFKC. One MKD
        // upcall each side.
        assert_eq!(s.tfkc_stats().misses(), 1);
        assert_eq!(s.tfkc_stats().hits, 9);
        assert_eq!(d.rfkc_stats().misses(), 1);
        assert_eq!(d.rfkc_stats().hits, 9);
        assert_eq!(s.mkd_stats().upcalls, 1);
        assert_eq!(d.mkd_stats().upcalls, 1);
    }

    #[test]
    fn soft_state_flush_is_transparent() {
        // Dropping all cached keys mid-flow must not break the protocol —
        // the defining property of soft state.
        let (mut s, mut d, _) = endpoint_pair(FbsConfig::default());
        let pd = s.send(5, dgram(b"one"), true).unwrap();
        d.receive(pd).unwrap();
        s.flush_flow_keys();
        d.flush_flow_keys();
        let pd = s.send(5, dgram(b"two"), true).unwrap();
        assert_eq!(d.receive(pd).unwrap().body, b"two");
    }

    #[test]
    fn distinct_flows_distinct_ciphertexts() {
        let (mut s, _, _) = endpoint_pair(FbsConfig::default());
        let p1 = s.send(1, dgram(b"identical!"), true).unwrap();
        let p2 = s.send(2, dgram(b"identical!"), true).unwrap();
        assert_ne!(p1.body, p2.body);
    }

    #[test]
    fn confounder_hides_identical_datagrams_within_flow() {
        // §5.2: the confounder hides the presence of identical datagrams in
        // the SAME flow.
        let (mut s, _, _) = endpoint_pair(FbsConfig::default());
        let p1 = s.send(1, dgram(b"identical!"), true).unwrap();
        let p2 = s.send(1, dgram(b"identical!"), true).unwrap();
        assert_ne!(p1.header.confounder, p2.header.confounder);
        assert_ne!(p1.body, p2.body);
    }

    #[test]
    fn wire_encode_decode_roundtrip() {
        let (mut s, mut d, _) = endpoint_pair(FbsConfig::default());
        let pd = s.send(7, dgram(b"over the wire"), true).unwrap();
        let wire = pd.encode_payload();
        let parsed =
            ProtectedDatagram::decode_payload(pd.source.clone(), pd.destination.clone(), &wire)
                .unwrap();
        assert_eq!(parsed, pd);
        assert_eq!(d.receive(parsed).unwrap().body, b"over the wire");
    }

    #[test]
    fn truncated_mac_roundtrip_and_rejection() {
        let cfg = FbsConfig {
            mac_truncate: Some(8),
            ..FbsConfig::default()
        };
        let (mut s, mut d, _) = endpoint_pair(cfg);
        let pd = s.send(7, dgram(b"short mac"), true).unwrap();
        assert_eq!(pd.header.mac.len(), 8);
        let mut tampered = pd.clone();
        tampered.body[0] ^= 1;
        assert_eq!(d.receive(pd).unwrap().body, b"short mac");
        assert_eq!(d.receive(tampered), Err(FbsError::BadMac));
    }

    #[test]
    fn malformed_ciphertext_lengths_rejected() {
        let (mut s, mut d, _) = endpoint_pair(FbsConfig::default());
        // Non-block-multiple body.
        let mut pd = s.send(7, dgram(b"eight by"), true).unwrap();
        pd.body.push(0);
        assert_eq!(d.receive(pd), Err(FbsError::MalformedCiphertext));
        // plaintext_len larger than body.
        let mut pd = s.send(7, dgram(b"eight by"), true).unwrap();
        pd.header.plaintext_len = 1000;
        assert_eq!(d.receive(pd), Err(FbsError::MalformedCiphertext));
        // Cleartext with mismatched declared length.
        let mut pd = s.send(7, dgram(b"clear"), false).unwrap();
        pd.header.plaintext_len = 2;
        assert_eq!(d.receive(pd), Err(FbsError::MalformedCiphertext));
        assert_eq!(d.stats().malformed_drops, 3);
    }

    #[test]
    fn unknown_peer_errors() {
        let (mut s, _, _) = endpoint_pair(FbsConfig::default());
        let bad = Datagram::new(
            Principal::named("S"),
            Principal::named("nobody"),
            b"x".to_vec(),
        );
        assert!(matches!(
            s.send(1, bad, false),
            Err(FbsError::PrincipalUnknown(_))
        ));
    }

    #[test]
    fn hmac_and_sha1_configs_roundtrip() {
        for (mac_alg, kd) in [
            (MacAlgorithm::HmacMd5, KeyDerivation::Md5),
            (MacAlgorithm::KeyedSha1, KeyDerivation::Sha1),
            (MacAlgorithm::HmacSha1, KeyDerivation::Sha1),
        ] {
            let cfg = FbsConfig {
                mac_alg,
                key_derivation: kd,
                ..FbsConfig::default()
            };
            let (mut s, mut d, _) = endpoint_pair(cfg);
            let pd = s.send(3, dgram(b"alternate algorithms"), true).unwrap();
            assert_eq!(d.receive(pd).unwrap().body, b"alternate algorithms");
        }
    }

    #[test]
    fn triple_des_wire_differs_from_single_des() {
        // Same flow key, same confounder seed: the TdeaCbc ciphertext must
        // differ from DesCbc's (the algorithm-ID field actually selects a
        // different cipher, not just a different label).
        let single = FbsConfig::default();
        let triple = FbsConfig {
            enc_alg: EncAlgorithm::TdeaCbc,
            ..FbsConfig::default()
        };
        let (mut s1, _, _) = endpoint_pair(single);
        let (mut s3, mut d3, _) = endpoint_pair(triple);
        let p1 = s1.send(9, dgram(b"cipher strength test"), true).unwrap();
        let p3 = s3.send(9, dgram(b"cipher strength test"), true).unwrap();
        assert_eq!(p1.header.confounder, p3.header.confounder, "same seed");
        assert_ne!(p1.body, p3.body, "different ciphers, different wire");
        assert_eq!(d3.receive(p3).unwrap().body, b"cipher strength test");
    }

    #[test]
    fn nop_crypto_mode_roundtrips_with_zero_mac() {
        let cfg = FbsConfig {
            nop_crypto: true,
            ..FbsConfig::default()
        };
        let (mut s, mut d, _) = endpoint_pair(cfg);
        let pd = s.send(1, dgram(b"measured payload"), true).unwrap();
        assert_eq!(pd.header.mac, vec![0u8; 16]);
        assert_eq!(pd.header.enc_alg, EncAlgorithm::None); // NOP: no cipher
        assert_eq!(pd.body, b"measured payload");
        assert_eq!(d.receive(pd).unwrap().body, b"measured payload");
    }

    #[test]
    fn overhead_accounting() {
        let (mut s, _, _) = endpoint_pair(FbsConfig::default());
        let pd = s.send(1, dgram(b"123456789"), true).unwrap(); // 9 → padded 16
                                                                // Header 40 bytes + 7 bytes padding.
        assert_eq!(pd.overhead(), 40 + 7);
    }

    #[test]
    fn registry_mirrors_legacy_stats_mid_run() {
        // Both endpoints share one registry; mid-run and at the end, the
        // live snapshot must agree with the sum of the legacy per-endpoint
        // stats structs on every counter those structs contribute.
        let reg = Arc::new(MetricsRegistry::new());
        let (mut s, mut d, clock) = endpoint_pair(FbsConfig::default());
        s.attach_obs(Arc::clone(&reg));
        d.attach_obs(Arc::clone(&reg));

        let check = |s: &FbsEndpoint, d: &FbsEndpoint, reg: &MetricsRegistry| {
            let mut legacy = MetricsSnapshot::new();
            for ep in [s, d] {
                ep.stats().contribute(&mut legacy);
                ep.mkd_stats().contribute(&mut legacy);
                ep.tfkc_stats().contribute(CacheKind::Tfkc, &mut legacy);
                ep.rfkc_stats().contribute(CacheKind::Rfkc, &mut legacy);
                ep.mkc_stats().contribute(CacheKind::Mkc, &mut legacy);
            }
            let live = reg.snapshot();
            for (name, v) in &legacy.counters {
                assert_eq!(live.counter(name), *v, "counter {name}");
            }
        };

        for i in 0..10u64 {
            let pd = s.send(i % 3, dgram(b"payload"), i % 2 == 0).unwrap();
            d.receive(pd).unwrap();
        }
        check(&s, &d, &reg);

        // Drop paths: tampered MAC, then a stale replay.
        let mut bad = s.send(1, dgram(b"tamper"), true).unwrap();
        bad.body[0] ^= 1;
        assert!(d.receive(bad).is_err());
        let stale = s.send(1, dgram(b"old"), false).unwrap();
        clock.advance(10 * 60);
        assert!(d.receive(stale).is_err());
        check(&s, &d, &reg);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("endpoint.sends"), 12);
        assert_eq!(snap.counter("endpoint.receives"), 10);
        assert_eq!(snap.counter("endpoint.mac_drops"), 1);
        assert_eq!(snap.counter("endpoint.replay_drops"), 1);
        assert!(snap.counter("endpoint.key_derivations") >= 3);
        assert!(snap.histograms.contains_key("key_derivation_us"));
        // The replay drop is in the flight recorder with both timestamps.
        assert!(snap
            .events
            .iter()
            .any(|e| matches!(e.event, Event::ReplayDrop { .. })));
    }

    #[test]
    fn disabled_obs_has_no_registry_side_effects() {
        // The default endpoint carries no registry: behaviour and legacy
        // stats are identical to an instrumented run's.
        let reg = Arc::new(MetricsRegistry::new());
        let (mut s1, mut d1, _) = endpoint_pair(FbsConfig::default());
        let (mut s2, mut d2, _) = endpoint_pair(FbsConfig::default());
        s2.attach_obs(Arc::clone(&reg));
        d2.attach_obs(Arc::clone(&reg));
        for i in 0..5u64 {
            let p1 = s1.send(i, dgram(b"same"), true).unwrap();
            let p2 = s2.send(i, dgram(b"same"), true).unwrap();
            assert_eq!(p1, p2);
            assert_eq!(d1.receive(p1).unwrap(), d2.receive(p2).unwrap());
        }
        assert_eq!(s1.stats(), s2.stats());
        assert_eq!(d1.stats(), d2.stats());
        assert_eq!(s1.tfkc_stats(), s2.tfkc_stats());
    }
}
