//! Time sources for timestamps and flow expiry.
//!
//! FBS needs two granularities of time (§5.3):
//!
//! * **minute-resolution timestamps** for the replay-protection header
//!   field, "encoded as the number of minutes since 00:00 GMT January 1,
//!   1996" — with 32 bits this "will not wrap around in the next 8000
//!   years";
//! * **second-resolution arrival times** for the flow state table's `last`
//!   field, compared against THRESHOLD by the sweeper (Fig. 7).
//!
//! Both derive from a single [`Clock`] giving seconds since the FBS epoch.
//! Production code uses [`SystemClock`]; tests and the trace-driven
//! simulators use [`ManualClock`] so time is fully controlled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Seconds between the Unix epoch (1970-01-01) and the FBS epoch
/// (1996-01-01 00:00 GMT): 26 years of which 6 are leap (1972, '76, '80,
/// '84, '88, '92) — exactly 9496 days.
pub const FBS_EPOCH_UNIX_SECS: u64 = 820_454_400;

/// A source of seconds-since-FBS-epoch.
pub trait Clock: Send + Sync {
    /// Current time in whole seconds since 00:00 GMT 1996-01-01.
    fn now_secs(&self) -> u64;

    /// Current time in whole minutes since the FBS epoch, as carried in the
    /// security flow header's 32-bit timestamp field.
    fn now_minutes(&self) -> u32 {
        (self.now_secs() / 60) as u32
    }

    /// Current time in microseconds since the FBS epoch, for latency
    /// instrumentation (`fbs-obs` event timestamps and key-derivation
    /// timing). The default derives it from [`Clock::now_secs`], so
    /// simulated clocks stay deterministic: under a [`ManualClock`] two
    /// micro-timestamps taken without advancing the clock are equal and
    /// measured latencies are exactly 0.
    fn now_micros(&self) -> u64 {
        self.now_secs().saturating_mul(1_000_000)
    }
}

/// Wall-clock time via [`SystemTime`].
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_secs(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system clock before 1970")
            .as_secs()
            .saturating_sub(FBS_EPOCH_UNIX_SECS)
    }

    fn now_micros(&self) -> u64 {
        (SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system clock before 1970")
            .as_micros() as u64)
            .saturating_sub(FBS_EPOCH_UNIX_SECS * 1_000_000)
    }
}

/// A manually-advanced clock for tests and trace-driven simulation.
///
/// Cloning shares the underlying time cell, so a clock handed to an
/// endpoint can be advanced from the test body.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    secs: Arc<AtomicU64>,
}

impl ManualClock {
    /// Start at `secs` seconds past the FBS epoch.
    pub fn starting_at(secs: u64) -> Self {
        ManualClock {
            secs: Arc::new(AtomicU64::new(secs)),
        }
    }

    /// Advance by `secs` seconds.
    pub fn advance(&self, secs: u64) {
        self.secs.fetch_add(secs, Ordering::SeqCst);
    }

    /// Jump to an absolute time (may go backwards — useful for testing
    /// unsynchronised-machine scenarios, §6.2).
    pub fn set(&self, secs: u64) {
        self.secs.store(secs, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_secs(&self) -> u64 {
        self.secs.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fbs_epoch_constant_is_1996_01_01() {
        // 26 years * 365 days + 6 leap days (1972, '76, '80, '84, '88, '92)
        // = 9496 days, and the constant is a whole number of days.
        assert_eq!(FBS_EPOCH_UNIX_SECS % 86_400, 0);
        assert_eq!(FBS_EPOCH_UNIX_SECS / 86_400, 26 * 365 + 6);
    }

    #[test]
    fn system_clock_is_past_epoch_and_sane() {
        let now = SystemClock.now_secs();
        // We are well past 1996 and well before 32-bit minute wraparound.
        assert!(now > 28 * 365 * 86_400);
        assert!(SystemClock.now_minutes() < u32::MAX / 2);
    }

    #[test]
    fn manual_clock_advance_and_set() {
        let c = ManualClock::starting_at(100);
        assert_eq!(c.now_secs(), 100);
        assert_eq!(c.now_minutes(), 1);
        c.advance(120);
        assert_eq!(c.now_secs(), 220);
        assert_eq!(c.now_minutes(), 3);
        c.set(59);
        assert_eq!(c.now_minutes(), 0);
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let a = ManualClock::starting_at(0);
        let b = a.clone();
        a.advance(600);
        assert_eq!(b.now_secs(), 600);
    }

    #[test]
    fn minute_timestamp_will_not_wrap_for_8000_years() {
        // The paper's claim: 32 bits of minutes ≈ 8171 years.
        let years = u32::MAX as u64 / (60 * 24 * 365);
        assert!(years > 8000);
    }
}
