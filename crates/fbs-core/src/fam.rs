//! The Flow Association Mechanism (FAM) — paper §5.1, Fig. 1.
//!
//! The FAM separates outgoing datagrams into flows. It is *policy driven*:
//! the mechanism (a flow state table plus the classify/sweep machinery
//! here) is fixed, while policy modules "plug in" to decide (a) which table
//! entry a datagram's attributes map to, (b) whether an entry describes the
//! same flow, and (c) when a flow has expired. The state is purely local to
//! the source principal — the destination only ever demultiplexes on the
//! *sfl* — so no state synchronisation is needed between the two ends.

use crate::sfl::SflAllocator;
use fbs_obs::{Counter, Event, FlowStartKind, MetricsRegistry, MetricsSnapshot};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// One active flow in the flow state table (paper Fig. 7's `FSTEntry`,
/// generalised over the attribute type).
#[derive(Clone, Debug)]
pub struct FstEntry<A> {
    /// Security flow label assigned to this flow.
    pub sfl: u64,
    /// The attributes that define the flow (e.g. a 5-tuple).
    pub attrs: A,
    /// Seconds-since-epoch when the flow started.
    pub created: u64,
    /// Seconds-since-epoch of the last datagram in the flow (Fig. 7's
    /// `last` field, compared against THRESHOLD by the sweeper).
    pub last: u64,
    /// Datagrams classified into this flow.
    pub packets: u64,
    /// Payload bytes classified into this flow.
    pub bytes: u64,
}

/// A policy module pair (mapper + sweeper) in the sense of Fig. 1.
///
/// `index`/`same_flow` realise the **mapper**: locate the candidate entry
/// and decide whether it is this datagram's flow. `expired` realises the
/// **sweeper** predicate. The FAM mechanics never interpret attributes
/// themselves.
pub trait FlowPolicy<A> {
    /// Map attributes to a flow-state-table index (e.g. `CRC-32(attrs) mod
    /// FSTSIZE` in the Fig. 7 policy).
    fn index(&self, attrs: &A, table_size: usize) -> usize;

    /// Does an entry holding `entry_attrs` describe the flow of a datagram
    /// with `attrs`?
    fn same_flow(&self, entry_attrs: &A, attrs: &A) -> bool;

    /// Has this flow expired (sweeper predicate)? The Fig. 7 policy expires
    /// entries whose last datagram is more than THRESHOLD seconds old.
    fn expired(&self, entry: &FstEntry<A>, now_secs: u64) -> bool;

    /// What to do with a datagram whose flow key cannot be derived right
    /// now (MKD/directory outage, open circuit breaker). Policy modules
    /// are the natural owner of this security/availability trade-off —
    /// FAM mechanics never interpret it. Defaults to fail-closed, the
    /// paper-faithful behaviour (an unprotectable datagram is an error).
    fn key_unavailable(&self) -> KeyUnavailableVerdict {
        KeyUnavailableVerdict::FailClosed
    }
}

/// Graceful-degradation verdict for key-unavailable datagrams.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KeyUnavailableVerdict {
    /// Drop the datagram and surface an error (default: never weaken
    /// security for availability).
    #[default]
    FailClosed,
    /// Let the datagram through unprotected/unverified. Only sound for
    /// flows whose policy demanded integrity opportunistically; never
    /// applied to encrypted traffic.
    FailOpen,
    /// Hold the datagram in a bounded parking queue and retry when key
    /// material may be back; drop on deadline.
    Park,
}

/// Why a classification started a new flow (or did not).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowStart {
    /// The datagram joined an existing valid flow.
    Existing,
    /// First flow ever seen at this table slot.
    Fresh,
    /// The slot held an *expired* flow (possibly with the same attributes —
    /// that case is also counted in `repeated_flows`).
    ReplacedExpired,
    /// The slot held a *valid* flow with different attributes: an index
    /// collision prematurely terminated it (footnote 11 — harmless for
    /// security, bad for efficiency).
    Collision,
}

/// Result of classifying one datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Classification {
    /// The security flow label to put in the datagram's FBS header.
    pub sfl: u64,
    /// How the flow was (or wasn't) started.
    pub start: FlowStart,
    /// True when this datagram started a *new* flow whose attributes had
    /// already identified some earlier flow — a "repeated flow" in the
    /// Fig. 14 sense (same 5-tuple, different flow incarnation).
    pub repeated: bool,
}

impl Classification {
    /// Did this datagram start a new flow?
    pub fn is_new_flow(&self) -> bool {
        self.start != FlowStart::Existing
    }
}

/// A completed (or in-progress, at drain time) flow, for the §7.3 flow
/// characteristics experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowRecord {
    /// The flow's sfl.
    pub sfl: u64,
    /// Datagrams carried.
    pub packets: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Flow start time (seconds since epoch).
    pub created: u64,
    /// Last datagram time.
    pub last: u64,
}

impl FlowRecord {
    /// Flow duration in seconds (first to last datagram).
    pub fn duration_secs(&self) -> u64 {
        self.last - self.created
    }
}

/// Counters describing FAM behaviour over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FamStats {
    /// Datagrams classified.
    pub classifications: u64,
    /// Datagrams that joined an existing flow.
    pub joined_existing: u64,
    /// New flows started (any [`FlowStart`] except `Existing`).
    pub flows_started: u64,
    /// New flows that displaced a still-valid different flow (index
    /// collisions; footnote 11).
    pub collisions: u64,
    /// New flows whose attributes had been seen on an earlier flow
    /// (Fig. 14's "repeated flows").
    pub repeated_flows: u64,
    /// Entries removed by explicit sweeps.
    pub swept: u64,
}

impl FamStats {
    /// Fold these counters into a snapshot under the `fam.*` names a live
    /// [`MetricsRegistry`] uses.
    pub fn contribute(&self, snap: &mut MetricsSnapshot) {
        snap.add("fam.classifications", self.classifications);
        snap.add("fam.joined_existing", self.joined_existing);
        snap.add("fam.flows_started", self.flows_started);
        snap.add("fam.collisions", self.collisions);
        snap.add("fam.repeated_flows", self.repeated_flows);
        snap.add("fam.swept", self.swept);
    }
}

impl From<FlowStart> for FlowStartKind {
    fn from(s: FlowStart) -> Self {
        match s {
            FlowStart::Existing => FlowStartKind::Existing,
            FlowStart::Fresh => FlowStartKind::Fresh,
            FlowStart::ReplacedExpired => FlowStartKind::ReplacedExpired,
            FlowStart::Collision => FlowStartKind::Collision,
        }
    }
}

/// The Flow Association Mechanism: flow state table + pluggable policy.
///
/// ```
/// use fbs_core::{Fam, SflAllocator};
/// use fbs_core::policy::IdleTimeoutPolicy;
///
/// let mut fam = Fam::new(64, IdleTimeoutPolicy::new(600), SflAllocator::new(1000));
/// let first = fam.classify("conversation-a".to_string(), /*now:*/ 0, /*bytes:*/ 120);
/// let again = fam.classify("conversation-a".to_string(), 30, 80);
/// assert_eq!(first.sfl, again.sfl, "same conversation, same flow");
/// let other = fam.classify("conversation-b".to_string(), 30, 80);
/// assert_ne!(first.sfl, other.sfl, "separate conversation, separate key");
/// ```
pub struct Fam<A, P> {
    fst: Vec<Option<FstEntry<A>>>,
    policy: P,
    alloc: SflAllocator,
    stats: FamStats,
    /// Attribute history for repeated-flow detection; `None` disables the
    /// (unbounded) tracking.
    history: Option<HashMap<A, u32>>,
    /// Finished-flow records for the §7.3 experiments; `None` disables.
    records: Option<Vec<FlowRecord>>,
    /// Optional metrics registry; classifications and sweeps emit events
    /// into it. `None` (the default) keeps the hot path observation-free.
    obs: Option<Arc<MetricsRegistry>>,
}

impl<A: Clone + Eq + Hash, P: FlowPolicy<A>> Fam<A, P> {
    /// Create a FAM with `table_size` slots (Fig. 7's FSTSIZE), the given
    /// policy, and an sfl allocator seeded by the caller.
    ///
    /// # Panics
    /// Panics if `table_size` is zero.
    pub fn new(table_size: usize, policy: P, alloc: SflAllocator) -> Self {
        assert!(table_size > 0, "FST must have at least one slot");
        Fam {
            fst: (0..table_size).map(|_| None).collect(),
            policy,
            alloc,
            stats: FamStats::default(),
            history: None,
            records: None,
            obs: None,
        }
    }

    /// Attach a metrics registry: every classification emits an
    /// [`Event::FamClassify`] and sweeps feed `fam.swept`.
    pub fn set_obs(&mut self, registry: Arc<MetricsRegistry>) {
        self.obs = Some(registry);
    }

    /// Enable repeated-flow tracking (unbounded memory: one map entry per
    /// distinct attribute tuple ever seen). Needed for Fig. 14.
    pub fn with_repeat_tracking(mut self) -> Self {
        self.enable_repeat_tracking();
        self
    }

    /// Enable (or re-enable) repeated-flow tracking in place. The first
    /// call pre-sizes the history to the FST's footprint so the warm-up
    /// phase does not rehash its way up from empty; later calls clear
    /// and *reuse* the existing allocation instead of dropping it for a
    /// fresh `HashMap`.
    pub fn enable_repeat_tracking(&mut self) {
        match &mut self.history {
            Some(h) => h.clear(),
            None => self.history = Some(HashMap::with_capacity(self.fst.len() * 2)),
        }
    }

    /// Enable finished-flow recording (unbounded memory: one record per
    /// flow). Needed for Figs. 9 and 10.
    pub fn with_flow_records(mut self) -> Self {
        self.records = Some(Vec::new());
        self
    }

    /// Classify a datagram with the given attributes arriving at
    /// `now_secs`, carrying `bytes` payload bytes. This is the mapper
    /// invocation of Fig. 4 line S1.
    pub fn classify(&mut self, attrs: A, now_secs: u64, bytes: u64) -> Classification {
        self.stats.classifications += 1;
        let i = self.policy.index(&attrs, self.fst.len());

        // Existing, valid, matching entry ⇒ the datagram joins the flow.
        if let Some(e) = &mut self.fst[i] {
            if !self.policy.expired(e, now_secs) && self.policy.same_flow(&e.attrs, &attrs) {
                e.last = now_secs;
                e.packets += 1;
                e.bytes += bytes;
                self.stats.joined_existing += 1;
                let sfl = e.sfl;
                if let Some(reg) = &self.obs {
                    reg.record(Event::FamClassify {
                        sfl,
                        start: FlowStartKind::Existing,
                        repeated: false,
                    });
                }
                return Classification {
                    sfl,
                    start: FlowStart::Existing,
                    repeated: false,
                };
            }
        }

        // Otherwise a new flow starts at this slot.
        let start = match &self.fst[i] {
            None => FlowStart::Fresh,
            Some(e) if self.policy.expired(e, now_secs) => FlowStart::ReplacedExpired,
            Some(_) => FlowStart::Collision,
        };
        if start == FlowStart::Collision {
            self.stats.collisions += 1;
        }
        if let Some(old) = self.fst[i].take() {
            self.record_finished(&old);
        }

        let repeated = match &mut self.history {
            None => false,
            Some(h) => {
                let count = h.entry(attrs.clone()).or_insert(0);
                let repeated = *count > 0;
                *count += 1;
                repeated
            }
        };
        if repeated {
            self.stats.repeated_flows += 1;
        }

        let sfl = self.alloc.next_sfl();
        self.fst[i] = Some(FstEntry {
            sfl,
            attrs,
            created: now_secs,
            last: now_secs,
            packets: 1,
            bytes,
        });
        self.stats.flows_started += 1;
        if let Some(reg) = &self.obs {
            reg.record(Event::FamClassify {
                sfl,
                start: start.into(),
                repeated,
            });
        }
        Classification {
            sfl,
            start,
            repeated,
        }
    }

    /// Run the sweeper (Fig. 7): remove expired entries, returning how many
    /// were removed. With the combined FST/TFKC optimisation of §7.2 this
    /// becomes implicit, but the explicit form matches Fig. 1.
    pub fn sweep(&mut self, now_secs: u64) -> usize {
        let mut removed = 0;
        for i in 0..self.fst.len() {
            let expired = matches!(&self.fst[i], Some(e) if self.policy.expired(e, now_secs));
            if expired {
                let old = self.fst[i].take().unwrap();
                self.record_finished(&old);
                removed += 1;
            }
        }
        self.stats.swept += removed as u64;
        if let Some(reg) = &self.obs {
            reg.add(Counter::FamSwept, removed as u64);
        }
        removed
    }

    fn record_finished(&mut self, e: &FstEntry<A>) {
        if let Some(records) = &mut self.records {
            records.push(FlowRecord {
                sfl: e.sfl,
                packets: e.packets,
                bytes: e.bytes,
                created: e.created,
                last: e.last,
            });
        }
    }

    /// Number of flows currently valid at `now_secs` (Fig. 12's metric).
    pub fn active_flows(&self, now_secs: u64) -> usize {
        self.fst
            .iter()
            .flatten()
            .filter(|e| !self.policy.expired(e, now_secs))
            .count()
    }

    /// Number of occupied table slots (valid or not yet swept).
    pub fn occupied_slots(&self) -> usize {
        self.fst.iter().flatten().count()
    }

    /// FST size (Fig. 7's FSTSIZE).
    pub fn table_size(&self) -> usize {
        self.fst.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FamStats {
        self.stats
    }

    /// Finish all remaining flows and return every flow record collected
    /// (requires [`with_flow_records`](Self::with_flow_records)).
    pub fn drain_records(&mut self) -> Vec<FlowRecord> {
        for i in 0..self.fst.len() {
            if let Some(old) = self.fst[i].take() {
                self.record_finished(&old);
            }
        }
        self.records.take().unwrap_or_default()
    }

    /// Immutable view of an FST slot (diagnostics/tests).
    pub fn slot(&self, i: usize) -> Option<&FstEntry<A>> {
        self.fst.get(i).and_then(|s| s.as_ref())
    }

    /// The policy in use.
    pub fn policy(&self) -> &P {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal test policy: attrs are (u32 key); index = key % size; same
    /// flow = equal keys; expired when idle > threshold.
    struct TestPolicy {
        threshold: u64,
    }

    impl FlowPolicy<u32> for TestPolicy {
        fn index(&self, attrs: &u32, table_size: usize) -> usize {
            (*attrs as usize) % table_size
        }
        fn same_flow(&self, a: &u32, b: &u32) -> bool {
            a == b
        }
        fn expired(&self, entry: &FstEntry<u32>, now_secs: u64) -> bool {
            now_secs.saturating_sub(entry.last) > self.threshold
        }
    }

    fn fam(size: usize, threshold: u64) -> Fam<u32, TestPolicy> {
        Fam::new(size, TestPolicy { threshold }, SflAllocator::new(1000))
            .with_repeat_tracking()
            .with_flow_records()
    }

    #[test]
    fn same_attrs_same_flow() {
        let mut f = fam(16, 600);
        let c1 = f.classify(5, 0, 100);
        let c2 = f.classify(5, 10, 200);
        assert_eq!(c1.sfl, c2.sfl);
        assert_eq!(c1.start, FlowStart::Fresh);
        assert_eq!(c2.start, FlowStart::Existing);
        assert_eq!(f.stats().flows_started, 1);
        assert_eq!(f.stats().joined_existing, 1);
    }

    #[test]
    fn different_attrs_different_flows() {
        let mut f = fam(16, 600);
        let c1 = f.classify(1, 0, 10);
        let c2 = f.classify(2, 0, 10);
        assert_ne!(c1.sfl, c2.sfl);
    }

    #[test]
    fn reenabling_repeat_tracking_reuses_the_history_allocation() {
        let mut f = fam(16, 600);
        // First enable pre-sized the map to the FST's footprint.
        let presized = f.history.as_ref().expect("enabled").capacity();
        assert!(presized >= 32, "history not pre-sized: {presized}");
        for k in 0..100u32 {
            f.classify(k, 0, 10);
        }
        let grown = f.history.as_ref().expect("enabled").capacity();
        assert!(grown >= presized);
        // Re-enabling clears the entries but keeps the backing storage —
        // no fresh `HashMap::new()` starting from capacity zero.
        f.enable_repeat_tracking();
        let h = f.history.as_ref().expect("still enabled");
        assert!(h.is_empty(), "re-enable must clear old attribute history");
        assert_eq!(h.capacity(), grown, "re-enable dropped the allocation");
        // And tracking still works after the reset.
        let c1 = f.classify(5, 1_000, 10);
        assert!(!c1.repeated, "history was cleared, so not a repeat");
        let c2 = f.classify(5, 2_000, 10);
        assert_eq!(c2.start, FlowStart::ReplacedExpired);
        assert!(c2.repeated);
    }

    #[test]
    fn idle_flow_expires_and_restarts_as_repeated() {
        // The §7.1 policy in miniature: a gap > THRESHOLD starts a new flow
        // with a new sfl for the same attributes.
        let mut f = fam(16, 600);
        let c1 = f.classify(5, 0, 10);
        let c2 = f.classify(5, 601, 10);
        assert_ne!(c1.sfl, c2.sfl);
        assert_eq!(c2.start, FlowStart::ReplacedExpired);
        assert!(c2.repeated);
        assert_eq!(f.stats().repeated_flows, 1);
    }

    #[test]
    fn gap_under_threshold_keeps_flow() {
        let mut f = fam(16, 600);
        let c1 = f.classify(5, 0, 10);
        let c2 = f.classify(5, 600, 10); // exactly THRESHOLD: not expired
        assert_eq!(c1.sfl, c2.sfl);
    }

    #[test]
    fn index_collision_prematurely_terminates() {
        // Keys 1 and 17 collide in a 16-slot table; both active ⇒ the
        // second displaces the first (footnote 11).
        let mut f = fam(16, 600);
        let c1 = f.classify(1, 0, 10);
        let c2 = f.classify(17, 1, 10);
        assert_ne!(c1.sfl, c2.sfl);
        assert_eq!(c2.start, FlowStart::Collision);
        assert_eq!(f.stats().collisions, 1);
        // Key 1 returning gets a fresh flow (its entry was displaced) and
        // counts as repeated.
        let c3 = f.classify(1, 2, 10);
        assert!(c3.is_new_flow());
        assert!(c3.repeated);
    }

    #[test]
    fn sweeper_removes_expired_only() {
        let mut f = fam(16, 600);
        f.classify(1, 0, 10);
        f.classify(2, 500, 10);
        assert_eq!(f.sweep(700), 1); // key 1 idle 700s > 600
        assert_eq!(f.occupied_slots(), 1);
        assert_eq!(f.stats().swept, 1);
    }

    #[test]
    fn active_flow_count() {
        let mut f = fam(16, 600);
        f.classify(1, 0, 10);
        f.classify(2, 100, 10);
        assert_eq!(f.active_flows(100), 2);
        assert_eq!(f.active_flows(650), 1); // key 1 now idle >600
        assert_eq!(f.active_flows(2000), 0);
    }

    #[test]
    fn flow_records_capture_sizes_and_durations() {
        let mut f = fam(16, 600);
        f.classify(1, 0, 100);
        f.classify(1, 50, 200);
        f.classify(1, 90, 300);
        let records = f.drain_records();
        assert_eq!(records.len(), 1);
        let r = records[0];
        assert_eq!(r.packets, 3);
        assert_eq!(r.bytes, 600);
        assert_eq!(r.duration_secs(), 90);
    }

    #[test]
    fn drain_includes_swept_flows() {
        let mut f = fam(16, 600);
        f.classify(1, 0, 10);
        f.sweep(10_000);
        f.classify(2, 10_000, 20);
        let records = f.drain_records();
        assert_eq!(records.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_size_table_panics() {
        let _ = fam(0, 600);
    }

    #[test]
    fn obs_registry_mirrors_fam_stats() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut f = fam(16, 600);
        f.set_obs(Arc::clone(&reg));
        f.classify(1, 0, 10); // fresh
        f.classify(1, 10, 10); // existing
        f.classify(17, 20, 10); // collision with key 1
        f.classify(1, 30, 10); // collision back (17 still live), repeated
        f.classify(1, 1000, 10); // replaced-expired, repeated
        f.sweep(10_000);

        let s = f.stats();
        let mut from_stats = MetricsSnapshot::new();
        s.contribute(&mut from_stats);
        let live = reg.snapshot();
        assert_eq!(from_stats.counters, live.counters);
        assert_eq!(live.counter("fam.classifications"), 5);
        assert_eq!(live.counter("fam.joined_existing"), 1);
        assert_eq!(live.counter("fam.flows_started"), 4);
        assert_eq!(live.counter("fam.collisions"), 2);
        assert_eq!(live.counter("fam.repeated_flows"), 2);
        assert_eq!(live.counter("fam.swept"), 1);
        // One FamClassify event per classification in the recorder.
        let classify_events = live
            .events
            .iter()
            .filter(|e| matches!(e.event, Event::FamClassify { .. }))
            .count();
        assert_eq!(classify_events, 5);
    }
}
