//! A parallel seal worker pool: datagrams are shard-routed by flow label so
//! per-flow ordering is preserved while distinct flows seal concurrently.
//!
//! Each worker thread owns one [`FbsEndpoint`] and one [`BufferPool`] and
//! drains its own FIFO channel, so two datagrams of the same flow can never
//! reorder (same `sfl` → same worker → same queue). Workers share the
//! sending principal's identity but MUST be built with distinct confounder
//! seeds (§5.3 requires the confounder stream to differ across
//! initialisations); [`ParallelSealer::new`] asserts nothing about this —
//! construction helpers in `fbs-bench` show the intended setup.
//!
//! Output buffers travel back via [`ParallelSealer::recycle`], closing the
//! zero-allocation loop: steady state, a sealed wire payload reuses the
//! heap of a previously transmitted one.

use crate::error::Result;
use crate::pool::BufferPool;
use crate::principal::Principal;
use crate::protocol::FbsEndpoint;
use fbs_obs::{Counter, MetricsRegistry, MetricsSnapshot};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

/// One datagram's worth of seal work.
#[derive(Clone, Debug)]
pub struct SealJob {
    /// Security flow label (also the shard key).
    pub sfl: u64,
    /// Destination principal.
    pub destination: Principal,
    /// Plaintext body.
    pub body: Vec<u8>,
    /// Request confidentiality.
    pub secret: bool,
}

enum WorkerMsg {
    Job { seq: usize, job: SealJob },
    Recycle(Vec<u8>),
}

struct Worker {
    tx: mpsc::Sender<WorkerMsg>,
    handle: Option<thread::JoinHandle<()>>,
}

/// Sealer counters, mirroring the legacy-stats idiom.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SealerStats {
    /// Datagrams dispatched to workers.
    pub jobs: u64,
    /// Batches submitted.
    pub batches: u64,
    /// Jobs dispatched to each worker, by worker index.
    pub worker_jobs: Vec<u64>,
}

impl SealerStats {
    /// Merge into a snapshot under the `sealer.*` namespace.
    pub fn contribute(&self, snap: &mut MetricsSnapshot) {
        snap.add("sealer.jobs", self.jobs);
        snap.add("sealer.batches", self.batches);
        for (i, n) in self.worker_jobs.iter().enumerate() {
            snap.add(&format!("sealer.worker{i}.jobs"), *n);
        }
    }
}

/// A pool of seal workers, one endpoint each, sharded by `sfl`.
pub struct ParallelSealer {
    workers: Vec<Worker>,
    results_rx: mpsc::Receiver<(usize, Result<Vec<u8>>)>,
    stats: SealerStats,
    next_recycle: usize,
    obs: Option<Arc<MetricsRegistry>>,
}

impl ParallelSealer {
    /// Spawn one worker thread per endpoint. Endpoints should share the
    /// local principal and key material but carry distinct confounder
    /// seeds; panics if `endpoints` is empty.
    pub fn new(endpoints: Vec<FbsEndpoint>) -> Self {
        ParallelSealer::build(endpoints, None)
    }

    /// [`Self::new`] with a metrics registry: job/batch dispatch is counted
    /// under `sealer.*` and each worker's pool under `pool.*`.
    pub fn with_obs(endpoints: Vec<FbsEndpoint>, registry: Arc<MetricsRegistry>) -> Self {
        ParallelSealer::build(endpoints, Some(registry))
    }

    fn build(endpoints: Vec<FbsEndpoint>, obs: Option<Arc<MetricsRegistry>>) -> Self {
        assert!(!endpoints.is_empty(), "sealer needs at least one worker");
        let n = endpoints.len();
        let (results_tx, results_rx) = mpsc::channel();
        let workers = endpoints
            .into_iter()
            .map(|mut ep| {
                let (tx, rx) = mpsc::channel::<WorkerMsg>();
                let results = results_tx.clone();
                let reg = obs.clone();
                let handle = thread::spawn(move || {
                    let mut pool = BufferPool::new();
                    if let Some(reg) = reg {
                        pool.attach_obs(reg);
                    }
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            WorkerMsg::Job { seq, job } => {
                                let mut out = pool.take();
                                let sealed = ep.seal_into(
                                    job.sfl,
                                    &job.destination,
                                    &job.body,
                                    job.secret,
                                    &mut out,
                                );
                                let res = match sealed {
                                    Ok(()) => Ok(out),
                                    Err(e) => {
                                        pool.put(out);
                                        Err(e)
                                    }
                                };
                                if results.send((seq, res)).is_err() {
                                    return; // sealer dropped mid-batch
                                }
                            }
                            WorkerMsg::Recycle(buf) => pool.put(buf),
                        }
                    }
                });
                Worker {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        ParallelSealer {
            workers,
            results_rx,
            stats: SealerStats {
                worker_jobs: vec![0; n],
                ..SealerStats::default()
            },
            next_recycle: 0,
            obs,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Seal a batch. Jobs are sharded by `sfl % workers`, so all datagrams
    /// of one flow seal on one worker in submission order; results come
    /// back in submission order (`out[i]` is `jobs[i]` sealed). Each `Ok`
    /// is a full wire payload — hand it back via [`Self::recycle`] after
    /// transmission to keep the buffer loop closed.
    pub fn seal_batch(&mut self, jobs: Vec<SealJob>) -> Vec<Result<Vec<u8>>> {
        let n = jobs.len();
        let shards = self.workers.len() as u64;
        for (seq, job) in jobs.into_iter().enumerate() {
            let w = (job.sfl % shards) as usize;
            self.stats.jobs += 1;
            self.stats.worker_jobs[w] += 1;
            self.workers[w]
                .tx
                .send(WorkerMsg::Job { seq, job })
                .expect("worker thread alive while sealer is");
        }
        self.stats.batches += 1;
        if let Some(reg) = &self.obs {
            reg.add(Counter::SealerJobs, n as u64);
            reg.incr(Counter::SealerBatches);
        }
        let mut out: Vec<Option<Result<Vec<u8>>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (seq, res) = self
                .results_rx
                .recv()
                .expect("worker thread alive while sealer is");
            out[seq] = Some(res);
        }
        out.into_iter()
            .map(|r| r.expect("every seq answered exactly once"))
            .collect()
    }

    /// Return a transmitted wire buffer to a worker's pool (round-robin).
    pub fn recycle(&mut self, buf: Vec<u8>) {
        let w = self.next_recycle % self.workers.len();
        self.next_recycle = self.next_recycle.wrapping_add(1);
        // A send can only fail once the worker exited; dropping the buffer
        // is the correct degraded behaviour then.
        let _ = self.workers[w].tx.send(WorkerMsg::Recycle(buf));
    }

    /// Dispatch counters so far.
    pub fn stats(&self) -> &SealerStats {
        &self.stats
    }
}

impl Drop for ParallelSealer {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Replace the sender with a dead one so the worker's recv()
            // errors out and the thread exits.
            let (dead, _) = mpsc::channel();
            w.tx = dead;
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::tests::sender_fleet;
    use crate::protocol::{FbsConfig, ProtectedDatagram};
    use fbs_obs::MetricsRegistry;

    fn jobs(flows: &[u64]) -> Vec<SealJob> {
        flows
            .iter()
            .enumerate()
            .map(|(i, &sfl)| SealJob {
                sfl,
                destination: Principal::named("D"),
                body: format!("flow {sfl} datagram {i}").into_bytes(),
                secret: true,
            })
            .collect()
    }

    #[test]
    fn batch_roundtrips_through_a_receiver() {
        let (senders, mut receiver, _) = sender_fleet(FbsConfig::default(), 2);
        let mut sealer = ParallelSealer::new(senders);
        let batch = jobs(&[1, 2, 3, 4, 1, 2, 3, 4]);
        let bodies: Vec<Vec<u8>> = batch.iter().map(|j| j.body.clone()).collect();
        let sealed = sealer.seal_batch(batch);
        assert_eq!(sealed.len(), 8);
        for (wire, body) in sealed.into_iter().zip(bodies) {
            let wire = wire.expect("seal succeeds");
            let pd = ProtectedDatagram::decode_payload(
                Principal::named("S"),
                Principal::named("D"),
                &wire,
            )
            .unwrap();
            assert_eq!(receiver.receive(pd).unwrap().body, body);
            sealer.recycle(wire);
        }
        assert_eq!(receiver.stats().receives, 8);
        assert_eq!(sealer.stats().jobs, 8);
        assert_eq!(sealer.stats().batches, 1);
        // sfl % 2 sharding: flows 2/4 on worker 0, flows 1/3 on worker 1.
        assert_eq!(sealer.stats().worker_jobs, vec![4, 4]);
    }

    #[test]
    fn per_flow_outputs_are_bitwise_identical_to_a_serial_endpoint() {
        // Worker 0 of a 2-worker sealer and a standalone endpoint with the
        // same seed must produce the same wire bytes for the same job
        // subsequence — per-flow ordering AND determinism in one check.
        let (senders, _, _) = sender_fleet(FbsConfig::default(), 2);
        let mut sealer = ParallelSealer::new(senders);
        let batch = jobs(&[2, 4, 2, 4, 2]); // all even: all on worker 0
        let reference_jobs = batch.clone();
        let sealed = sealer.seal_batch(batch);

        let (serial, _, _) = sender_fleet(FbsConfig::default(), 1);
        let mut serial = serial.into_iter().next().unwrap();
        for (wire, job) in sealed.into_iter().zip(reference_jobs) {
            let mut expect = Vec::new();
            serial
                .seal_into(
                    job.sfl,
                    &job.destination,
                    &job.body,
                    job.secret,
                    &mut expect,
                )
                .unwrap();
            assert_eq!(wire.unwrap(), expect);
        }
    }

    #[test]
    fn recycled_buffers_hit_worker_pools() {
        let (senders, _, _) = sender_fleet(FbsConfig::default(), 1);
        let reg = Arc::new(MetricsRegistry::new());
        let mut sealer = ParallelSealer::with_obs(senders, Arc::clone(&reg));
        let first = sealer.seal_batch(jobs(&[7])).remove(0).unwrap();
        sealer.recycle(first);
        let _second = sealer.seal_batch(jobs(&[7])).remove(0).unwrap();
        drop(sealer); // joins the worker so its counters are final
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pool.misses"), 1);
        assert_eq!(snap.counter("pool.hits"), 1);
        assert_eq!(snap.counter("sealer.jobs"), 2);
        assert_eq!(snap.counter("sealer.batches"), 2);
    }
}
