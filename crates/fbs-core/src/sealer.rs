//! A parallel seal/open worker pool: datagrams are shard-routed by flow
//! label so per-flow ordering is preserved while distinct flows are
//! processed concurrently — in both directions.
//!
//! Each worker thread owns one [`FbsEndpoint`] and one [`BufferPool`] and
//! drains its own FIFO channel, so two datagrams of the same flow can never
//! reorder (same `sfl` → same worker → same queue). Seal workers share the
//! sending principal's identity but MUST be built with distinct confounder
//! seeds (§5.3 requires the confounder stream to differ across
//! initialisations); open workers share the receiving principal's identity
//! (zero-message keying lets any of them derive any flow's receive key).
//! [`ParallelSealer::new`] asserts nothing about this — construction
//! helpers in `fbs-bench` show the intended setup.
//!
//! Dispatch is chunked: one channel message per worker per batch carries
//! that worker's whole share of the batch, and each worker answers with one
//! message carrying its whole share of the results. Channel overhead is
//! therefore amortised over the batch (O(workers) messages per batch, not
//! O(datagrams)). Every vector in that exchange round-trips: the reply
//! carries back the emptied chunk vec and the request carries out a spare
//! result vec from the previous batch, so in steady state dispatch itself
//! allocates nothing — the same scratch-reuse pattern `process_batch` uses
//! in `fbs-ip`. Spent input buffers are absorbed into the worker pools on
//! both sides ([`ParallelSealer::open_batch`] recycles each wire payload
//! after opening it; seal workers recycle each job body after sealing it),
//! and output buffers travel back via [`ParallelSealer::recycle_batch`],
//! closing the loop: steady state, a sealed or opened payload reuses the
//! heap of a previously processed one.

use crate::error::Result;
use crate::pool::{BufferPool, DEFAULT_BUF_CAPACITY, DEFAULT_MAX_POOLED};
use crate::principal::Principal;
use crate::protocol::FbsEndpoint;
use fbs_obs::{Counter, MetricsRegistry, MetricsSnapshot};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

/// One datagram's worth of seal work.
#[derive(Clone, Debug)]
pub struct SealJob {
    /// Security flow label (also the shard key).
    pub sfl: u64,
    /// Destination principal.
    pub destination: Principal,
    /// Plaintext body.
    pub body: Vec<u8>,
    /// Request confidentiality.
    pub secret: bool,
}

/// One datagram's worth of open work: a wire payload (security flow header
/// + body) plus the source principal the transport reported.
#[derive(Clone, Debug)]
pub struct OpenJob {
    /// Source principal (from the underlying transport's header).
    pub source: Principal,
    /// The wire payload to parse, verify, and decrypt. Consumed: after the
    /// open it is absorbed into the worker's buffer pool.
    pub wire: Vec<u8>,
}

enum WorkerMsg {
    /// A worker's share of a seal batch, in submission order, plus a
    /// spare (empty) result vec from an earlier batch to fill.
    Seal {
        chunk: Vec<(usize, SealJob)>,
        out: Vec<(usize, Result<Vec<u8>>)>,
    },
    /// A worker's share of an open batch, in submission order, plus a
    /// spare result vec.
    Open {
        chunk: Vec<(usize, OpenJob)>,
        out: Vec<(usize, Result<Vec<u8>>)>,
    },
    /// Spent buffers returning to the worker's pool.
    RecycleMany(Vec<Vec<u8>>),
}

/// The emptied chunk vec travelling back with a worker's results, so
/// the driver can reuse it for the next dispatch.
enum ChunkScratch {
    Seal(Vec<(usize, SealJob)>),
    Open(Vec<(usize, OpenJob)>),
}

/// One worker's answer to one sub-batch.
struct Reply {
    out: Vec<(usize, Result<Vec<u8>>)>,
    scratch: ChunkScratch,
}

struct Worker {
    tx: mpsc::Sender<WorkerMsg>,
    handle: Option<thread::JoinHandle<()>>,
}

/// Sealer counters, mirroring the legacy-stats idiom.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SealerStats {
    /// Datagrams dispatched to workers for sealing.
    pub jobs: u64,
    /// Seal batches submitted.
    pub batches: u64,
    /// Wire payloads dispatched to workers for opening.
    pub open_jobs: u64,
    /// Open batches submitted.
    pub open_batches: u64,
    /// Jobs (seal + open) dispatched to each worker, by worker index.
    pub worker_jobs: Vec<u64>,
}

impl SealerStats {
    /// Merge into a snapshot under the `sealer.*` namespace.
    pub fn contribute(&self, snap: &mut MetricsSnapshot) {
        snap.add("sealer.jobs", self.jobs);
        snap.add("sealer.batches", self.batches);
        snap.add("sealer.open_jobs", self.open_jobs);
        snap.add("sealer.open_batches", self.open_batches);
        for (i, n) in self.worker_jobs.iter().enumerate() {
            snap.add(&format!("sealer.worker{i}.jobs"), *n);
        }
    }
}

/// A pool of seal/open workers, one endpoint each, sharded by `sfl`.
pub struct ParallelSealer {
    workers: Vec<Worker>,
    results_rx: mpsc::Receiver<Reply>,
    stats: SealerStats,
    obs: Option<Arc<MetricsRegistry>>,
    /// Emptied seal chunk vecs round-tripped from workers, reused by the
    /// next dispatch (at most one per worker in circulation).
    seal_spares: Vec<Vec<(usize, SealJob)>>,
    /// Emptied open chunk vecs round-tripped from workers.
    open_spares: Vec<Vec<(usize, OpenJob)>>,
    /// Emptied result vecs round-tripped from workers.
    out_spares: Vec<Vec<(usize, Result<Vec<u8>>)>>,
    /// Submission-order gather slots, reused across batches.
    slots: Vec<Option<Result<Vec<u8>>>>,
}

impl ParallelSealer {
    /// Spawn one worker thread per endpoint. Endpoints should share one
    /// principal's identity and key material but carry distinct confounder
    /// seeds; panics if `endpoints` is empty.
    pub fn new(endpoints: Vec<FbsEndpoint>) -> Self {
        ParallelSealer::build(endpoints, None, DEFAULT_MAX_POOLED)
    }

    /// [`Self::new`] with a metrics registry: job/batch dispatch is counted
    /// under `sealer.*` and each worker's pool under `pool.*`.
    pub fn with_obs(endpoints: Vec<FbsEndpoint>, registry: Arc<MetricsRegistry>) -> Self {
        ParallelSealer::build(endpoints, Some(registry), DEFAULT_MAX_POOLED)
    }

    /// [`Self::new`] with an explicit per-worker pool limit. Size it to at
    /// least `batch_size / workers` so a large batch's buffers all fit on
    /// the freelists instead of being discarded and re-allocated.
    pub fn with_pool_limit(
        endpoints: Vec<FbsEndpoint>,
        max_pooled: usize,
        registry: Option<Arc<MetricsRegistry>>,
    ) -> Self {
        ParallelSealer::build(endpoints, registry, max_pooled)
    }

    fn build(
        endpoints: Vec<FbsEndpoint>,
        obs: Option<Arc<MetricsRegistry>>,
        max_pooled: usize,
    ) -> Self {
        assert!(!endpoints.is_empty(), "sealer needs at least one worker");
        let n = endpoints.len();
        let (results_tx, results_rx) = mpsc::channel();
        let workers = endpoints
            .into_iter()
            .map(|mut ep| {
                let (tx, rx) = mpsc::channel::<WorkerMsg>();
                let results = results_tx.clone();
                let reg = obs.clone();
                let handle = thread::spawn(move || {
                    let mut pool = BufferPool::with_limits(max_pooled, DEFAULT_BUF_CAPACITY);
                    if let Some(reg) = reg {
                        pool.attach_obs(reg);
                    }
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            WorkerMsg::Seal { mut chunk, mut out } => {
                                out.clear();
                                out.reserve(chunk.len());
                                for (seq, job) in chunk.drain(..) {
                                    let mut buf = pool.take();
                                    let sealed = ep.seal_into(
                                        job.sfl,
                                        &job.destination,
                                        &job.body,
                                        job.secret,
                                        &mut buf,
                                    );
                                    // The spent body feeds future takes —
                                    // the open side's absorb design,
                                    // applied to seal.
                                    pool.put(job.body);
                                    let res = match sealed {
                                        Ok(()) => Ok(buf),
                                        Err(e) => {
                                            pool.put(buf);
                                            Err(e)
                                        }
                                    };
                                    out.push((seq, res));
                                }
                                let reply = Reply {
                                    out,
                                    scratch: ChunkScratch::Seal(chunk),
                                };
                                if results.send(reply).is_err() {
                                    return; // sealer dropped mid-batch
                                }
                            }
                            WorkerMsg::Open { mut chunk, mut out } => {
                                out.clear();
                                out.reserve(chunk.len());
                                for (seq, job) in chunk.drain(..) {
                                    let mut buf = pool.take();
                                    let opened = ep.open_into(&job.source, &job.wire, &mut buf);
                                    // The spent wire feeds future takes.
                                    pool.put(job.wire);
                                    let res = match opened {
                                        Ok(()) => Ok(buf),
                                        Err(e) => {
                                            pool.put(buf);
                                            Err(e)
                                        }
                                    };
                                    out.push((seq, res));
                                }
                                let reply = Reply {
                                    out,
                                    scratch: ChunkScratch::Open(chunk),
                                };
                                if results.send(reply).is_err() {
                                    return;
                                }
                            }
                            WorkerMsg::RecycleMany(bufs) => {
                                for buf in bufs {
                                    pool.put(buf);
                                }
                            }
                        }
                    }
                });
                Worker {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        ParallelSealer {
            workers,
            results_rx,
            stats: SealerStats {
                worker_jobs: vec![0; n],
                ..SealerStats::default()
            },
            obs,
            seal_spares: Vec::with_capacity(n),
            open_spares: Vec::with_capacity(n),
            out_spares: Vec::with_capacity(n),
            slots: Vec::new(),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Shard a seal batch into per-worker chunks (reusing round-tripped
    /// chunk vecs) and send each non-empty chunk as one message. Returns
    /// the number of outstanding replies.
    fn dispatch_seal(&mut self, jobs: &mut Vec<SealJob>) -> usize {
        let shards = self.workers.len();
        let mut chunks: Vec<Vec<(usize, SealJob)>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            chunks.push(self.seal_spares.pop().unwrap_or_default());
        }
        for (seq, job) in jobs.drain(..).enumerate() {
            let w = (job.sfl as usize) % shards;
            self.stats.worker_jobs[w] += 1;
            chunks[w].push((seq, job));
        }
        let mut outstanding = 0;
        for (w, chunk) in chunks.into_iter().enumerate() {
            if chunk.is_empty() {
                self.seal_spares.push(chunk);
                continue;
            }
            outstanding += 1;
            let out = self.out_spares.pop().unwrap_or_default();
            self.workers[w]
                .tx
                .send(WorkerMsg::Seal { chunk, out })
                .expect("worker thread alive while sealer is");
        }
        outstanding
    }

    /// The open-side mirror of [`Self::dispatch_seal`]: shard by the
    /// `sfl` leading each wire image; a wire too short to carry an sfl
    /// lands on worker 0, whose `open_into` reports the parse error.
    fn dispatch_open(&mut self, jobs: &mut Vec<OpenJob>) -> usize {
        let shards = self.workers.len();
        let mut chunks: Vec<Vec<(usize, OpenJob)>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            chunks.push(self.open_spares.pop().unwrap_or_default());
        }
        for (seq, job) in jobs.drain(..).enumerate() {
            let key = job
                .wire
                .get(0..8)
                .map(|b| u64::from_be_bytes(b.try_into().expect("8-byte slice")) as usize)
                .unwrap_or(0);
            let w = key % shards;
            self.stats.worker_jobs[w] += 1;
            chunks[w].push((seq, job));
        }
        let mut outstanding = 0;
        for (w, chunk) in chunks.into_iter().enumerate() {
            if chunk.is_empty() {
                self.open_spares.push(chunk);
                continue;
            }
            outstanding += 1;
            let out = self.out_spares.pop().unwrap_or_default();
            self.workers[w]
                .tx
                .send(WorkerMsg::Open { chunk, out })
                .expect("worker thread alive while sealer is");
        }
        outstanding
    }

    /// Collect `outstanding` replies, re-thread them into submission
    /// order in `out`, and bank every round-tripped scratch vec.
    fn gather(&mut self, outstanding: usize, n: usize, out: &mut Vec<Result<Vec<u8>>>) {
        self.slots.clear();
        self.slots.resize_with(n, || None);
        for _ in 0..outstanding {
            let Reply {
                out: mut filled,
                scratch,
            } = self
                .results_rx
                .recv()
                .expect("worker thread alive while sealer is");
            for (seq, res) in filled.drain(..) {
                self.slots[seq] = Some(res);
            }
            self.out_spares.push(filled);
            match scratch {
                ChunkScratch::Seal(c) => self.seal_spares.push(c),
                ChunkScratch::Open(c) => self.open_spares.push(c),
            }
        }
        out.clear();
        out.extend(
            self.slots
                .drain(..)
                .map(|r| r.expect("every seq answered exactly once")),
        );
    }

    /// Seal a batch, draining `jobs` (its capacity survives for refilling)
    /// and filling `out` with results in submission order (`out[i]` is
    /// `jobs[i]` sealed). Jobs are sharded by `sfl % workers`, so all
    /// datagrams of one flow seal on one worker in submission order. Each
    /// `Ok` is a full wire payload — hand it back via
    /// [`Self::recycle_batch`] after transmission to keep the buffer loop
    /// closed; job bodies are absorbed into the worker pools. With both
    /// vecs reused across batches, steady-state dispatch allocates
    /// nothing.
    pub fn seal_batch_in_place(&mut self, jobs: &mut Vec<SealJob>, out: &mut Vec<Result<Vec<u8>>>) {
        let n = jobs.len();
        self.stats.jobs += n as u64;
        self.stats.batches += 1;
        if let Some(reg) = self.obs.clone() {
            reg.add(Counter::SealerJobs, n as u64);
            reg.incr(Counter::SealerBatches);
            let timer = fbs_obs::StageTimer::start();
            let outstanding = self.dispatch_seal(jobs);
            self.gather(outstanding, n, out);
            reg.observe_stage(fbs_obs::Stage::Seal, timer.elapsed_ns());
            return;
        }
        let outstanding = self.dispatch_seal(jobs);
        self.gather(outstanding, n, out);
    }

    /// [`Self::seal_batch_in_place`] with owned-vec ergonomics (one
    /// result-vec allocation per call).
    pub fn seal_batch(&mut self, mut jobs: Vec<SealJob>) -> Vec<Result<Vec<u8>>> {
        let mut out = Vec::with_capacity(jobs.len());
        self.seal_batch_in_place(&mut jobs, &mut out);
        out
    }

    /// Open a batch of wire payloads, draining `jobs` and filling `out`
    /// in submission order — the input mirror of
    /// [`Self::seal_batch_in_place`]. Jobs are sharded by the `sfl`
    /// leading each wire image (same flow → same worker → per-flow FIFO
    /// order). `out[i]` is `jobs[i]` opened: the recovered plaintext body
    /// on `Ok`. Spent wire buffers are absorbed into the worker pools, so
    /// a steady stream of opens recycles every input allocation.
    pub fn open_batch_in_place(&mut self, jobs: &mut Vec<OpenJob>, out: &mut Vec<Result<Vec<u8>>>) {
        let n = jobs.len();
        self.stats.open_jobs += n as u64;
        self.stats.open_batches += 1;
        if let Some(reg) = self.obs.clone() {
            reg.add(Counter::SealerOpenJobs, n as u64);
            reg.incr(Counter::SealerOpenBatches);
            let timer = fbs_obs::StageTimer::start();
            let outstanding = self.dispatch_open(jobs);
            self.gather(outstanding, n, out);
            reg.observe_stage(fbs_obs::Stage::Open, timer.elapsed_ns());
            return;
        }
        let outstanding = self.dispatch_open(jobs);
        self.gather(outstanding, n, out);
    }

    /// [`Self::open_batch_in_place`] with owned-vec ergonomics.
    pub fn open_batch(&mut self, mut jobs: Vec<OpenJob>) -> Vec<Result<Vec<u8>>> {
        let mut out = Vec::with_capacity(jobs.len());
        self.open_batch_in_place(&mut jobs, &mut out);
        out
    }

    /// Return one transmitted wire buffer to a worker's pool. Prefer
    /// [`Self::recycle_batch`], which amortises the channel message over
    /// the whole batch.
    pub fn recycle(&mut self, buf: Vec<u8>) {
        self.recycle_batch(vec![buf]);
    }

    /// Return a batch of spent buffers to the worker pools, spread evenly
    /// (one message per worker that receives any).
    pub fn recycle_batch(&mut self, bufs: Vec<Vec<u8>>) {
        let shards = self.workers.len();
        let mut chunks: Vec<Vec<Vec<u8>>> = (0..shards)
            .map(|_| Vec::with_capacity(bufs.len() / shards + 1))
            .collect();
        for (i, buf) in bufs.into_iter().enumerate() {
            chunks[i % shards].push(buf);
        }
        for (w, chunk) in chunks.into_iter().enumerate() {
            if chunk.is_empty() {
                continue;
            }
            // A send can only fail once the worker exited; dropping the
            // buffers is the correct degraded behaviour then.
            let _ = self.workers[w].tx.send(WorkerMsg::RecycleMany(chunk));
        }
    }

    /// Dispatch counters so far.
    pub fn stats(&self) -> &SealerStats {
        &self.stats
    }
}

impl Drop for ParallelSealer {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Replace the sender with a dead one so the worker's recv()
            // errors out and the thread exits.
            let (dead, _) = mpsc::channel();
            w.tx = dead;
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::tests::{receiver_fleet, sender_fleet};
    use crate::protocol::{FbsConfig, ProtectedDatagram};
    use fbs_obs::MetricsRegistry;

    fn jobs(flows: &[u64]) -> Vec<SealJob> {
        flows
            .iter()
            .enumerate()
            .map(|(i, &sfl)| SealJob {
                sfl,
                destination: Principal::named("D"),
                body: format!("flow {sfl} datagram {i}").into_bytes(),
                secret: true,
            })
            .collect()
    }

    #[test]
    fn batch_roundtrips_through_a_receiver() {
        let (senders, mut receiver, _) = sender_fleet(FbsConfig::default(), 2);
        let mut sealer = ParallelSealer::new(senders);
        let batch = jobs(&[1, 2, 3, 4, 1, 2, 3, 4]);
        let bodies: Vec<Vec<u8>> = batch.iter().map(|j| j.body.clone()).collect();
        let sealed = sealer.seal_batch(batch);
        assert_eq!(sealed.len(), 8);
        for (wire, body) in sealed.into_iter().zip(bodies) {
            let wire = wire.expect("seal succeeds");
            let pd = ProtectedDatagram::decode_payload(
                Principal::named("S"),
                Principal::named("D"),
                &wire,
            )
            .unwrap();
            assert_eq!(receiver.receive(pd).unwrap().body, body);
            sealer.recycle(wire);
        }
        assert_eq!(receiver.stats().receives, 8);
        assert_eq!(sealer.stats().jobs, 8);
        assert_eq!(sealer.stats().batches, 1);
        // sfl % 2 sharding: flows 2/4 on worker 0, flows 1/3 on worker 1.
        assert_eq!(sealer.stats().worker_jobs, vec![4, 4]);
    }

    #[test]
    fn per_flow_outputs_are_bitwise_identical_to_a_serial_endpoint() {
        // Worker 0 of a 2-worker sealer and a standalone endpoint with the
        // same seed must produce the same wire bytes for the same job
        // subsequence — per-flow ordering AND determinism in one check.
        let (senders, _, _) = sender_fleet(FbsConfig::default(), 2);
        let mut sealer = ParallelSealer::new(senders);
        let batch = jobs(&[2, 4, 2, 4, 2]); // all even: all on worker 0
        let reference_jobs = batch.clone();
        let sealed = sealer.seal_batch(batch);

        let (serial, _, _) = sender_fleet(FbsConfig::default(), 1);
        let mut serial = serial.into_iter().next().unwrap();
        for (wire, job) in sealed.into_iter().zip(reference_jobs) {
            let mut expect = Vec::new();
            serial
                .seal_into(
                    job.sfl,
                    &job.destination,
                    &job.body,
                    job.secret,
                    &mut expect,
                )
                .unwrap();
            assert_eq!(wire.unwrap(), expect);
        }
    }

    #[test]
    fn recycled_buffers_hit_worker_pools() {
        let (senders, _, _) = sender_fleet(FbsConfig::default(), 1);
        let reg = Arc::new(MetricsRegistry::new());
        let mut sealer = ParallelSealer::with_obs(senders, Arc::clone(&reg));
        let first = sealer.seal_batch(jobs(&[7])).remove(0).unwrap();
        sealer.recycle(first);
        let _second = sealer.seal_batch(jobs(&[7])).remove(0).unwrap();
        drop(sealer); // joins the worker so its counters are final
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pool.misses"), 1);
        assert_eq!(snap.counter("pool.hits"), 1);
        assert_eq!(snap.counter("sealer.jobs"), 2);
        assert_eq!(snap.counter("sealer.batches"), 2);
    }

    #[test]
    fn open_batch_roundtrips_and_recycles_wires() {
        // Seal serially, open through a 2-worker opener; results line up
        // with submission order and the spent wires land in worker pools.
        let (mut sender, receivers, _) = receiver_fleet(FbsConfig::default(), 2);
        let reg = Arc::new(MetricsRegistry::new());
        let mut opener = ParallelSealer::with_obs(receivers, Arc::clone(&reg));
        let flows = [1u64, 2, 3, 4, 1, 2, 3, 4];
        let mut batch = Vec::new();
        let mut bodies = Vec::new();
        for (i, &sfl) in flows.iter().enumerate() {
            let body = format!("flow {sfl} datagram {i}").into_bytes();
            let mut wire = Vec::new();
            sender
                .seal_into(sfl, &Principal::named("D"), &body, true, &mut wire)
                .unwrap();
            bodies.push(body);
            batch.push(OpenJob {
                source: Principal::named("S"),
                wire,
            });
        }
        let opened = opener.open_batch(batch);
        assert_eq!(opened.len(), 8);
        for (got, want) in opened.into_iter().zip(bodies) {
            assert_eq!(got.unwrap(), want);
        }
        assert_eq!(opener.stats().open_jobs, 8);
        assert_eq!(opener.stats().open_batches, 1);
        assert_eq!(opener.stats().worker_jobs, vec![4, 4]);
        drop(opener);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sealer.open_jobs"), 8);
        assert_eq!(snap.counter("sealer.open_batches"), 1);
        // Only each worker's FIRST take misses (cold pool); from then on
        // every spent wire absorbed by pool.put feeds the next take, so 2
        // workers × 4 jobs = 2 misses + 6 hits.
        assert_eq!(snap.counter("pool.misses"), 2);
        assert_eq!(snap.counter("pool.hits"), 6);
    }

    #[test]
    fn open_batch_surfaces_per_job_errors_in_place() {
        let (mut sender, receivers, _) = receiver_fleet(FbsConfig::default(), 2);
        let mut opener = ParallelSealer::new(receivers);
        let mut wire = Vec::new();
        sender
            .seal_into(9, &Principal::named("D"), b"good", true, &mut wire)
            .unwrap();
        let batch = vec![
            OpenJob {
                source: Principal::named("S"),
                wire,
            },
            OpenJob {
                source: Principal::named("S"),
                wire: vec![0xFF; 3], // too short for any header
            },
        ];
        let opened = opener.open_batch(batch);
        assert_eq!(opened[0].as_ref().unwrap(), b"good");
        assert!(opened[1].is_err());
    }

    #[test]
    fn batch_open_preserves_per_flow_fifo_order_with_two_workers() {
        // Two flows, four datagrams each, interleaved in one batch. Flow
        // 2's datagrams carry strictly increasing sequence bodies; after a
        // 2-worker open_batch, out[i] must be jobs[i]'s body — which can
        // only hold if each worker processed its flow's wires in
        // submission order (sealed-serial wires decrypt positionally).
        let (mut sender, receivers, _) = receiver_fleet(FbsConfig::default(), 2);
        let mut opener = ParallelSealer::new(receivers);
        let flows = [1u64, 2, 1, 2, 1, 2, 1, 2];
        let mut batch = Vec::new();
        let mut bodies = Vec::new();
        for (i, &sfl) in flows.iter().enumerate() {
            let body = format!("flow {sfl} seq {i}").into_bytes();
            let mut wire = Vec::new();
            sender
                .seal_into(sfl, &Principal::named("D"), &body, true, &mut wire)
                .unwrap();
            bodies.push(body);
            batch.push(OpenJob {
                source: Principal::named("S"),
                wire,
            });
        }
        let opened = opener.open_batch(batch);
        for (i, (got, want)) in opened.into_iter().zip(bodies).enumerate() {
            assert_eq!(got.unwrap(), want, "position {i} out of order");
        }
        // sfl % 2 sharding put each flow wholly on one worker.
        assert_eq!(opener.stats().worker_jobs, vec![4, 4]);
    }
}
