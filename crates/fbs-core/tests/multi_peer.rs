//! Multi-peer endpoint tests: cache behaviour under pressure, since §5.3
//! sizes the MKC by "the average number of correspondent principals" and
//! the TFKC by "the average number of active flows" — what happens when
//! reality exceeds the sizing must be graceful (soft state: slower, never
//! wrong).

use fbs_core::{
    Datagram, FbsConfig, FbsEndpoint, ManualClock, MasterKeyDaemon, PinnedDirectory, Principal,
};
use fbs_crypto::dh::{DhGroup, PrivateValue};
use std::sync::Arc;

/// Build a hub world: one sender knowing N peers, all peers knowing the
/// sender.
fn world(n: usize, cfg: FbsConfig) -> (FbsEndpoint, Vec<FbsEndpoint>, ManualClock) {
    let clock = ManualClock::starting_at(9_000);
    let group = DhGroup::test_group();
    let hub_priv = PrivateValue::from_entropy(group.clone(), b"hub-entropy-material");
    let hub_name = Principal::named("hub");
    let mut hub_dir = PinnedDirectory::new();
    let mut peers = Vec::new();
    for i in 0..n {
        let name = Principal::named(&format!("peer-{i}"));
        let entropy = format!("peer-{i}-entropy-material-xx");
        let p_priv = PrivateValue::from_entropy(group.clone(), entropy.as_bytes());
        hub_dir.pin(name.clone(), p_priv.public_value());
        let mut p_dir = PinnedDirectory::new();
        p_dir.pin(hub_name.clone(), hub_priv.public_value());
        peers.push(FbsEndpoint::new(
            name,
            cfg.clone(),
            Arc::new(clock.clone()),
            1000 + i as u64,
            MasterKeyDaemon::new(p_priv, Box::new(p_dir)),
        ));
    }
    let hub = FbsEndpoint::new(
        hub_name,
        cfg,
        Arc::new(clock.clone()),
        42,
        MasterKeyDaemon::new(hub_priv, Box::new(hub_dir)),
    );
    (hub, peers, clock)
}

#[test]
fn mkc_pressure_causes_reupcalls_but_never_errors() {
    // MKC sized for 4 principals; talk to 12, round-robin, twice. Every
    // datagram must still verify; the cost shows up as extra MKD upcalls.
    let cfg = FbsConfig {
        mkc_slots: 4,
        ..FbsConfig::default()
    };
    let (mut hub, mut peers, _) = world(12, cfg);
    for round in 0..2 {
        for (i, peer) in peers.iter_mut().enumerate() {
            let d = Datagram::new(
                Principal::named("hub"),
                peer.local().clone(),
                format!("round {round} to {i}").into_bytes(),
            );
            let pd = hub.send((i + 1) as u64, d, true).unwrap();
            let got = peer.receive(pd).unwrap();
            assert_eq!(got.body, format!("round {round} to {i}").into_bytes());
        }
    }
    // 12 peers in 4 slots: many evictions, so upcalls exceed peer count...
    assert!(hub.mkd_stats().upcalls > 12, "{:?}", hub.mkd_stats());
    // ...but correctness never suffered.
    assert_eq!(hub.mkd_stats().failures, 0);
    assert_eq!(hub.stats().sends, 24);
}

#[test]
fn generously_sized_mkc_computes_each_master_key_once() {
    let (mut hub, mut peers, _) = world(12, FbsConfig::default()); // 32 slots
    for round in 0..3 {
        for (i, peer) in peers.iter_mut().enumerate() {
            let d = Datagram::new(
                Principal::named("hub"),
                peer.local().clone(),
                vec![round as u8],
            );
            let pd = hub.send((i + 1) as u64, d, false).unwrap();
            peer.receive(pd).unwrap();
        }
    }
    assert_eq!(hub.mkd_stats().upcalls, 12, "once per correspondent");
}

#[test]
fn tfkc_pressure_recomputes_flow_keys_transparently() {
    // TFKC with 8 slots, 40 simultaneously interleaved flows to one peer:
    // constant churn, zero errors — a TFKC miss is "not as expensive as an
    // MKC miss" (§5.3) because the master key is still cached.
    let cfg = FbsConfig {
        tfkc_sets: 8,
        tfkc_assoc: 1,
        rfkc_sets: 8,
        rfkc_assoc: 1,
        ..FbsConfig::default()
    };
    let (mut hub, mut peers, _) = world(1, cfg);
    let peer = &mut peers[0];
    for round in 0..5u64 {
        for flow in 0..40u64 {
            let d = Datagram::new(
                Principal::named("hub"),
                peer.local().clone(),
                format!("flow {flow} round {round}").into_bytes(),
            );
            let pd = hub.send(flow, d, true).unwrap();
            assert_eq!(
                peer.receive(pd).unwrap().body,
                format!("flow {flow} round {round}").into_bytes()
            );
        }
    }
    let tfkc = hub.tfkc_stats();
    assert!(tfkc.evictions > 0, "pressure must evict: {tfkc:?}");
    // Master key computed exactly once despite all the flow-key churn.
    assert_eq!(hub.mkd_stats().upcalls, 1);
}

#[test]
fn forget_peer_forces_fresh_master_key() {
    // Rekey scenario from §5.2: the pair master key changes when a
    // principal's private value changes; forget_peer drops the cached one.
    let (mut hub, mut peers, _) = world(1, FbsConfig::default());
    let peer = &mut peers[0];
    let d = |body: &[u8]| Datagram::new(Principal::named("hub"), peer_name(0), body.to_vec());
    let pd = hub.send(1, d(b"before"), true).unwrap();
    peer.receive(pd).unwrap();
    assert_eq!(hub.mkd_stats().upcalls, 1);
    hub.forget_peer(&peer_name(0));
    hub.flush_flow_keys();
    let pd = hub.send(2, d(b"after"), true).unwrap();
    assert_eq!(peer.receive(pd).unwrap().body, b"after");
    assert_eq!(hub.mkd_stats().upcalls, 2, "recomputed after forget");
}

fn peer_name(i: usize) -> Principal {
    Principal::named(&format!("peer-{i}"))
}

#[test]
fn different_freshness_windows_are_an_operational_hazard() {
    // Endpoints configured with different windows still interoperate as
    // long as clocks agree — documents that the window is receiver-local
    // policy, not a negotiated parameter.
    let tight = FbsConfig {
        freshness: fbs_core::FreshnessWindow::new(0),
        ..FbsConfig::default()
    };
    let (mut hub, mut peers, clock) = world(1, tight);
    let peer = &mut peers[0];
    let d = Datagram::new(Principal::named("hub"), peer_name(0), b"now".to_vec());
    let pd = hub.send(1, d, false).unwrap();
    // Same minute: accepted even by a zero-width window.
    assert!(peer.receive(pd.clone()).is_ok());
    // One minute later the zero-width receiver rejects what a default
    // receiver would still accept.
    clock.advance(60);
    assert!(peer.receive(pd).is_err());
}
