//! Property-based tests for the protocol core: header codec totality,
//! cache soundness, FAM conservation laws, and protocol roundtrips.

// Property tests are opt-in: run with `cargo test --features props`.
#![cfg(feature = "props")]
use fbs_core::cache::SoftCache;
use fbs_core::fam::{Fam, FlowPolicy, FstEntry};
use fbs_core::header::{EncAlgorithm, SecurityFlowHeader};
use fbs_core::SflAllocator;
use fbs_crypto::{CipherSuite, MacAlgorithm};
use fbs_obs::{CacheKind, MetricsRegistry, MetricsSnapshot};
use proptest::prelude::*;
use std::sync::Arc;

fn header_strategy() -> impl Strategy<Value = SecurityFlowHeader> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        0u8..5,
        0u8..8,
        0u8..3,
        any::<u32>(),
        1usize..=16,
    )
        .prop_map(|(sfl, conf, ts, mac_id, enc_id, suite_id, len, mac_len)| {
            let mac_alg = MacAlgorithm::from_wire_id(mac_id).unwrap();
            SecurityFlowHeader {
                sfl,
                confounder: conf,
                timestamp: ts,
                mac_alg,
                enc_alg: EncAlgorithm::from_wire_id(enc_id).unwrap(),
                suite: CipherSuite::from_wire_id(suite_id).unwrap(),
                plaintext_len: len,
                mac: vec![0xAB; mac_len.min(mac_alg.output_len())],
            }
        })
}

/// Test policy: u64 keys, modulo index, threshold expiry.
struct P(u64);
impl FlowPolicy<u64> for P {
    fn index(&self, attrs: &u64, table_size: usize) -> usize {
        fbs_crypto::crc32(&attrs.to_be_bytes()) as usize % table_size
    }
    fn same_flow(&self, a: &u64, b: &u64) -> bool {
        a == b
    }
    fn expired(&self, entry: &FstEntry<u64>, now: u64) -> bool {
        now.saturating_sub(entry.last) > self.0
    }
}

proptest! {
    #[test]
    fn header_roundtrips(h in header_strategy()) {
        let bytes = h.encode();
        let (parsed, used) = SecurityFlowHeader::decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(parsed, h);
    }

    #[test]
    fn header_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        // Decoding arbitrary bytes must be total: Ok or Err, no panic.
        let _ = SecurityFlowHeader::decode(&bytes);
    }

    #[test]
    fn cache_returns_only_what_was_inserted(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..200),
        sets in 1usize..16,
        assoc in 1usize..4,
    ) {
        // Model check against a reference map: the cache may FORGET
        // entries (soft state!) but must never return a wrong value.
        let mut cache: SoftCache<u8, u8> =
            SoftCache::new(sets, assoc, |k: &u8| fbs_crypto::crc32(&[*k]));
        let mut reference = std::collections::HashMap::new();
        for (k, v, is_insert) in ops {
            if is_insert {
                cache.insert(k, v);
                reference.insert(k, v);
            } else if let Some(got) = cache.get(&k) {
                prop_assert_eq!(Some(&got), reference.get(&k));
            }
        }
    }

    #[test]
    fn cache_stats_balance(
        keys in proptest::collection::vec(any::<u8>(), 1..300),
        sets in 1usize..32,
    ) {
        let mut cache: SoftCache<u8, ()> =
            SoftCache::new(sets, 1, |k: &u8| fbs_crypto::crc32(&[*k]))
                .with_classification();
        for k in &keys {
            if cache.get(k).is_none() {
                cache.insert(*k, ());
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses(), keys.len() as u64);
        // Cold misses = number of distinct keys.
        let distinct = keys.iter().collect::<std::collections::HashSet<_>>().len();
        prop_assert_eq!(s.cold_misses, distinct as u64);
        prop_assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn cache_counters_cohere_under_random_workloads(
        keys in proptest::collection::vec(any::<u8>(), 1..300),
        sets in 1usize..32,
        assoc in 1usize..4,
    ) {
        // The 3C miss kinds partition the misses, and a live registry
        // snapshot agrees counter-for-counter with the legacy stats
        // struct's `contribute` view of the same run.
        let reg = Arc::new(MetricsRegistry::new());
        let mut cache: SoftCache<u8, ()> =
            SoftCache::new(sets, assoc, |k: &u8| fbs_crypto::crc32(&[*k]))
                .with_classification();
        cache.set_obs(Arc::clone(&reg), CacheKind::Tfkc);
        for k in &keys {
            if cache.get(k).is_none() {
                cache.insert(*k, ());
            }
        }
        let s = cache.stats();
        prop_assert_eq!(
            s.hits + s.cold_misses + s.capacity_misses + s.collision_misses,
            s.total_lookups()
        );
        prop_assert_eq!(s.total_lookups(), keys.len() as u64);
        let live = reg.snapshot();
        let mut legacy = MetricsSnapshot::new();
        s.contribute(CacheKind::Tfkc, &mut legacy);
        prop_assert_eq!(&legacy.counters, &live.counters);
    }

    #[test]
    fn fam_conserves_packets_and_bytes(
        packets in proptest::collection::vec((any::<u8>(), 1u64..500, 0u64..100), 1..300),
        threshold in 1u64..1000,
        table in 1usize..64,
    ) {
        // Arbitrary interleaved datagrams with non-decreasing times.
        let mut fam = Fam::new(table, P(threshold), SflAllocator::new(1))
            .with_flow_records();
        let mut now = 0u64;
        let mut total_bytes = 0u64;
        for (attr, bytes, dt) in &packets {
            now += dt;
            fam.classify(*attr as u64, now, *bytes);
            total_bytes += bytes;
        }
        let records = fam.drain_records();
        prop_assert_eq!(
            records.iter().map(|r| r.packets).sum::<u64>(),
            packets.len() as u64
        );
        prop_assert_eq!(records.iter().map(|r| r.bytes).sum::<u64>(), total_bytes);
        // Every record's duration is within the observed time span.
        for r in &records {
            prop_assert!(r.created <= r.last);
            prop_assert!(r.last <= now);
        }
    }

    #[test]
    fn fam_sfls_unique_per_flow(
        attrs in proptest::collection::vec(any::<u8>(), 1..100),
    ) {
        // All datagrams at the same instant: each distinct attribute must
        // map to exactly one sfl, and distinct attributes to distinct sfls
        // (table large enough to avoid collisions).
        let mut fam = Fam::new(4096, P(1000), SflAllocator::new(10));
        let mut seen = std::collections::HashMap::new();
        for a in attrs {
            let c = fam.classify(a as u64, 0, 1);
            if let Some(prev) = seen.insert(a, c.sfl) {
                prop_assert_eq!(prev, c.sfl, "same attrs, same flow");
            }
        }
        let distinct_sfls: std::collections::HashSet<_> = seen.values().collect();
        prop_assert_eq!(distinct_sfls.len(), seen.len());
    }

    #[test]
    fn freshness_window_symmetric(
        t1 in 0u32..1_000_000,
        t2 in 0u32..1_000_000,
        w in 0u32..10_000,
    ) {
        let win = fbs_core::FreshnessWindow::new(w);
        prop_assert_eq!(win.is_fresh(t1, t2), win.is_fresh(t2, t1));
        // Window containment: larger windows accept everything smaller
        // windows accept.
        if win.is_fresh(t1, t2) {
            prop_assert!(fbs_core::FreshnessWindow::new(w + 1).is_fresh(t1, t2));
        }
    }
}

mod protocol_props {
    use super::*;
    use fbs_core::{
        Datagram, FbsConfig, FbsEndpoint, ManualClock, MasterKeyDaemon, PinnedDirectory, Principal,
    };
    use fbs_crypto::dh::{DhGroup, PrivateValue};
    use std::sync::Arc;

    fn pair_with(cfg: FbsConfig) -> (FbsEndpoint, FbsEndpoint) {
        let clock = ManualClock::starting_at(77_777);
        let group = DhGroup::test_group();
        let a_priv = PrivateValue::from_entropy(group.clone(), b"prop-alice-entropy!!");
        let b_priv = PrivateValue::from_entropy(group, b"prop-bob-entropy!!!!");
        let alice = Principal::named("A");
        let bob = Principal::named("B");
        let mut da = PinnedDirectory::new();
        da.pin(bob.clone(), b_priv.public_value());
        let mut db = PinnedDirectory::new();
        db.pin(alice.clone(), a_priv.public_value());
        (
            FbsEndpoint::new(
                alice,
                cfg.clone(),
                Arc::new(clock.clone()),
                1,
                MasterKeyDaemon::new(a_priv, Box::new(da)),
            ),
            FbsEndpoint::new(
                bob,
                cfg,
                Arc::new(clock),
                2,
                MasterKeyDaemon::new(b_priv, Box::new(db)),
            ),
        )
    }

    fn pair() -> (FbsEndpoint, FbsEndpoint) {
        pair_with(FbsConfig::default())
    }

    /// `n` sender endpoints sharing principal "A"'s identity with distinct
    /// confounder seeds — worker `i`'s seed depends only on `i`, so a
    /// fresh fleet reproduces the same wire bytes.
    fn fleet(cfg: FbsConfig, n: usize) -> Vec<FbsEndpoint> {
        let clock = ManualClock::starting_at(77_777);
        let group = DhGroup::test_group();
        let a_priv = PrivateValue::from_entropy(group.clone(), b"prop-alice-entropy!!");
        let b_priv = PrivateValue::from_entropy(group, b"prop-bob-entropy!!!!");
        let alice = Principal::named("A");
        let bob = Principal::named("B");
        (0..n)
            .map(|i| {
                let mut da = PinnedDirectory::new();
                da.pin(bob.clone(), b_priv.public_value());
                FbsEndpoint::new(
                    alice.clone(),
                    cfg.clone(),
                    Arc::new(clock.clone()),
                    1 + (i as u64) * 0x1000,
                    MasterKeyDaemon::new(a_priv.clone(), Box::new(da)),
                )
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn protocol_roundtrips_arbitrary_bodies(
            body in proptest::collection::vec(any::<u8>(), 0..2000),
            sfl in any::<u64>(),
            secret in any::<bool>(),
        ) {
            let (mut tx, mut rx) = pair();
            let d = Datagram::new(
                Principal::named("A"),
                Principal::named("B"),
                body.clone(),
            );
            let pd = tx.send(sfl, d, secret).unwrap();
            let wire = pd.encode_payload();
            let parsed = fbs_core::ProtectedDatagram::decode_payload(
                Principal::named("A"),
                Principal::named("B"),
                &wire,
            ).unwrap();
            prop_assert_eq!(rx.receive(parsed).unwrap().body, body);
        }

        #[test]
        fn fastpath_wire_is_byte_identical_to_legacy_send(
            // Padding edge cases get half the probability mass: empty,
            // sub-block, block-1, exactly one block, and a large 8k+7 body
            // straddling many blocks; the rest are arbitrary lengths.
            len in (0usize..10, 0usize..2000).prop_map(|(sel, arb)| match sel {
                0 => 0,
                1 => 1,
                2 => 7,
                3 => 8,
                4 => 8 * 1024 + 7,
                _ => arb,
            }),
            fill in any::<u8>(),
            sfl in any::<u64>(),
            secret in any::<bool>(),
            enc_id in 0u8..6,
        ) {
            // Two sender endpoints with the SAME seed produce the same
            // confounder stream, so legacy `send` and the zero-copy
            // `seal_into` must emit identical wire bytes; `open_into` must
            // then recover the body.
            let cfg = FbsConfig {
                enc_alg: EncAlgorithm::from_wire_id(enc_id).unwrap(),
                ..FbsConfig::default()
            };
            let (mut legacy_tx, mut rx) = pair_with(cfg.clone());
            let (mut fast_tx, _) = pair_with(cfg);
            let body: Vec<u8> =
                (0..len).map(|i| (i as u8).wrapping_add(fill)).collect();

            let pd = legacy_tx
                .send(
                    sfl,
                    Datagram::new(
                        Principal::named("A"),
                        Principal::named("B"),
                        body.clone(),
                    ),
                    secret,
                )
                .unwrap();
            let legacy_wire = pd.encode_payload();

            let mut fast_wire = Vec::new();
            fast_tx
                .seal_into(sfl, &Principal::named("B"), &body, secret, &mut fast_wire)
                .unwrap();
            prop_assert_eq!(&fast_wire, &legacy_wire);

            let mut opened = Vec::new();
            rx.open_into(&Principal::named("A"), &fast_wire, &mut opened).unwrap();
            prop_assert_eq!(opened, body);
        }

        #[test]
        fn parallel_sealer_preserves_per_flow_order_under_load(
            flows in proptest::collection::vec(0u64..8, 1..120),
            secret in any::<bool>(),
        ) {
            // Shard-route an arbitrary flow mix through 3 workers, then
            // replay each worker's subsequence through a fresh same-seed
            // serial endpoint: byte equality proves per-flow FIFO order
            // survived the concurrency.
            use fbs_core::{ParallelSealer, SealJob};
            const WORKERS: usize = 3;
            let jobs: Vec<SealJob> = flows
                .iter()
                .enumerate()
                .map(|(i, &sfl)| SealJob {
                    sfl,
                    destination: Principal::named("B"),
                    body: format!("flow {sfl} seq {i}").into_bytes(),
                    secret,
                })
                .collect();
            let mut sealer =
                ParallelSealer::new(fleet(FbsConfig::default(), WORKERS));
            let sealed = sealer.seal_batch(jobs.clone());
            prop_assert_eq!(sealed.len(), jobs.len());

            let mut reference = fleet(FbsConfig::default(), WORKERS);
            for w in 0..WORKERS {
                let serial = &mut reference[w];
                for (job, wire) in jobs
                    .iter()
                    .zip(&sealed)
                    .filter(|(j, _)| (j.sfl % WORKERS as u64) as usize == w)
                {
                    let mut expect = Vec::new();
                    serial
                        .seal_into(job.sfl, &job.destination, &job.body, job.secret, &mut expect)
                        .unwrap();
                    prop_assert_eq!(wire.as_ref().unwrap(), &expect);
                }
            }
        }

        #[test]
        fn wire_never_contains_long_plaintext_when_secret(
            body in proptest::collection::vec(1u8..255, 24..200),
        ) {
            // Encrypted bodies must not contain the plaintext as a
            // substring (24+ bytes of match would be astronomically
            // unlikely under a real cipher).
            let (mut tx, _) = pair();
            let d = Datagram::new(
                Principal::named("A"),
                Principal::named("B"),
                body.clone(),
            );
            let pd = tx.send(3, d, true).unwrap();
            let window = &body[..24];
            let found = pd.body.windows(window.len()).any(|w| w == window);
            prop_assert!(!found, "plaintext leaked into ciphertext");
        }
    }
}
