//! Proves the key-schedule amortisation satellite: with the DES schedule
//! cached inside `SealedFlowKey`, subkey expansion runs once per flow (per
//! side), not once per datagram.
//!
//! This lives in its own integration-test binary because it asserts exact
//! deltas of the process-global schedule counter in `fbs-crypto`; sharing a
//! process with other tests would race it.

use fbs_core::{
    Datagram, FbsConfig, FbsEndpoint, ManualClock, MasterKeyDaemon, PinnedDirectory, Principal,
};
use fbs_crypto::des::key_schedule_count;
use fbs_crypto::dh::{DhGroup, PrivateValue};
use std::sync::Arc;

fn endpoint_pair() -> (FbsEndpoint, FbsEndpoint) {
    let clock = ManualClock::starting_at(1_000_000);
    let group = DhGroup::test_group();
    let s_priv = PrivateValue::from_entropy(group.clone(), b"source-entropy-20-bytes");
    let d_priv = PrivateValue::from_entropy(group, b"dest-entropy-20-bytes!!");
    let s = Principal::named("S");
    let d = Principal::named("D");
    let mut dir_s = PinnedDirectory::new();
    dir_s.pin(d.clone(), d_priv.public_value());
    let mut dir_d = PinnedDirectory::new();
    dir_d.pin(s.clone(), s_priv.public_value());
    let ep_s = FbsEndpoint::new(
        s,
        FbsConfig::default(),
        Arc::new(clock.clone()),
        0x1111,
        MasterKeyDaemon::new(s_priv, Box::new(dir_s)),
    );
    let ep_d = FbsEndpoint::new(
        d,
        FbsConfig::default(),
        Arc::new(clock),
        0x2222,
        MasterKeyDaemon::new(d_priv, Box::new(dir_d)),
    );
    (ep_s, ep_d)
}

#[test]
fn des_subkey_expansion_runs_once_per_flow_not_per_datagram() {
    let (mut s, mut d) = endpoint_pair();
    let dgram = |i: u32| {
        Datagram::new(
            Principal::named("S"),
            Principal::named("D"),
            format!("datagram {i}").into_bytes(),
        )
    };

    // Warm the flow: first datagram derives the flow key on both sides,
    // expanding each side's schedule exactly once.
    let before_warm = key_schedule_count();
    let pd = s.send(42, dgram(0), true).unwrap();
    d.receive(pd).unwrap();
    let per_flow = key_schedule_count() - before_warm;
    assert!(
        per_flow >= 2,
        "warming one flow must expand at least sender+receiver schedules, saw {per_flow}"
    );

    // Steady state: nine more datagrams on the SAME flow expand nothing.
    let before_steady = key_schedule_count();
    for i in 1..10 {
        let pd = s.send(42, dgram(i), true).unwrap();
        d.receive(pd).unwrap();
    }
    assert_eq!(
        key_schedule_count() - before_steady,
        0,
        "cached-flow datagrams must not re-expand the DES key schedule"
    );

    // A NEW flow expands again (cache-miss path), proving the counter is
    // live and the steady-state zero above is meaningful.
    let before_new = key_schedule_count();
    let pd = s.send(43, dgram(100), true).unwrap();
    d.receive(pd).unwrap();
    assert!(key_schedule_count() - before_new >= 2);
}
