//! Snapshot coherence under concurrent writers.
//!
//! Writers hammer counters, histograms, stage spans, and the worker
//! occupancy table while a scraper thread takes snapshots. The registry
//! promises per-cell atomicity, not cross-cell consistency, so the
//! invariants a scraper may rely on are: (1) every counter is
//! monotone across successive snapshots, and (2) a histogram whose
//! observations all have the same value keeps `sum` within one
//! in-flight sample per writer of `value × count` (bucket and sum are
//! two separate relaxed adds).

use fbs_obs::{Counter, Histogram, MetricsRegistry, Stage};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const WRITERS: usize = 4;
const SAMPLE_VALUE: u64 = 100;
const SNAPSHOTS: usize = 200;

#[test]
fn snapshots_stay_monotone_and_sum_consistent_under_writers() {
    let reg = Arc::new(MetricsRegistry::with_event_capacity(0));
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut spins = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    reg.incr(Counter::Sends);
                    reg.add(Counter::PipelineBatchDatagrams, 3);
                    reg.observe(Histogram::SendBytes, SAMPLE_VALUE);
                    reg.observe_stage(Stage::Seal, SAMPLE_VALUE);
                    reg.worker_busy(w, 10);
                    reg.worker_stall(w, 5);
                    spins += 1;
                }
                spins
            })
        })
        .collect();

    let mut last: Option<fbs_obs::MetricsSnapshot> = None;
    let mut last_rows: Vec<fbs_obs::WorkerOccupancyRow> = Vec::new();
    let mut hist_seen = false;
    for _ in 0..SNAPSHOTS {
        let snap = reg.snapshot();
        if let Some(prev) = &last {
            for (name, v) in &prev.counters {
                assert!(
                    snap.counter(name) >= *v,
                    "counter {name} went backwards: {} < {v}",
                    snap.counter(name)
                );
            }
        }
        for key in ["send_bytes", "stage.seal_ns"] {
            if let Some(h) = snap.histograms.get(key) {
                hist_seen = true;
                let count = h.count();
                let ideal = SAMPLE_VALUE * count;
                let diff = h.sum.abs_diff(ideal);
                assert!(
                    diff <= (WRITERS as u64) * SAMPLE_VALUE,
                    "{key}: sum {} vs {count} x {SAMPLE_VALUE} (diff {diff})",
                    h.sum
                );
            }
        }
        // The worker table rows must be internally plausible. Each
        // cell is a separate relaxed atomic (batches and busy_ns are
        // two fetch_adds, loaded at two different instants), so a
        // mid-flight scrape may only rely on: every accumulator is an
        // exact multiple of the per-op cost its writer uses, and rows
        // never go backwards between scrapes.
        let rows = reg.worker_occupancy_table();
        for row in &rows {
            assert!(row.worker < WRITERS);
            assert_eq!(row.busy_ns % 10, 0, "torn busy_ns {}", row.busy_ns);
            assert_eq!(row.stall_ns % 5, 0, "torn stall_ns {}", row.stall_ns);
        }
        for prev in &last_rows {
            if let Some(cur) = rows.iter().find(|r| r.worker == prev.worker) {
                assert!(cur.batches >= prev.batches, "batches went backwards");
                assert!(cur.stalls >= prev.stalls, "stalls went backwards");
                assert!(cur.busy_ns >= prev.busy_ns, "busy_ns went backwards");
            }
        }
        last_rows = rows;
        last = Some(snap);
    }
    stop.store(true, Ordering::Relaxed);
    let spins: Vec<u64> = writers.into_iter().map(|w| w.join().unwrap()).collect();
    let total: u64 = spins.iter().sum();
    assert!(total > 0);
    assert!(hist_seen, "scraper never observed a histogram");

    // Quiesced: the ledger must now be exact, including the worker
    // table — one busy batch and one stall per spin, at the writers'
    // fixed per-op costs.
    let snap = reg.snapshot();
    assert_eq!(snap.counter("endpoint.sends"), total);
    assert_eq!(snap.counter("pipeline.batch_datagrams"), 3 * total);
    let h = &snap.histograms["send_bytes"];
    assert_eq!(h.count(), total);
    assert_eq!(h.sum, SAMPLE_VALUE * total);
    for row in reg.worker_occupancy_table() {
        let expected = spins[row.worker];
        assert_eq!(row.batches, expected);
        assert_eq!(row.stalls, expected);
        assert_eq!(row.busy_ns, expected * 10);
        assert_eq!(row.stall_ns, expected * 5);
    }
}
