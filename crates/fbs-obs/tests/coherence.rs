//! Snapshot coherence under concurrent writers.
//!
//! Writers hammer counters, histograms, stage spans, and the shard
//! lock table while a scraper thread takes snapshots. The registry
//! promises per-cell atomicity, not cross-cell consistency, so the
//! invariants a scraper may rely on are: (1) every counter is
//! monotone across successive snapshots, and (2) a histogram whose
//! observations all have the same value keeps `sum` within one
//! in-flight sample per writer of `value × count` (bucket and sum are
//! two separate relaxed adds).

use fbs_obs::{Counter, Histogram, MetricsRegistry, Stage};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const WRITERS: usize = 4;
const SAMPLE_VALUE: u64 = 100;
const SNAPSHOTS: usize = 200;

#[test]
fn snapshots_stay_monotone_and_sum_consistent_under_writers() {
    let reg = Arc::new(MetricsRegistry::with_event_capacity(0));
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut spins = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    reg.incr(Counter::Sends);
                    reg.add(Counter::PipelineBatchDatagrams, 3);
                    reg.observe(Histogram::SendBytes, SAMPLE_VALUE);
                    reg.observe_stage(Stage::Seal, SAMPLE_VALUE);
                    reg.shard_lock_hold(w, 10);
                    reg.shard_lock_wait(w, 5);
                    spins += 1;
                }
                spins
            })
        })
        .collect();

    let mut last: Option<fbs_obs::MetricsSnapshot> = None;
    let mut hist_seen = false;
    for _ in 0..SNAPSHOTS {
        let snap = reg.snapshot();
        if let Some(prev) = &last {
            for (name, v) in &prev.counters {
                assert!(
                    snap.counter(name) >= *v,
                    "counter {name} went backwards: {} < {v}",
                    snap.counter(name)
                );
            }
        }
        for key in ["send_bytes", "stage.seal_ns"] {
            if let Some(h) = snap.histograms.get(key) {
                hist_seen = true;
                let count = h.count();
                let ideal = SAMPLE_VALUE * count;
                let diff = h.sum.abs_diff(ideal);
                assert!(
                    diff <= (WRITERS as u64) * SAMPLE_VALUE,
                    "{key}: sum {} vs {count} x {SAMPLE_VALUE} (diff {diff})",
                    h.sum
                );
            }
        }
        // The shard table rows must be internally plausible: waits and
        // holds only grow, and each shard's wait_ns/hold_ns are exact
        // multiples of the per-op costs the writers use.
        for row in reg.shard_lock_table() {
            assert!(row.shard < WRITERS);
            assert_eq!(row.hold_ns, row.holds * 10);
            assert_eq!(row.wait_ns, row.waits * 5);
        }
        last = Some(snap);
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(total > 0);
    assert!(hist_seen, "scraper never observed a histogram");

    // Quiesced: the ledger must now be exact.
    let snap = reg.snapshot();
    assert_eq!(snap.counter("endpoint.sends"), total);
    assert_eq!(snap.counter("pipeline.batch_datagrams"), 3 * total);
    let h = &snap.histograms["send_bytes"];
    assert_eq!(h.count(), total);
    assert_eq!(h.sum, SAMPLE_VALUE * total);
}
