//! Typed health conditions derived from a metrics snapshot.
//!
//! Counters tell you what happened; operators need to know what is
//! *wrong*. A [`HealthModel`] turns a [`MetricsSnapshot`] plus a few
//! live inputs (queue depths, capacities, a recovery ratio) into typed
//! [`Condition`]s with a three-level status, so the chaos soak can
//! report "breaker open, park queue at 80%" instead of a counter dump.
//! Evaluation is pure (snapshot in, report out) and deterministic, so
//! health timelines can live inside the seeded, byte-identical
//! BENCH_chaos.json.

use crate::snapshot::MetricsSnapshot;

/// Severity of a health condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// Within normal bounds.
    Ok,
    /// Degraded but operating (e.g. breaker open, queue filling).
    Degraded,
    /// Losing work or inconsistent bookkeeping.
    Critical,
}

impl HealthStatus {
    /// Lower-case name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Critical => "critical",
        }
    }
}

/// The conditions the model evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConditionKind {
    /// More breaker-open transitions than closes in the evaluated
    /// snapshot: the keying plane degraded during that window (on a
    /// cumulative snapshot, some breaker is likely still open).
    BreakerOpen,
    /// A parking queue's depth is at or past the near-capacity
    /// threshold (critical once some queue is full). Judged purely on
    /// the *live depth* inputs — overflow counters in the snapshot do
    /// not latch this condition, so a phase that ends with drained
    /// queues reports Ok even if overflows happened mid-phase (those
    /// remain visible in `park.overflow`).
    ParkNearCapacity,
    /// Buffer-pool ledger: takes vs returns+discards. A large
    /// outstanding balance is a leak in progress (degraded). Returns
    /// exceeding takes is normal in bounded amounts — pools absorb
    /// foreign buffers such as wires arriving off the network — but an
    /// excess past the same threshold means unaccounted buffers are
    /// flooding in (critical).
    PoolLedgerImbalance,
    /// Post-fault recovery ratio below the configured floor.
    RecoveryRatioLow,
    /// The flight recorder overwrote history (ring overflow).
    EventsDropped,
    /// Worker threads quarantined after exhausting their respawn
    /// budget (fail-closed on their shards). Degraded while any worker
    /// is quarantined; critical once every worker is.
    WorkerQuarantined,
    /// Overload shedding rejected datagrams in the evaluated window.
    /// Degraded on any shed; critical once the shed fraction of
    /// offered load passes the model threshold.
    ShedRateHigh,
    /// Soft-state memory budgets under pressure. Degraded once usage
    /// passes the near-limit percentage of the worst shard's budget;
    /// critical once usage is past the limit itself (budget-driven
    /// eviction could not keep up). Judged on live byte inputs; a
    /// budget-less runtime (limit 0) skips the condition.
    MemoryBudgetExceeded,
}

impl ConditionKind {
    /// Snake-case name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            ConditionKind::BreakerOpen => "breaker_open",
            ConditionKind::ParkNearCapacity => "park_near_capacity",
            ConditionKind::PoolLedgerImbalance => "pool_ledger_imbalance",
            ConditionKind::RecoveryRatioLow => "recovery_ratio_low",
            ConditionKind::EventsDropped => "events_dropped",
            ConditionKind::WorkerQuarantined => "worker_quarantined",
            ConditionKind::ShedRateHigh => "shed_rate_high",
            ConditionKind::MemoryBudgetExceeded => "memory_budget_exceeded",
        }
    }
}

/// One evaluated condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    /// Which condition.
    pub kind: ConditionKind,
    /// Its status.
    pub status: HealthStatus,
    /// The measured value the status was derived from (meaning depends
    /// on the kind: open breaker count, queue depth, outstanding
    /// buffers, recovery ratio in percent, dropped events).
    pub value: u64,
    /// The threshold the value was judged against (0 when the
    /// condition is boolean).
    pub threshold: u64,
}

impl Condition {
    /// Render as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"status\":\"{}\",\"value\":{},\"threshold\":{}}}",
            self.kind.name(),
            self.status.name(),
            self.value,
            self.threshold
        )
    }
}

/// Live inputs a snapshot alone cannot provide.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthInputs {
    /// Deepest single parking queue right now. Per-queue (not summed
    /// across queues): one full queue is turning work away even while
    /// its siblings sit empty, and a sum-vs-aggregate comparison would
    /// mask that.
    pub park_depth: u64,
    /// Per-queue parking capacity (0 = unknown, skips the condition).
    pub park_capacity: u64,
    /// Recovery ratio in percent (delivered/sent × 100), if the caller
    /// is in a phase where it is meaningful.
    pub recovery_ratio_pct: Option<u64>,
    /// Workers currently quarantined (fail-closed after exhausting
    /// their respawn budget).
    pub workers_quarantined: u64,
    /// Total workers in the runtime (0 = unknown / not a worker
    /// runtime, skips the quarantine condition).
    pub workers_total: u64,
    /// Resident soft-state bytes of the most-loaded shard budget (the
    /// per-shard view for the same reason as `park_depth`: one shard
    /// evicting in a storm matters even while its siblings are idle).
    pub mem_used_bytes: u64,
    /// That shard's byte ceiling (0 = unbudgeted, skips the memory
    /// condition).
    pub mem_limit_bytes: u64,
}

/// Evaluated health: overall status plus per-condition detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Worst status across all conditions.
    pub overall: HealthStatus,
    /// Every evaluated condition (including Ok ones, so timelines have
    /// a stable shape).
    pub conditions: Vec<Condition>,
}

impl HealthReport {
    /// Condition by kind.
    pub fn condition(&self, kind: ConditionKind) -> Option<&Condition> {
        self.conditions.iter().find(|c| c.kind == kind)
    }

    /// Render as one JSON object:
    /// `{"overall":"..","conditions":[..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!("{{\"overall\":\"{}\"", self.overall.name()));
        out.push_str(",\"conditions\":[");
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// The health model: thresholds plus the evaluation rules.
#[derive(Debug, Clone, Copy)]
pub struct HealthModel {
    /// Park queue depth (percent of capacity) at which the condition
    /// degrades.
    pub park_near_capacity_pct: u64,
    /// Recovery ratio floor, percent.
    pub min_recovery_ratio_pct: u64,
    /// Outstanding pool buffers (takes − returns − discards) above
    /// which the ledger condition degrades.
    pub max_outstanding_buffers: u64,
    /// Shed fraction of offered load (percent) past which shedding
    /// turns critical (any shed at all is already degraded).
    pub max_shed_pct: u64,
    /// Memory budget usage (percent of the shard limit) at which the
    /// memory condition degrades; past 100% it is critical.
    pub mem_budget_pct: u64,
}

impl Default for HealthModel {
    fn default() -> Self {
        HealthModel {
            park_near_capacity_pct: 80,
            min_recovery_ratio_pct: 90,
            max_outstanding_buffers: 4096,
            max_shed_pct: 10,
            mem_budget_pct: 90,
        }
    }
}

impl HealthModel {
    /// Evaluate every condition against `snap` and `inputs`.
    pub fn evaluate(&self, snap: &MetricsSnapshot, inputs: &HealthInputs) -> HealthReport {
        let mut conditions = Vec::with_capacity(8);

        // Breaker: opens vs closes tells us how many breakers are
        // currently open (each open is eventually matched by a close).
        let opened = snap.counter("breaker.opened");
        let closed = snap.counter("breaker.closed");
        let open_now = opened.saturating_sub(closed);
        conditions.push(Condition {
            kind: ConditionKind::BreakerOpen,
            status: if open_now > 0 {
                HealthStatus::Degraded
            } else {
                HealthStatus::Ok
            },
            value: open_now,
            threshold: 0,
        });

        // Park queues: live depth vs per-queue capacity, nothing else.
        // Status, value, and threshold must all derive from the same
        // measurement — latching on the snapshot's overflow counter
        // here used to report Critical with a value of 0 after the
        // queues drained, which is incoherent; overflows stay visible
        // in `park.overflow` without hijacking the depth condition.
        let park_status = if inputs.park_capacity == 0 {
            HealthStatus::Ok
        } else if inputs.park_depth >= inputs.park_capacity {
            HealthStatus::Critical
        } else if inputs.park_depth * 100 >= inputs.park_capacity * self.park_near_capacity_pct {
            HealthStatus::Degraded
        } else {
            HealthStatus::Ok
        };
        conditions.push(Condition {
            kind: ConditionKind::ParkNearCapacity,
            status: park_status,
            value: inputs.park_depth,
            threshold: inputs.park_capacity * self.park_near_capacity_pct / 100,
        });

        // Pool ledger: a large outstanding balance (takes far ahead of
        // returns+discards) is a leak forming. The reverse — returns
        // ahead of takes — is normal in bounded amounts, because pools
        // also absorb buffers they never vended (wires arriving off
        // the network are recycled into the receive pool); it only
        // turns critical past the same threshold, when unaccounted
        // buffers are flooding in.
        let takes = snap.counter("pool.hits") + snap.counter("pool.misses");
        let returned = snap.counter("pool.returns") + snap.counter("pool.discards");
        let (ledger_status, ledger_value) = if returned > takes {
            let excess = returned - takes;
            (
                if excess > self.max_outstanding_buffers {
                    HealthStatus::Critical
                } else {
                    HealthStatus::Ok
                },
                excess,
            )
        } else {
            let outstanding = takes - returned;
            (
                if outstanding > self.max_outstanding_buffers {
                    HealthStatus::Degraded
                } else {
                    HealthStatus::Ok
                },
                outstanding,
            )
        };
        conditions.push(Condition {
            kind: ConditionKind::PoolLedgerImbalance,
            status: ledger_status,
            value: ledger_value,
            threshold: self.max_outstanding_buffers,
        });

        // Recovery ratio (only when the caller says it is meaningful).
        let (rr_status, rr_value) = match inputs.recovery_ratio_pct {
            None => (HealthStatus::Ok, 100),
            Some(pct) if pct >= self.min_recovery_ratio_pct => (HealthStatus::Ok, pct),
            Some(pct) if pct >= self.min_recovery_ratio_pct / 2 => (HealthStatus::Degraded, pct),
            Some(pct) => (HealthStatus::Critical, pct),
        };
        conditions.push(Condition {
            kind: ConditionKind::RecoveryRatioLow,
            status: rr_status,
            value: rr_value,
            threshold: self.min_recovery_ratio_pct,
        });

        // Flight-recorder overflow.
        let dropped = snap.counter("obs.events_dropped");
        conditions.push(Condition {
            kind: ConditionKind::EventsDropped,
            status: if dropped > 0 {
                HealthStatus::Degraded
            } else {
                HealthStatus::Ok
            },
            value: dropped,
            threshold: 0,
        });

        // Worker quarantine: any quarantined worker means some shards
        // fail closed (degraded service); all workers quarantined
        // means the endpoint rejects everything.
        let wq_status = if inputs.workers_total == 0 || inputs.workers_quarantined == 0 {
            HealthStatus::Ok
        } else if inputs.workers_quarantined >= inputs.workers_total {
            HealthStatus::Critical
        } else {
            HealthStatus::Degraded
        };
        conditions.push(Condition {
            kind: ConditionKind::WorkerQuarantined,
            status: wq_status,
            value: inputs.workers_quarantined,
            threshold: inputs.workers_total,
        });

        // Overload shedding: shed datagrams vs offered load. Shed
        // datagrams never reach the hook-entry counters (they are
        // rejected before the worker sees them), so offered load is
        // entries + sheds.
        let shed = snap.counter("hooks.shed.rejected");
        let offered =
            snap.counter("hooks.output_entries") + snap.counter("hooks.input_entries") + shed;
        let shed_critical_at = offered * self.max_shed_pct / 100;
        let shed_status = if shed == 0 {
            HealthStatus::Ok
        } else if shed * 100 > offered * self.max_shed_pct {
            HealthStatus::Critical
        } else {
            HealthStatus::Degraded
        };
        conditions.push(Condition {
            kind: ConditionKind::ShedRateHigh,
            status: shed_status,
            value: shed,
            threshold: shed_critical_at,
        });

        // Memory budget: live resident bytes of the worst shard vs its
        // ceiling. Soft state keeps serving past the limit (eviction,
        // never allocation failure), so over-limit is critical pressure
        // rather than an outage; near-limit is the early warning that
        // eviction storms are close.
        let mem_degrade_at = inputs.mem_limit_bytes * self.mem_budget_pct / 100;
        let mem_status = if inputs.mem_limit_bytes == 0 {
            HealthStatus::Ok
        } else if inputs.mem_used_bytes > inputs.mem_limit_bytes {
            HealthStatus::Critical
        } else if inputs.mem_used_bytes >= mem_degrade_at {
            HealthStatus::Degraded
        } else {
            HealthStatus::Ok
        };
        conditions.push(Condition {
            kind: ConditionKind::MemoryBudgetExceeded,
            status: mem_status,
            value: inputs.mem_used_bytes,
            threshold: mem_degrade_at,
        });

        let overall = conditions
            .iter()
            .map(|c| c.status)
            .max()
            .unwrap_or(HealthStatus::Ok);
        HealthReport {
            overall,
            conditions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_healthy() {
        let report =
            HealthModel::default().evaluate(&MetricsSnapshot::new(), &HealthInputs::default());
        assert_eq!(report.overall, HealthStatus::Ok);
        assert_eq!(report.conditions.len(), 8);
        assert!(report
            .conditions
            .iter()
            .all(|c| c.status == HealthStatus::Ok));
    }

    #[test]
    fn open_breaker_degrades() {
        let mut s = MetricsSnapshot::new();
        s.add("breaker.opened", 2);
        s.add("breaker.closed", 1);
        let report = HealthModel::default().evaluate(&s, &HealthInputs::default());
        assert_eq!(report.overall, HealthStatus::Degraded);
        let c = report.condition(ConditionKind::BreakerOpen).unwrap();
        assert_eq!(c.status, HealthStatus::Degraded);
        assert_eq!(c.value, 1);
    }

    #[test]
    fn park_depth_thresholds() {
        let model = HealthModel::default();
        let snap = MetricsSnapshot::new();
        let ok = model.evaluate(
            &snap,
            &HealthInputs {
                park_depth: 10,
                park_capacity: 64,
                ..HealthInputs::default()
            },
        );
        assert_eq!(
            ok.condition(ConditionKind::ParkNearCapacity)
                .unwrap()
                .status,
            HealthStatus::Ok
        );
        let near = model.evaluate(
            &snap,
            &HealthInputs {
                park_depth: 52,
                park_capacity: 64,
                ..HealthInputs::default()
            },
        );
        assert_eq!(
            near.condition(ConditionKind::ParkNearCapacity)
                .unwrap()
                .status,
            HealthStatus::Degraded
        );
        let full = model.evaluate(
            &snap,
            &HealthInputs {
                park_depth: 64,
                park_capacity: 64,
                ..HealthInputs::default()
            },
        );
        assert_eq!(
            full.condition(ConditionKind::ParkNearCapacity)
                .unwrap()
                .status,
            HealthStatus::Critical
        );
        // Historical overflows must NOT latch the condition: a drained
        // queue (depth 0) is healthy regardless of what the counters
        // say happened earlier in the window.
        let mut overflowed = MetricsSnapshot::new();
        overflowed.add("park.overflow", 22);
        let drained = model.evaluate(
            &overflowed,
            &HealthInputs {
                park_depth: 0,
                park_capacity: 64,
                ..HealthInputs::default()
            },
        );
        let c = drained.condition(ConditionKind::ParkNearCapacity).unwrap();
        assert_eq!(c.status, HealthStatus::Ok);
        assert_eq!(c.value, 0);
    }

    #[test]
    fn worker_quarantine_bands() {
        let model = HealthModel::default();
        let snap = MetricsSnapshot::new();
        let mk = |q, total| HealthInputs {
            workers_quarantined: q,
            workers_total: total,
            ..HealthInputs::default()
        };
        let get = |q, total| {
            model
                .evaluate(&snap, &mk(q, total))
                .condition(ConditionKind::WorkerQuarantined)
                .unwrap()
                .status
        };
        assert_eq!(get(0, 4), HealthStatus::Ok);
        // Unknown runtime size: skipped, never alarms.
        assert_eq!(get(3, 0), HealthStatus::Ok);
        assert_eq!(get(1, 4), HealthStatus::Degraded);
        assert_eq!(get(4, 4), HealthStatus::Critical);
    }

    #[test]
    fn memory_budget_bands() {
        let model = HealthModel::default();
        let snap = MetricsSnapshot::new();
        let get = |used: u64, limit: u64| {
            let inputs = HealthInputs {
                mem_used_bytes: used,
                mem_limit_bytes: limit,
                ..HealthInputs::default()
            };
            model
                .evaluate(&snap, &inputs)
                .condition(ConditionKind::MemoryBudgetExceeded)
                .unwrap()
                .clone()
        };
        // Unbudgeted runtime: skipped, never alarms.
        assert_eq!(get(1 << 30, 0).status, HealthStatus::Ok);
        assert_eq!(get(500, 1_000).status, HealthStatus::Ok);
        // 90% of limit: eviction storms are close.
        let near = get(900, 1_000);
        assert_eq!(near.status, HealthStatus::Degraded);
        assert_eq!(near.threshold, 900);
        // At the limit exactly: budget-driven eviction holds the line.
        assert_eq!(get(1_000, 1_000).status, HealthStatus::Degraded);
        // Past the limit: eviction could not keep up.
        assert_eq!(get(1_001, 1_000).status, HealthStatus::Critical);
        let json = model
            .evaluate(
                &snap,
                &HealthInputs {
                    mem_used_bytes: 2_000,
                    mem_limit_bytes: 1_000,
                    ..HealthInputs::default()
                },
            )
            .to_json();
        assert!(json.contains("\"kind\":\"memory_budget_exceeded\""));
        assert!(json.contains("\"overall\":\"critical\""));
    }

    #[test]
    fn shed_rate_bands() {
        let model = HealthModel::default();
        let status = |shed: u64, entries: u64| {
            let mut s = MetricsSnapshot::new();
            if shed > 0 {
                s.add("hooks.shed.rejected", shed);
            }
            s.add("hooks.output_entries", entries);
            model
                .evaluate(&s, &HealthInputs::default())
                .condition(ConditionKind::ShedRateHigh)
                .unwrap()
                .status
        };
        assert_eq!(status(0, 1_000), HealthStatus::Ok);
        // 5 shed of 1005 offered ≈ 0.5% — degraded, not critical.
        assert_eq!(status(5, 1_000), HealthStatus::Degraded);
        // 200 shed of 1200 offered ≈ 17% — past the 10% threshold.
        assert_eq!(status(200, 1_000), HealthStatus::Critical);
    }

    #[test]
    fn pool_ledger_detects_corruption_and_leak() {
        let model = HealthModel::default();
        // Bounded foreign-buffer absorption (returns a little ahead of
        // takes) is normal; a flood past the threshold is corruption.
        let mut absorbing = MetricsSnapshot::new();
        absorbing.add("pool.hits", 1);
        absorbing.add("pool.returns", 3);
        let report = model.evaluate(&absorbing, &HealthInputs::default());
        let c = report
            .condition(ConditionKind::PoolLedgerImbalance)
            .unwrap();
        assert_eq!(c.status, HealthStatus::Ok);
        assert_eq!(c.value, 2);
        let mut corrupt = MetricsSnapshot::new();
        corrupt.add("pool.hits", 1);
        corrupt.add("pool.returns", 10_000);
        let report = model.evaluate(&corrupt, &HealthInputs::default());
        assert_eq!(
            report
                .condition(ConditionKind::PoolLedgerImbalance)
                .unwrap()
                .status,
            HealthStatus::Critical
        );
        let mut leaking = MetricsSnapshot::new();
        leaking.add("pool.misses", 10_000);
        leaking.add("pool.returns", 100);
        let report = model.evaluate(&leaking, &HealthInputs::default());
        let c = report
            .condition(ConditionKind::PoolLedgerImbalance)
            .unwrap();
        assert_eq!(c.status, HealthStatus::Degraded);
        assert_eq!(c.value, 9_900);
    }

    #[test]
    fn recovery_ratio_bands() {
        let model = HealthModel::default();
        let snap = MetricsSnapshot::new();
        let mk = |pct| HealthInputs {
            recovery_ratio_pct: Some(pct),
            ..HealthInputs::default()
        };
        assert_eq!(
            model
                .evaluate(&snap, &mk(95))
                .condition(ConditionKind::RecoveryRatioLow)
                .unwrap()
                .status,
            HealthStatus::Ok
        );
        assert_eq!(
            model
                .evaluate(&snap, &mk(70))
                .condition(ConditionKind::RecoveryRatioLow)
                .unwrap()
                .status,
            HealthStatus::Degraded
        );
        assert_eq!(
            model
                .evaluate(&snap, &mk(10))
                .condition(ConditionKind::RecoveryRatioLow)
                .unwrap()
                .status,
            HealthStatus::Critical
        );
    }

    #[test]
    fn events_dropped_surfaces_and_json_shape() {
        let mut s = MetricsSnapshot::new();
        s.add("obs.events_dropped", 12);
        let report = HealthModel::default().evaluate(&s, &HealthInputs::default());
        let c = report.condition(ConditionKind::EventsDropped).unwrap();
        assert_eq!(c.status, HealthStatus::Degraded);
        assert_eq!(c.value, 12);
        let json = report.to_json();
        assert!(json.contains("\"overall\":\"degraded\""));
        assert!(json.contains("\"kind\":\"events_dropped\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
