//! Sampled end-to-end flow traces.
//!
//! A [`FlowTracer`] follows a deterministic subset of flows across the
//! in-memory network — tx classify → seal → wire → rx open →
//! reassembly → deliver — and records each step as a span stamped with
//! the *simulated* clock, so a seeded run produces a byte-identical
//! trace every time. Sampling is by a mix of the security flow label
//! (sfl): the same flows are sampled on both hosts with no
//! coordination, which is what lets one trace stitch both ends of a
//! datagram's life together.
//!
//! Global conditions that are not owned by a single flow — chaos fault
//! windows, circuit-breaker transitions — are recorded as
//! *annotations* alongside the span tree, timestamped on the same
//! virtual clock, so a reader can line up "flow 42 parked here"
//! against "directory outage started here".
//!
//! The tracer is reached through the [`crate::MetricsRegistry`] a
//! component already holds (`registry.tracer()`), so enabling tracing
//! requires no new plumbing through constructors.

use std::sync::Mutex;

/// One step of a sampled flow's life, in datagram-path order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The FAM classified an outgoing datagram onto this flow (tx).
    Classify,
    /// The datagram was sealed under the flow key (tx).
    Seal,
    /// The sealed datagram was handed to the wire (tx, after
    /// fragmentation decisions).
    Wire,
    /// The wire payload was opened and verified (rx).
    Open,
    /// Fragments of a datagram on this flow finished reassembly (rx,
    /// before the input hook).
    Reassembled,
    /// The verified datagram was dispatched to its upper layer (rx).
    Deliver,
    /// The datagram was parked awaiting key material.
    Parked,
    /// A parked datagram failed release and was re-parked.
    Reparked,
    /// A parked datagram was released and processed.
    Released,
    /// A parked datagram hit its deadline and was dropped.
    Expired,
}

impl SpanKind {
    /// Snake-case name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Classify => "classify",
            SpanKind::Seal => "seal",
            SpanKind::Wire => "wire",
            SpanKind::Open => "open",
            SpanKind::Reassembled => "reassembled",
            SpanKind::Deliver => "deliver",
            SpanKind::Parked => "parked",
            SpanKind::Reparked => "reparked",
            SpanKind::Released => "released",
            SpanKind::Expired => "expired",
        }
    }
}

/// One recorded span: a step of a sampled flow on one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// The flow's security flow label.
    pub sfl: u64,
    /// IPv4 address (as `u32`) of the host the step ran on.
    pub host: u32,
    /// Which step.
    pub kind: SpanKind,
    /// Simulated-clock timestamp, microseconds.
    pub t_us: u64,
    /// Step-specific detail (bytes for classify/seal/wire/open/deliver,
    /// queue depth for parked, waited µs for released; 0 otherwise).
    pub info: u64,
}

/// A global annotation: a condition not owned by one flow (fault
/// window edges, breaker transitions), lined up on the same clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceAnnotation {
    /// Snake-case annotation kind (e.g. `fault_start`,
    /// `breaker_transition`).
    pub kind: &'static str,
    /// Free-form static detail (e.g. the fault or state name).
    pub detail: &'static str,
    /// Simulated-clock timestamp, microseconds.
    pub t_us: u64,
    /// Numeric detail (e.g. time-in-state µs); 0 when unused.
    pub info: u64,
}

struct TracerInner {
    spans: Vec<TraceSpan>,
    annotations: Vec<TraceAnnotation>,
    spans_dropped: u64,
}

/// Deterministic sampling flow tracer. Create with a sampling rate,
/// attach to a [`crate::MetricsRegistry`] with
/// [`crate::MetricsRegistry::set_tracer`], export with
/// [`FlowTracer::to_json`].
pub struct FlowTracer {
    /// Sampling mask: a flow is sampled when `mix(sfl) & mask == 0`,
    /// i.e. 1 in 2^rate_log2 flows.
    mask: u64,
    rate_log2: u32,
    cap: usize,
    inner: Mutex<TracerInner>,
}

/// SplitMix64 finaliser: decorrelates the sampling decision from the
/// sfl allocation pattern (sfls are strided per shard, so masking raw
/// sfl bits would sample entire shards or none).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Default span capacity (spans + annotations are capped separately).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl std::fmt::Debug for FlowTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowTracer")
            .field("rate_log2", &self.rate_log2)
            .field("capacity", &self.cap)
            .finish_non_exhaustive()
    }
}

impl FlowTracer {
    /// Tracer sampling 1 in 2^`rate_log2` flows (0 samples every flow),
    /// keeping at most [`DEFAULT_TRACE_CAPACITY`] spans.
    pub fn new(rate_log2: u32) -> Self {
        FlowTracer::with_capacity(rate_log2, DEFAULT_TRACE_CAPACITY)
    }

    /// Tracer with an explicit span capacity. Once full, further spans
    /// are counted as dropped instead of recorded.
    pub fn with_capacity(rate_log2: u32, cap: usize) -> Self {
        let rate_log2 = rate_log2.min(63);
        FlowTracer {
            mask: (1u64 << rate_log2) - 1,
            rate_log2,
            cap,
            inner: Mutex::new(TracerInner {
                spans: Vec::new(),
                annotations: Vec::new(),
                spans_dropped: 0,
            }),
        }
    }

    /// The configured rate exponent (1 in 2^k flows sampled).
    pub fn rate_log2(&self) -> u32 {
        self.rate_log2
    }

    /// Whether flow `sfl` is sampled. Deterministic in `sfl` alone, so
    /// every host agrees without coordination.
    pub fn sampled(&self, sfl: u64) -> bool {
        mix(sfl) & self.mask == 0
    }

    /// Record one span if its flow is sampled (checked again here, so
    /// callers may skip the [`FlowTracer::sampled`] pre-check).
    pub fn record(&self, span: TraceSpan) {
        if !self.sampled(span.sfl) {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.spans.len() >= self.cap {
            inner.spans_dropped += 1;
        } else {
            inner.spans.push(span);
        }
    }

    /// Record a global annotation (not subject to sampling; capped at
    /// the same capacity as spans).
    pub fn annotate(&self, kind: &'static str, detail: &'static str, t_us: u64, info: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.annotations.len() < self.cap {
            inner.annotations.push(TraceAnnotation {
                kind,
                detail,
                t_us,
                info,
            });
        }
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .spans
            .len()
    }

    /// All recorded spans, in record order.
    pub fn spans(&self) -> Vec<TraceSpan> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .spans
            .clone()
    }

    /// Render the trace as one JSON object:
    /// `{"rate_log2":k,"spans_dropped":n,"traces":[{"sfl":..,"legs":[{"host":"a.b.c.d","spans":[..]}]}],"annotations":[..]}`.
    ///
    /// The span tree groups spans by flow (in order of first
    /// appearance) and, within a flow, by host (a *leg*: the tx-side
    /// steps on one host, the rx-side steps on the other), preserving
    /// record order within each leg. Output is fully deterministic for
    /// a seeded run.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut flow_order: Vec<u64> = Vec::new();
        for s in &inner.spans {
            if !flow_order.contains(&s.sfl) {
                flow_order.push(s.sfl);
            }
        }
        let mut out = String::with_capacity(4096);
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"rate_log2\":{},\"spans_dropped\":{},\"traces\":[",
            self.rate_log2, inner.spans_dropped
        );
        for (fi, sfl) in flow_order.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"sfl\":{sfl},\"legs\":[");
            let mut host_order: Vec<u32> = Vec::new();
            for s in inner.spans.iter().filter(|s| s.sfl == *sfl) {
                if !host_order.contains(&s.host) {
                    host_order.push(s.host);
                }
            }
            for (hi, host) in host_order.iter().enumerate() {
                if hi > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"host\":\"{}\",\"spans\":[", host_str(*host));
                let mut first = true;
                for s in inner
                    .spans
                    .iter()
                    .filter(|s| s.sfl == *sfl && s.host == *host)
                {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(
                        out,
                        "{{\"kind\":\"{}\",\"t_us\":{},\"info\":{}}}",
                        s.kind.name(),
                        s.t_us,
                        s.info
                    );
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
        out.push_str("],\"annotations\":[");
        for (i, a) in inner.annotations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"detail\":\"{}\",\"t_us\":{},\"info\":{}}}",
                a.kind, a.detail, a.t_us, a.info
            );
        }
        out.push_str("]}");
        out
    }
}

/// Dotted-quad rendering of a host tag (`u32` IPv4 address).
fn host_str(h: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (h >> 24) & 0xff,
        (h >> 16) & 0xff,
        (h >> 8) & 0xff,
        h & 0xff
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_zero_samples_everything() {
        let t = FlowTracer::new(0);
        for sfl in 0..64u64 {
            assert!(t.sampled(sfl));
        }
    }

    #[test]
    fn sampling_is_deterministic_and_thins() {
        let a = FlowTracer::new(3);
        let b = FlowTracer::new(3);
        let hits: Vec<u64> = (0..4096u64).filter(|s| a.sampled(*s)).collect();
        let hits_b: Vec<u64> = (0..4096u64).filter(|s| b.sampled(*s)).collect();
        assert_eq!(hits, hits_b);
        // Roughly 1 in 8 of 4096 flows; allow wide slack.
        assert!(hits.len() > 256 && hits.len() < 1024, "{}", hits.len());
    }

    #[test]
    fn unsampled_spans_are_ignored() {
        let t = FlowTracer::new(63);
        let sfl = (0..u64::MAX).find(|s| !t.sampled(*s)).unwrap();
        t.record(TraceSpan {
            sfl,
            host: 1,
            kind: SpanKind::Classify,
            t_us: 0,
            info: 0,
        });
        assert_eq!(t.span_count(), 0);
    }

    #[test]
    fn capacity_counts_drops() {
        let t = FlowTracer::with_capacity(0, 2);
        for i in 0..5u64 {
            t.record(TraceSpan {
                sfl: 1,
                host: 1,
                kind: SpanKind::Seal,
                t_us: i,
                info: 0,
            });
        }
        assert_eq!(t.span_count(), 2);
        assert!(t.to_json().contains("\"spans_dropped\":3"));
    }

    #[test]
    fn json_groups_by_flow_then_host() {
        let t = FlowTracer::new(0);
        let h1 = u32::from_be_bytes([10, 0, 0, 1]);
        let h2 = u32::from_be_bytes([10, 0, 0, 2]);
        t.record(TraceSpan {
            sfl: 7,
            host: h1,
            kind: SpanKind::Classify,
            t_us: 1,
            info: 64,
        });
        t.record(TraceSpan {
            sfl: 7,
            host: h1,
            kind: SpanKind::Seal,
            t_us: 2,
            info: 64,
        });
        t.record(TraceSpan {
            sfl: 7,
            host: h2,
            kind: SpanKind::Open,
            t_us: 3,
            info: 64,
        });
        t.annotate("fault_start", "directory_outage", 2, 0);
        let json = t.to_json();
        assert!(json.contains("\"sfl\":7"));
        assert!(json.contains("\"host\":\"10.0.0.1\""));
        assert!(json.contains("\"host\":\"10.0.0.2\""));
        assert!(json.contains("\"kind\":\"classify\""));
        assert!(json.contains("\"detail\":\"directory_outage\""));
        // tx leg listed before rx leg (first-appearance order).
        assert!(json.find("10.0.0.1").unwrap() < json.find("10.0.0.2").unwrap());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
